//! Reproducibility guarantees: identical seeds yield identical universes,
//! crawls and reports, regardless of parallelism.

use hb_repro::prelude::*;

#[test]
fn same_seed_same_dataset() {
    let run = || {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        run_campaign(&eco, &CampaignConfig::default())
    };
    let a = run();
    let b = run();
    assert_eq!(a.visits.len(), b.visits.len());
    for (x, y) in a.visits.iter().zip(b.visits.iter()) {
        assert_eq!(x.domain, y.domain);
        assert_eq!(x.day, y.day);
        assert_eq!(x.hb_detected, y.hb_detected);
        assert_eq!(x.hb_latency_ms, y.hb_latency_ms);
        assert_eq!(x.bids.len(), y.bids.len());
        for (bx, by) in x.bids.iter().zip(y.bids.iter()) {
            assert_eq!(bx.bidder_code, by.bidder_code);
            assert_eq!(bx.cpm, by.cpm);
            assert_eq!(bx.late, by.late);
        }
    }
}

#[test]
fn parallelism_does_not_change_results() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let serial = run_campaign(
        &eco,
        &CampaignConfig {
            parallelism: 1,
            ..CampaignConfig::default()
        },
    );
    let parallel = run_campaign(
        &eco,
        &CampaignConfig {
            parallelism: 8,
            ..CampaignConfig::default()
        },
    );
    assert_eq!(serial.visits.len(), parallel.visits.len());
    for (a, b) in serial.visits.iter().zip(parallel.visits.iter()) {
        // Interner merge renumbers symbols in (day, site) order, so the
        // raw symbol ids — not just the resolved strings — must agree.
        assert_eq!(a.domain, b.domain);
        assert_eq!(serial.str(a.domain), parallel.str(b.domain));
        assert_eq!(a.hb_latency_ms, b.hb_latency_ms);
        assert_eq!(a.slots_auctioned, b.slots_auctioned);
    }
    // The campaign-wide interners are identical, entry for entry.
    assert_eq!(serial.strings.len(), parallel.strings.len());
    for ((sa, ta), (sb, tb)) in serial.strings.iter().zip(parallel.strings.iter()) {
        assert_eq!(sa, sb);
        assert_eq!(ta, tb);
    }
}

#[test]
fn figure_outputs_identical_across_parallelism() {
    // End-to-end determinism of the interner merge: every rendered figure
    // must be byte-identical between a serial and an 8-way campaign.
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let render = |parallelism: usize| {
        let ds = run_campaign(
            &eco,
            &CampaignConfig {
                parallelism,
                ..CampaignConfig::default()
            },
        );
        hb_repro::analysis::dataset_reports(&ds)
            .into_iter()
            .map(|r| r.render())
            .collect::<Vec<String>>()
    };
    assert_eq!(render(1), render(8));
}

#[test]
fn memo_clear_mid_campaign_does_not_change_figures() {
    // The shared derivation memo is pure in (seed, rank): evicting it —
    // here, aggressively clearing it from the progress callback while 4
    // workers crawl — costs re-derivations but can never change what a
    // visit observes. Every rendered figure must stay byte-identical to
    // the undisturbed campaign's.
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let render = |cfg: &CampaignConfig| {
        let ds = run_campaign(&eco, cfg);
        hb_repro::analysis::dataset_reports(&ds)
            .into_iter()
            .map(|r| r.render())
            .collect::<Vec<String>>()
    };
    let baseline = render(&CampaignConfig::default());
    let gen = eco.factory().gen().clone();
    let clearing = CampaignConfig {
        parallelism: 4,
        progress_every: 50,
        progress: Some(Box::new(move |_| gen.clear_memos())),
        ..CampaignConfig::default()
    };
    assert_eq!(baseline, render(&clearing));
}

#[test]
fn reports_are_deterministic() {
    let build = || {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let ds = run_campaign(&eco, &CampaignConfig::default());
        hb_repro::analysis::dataset_reports(&ds)
            .into_iter()
            .map(|r| r.render())
            .collect::<Vec<String>>()
    };
    assert_eq!(build(), build());
}

#[test]
fn figure_outputs_identical_across_shard_counts() {
    // Sharding restructures scheduling, interning and chunk boundaries —
    // none of it may leak into results: every rendered figure must be
    // byte-identical between an unsharded and a 4-shard campaign.
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let render = |shards: u32, chunk_visits: usize| {
        let ds = run_campaign(
            &eco,
            &CampaignConfig {
                shards,
                chunk_visits,
                ..CampaignConfig::default()
            },
        );
        hb_repro::analysis::dataset_reports(&ds)
            .into_iter()
            .map(|r| r.render())
            .collect::<Vec<String>>()
    };
    assert_eq!(render(1, 256), render(4, 23));
}

#[test]
fn streamed_index_matches_dataset_index() {
    // The incremental builder consuming chunks as the campaign streams
    // them must yield byte-identical figures to indexing the merged
    // dataset — without ever holding the row dataset.
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let cfg = CampaignConfig {
        shards: 3,
        ..CampaignConfig::default()
    };
    let mut builder = hb_repro::analysis::DatasetIndexBuilder::new(
        eco.config.n_sites,
        eco.config.crawl_days,
    );
    hb_repro::crawler::run_campaign_streamed(eco.factory(), &cfg, &mut |chunk| {
        builder.push_chunk(&chunk);
        drop(chunk); // rows are gone; only columns remain
    });
    let streamed = builder.finish();
    let ds = run_campaign(
        &eco,
        &CampaignConfig {
            shards: 3,
            ..CampaignConfig::default()
        },
    );
    let built = hb_repro::analysis::DatasetIndex::build(&ds);
    let a: Vec<String> = hb_repro::analysis::indexed_reports(&streamed)
        .into_iter()
        .map(|r| r.render())
        .collect();
    let b: Vec<String> = hb_repro::analysis::indexed_reports(&built)
        .into_iter()
        .map(|r| r.render())
        .collect();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_give_different_worlds() {
    let a = Ecosystem::generate(EcosystemConfig::tiny_scale().with_seed(100));
    let b = Ecosystem::generate(EcosystemConfig::tiny_scale().with_seed(200));
    let hb_a: Vec<u32> = a.hb_sites().map(|s| s.rank).collect();
    let hb_b: Vec<u32> = b.hb_sites().map(|s| s.rank).collect();
    assert_ne!(hb_a, hb_b, "different seeds must differ");
}

#[test]
fn adoption_and_overlap_studies_are_deterministic() {
    assert_eq!(adoption_study(9, 400), adoption_study(9, 400));
    assert_eq!(overlap_study(9, 400), overlap_study(9, 400));
}
