//! Failure-injection tests: the pipeline must stay sound when the network
//! misbehaves — partner outages, heavy packet loss, dead pages.

use hb_repro::adtech::{HbFacet, Net};
use hb_repro::core::Interner;
use hb_repro::prelude::*;
use hb_repro::simnet::FaultInjector;
use std::sync::Arc;

/// Rebuild a net handle with a custom fault injector over the same world.
fn net_with_faults(eco: &Ecosystem, faults: FaultInjector) -> Net {
    Net::new(eco.router.clone(), eco.latency.clone(), Arc::new(faults))
}

#[test]
fn partner_outage_loses_bids_but_keeps_detection() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let site = eco
        .hb_sites()
        .find(|s| s.facet == Some(HbFacet::ClientSide) && s.client_partner_ids.len() >= 2)
        .expect("client-side site with several partners");
    // Take the first partner's host down.
    let down_host = eco.specs[site.client_partner_ids[0]].host();
    let mut faults = FaultInjector::none();
    faults.add_outage(down_host.clone());
    let mut strings = Interner::new();

    let visit = crawl_site(
        net_with_faults(&eco, faults),
        eco.runtime_for(site),
        eco.partner_list(),
        eco.visit_rng(site.rank, 0),
        0,
        &SessionConfig::default(),
        &mut strings,
    );
    assert!(visit.record.hb_detected, "outage must not break detection");
    assert_eq!(
        visit.record.facet.map(|f| f.label()),
        Some("client-side"),
        "facet still classified"
    );
    // The downed partner produced no latency observation.
    let down_name = &eco.specs[site.client_partner_ids[0]].name;
    assert!(
        !visit
            .record
            .partner_latencies
            .iter()
            .any(|pl| strings.resolve(pl.partner_name) == *down_name),
        "no latency sample from a dead partner"
    );
}

#[test]
fn dead_page_yields_clean_empty_record() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let site = eco.hb_sites().next().unwrap();
    let mut faults = FaultInjector::none();
    faults.add_outage(site.domain.clone());
    let mut strings = Interner::new();
    let visit = crawl_site(
        net_with_faults(&eco, faults),
        eco.runtime_for(site),
        eco.partner_list(),
        eco.visit_rng(site.rank, 0),
        0,
        &SessionConfig::default(),
        &mut strings,
    );
    assert!(!visit.record.hb_detected, "nothing loads, nothing detected");
    assert!(!visit.page_completed);
    assert!(visit.record.bids.is_empty());
    assert_eq!(visit.record.hb_latency_ms, None);
}

#[test]
fn heavy_packet_loss_degrades_gracefully() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let faults = FaultInjector::none().with_drop_chance(0.30);
    let mut strings = Interner::new();
    let mut detected = 0;
    let mut visited = 0;
    for site in eco.hb_sites().take(15) {
        let visit = crawl_site(
            net_with_faults(&eco, faults.clone()),
            eco.runtime_for(site),
            eco.partner_list(),
            eco.visit_rng(site.rank, 0),
            0,
            &SessionConfig::default(),
            &mut strings,
        );
        visited += 1;
        if visit.record.hb_detected {
            detected += 1;
            // Whatever is reported must be internally consistent.
            assert!(visit.record.late_fraction().unwrap_or(0.0) <= 1.0);
            if let Some(lat) = visit.record.hb_latency_ms {
                assert!(lat >= 0.0);
            }
        }
    }
    assert!(visited == 15);
    // 30% loss still lets most pages produce HB evidence.
    assert!(detected >= 8, "detected {detected}/15 under 30% loss");
}

#[test]
fn adserver_outage_suppresses_latency_but_not_detection() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let site = eco
        .hb_sites()
        .find(|s| s.facet == Some(HbFacet::ClientSide))
        .unwrap();
    let mut faults = FaultInjector::none();
    faults.add_outage(site.own_ad_server_host());
    let mut strings = Interner::new();
    let visit = crawl_site(
        net_with_faults(&eco, faults),
        eco.runtime_for(site),
        eco.partner_list(),
        eco.visit_rng(site.rank, 0),
        0,
        &SessionConfig::default(),
        &mut strings,
    );
    // Bid traffic still proves HB…
    assert!(visit.record.hb_detected);
    // …but the total-latency endpoint (ad-server response) never arrives.
    assert_eq!(
        visit.record.hb_latency_ms, None,
        "latency needs the ad-server response"
    );
}

#[test]
fn ambient_fault_profile_keeps_campaign_sound() {
    // The default ecosystem already has ambient drops; crank them up and
    // ensure the campaign-level invariants still hold.
    let mut cfg = EcosystemConfig::tiny_scale();
    cfg.drop_chance = 0.05;
    cfg.slow_chance = 0.15;
    let eco = Ecosystem::generate(cfg);
    let ds = run_campaign(&eco, &CampaignConfig::default());
    for v in ds.hb_visits() {
        assert!(v.slots_auctioned <= 60);
        for b in &v.bids {
            assert!(b.cpm >= 0.0);
            assert!(!ds.str(b.bidder_code).is_empty());
        }
    }
    // Precision is preserved even under faults.
    let truth: std::collections::BTreeSet<&str> =
        eco.hb_sites().map(|s| s.domain.as_str()).collect();
    for v in ds.visits.iter().filter(|v| v.hb_detected) {
        assert!(truth.contains(ds.str(v.domain)));
    }
}
