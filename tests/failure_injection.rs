//! Failure-injection tests: the pipeline must stay sound when the network
//! misbehaves — partner outages, heavy packet loss, dead pages — and
//! campaign-level degraded-network scenarios must stay deterministic
//! across parallelism and sharding.

use hb_repro::adtech::{HbFacet, Net};
use hb_repro::core::Interner;
use hb_repro::prelude::*;
use hb_repro::simnet::{Dist, FaultInjector, HostFaultProfile};
use std::fmt::Write as _;
use std::sync::Arc;

/// Rebuild a net handle with a custom fault injector over the same world.
fn net_with_faults(eco: &Ecosystem, faults: FaultInjector) -> Net {
    Net::new(eco.router.clone(), eco.latency.clone(), Arc::new(faults))
}

#[test]
fn partner_outage_loses_bids_but_keeps_detection() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let site = eco
        .hb_sites()
        .find(|s| s.facet == Some(HbFacet::ClientSide) && s.client_partner_ids.len() >= 2)
        .expect("client-side site with several partners");
    // Take the first partner's host down.
    let down_host = eco.specs[site.client_partner_ids[0]].host();
    let mut faults = FaultInjector::none();
    faults.add_outage(down_host.clone());
    let mut strings = Interner::new();

    let visit = crawl_site(
        net_with_faults(&eco, faults),
        eco.runtime_for(site),
        eco.partner_list(),
        eco.visit_rng(site.rank, 0),
        0,
        &SessionConfig::default(),
        &mut strings,
    );
    assert!(visit.record.hb_detected, "outage must not break detection");
    assert_eq!(
        visit.record.facet.map(|f| f.label()),
        Some("client-side"),
        "facet still classified"
    );
    // The downed partner produced no latency observation.
    let down_name = &eco.specs[site.client_partner_ids[0]].name;
    assert!(
        !visit
            .record
            .partner_latencies
            .iter()
            .any(|pl| strings.resolve(pl.partner_name) == *down_name),
        "no latency sample from a dead partner"
    );
}

#[test]
fn dead_page_yields_clean_empty_record() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let site = eco.hb_sites().next().unwrap();
    let mut faults = FaultInjector::none();
    faults.add_outage(site.domain.clone());
    let mut strings = Interner::new();
    let visit = crawl_site(
        net_with_faults(&eco, faults),
        eco.runtime_for(site),
        eco.partner_list(),
        eco.visit_rng(site.rank, 0),
        0,
        &SessionConfig::default(),
        &mut strings,
    );
    assert!(!visit.record.hb_detected, "nothing loads, nothing detected");
    assert!(!visit.page_completed);
    assert!(visit.record.bids.is_empty());
    assert_eq!(visit.record.hb_latency_ms, None);
}

#[test]
fn heavy_packet_loss_degrades_gracefully() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let faults = FaultInjector::none().with_drop_chance(0.30);
    let mut strings = Interner::new();
    let mut detected = 0;
    let mut visited = 0;
    for site in eco.hb_sites().take(15) {
        let visit = crawl_site(
            net_with_faults(&eco, faults.clone()),
            eco.runtime_for(site),
            eco.partner_list(),
            eco.visit_rng(site.rank, 0),
            0,
            &SessionConfig::default(),
            &mut strings,
        );
        visited += 1;
        if visit.record.hb_detected {
            detected += 1;
            // Whatever is reported must be internally consistent.
            assert!(visit.record.late_fraction().unwrap_or(0.0) <= 1.0);
            if let Some(lat) = visit.record.hb_latency_ms {
                assert!(lat >= 0.0);
            }
        }
    }
    assert!(visited == 15);
    // 30% loss still lets most pages produce HB evidence.
    assert!(detected >= 8, "detected {detected}/15 under 30% loss");
}

#[test]
fn adserver_outage_suppresses_latency_but_not_detection() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let site = eco
        .hb_sites()
        .find(|s| s.facet == Some(HbFacet::ClientSide))
        .unwrap();
    let mut faults = FaultInjector::none();
    faults.add_outage(site.own_ad_server_host());
    let mut strings = Interner::new();
    let visit = crawl_site(
        net_with_faults(&eco, faults),
        eco.runtime_for(site),
        eco.partner_list(),
        eco.visit_rng(site.rank, 0),
        0,
        &SessionConfig::default(),
        &mut strings,
    );
    // Bid traffic still proves HB…
    assert!(visit.record.hb_detected);
    // …but the total-latency endpoint (ad-server response) never arrives.
    assert_eq!(
        visit.record.hb_latency_ms, None,
        "latency needs the ad-server response"
    );
}

#[test]
fn ambient_fault_profile_keeps_campaign_sound() {
    // The default ecosystem already has ambient drops; crank them up and
    // ensure the campaign-level invariants still hold.
    let mut cfg = EcosystemConfig::tiny_scale();
    cfg.drop_chance = 0.05;
    cfg.slow_chance = 0.15;
    let eco = Ecosystem::generate(cfg);
    let ds = run_campaign(&eco, &CampaignConfig::default());
    for v in ds.hb_visits() {
        assert!(v.slots_auctioned <= 60);
        for b in &v.bids {
            assert!(b.cpm >= 0.0);
            assert!(!ds.str(b.bidder_code).is_empty());
        }
    }
    // Precision is preserved even under faults.
    let truth: std::collections::BTreeSet<&str> =
        eco.hb_sites().map(|s| s.domain.as_str()).collect();
    for v in ds.visits.iter().filter(|v| v.hb_detected) {
        assert!(truth.contains(ds.str(v.domain)));
    }
}

// ---------------------------------------------------------------------------
// Degraded-network campaign scenarios
// ---------------------------------------------------------------------------

/// A stressed scenario touching every axis: one partner tier with a lossy
/// ambient profile, one partner hard-down on day 1, a congested link to a
/// third, and the ad path running its degraded robustness posture.
fn stressed_scenario(eco_cfg: &EcosystemConfig) -> ScenarioConfig {
    let specs = hb_repro::ecosystem::catalog::catalog();
    ScenarioConfig::healthy()
        .with_host_profile(
            specs[0].host(),
            HostFaultProfile {
                drop_chance: 0.20,
                slow_chance: 0.30,
                slow_penalty_ms: Dist::Const(900.0),
            },
        )
        .with_outage(specs[1].host(), 1, eco_cfg.crawl_days)
        .with_degraded_link(
            specs[2].host(),
            hb_repro::simnet::LatencyModel::constant(1_200.0),
        )
        .with_robustness(RobustnessPolicy::degraded_defaults())
}

/// Figure bytes of a campaign: every paper report plus the fault-slice
/// family, rendered and CSV-dumped.
fn figure_bytes(ds: &CrawlDataset) -> String {
    let ix = DatasetIndex::build(ds);
    let mut out = String::new();
    for r in dataset_reports(ds).iter().chain(fault_reports(&ix).iter()) {
        let _ = write!(out, "==== {} ====\n{}\n{}\n", r.id, r.render(), r.to_csv());
    }
    out
}

#[test]
fn degraded_link_shows_up_in_latency_columns() {
    // Wire a congested link to one partner through the scenario axis and
    // check the visit's latency columns reflect it: every observation of
    // that partner sits above the override, while the healthy build of
    // the same visit stays below it.
    let base = EcosystemConfig::tiny_scale();
    let eco_healthy = Ecosystem::generate(base.clone());
    let site = eco_healthy
        .hb_sites()
        .find(|s| s.facet == Some(HbFacet::ClientSide) && s.client_partner_ids.len() >= 2)
        .expect("client-side site with several partners")
        .clone();
    let slow_pid = site.client_partner_ids[0];
    let slow_host = eco_healthy.specs[slow_pid].host();
    let slow_name = eco_healthy.specs[slow_pid].name;

    let degraded_ms = 2_000.0;
    let eco_slow = Ecosystem::generate(base.with_scenario(
        ScenarioConfig::healthy().with_degraded_link(
            slow_host,
            hb_repro::simnet::LatencyModel::constant(degraded_ms),
        ),
    ));

    let samples_of = |eco: &Ecosystem| -> Vec<f64> {
        let mut strings = Interner::new();
        let visit = crawl_site(
            eco.net(),
            eco.runtime_for(&site),
            eco.partner_list(),
            eco.visit_rng(site.rank, 0),
            0,
            &SessionConfig::default(),
            &mut strings,
        );
        visit
            .record
            .partner_latencies
            .iter()
            .filter(|pl| strings.resolve(pl.partner_name) == slow_name)
            .map(|pl| pl.latency_ms)
            .collect()
    };

    let healthy = samples_of(&eco_healthy);
    let slow = samples_of(&eco_slow);
    assert!(!slow.is_empty(), "degraded partner still answers");
    for s in &slow {
        assert!(*s >= degraded_ms, "degraded sample {s} below link override");
    }
    for s in &healthy {
        assert!(*s < degraded_ms, "healthy sample {s} at degraded level");
    }
}

#[test]
fn scenario_campaign_bytes_identical_across_parallelism_and_shards() {
    // The acceptance bar for the fault axes: with faults *enabled*, figure
    // bytes are a pure function of (seed, scenario) — parallelism 1 vs 8
    // and shards 1 vs 4 must agree byte for byte.
    let base = EcosystemConfig::tiny_scale().with_days(2);
    let cfg = base.clone().with_scenario(stressed_scenario(&base));
    let eco = Ecosystem::generate(cfg);

    let p1 = figure_bytes(&run_campaign(
        &eco,
        &CampaignConfig {
            parallelism: 1,
            ..CampaignConfig::default()
        },
    ));
    let p8 = figure_bytes(&run_campaign(
        &eco,
        &CampaignConfig {
            parallelism: 8,
            ..CampaignConfig::default()
        },
    ));
    assert_eq!(p1, p8, "figure bytes differ between parallelism 1 and 8");

    let s4 = figure_bytes(&run_campaign(
        &eco,
        &CampaignConfig {
            shards: 4,
            chunk_visits: 17, // odd block size to stress the merge
            ..CampaignConfig::default()
        },
    ));
    assert_eq!(p1, s4, "figure bytes differ between 1 and 4 shards");
}

#[test]
fn outage_window_confines_timeouts_to_scheduled_days() {
    // A partner is hard-down on day 1 only (of 2 crawl days). The fault
    // timeline must light up on the scheduled day and settle after it.
    let base = EcosystemConfig::tiny_scale().with_days(2);
    // Down the client partner most popular among this universe's HB sites,
    // so the outage actually intersects the daily revisit set.
    let probe = Ecosystem::generate(base.clone());
    let mut uses = std::collections::HashMap::new();
    for s in probe.hb_sites() {
        for &pid in &s.client_partner_ids {
            *uses.entry(pid).or_insert(0usize) += 1;
        }
    }
    let (&popular, _) = uses.iter().max_by_key(|(_, n)| **n).expect("hb partners");
    let cfg = base.clone().with_scenario(
        ScenarioConfig::healthy()
            .with_outage(probe.specs[popular].host(), 1, 1)
            .with_robustness(RobustnessPolicy::degraded_defaults()),
    );
    let eco = Ecosystem::generate(cfg);
    let ds = run_campaign(&eco, &CampaignConfig::default());
    let ix = DatasetIndex::build(&ds);

    let timeouts_on = |day: u32| -> u32 {
        (0..ix.n_hb_visits())
            .filter(|&i| ix.v_day[i] == day)
            .map(|i| ix.v_timed_out[i])
            .sum()
    };
    let day1 = timeouts_on(1);
    let day2 = timeouts_on(2);
    assert!(day1 > 0, "outage day produced no timeouts");
    assert!(
        day1 > day2,
        "outage-day timeouts ({day1}) should exceed post-outage day ({day2})"
    );
    // The Z2 timeline agrees.
    let z2 = hb_repro::analysis::faults::z02_fault_timeline(&ix);
    assert_eq!(z2.metric("peak_timeout_day"), Some(1.0));
}

#[test]
fn total_demand_outage_completes_via_passback() {
    // Hard outage of *every* demand source a site has — all partners and
    // its ad server. With the degraded robustness posture the visit must
    // still complete (no hang, no panic) by serving house ads.
    let base = EcosystemConfig::tiny_scale();
    let probe = Ecosystem::generate(base.clone());
    let site = probe
        .hb_sites()
        .find(|s| s.facet == Some(HbFacet::ClientSide))
        .expect("client-side site")
        .clone();

    let mut scenario =
        ScenarioConfig::healthy().with_robustness(RobustnessPolicy::degraded_defaults());
    for &pid in site
        .client_partner_ids
        .iter()
        .chain(site.waterfall_tier_ids.iter())
    {
        scenario = scenario.with_outage(probe.specs[pid].host(), 0, base.crawl_days);
    }
    scenario = scenario.with_outage(site.own_ad_server_host(), 0, base.crawl_days);

    let eco = Ecosystem::generate(base.with_scenario(scenario));
    let mut strings = Interner::new();
    let visit = crawl_site(
        eco.factory().net_for_day(0),
        eco.runtime_for(&site),
        eco.partner_list(),
        eco.visit_rng(site.rank, 0),
        0,
        &SessionConfig::default(),
        &mut strings,
    );
    assert!(visit.page_completed, "visit must complete under total outage");
    assert!(visit.truth.passback_served, "house ads fill the dead slots");
    assert!(
        !visit.truth.winners.is_empty(),
        "passback produced renderable winners"
    );
    assert_eq!(visit.truth.client_bids, 0, "no demand source could bid");
    assert!(visit.truth.timed_out_partners > 0);
}
