//! Allocation accounting for the visit hot paths.
//!
//! Three layers of budget are enforced with a counting allocator:
//!
//! * the detector's per-request classify path performs **zero** heap
//!   allocations for form/empty bodies (PR 1 invariant);
//! * a full steady-state visit through the pooled per-worker
//!   [`VisitScratch`] stays under a fixed per-flow allocation budget
//!   (PR 3 invariant, budgets halved in PR 4; the direct-to-column
//!   `crawl_site_into` path of PR 5 gets its own, tighter budgets);
//! * a **cold** (memo-miss) visit — the adoption-sweep hot path, where
//!   every rank is seen for the first time — stays under a per-flow
//!   budget too (PR 5 invariant: scratch-based site derivation makes a
//!   cold visit approach pooled-visit cost).

use hb_repro::adtech::{HbFacet, RobustnessPolicy};
use hb_repro::core::{classify_request, Interner, PartnerList, RequestKind, VisitColumns};
use hb_repro::crawler::{
    crawl_site_into, crawl_site_pooled, SessionConfig, TruthRecord, VisitScratch,
};
use hb_repro::ecosystem::{Ecosystem, EcosystemConfig, ScenarioConfig};
use hb_repro::simnet::{Dist, HostFaultProfile};
use hb_repro::http::{Request, RequestId, Url};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator wrapper counting this thread's allocations.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations performed by `f` on this thread.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(|c| c.get());
    let result = f();
    let after = ALLOCS.with(|c| c.get());
    (after - before, result)
}

#[test]
fn classify_request_no_match_fast_path_is_allocation_free() {
    let list = PartnerList::demo();
    let unrelated = Request::get(
        RequestId(1),
        Url::parse("https://images.news.example/logo.png?v=12&cache=1").unwrap(),
    );
    // Warm up once (lazy statics, anything incidental).
    let _ = classify_request(&list, &unrelated);
    let (allocs, c) = allocations_during(|| classify_request(&list, &unrelated));
    assert_eq!(c.kind, RequestKind::Unrelated);
    assert_eq!(allocs, 0, "no-match classify must not allocate");
}

#[test]
fn classify_bid_request_is_allocation_free() {
    let list = PartnerList::demo();
    let bid = Request::get(
        RequestId(2),
        Url::parse(
            "https://appnexus-adnet.example/hb/bid?hb_auction=a1&hb_bidder=appnexus&hb_source=client&slots=4",
        )
        .unwrap(),
    );
    let _ = classify_request(&list, &bid);
    let (allocs, c) = allocations_during(|| classify_request(&list, &bid));
    assert_eq!(c.kind, RequestKind::BidRequest);
    assert_eq!(c.partner_name(), Some("AppNexus"));
    assert_eq!(allocs, 0, "bid-request classify must not allocate");
}

/// Per-flow steady-state allocation budgets for one pooled visit at tiny
/// scale. Measured steady states on the reference container after the
/// slab scheduler + pooled-simulation + JSON-spine-pool work (PR 4) are
/// ~28 (client), ~21 (server), ~35 (hybrid) and ~17 (waterfall) — what
/// remains is almost entirely data escaping into the returned
/// `SiteVisit`. The budgets leave generous headroom for
/// allocator/platform drift while still failing loudly if per-visit
/// churn regresses (the cold first visit alone costs ~5-7x the steady
/// state).
const VISIT_BUDGETS: [(&str, Option<HbFacet>, u64); 4] = [
    ("client_side", Some(HbFacet::ClientSide), 120),
    ("server_side", Some(HbFacet::ServerSide), 55),
    ("hybrid", Some(HbFacet::Hybrid), 105),
    ("waterfall", None, 40),
];

#[test]
fn steady_state_visit_stays_within_allocation_budget() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let cfg = SessionConfig::default();
    for (label, facet, budget) in VISIT_BUDGETS {
        let site = eco
            .sites()
            .iter()
            .find(|s| s.facet == facet)
            .unwrap_or_else(|| panic!("{label} site in tiny universe"));
        let mut scratch = VisitScratch::new(eco.partner_list());
        let mut strings = Interner::new();
        let visit = |strings: &mut Interner, scratch: &mut VisitScratch| {
            crawl_site_pooled(
                eco.net(),
                eco.runtime_shared(site.rank),
                eco.visit_rng(site.rank, 0),
                0,
                &cfg,
                strings,
                scratch,
            )
        };
        // Warm-up: first visits pay one-time costs (browser, detector maps,
        // buffer pools, interner entries, factory memos).
        let (cold, _) = allocations_during(|| visit(&mut strings, &mut scratch));
        for _ in 0..2 {
            let _ = visit(&mut strings, &mut scratch);
        }
        // Steady state: the Nth visit of the same flow must fit the budget.
        let (steady, v) = allocations_during(|| visit(&mut strings, &mut scratch));
        eprintln!("alloc[{label}]: cold {cold}, steady {steady} (budget {budget})");
        assert!(v.page_completed, "{label}: visit must complete");
        assert!(
            steady <= budget,
            "{label}: steady-state visit allocated {steady} (> budget {budget})"
        );
        assert!(
            steady < cold,
            "{label}: pooling must beat the cold visit ({steady} vs {cold})"
        );
    }
}

/// Per-flow steady-state budgets for the campaign's actual hot path —
/// [`crawl_site_into`], which appends straight into the worker's columns
/// and flattens the truth in place. Measured steady states on the
/// reference container after PR 7 (shared concurrent memo; raw-bid
/// fields cloned from the body's own `HStr` handles instead of rebuilt,
/// so strings past the inline cap no longer spill into fresh `Arc<str>`s)
/// are ~21 (client), ~17 (server), ~27 (hybrid) and ~19 (waterfall) —
/// mostly column-tail growth and interner traffic. Budgets carry ~2x
/// headroom for allocator drift.
const COLUMNAR_BUDGETS: [(&str, Option<HbFacet>, u64); 4] = [
    ("client_side", Some(HbFacet::ClientSide), 45),
    ("server_side", Some(HbFacet::ServerSide), 35),
    ("hybrid", Some(HbFacet::Hybrid), 55),
    ("waterfall", None, 40),
];

/// Per-flow **cold-visit** budgets: a warm worker scratch visiting a rank
/// whose derivation memos all miss. Two shapes are enforced:
///
/// * `fresh`: never-before-seen ranks (the adoption-sweep shape — also
///   pays first-time interner entries for the new domain/partners), as
///   the *mean* over several sites of the flow, since per-site partner
///   fan-out varies;
/// * `cleared`: the same already-interned rank after
///   [`Ecosystem::clear_memos`] (pure re-derivation cost).
///
/// Measured after PR 7 (shared sharded memo): fresh means ~63 / 54 / 72
/// / 26 and cleared ~41 / 42 / 47 / 33 — the cleared numbers carry a few
/// extra shard-map insert allocations versus the PR 5 thread-local LRUs
/// (~26 / 26 / 34 / 20), the price of one derivation serving every
/// worker. Budgets carry ~2x headroom.
const COLD_BUDGETS: [(&str, Option<HbFacet>, u64, u64); 4] = [
    // (label, facet, fresh-mean budget, memo-cleared budget)
    ("client_side", Some(HbFacet::ClientSide), 125, 80),
    ("server_side", Some(HbFacet::ServerSide), 110, 80),
    ("hybrid", Some(HbFacet::Hybrid), 145, 95),
    ("waterfall", None, 60, 65),
];

/// One columnar visit through the per-worker scratch.
#[allow(clippy::too_many_arguments)]
fn columnar_visit(
    eco: &Ecosystem,
    rank: u32,
    cfg: &SessionConfig,
    strings: &mut Interner,
    scratch: &mut VisitScratch,
    cols: &mut VisitColumns,
    truths: &mut Vec<TruthRecord>,
) -> bool {
    crawl_site_into(
        eco.net(),
        eco.runtime_shared(rank),
        eco.visit_rng(rank, 0),
        0,
        cfg,
        strings,
        scratch,
        cols,
        truths,
    )
    .page_completed
}

#[test]
fn steady_state_columnar_visit_stays_within_allocation_budget() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let cfg = SessionConfig::default();
    for (label, facet, budget) in COLUMNAR_BUDGETS {
        let site = eco
            .sites()
            .iter()
            .find(|s| s.facet == facet)
            .unwrap_or_else(|| panic!("{label} site in tiny universe"));
        let mut scratch = VisitScratch::new(eco.partner_list());
        let mut strings = Interner::new();
        let mut cols = VisitColumns::new();
        let mut truths = Vec::new();
        for _ in 0..3 {
            let _ = columnar_visit(
                &eco, site.rank, &cfg, &mut strings, &mut scratch, &mut cols, &mut truths,
            );
        }
        let (steady, completed) = allocations_during(|| {
            columnar_visit(
                &eco, site.rank, &cfg, &mut strings, &mut scratch, &mut cols, &mut truths,
            )
        });
        eprintln!("alloc_into[{label}]: steady {steady} (budget {budget})");
        assert!(completed, "{label}: visit must complete");
        assert!(
            steady <= budget,
            "{label}: steady-state columnar visit allocated {steady} (> budget {budget})"
        );
    }
}

#[test]
fn cold_visit_stays_within_allocation_budget() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let cfg = SessionConfig::default();
    for (label, facet, fresh_budget, cleared_budget) in COLD_BUDGETS {
        let ranks: Vec<u32> = eco
            .sites()
            .iter()
            .filter(|s| s.facet == facet)
            .map(|s| s.rank)
            .collect();
        assert!(ranks.len() >= 5, "{label}: tiny universe has enough sites");
        let mut scratch = VisitScratch::new(eco.partner_list());
        let mut strings = Interner::new();
        let mut cols = VisitColumns::new();
        let mut truths = Vec::new();
        // Warm the worker scratch (browser, detector buffers, pools) on
        // the first site — from here on, every allocation difference is
        // the cold derivation itself.
        for _ in 0..3 {
            let _ = columnar_visit(
                &eco, ranks[0], &cfg, &mut strings, &mut scratch, &mut cols, &mut truths,
            );
        }
        // Fresh ranks: every memo (site, account, runtime, page HTML)
        // misses, and the domain/partner strings are new to the interner.
        let fresh: Vec<u64> = ranks[1..ranks.len().min(6)]
            .iter()
            .map(|&rank| {
                allocations_during(|| {
                    columnar_visit(
                        &eco, rank, &cfg, &mut strings, &mut scratch, &mut cols, &mut truths,
                    )
                })
                .0
            })
            .collect();
        let mean = fresh.iter().sum::<u64>() / fresh.len() as u64;
        // Memo-cleared revisit of the warm rank: pure re-derivation.
        eco.clear_memos();
        let (cleared, _) = allocations_during(|| {
            columnar_visit(
                &eco, ranks[0], &cfg, &mut strings, &mut scratch, &mut cols, &mut truths,
            )
        });
        eprintln!(
            "alloc_cold[{label}]: fresh {fresh:?} mean {mean} (budget {fresh_budget}), \
             memo-cleared {cleared} (budget {cleared_budget})"
        );
        assert!(
            mean <= fresh_budget,
            "{label}: cold fresh-rank visits averaged {mean} allocations (> budget {fresh_budget})"
        );
        assert!(
            cleared <= cleared_budget,
            "{label}: memo-cleared visit allocated {cleared} (> budget {cleared_budget})"
        );
    }
}

/// Steady-state budget for a columnar visit that actually exercises the
/// fault path: ambient loss on every partner plus the degraded
/// robustness posture (per-partner deadlines, one retry with backoff,
/// passback). The retry machinery reuses the visit's pooled messages, so
/// the budget is the client-side columnar budget plus a small surcharge
/// for the extra truth counters and retried-request bookkeeping
/// (measured steady ~37 after PR 7; ~2x headroom).
const FAULTY_COLUMNAR_BUDGET: u64 = 75;

#[test]
fn fault_path_columnar_visit_stays_within_allocation_budget() {
    // Lossy ambient profile on every partner: whichever site we land on,
    // its demand sources are degraded and the drop -> retry -> give-up
    // machinery runs inside the visit.
    let mut scenario =
        ScenarioConfig::healthy().with_robustness(RobustnessPolicy::degraded_defaults());
    for spec in hb_repro::ecosystem::catalog::catalog() {
        scenario = scenario.with_host_profile(
            spec.host(),
            HostFaultProfile {
                drop_chance: 0.35,
                slow_chance: 0.25,
                slow_penalty_ms: Dist::Const(700.0),
            },
        );
    }
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale().with_scenario(scenario));
    let cfg = SessionConfig::default();
    // Find a client-side site whose (deterministic) visit actually records
    // fault activity — with 35% drops on every partner the first candidate
    // almost always qualifies, but the budget must only ever be measured
    // on a visit where the fault path ran.
    let site = eco
        .hb_sites()
        .filter(|s| s.facet == Some(HbFacet::ClientSide))
        .find(|s| {
            let mut scratch = VisitScratch::new(eco.partner_list());
            let mut strings = Interner::new();
            let mut cols = VisitColumns::new();
            let mut truths = Vec::new();
            let _ = columnar_visit(
                &eco, s.rank, &cfg, &mut strings, &mut scratch, &mut cols, &mut truths,
            );
            let t = truths.last().expect("visit recorded a truth");
            t.bids_dropped + t.retries + t.timed_out_partners > 0
        })
        .expect("a client-side visit touched by ambient faults")
        .clone();

    let mut scratch = VisitScratch::new(eco.partner_list());
    let mut strings = Interner::new();
    let mut cols = VisitColumns::new();
    let mut truths = Vec::new();
    for _ in 0..3 {
        let _ = columnar_visit(
            &eco, site.rank, &cfg, &mut strings, &mut scratch, &mut cols, &mut truths,
        );
    }
    let (steady, completed) = allocations_during(|| {
        columnar_visit(
            &eco, site.rank, &cfg, &mut strings, &mut scratch, &mut cols, &mut truths,
        )
    });
    let t = truths.last().expect("visit recorded a truth");
    eprintln!(
        "alloc_fault[client_side]: steady {steady} (budget {FAULTY_COLUMNAR_BUDGET}), \
         drops {} retries {} timeouts {}",
        t.bids_dropped, t.retries, t.timed_out_partners
    );
    assert!(completed, "faulty visit must still complete");
    assert!(
        t.bids_dropped + t.retries + t.timed_out_partners > 0,
        "fault path must actually run during the measured visit"
    );
    assert!(
        steady <= FAULTY_COLUMNAR_BUDGET,
        "steady-state faulty visit allocated {steady} (> budget {FAULTY_COLUMNAR_BUDGET})"
    );
}

#[test]
fn match_host_is_allocation_free_for_lowercase_hosts() {
    let list = PartnerList::demo();
    let _ = list.match_host("fast.cdn.appnexus-adnet.example");
    let (allocs, hit) =
        allocations_during(|| list.match_host("fast.cdn.appnexus-adnet.example").is_some());
    assert!(hit);
    assert_eq!(allocs, 0, "suffix walk must reuse host slices");
    let (allocs, miss) = allocations_during(|| list.match_host("unknown.example").is_some());
    assert!(!miss);
    assert_eq!(allocs, 0);
}
