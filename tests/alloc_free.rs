//! Allocation accounting for the detector hot path: classifying a request
//! with a form/empty body must not touch the heap — neither on the
//! no-match fast path (the overwhelming majority of page traffic) nor for
//! a URL-parameterized bid request.

use hb_repro::core::{classify_request, PartnerList, RequestKind};
use hb_repro::http::{Request, RequestId, Url};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator wrapper counting this thread's allocations.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations performed by `f` on this thread.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(|c| c.get());
    let result = f();
    let after = ALLOCS.with(|c| c.get());
    (after - before, result)
}

#[test]
fn classify_request_no_match_fast_path_is_allocation_free() {
    let list = PartnerList::demo();
    let unrelated = Request::get(
        RequestId(1),
        Url::parse("https://images.news.example/logo.png?v=12&cache=1").unwrap(),
    );
    // Warm up once (lazy statics, anything incidental).
    let _ = classify_request(&list, &unrelated);
    let (allocs, c) = allocations_during(|| classify_request(&list, &unrelated));
    assert_eq!(c.kind, RequestKind::Unrelated);
    assert_eq!(allocs, 0, "no-match classify must not allocate");
}

#[test]
fn classify_bid_request_is_allocation_free() {
    let list = PartnerList::demo();
    let bid = Request::get(
        RequestId(2),
        Url::parse(
            "https://appnexus-adnet.example/hb/bid?hb_auction=a1&hb_bidder=appnexus&hb_source=client&slots=4",
        )
        .unwrap(),
    );
    let _ = classify_request(&list, &bid);
    let (allocs, c) = allocations_during(|| classify_request(&list, &bid));
    assert_eq!(c.kind, RequestKind::BidRequest);
    assert_eq!(c.partner_name(), Some("AppNexus"));
    assert_eq!(allocs, 0, "bid-request classify must not allocate");
}

#[test]
fn match_host_is_allocation_free_for_lowercase_hosts() {
    let list = PartnerList::demo();
    let _ = list.match_host("fast.cdn.appnexus-adnet.example");
    let (allocs, hit) =
        allocations_during(|| list.match_host("fast.cdn.appnexus-adnet.example").is_some());
    assert!(hit);
    assert_eq!(allocs, 0, "suffix walk must reuse host slices");
    let (allocs, miss) = allocations_during(|| list.match_host("unknown.example").is_some());
    assert!(!miss);
    assert_eq!(allocs, 0);
}
