//! Allocation accounting for the visit hot paths.
//!
//! Two layers of budget are enforced with a counting allocator:
//!
//! * the detector's per-request classify path performs **zero** heap
//!   allocations for form/empty bodies (PR 1 invariant);
//! * a full steady-state visit through the pooled per-worker
//!   [`VisitScratch`] stays under a fixed per-flow allocation budget
//!   (PR 3 invariant, budgets halved in PR 4) — with the slab scheduler,
//!   the type-keyed callback-box pool, the pooled per-worker simulation
//!   and the JSON spine pool, the allocator traffic left after warm-up is
//!   almost entirely data escaping into the returned `SiteVisit`.

use hb_repro::adtech::HbFacet;
use hb_repro::core::{classify_request, Interner, PartnerList, RequestKind};
use hb_repro::crawler::{crawl_site_pooled, SessionConfig, VisitScratch};
use hb_repro::ecosystem::{Ecosystem, EcosystemConfig};
use hb_repro::http::{Request, RequestId, Url};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator wrapper counting this thread's allocations.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations performed by `f` on this thread.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(|c| c.get());
    let result = f();
    let after = ALLOCS.with(|c| c.get());
    (after - before, result)
}

#[test]
fn classify_request_no_match_fast_path_is_allocation_free() {
    let list = PartnerList::demo();
    let unrelated = Request::get(
        RequestId(1),
        Url::parse("https://images.news.example/logo.png?v=12&cache=1").unwrap(),
    );
    // Warm up once (lazy statics, anything incidental).
    let _ = classify_request(&list, &unrelated);
    let (allocs, c) = allocations_during(|| classify_request(&list, &unrelated));
    assert_eq!(c.kind, RequestKind::Unrelated);
    assert_eq!(allocs, 0, "no-match classify must not allocate");
}

#[test]
fn classify_bid_request_is_allocation_free() {
    let list = PartnerList::demo();
    let bid = Request::get(
        RequestId(2),
        Url::parse(
            "https://appnexus-adnet.example/hb/bid?hb_auction=a1&hb_bidder=appnexus&hb_source=client&slots=4",
        )
        .unwrap(),
    );
    let _ = classify_request(&list, &bid);
    let (allocs, c) = allocations_during(|| classify_request(&list, &bid));
    assert_eq!(c.kind, RequestKind::BidRequest);
    assert_eq!(c.partner_name(), Some("AppNexus"));
    assert_eq!(allocs, 0, "bid-request classify must not allocate");
}

/// Per-flow steady-state allocation budgets for one pooled visit at tiny
/// scale. Measured steady states on the reference container after the
/// slab scheduler + pooled-simulation + JSON-spine-pool work (PR 4) are
/// ~28 (client), ~21 (server), ~35 (hybrid) and ~17 (waterfall) — what
/// remains is almost entirely data escaping into the returned
/// `SiteVisit`. The budgets leave generous headroom for
/// allocator/platform drift while still failing loudly if per-visit
/// churn regresses (the cold first visit alone costs ~5-7x the steady
/// state).
const VISIT_BUDGETS: [(&str, Option<HbFacet>, u64); 4] = [
    ("client_side", Some(HbFacet::ClientSide), 120),
    ("server_side", Some(HbFacet::ServerSide), 55),
    ("hybrid", Some(HbFacet::Hybrid), 105),
    ("waterfall", None, 40),
];

#[test]
fn steady_state_visit_stays_within_allocation_budget() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let cfg = SessionConfig::default();
    for (label, facet, budget) in VISIT_BUDGETS {
        let site = eco
            .sites()
            .iter()
            .find(|s| s.facet == facet)
            .unwrap_or_else(|| panic!("{label} site in tiny universe"));
        let mut scratch = VisitScratch::new(eco.partner_list());
        let mut strings = Interner::new();
        let mut visit = |strings: &mut Interner, scratch: &mut VisitScratch| {
            crawl_site_pooled(
                eco.net(),
                eco.runtime_shared(site.rank),
                eco.visit_rng(site.rank, 0),
                0,
                &cfg,
                strings,
                scratch,
            )
        };
        // Warm-up: first visits pay one-time costs (browser, detector maps,
        // buffer pools, interner entries, factory memos).
        let (cold, _) = allocations_during(|| visit(&mut strings, &mut scratch));
        for _ in 0..2 {
            let _ = visit(&mut strings, &mut scratch);
        }
        // Steady state: the Nth visit of the same flow must fit the budget.
        let (steady, v) = allocations_during(|| visit(&mut strings, &mut scratch));
        eprintln!("alloc[{label}]: cold {cold}, steady {steady} (budget {budget})");
        assert!(v.page_completed, "{label}: visit must complete");
        assert!(
            steady <= budget,
            "{label}: steady-state visit allocated {steady} (> budget {budget})"
        );
        assert!(
            steady < cold,
            "{label}: pooling must beat the cold visit ({steady} vs {cold})"
        );
    }
}

#[test]
fn match_host_is_allocation_free_for_lowercase_hosts() {
    let list = PartnerList::demo();
    let _ = list.match_host("fast.cdn.appnexus-adnet.example");
    let (allocs, hit) =
        allocations_during(|| list.match_host("fast.cdn.appnexus-adnet.example").is_some());
    assert!(hit);
    assert_eq!(allocs, 0, "suffix walk must reuse host slices");
    let (allocs, miss) = allocations_during(|| list.match_host("unknown.example").is_some());
    assert!(!miss);
    assert_eq!(allocs, 0);
}
