//! Detector-vs-ground-truth validation across many sites: facet accuracy,
//! latency agreement, bid and late-bid accounting.

mod common;

use common::{dataset, ecosystem};
use hb_repro::core::Interner;
use hb_repro::prelude::*;

#[test]
fn facet_classification_is_accurate() {
    let eco = ecosystem();
    let ds = dataset();
    let truth: std::collections::BTreeMap<&str, &str> = eco
        .hb_sites()
        .map(|s| (s.domain.as_str(), s.facet.unwrap().label()))
        .collect();
    let mut checked = 0;
    let mut correct = 0;
    for v in ds.visits.iter().filter(|v| v.day == 0 && v.hb_detected) {
        if let (Some(expected), Some(got)) = (truth.get(ds.str(v.domain)), v.facet) {
            checked += 1;
            if got.label() == *expected {
                correct += 1;
            }
        }
    }
    assert!(checked > 100, "checked {checked}");
    let accuracy = correct as f64 / checked as f64;
    assert!(accuracy > 0.97, "facet accuracy {accuracy}");
}

#[test]
fn latency_measurements_agree_with_truth() {
    let eco = ecosystem();
    let mut strings = Interner::new();
    let mut diffs = Vec::new();
    for site in eco.hb_sites().take(40) {
        let visit = crawl_site(
            eco.net(),
            eco.runtime_for(site),
            eco.partner_list(),
            eco.visit_rng(site.rank, 7),
            7,
            &SessionConfig::default(),
            &mut strings,
        );
        if let (Some(det), Some(truth)) = (
            visit.record.hb_latency_ms,
            visit.truth.hb_latency().map(|d| d.as_millis_f64()),
        ) {
            diffs.push((det - truth).abs());
        }
    }
    assert!(diffs.len() > 20, "measured {} sites", diffs.len());
    let max = diffs.iter().cloned().fold(0.0, f64::max);
    // The detector reads network completion; ground truth marks the JS
    // handler — they differ by at most the JS service noise.
    assert!(max < 25.0, "max detector/truth divergence {max} ms");
}

#[test]
fn bid_counts_match_truth_for_client_side() {
    let eco = ecosystem();
    let mut strings = Interner::new();
    let mut compared = 0;
    for site in eco
        .hb_sites()
        .filter(|s| s.facet == Some(hb_repro::adtech::HbFacet::ClientSide))
        .take(25)
    {
        let visit = crawl_site(
            eco.net(),
            eco.runtime_for(site),
            eco.partner_list(),
            eco.visit_rng(site.rank, 3),
            3,
            &SessionConfig::default(),
            &mut strings,
        );
        // Client-side: every client bid is visible to the detector.
        let client_bids = visit
            .record
            .bids
            .iter()
            .filter(|b| b.source == hb_repro::core::BidSource::ClientVisible)
            .count();
        assert_eq!(
            client_bids, visit.truth.client_bids,
            "{}: detector {} vs truth {}",
            site.domain, client_bids, visit.truth.client_bids
        );
        compared += 1;
    }
    assert!(compared > 5, "compared {compared} client-side sites");
}

#[test]
fn late_bid_accounting_matches_truth() {
    let eco = ecosystem();
    let mut strings = Interner::new();
    let mut total_det = 0usize;
    let mut total_truth = 0usize;
    for site in eco.hb_sites().take(60) {
        let visit = crawl_site(
            eco.net(),
            eco.runtime_for(site),
            eco.partner_list(),
            eco.visit_rng(site.rank, 5),
            5,
            &SessionConfig::default(),
            &mut strings,
        );
        total_det += visit.record.late_bids();
        total_truth += visit.truth.late_bids;
    }
    assert!(total_truth > 0, "fixture produced no late bids");
    let diff = (total_det as f64 - total_truth as f64).abs() / total_truth as f64;
    assert!(
        diff < 0.25,
        "late-bid totals diverge: detector {total_det} vs truth {total_truth}"
    );
}

#[test]
fn server_side_reveals_only_winners() {
    let eco = ecosystem();
    let mut strings = Interner::new();
    for site in eco
        .hb_sites()
        .filter(|s| s.facet == Some(hb_repro::adtech::HbFacet::ServerSide))
        .take(20)
    {
        let visit = crawl_site(
            eco.net(),
            eco.runtime_for(site),
            eco.partner_list(),
            eco.visit_rng(site.rank, 2),
            2,
            &SessionConfig::default(),
            &mut strings,
        );
        // No client-visible bids on pure server-side sites.
        assert!(visit
            .record
            .bids
            .iter()
            .all(|b| b.source == hb_repro::core::BidSource::ServerReported));
        // The only request-level partner is the provider.
        assert_eq!(visit.record.partner_count(), 1, "{}", site.domain);
    }
}

#[test]
fn event_counts_are_facet_consistent() {
    let eco = ecosystem();
    let mut strings = Interner::new();
    for site in eco.hb_sites().take(30) {
        let visit = crawl_site(
            eco.net(),
            eco.runtime_for(site),
            eco.partner_list(),
            eco.visit_rng(site.rank, 1),
            1,
            &SessionConfig::default(),
            &mut strings,
        );
        let count = |name: &str| {
            visit
                .record
                .event_counts
                .iter()
                .find(|(n, _)| strings.resolve(*n) == name)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        match site.facet.unwrap() {
            hb_repro::adtech::HbFacet::ServerSide => {
                assert_eq!(count("auctionInit"), 0, "{}", site.domain);
                assert_eq!(count("bidResponse"), 0, "{}", site.domain);
            }
            _ => {
                assert_eq!(count("auctionInit"), 1, "{}", site.domain);
                assert_eq!(count("auctionEnd"), 1, "{}", site.domain);
            }
        }
    }
}
