//! Shared integration-test fixtures: one test-scale campaign per process.

use hb_repro::prelude::*;
use std::sync::OnceLock;

/// The test-scale ecosystem (1,400 sites × 3 days), generated once.
pub fn ecosystem() -> &'static Ecosystem {
    static ECO: OnceLock<Ecosystem> = OnceLock::new();
    ECO.get_or_init(|| Ecosystem::generate(EcosystemConfig::test_scale()))
}

/// The test-scale dataset, crawled once.
pub fn dataset() -> &'static CrawlDataset {
    static DS: OnceLock<CrawlDataset> = OnceLock::new();
    DS.get_or_init(|| run_campaign(ecosystem(), &CampaignConfig::default()))
}

/// The columnar index over [`dataset`], built once (the figure builders
/// consume the index, not the raw dataset).
#[allow(dead_code)]
pub fn index() -> &'static hb_repro::analysis::DatasetIndex {
    static IX: OnceLock<hb_repro::analysis::DatasetIndex> = OnceLock::new();
    IX.get_or_init(|| hb_repro::analysis::DatasetIndex::build(dataset()))
}
