//! Acceptance suite: the full generate → crawl → detect → analyze pipeline
//! must reproduce the paper's headline shapes at reduced scale.

mod common;

use common::{dataset, ecosystem, index};
use hb_repro::analysis::{late, latency, partners, prices, slots, summary, waterfall_cmp};

#[test]
fn t1_dataset_proportions_match_paper() {
    let ix = index();
    let r = summary::t1_summary(ix);
    // Adoption ~14.28%.
    let hb = r.metric("websites_with_hb").unwrap();
    let crawled = r.metric("websites_crawled").unwrap();
    let adoption = hb / crawled;
    assert!(
        (adoption - 0.1428).abs() < 0.035,
        "adoption {adoption} vs paper 14.28%"
    );
    // Bids per auction ~0.30 for clean profiles (241,392 / 798,629).
    let ratio = r.metric("bids_per_auction").unwrap();
    assert!(
        ratio > 0.12 && ratio < 0.75,
        "bids/auction {ratio} vs paper 0.302"
    );
    // All 84 partners are *known*; a reduced crawl sees most of them.
    let partners = r.metric("partners").unwrap();
    assert!(partners > 40.0, "partners seen {partners}");
}

#[test]
fn adoption_rate_banded_by_rank() {
    let r = summary::adoption_bands(index());
    let head = r.metric("rate_head").unwrap();
    let mid = r.metric("rate_mid").unwrap();
    let tail = r.metric("rate_tail").unwrap();
    assert!(head > mid && mid > tail, "bands must decrease: {head} {mid} {tail}");
    assert!(head > 0.17 && head < 0.28, "head {head} vs paper 20-23%");
    assert!(tail > 0.07 && tail < 0.16, "tail {tail} vs paper 10-12%");
}

#[test]
fn facet_market_shares_match() {
    let r = summary::facet_breakdown(index());
    let server = r.metric("share_server").unwrap();
    let hybrid = r.metric("share_hybrid").unwrap();
    let client = r.metric("share_client").unwrap();
    // ~200 HB sites at test scale: ±8pp sampling tolerance (the paper-scale
    // run in EXPERIMENTS.md lands within ±1pp of 48/34.7/17.3).
    assert!((server - 0.48).abs() < 0.08, "server {server} vs 48%");
    assert!((hybrid - 0.347).abs() < 0.08, "hybrid {hybrid} vs 34.7%");
    assert!((client - 0.173).abs() < 0.08, "client {client} vs 17.3%");
    assert!(server > hybrid && hybrid > client, "ordering preserved");
}

#[test]
fn dfp_dominates_market() {
    let ix = index();
    let f8 = partners::f08_top_partners(ix);
    assert_eq!(f8.metric("top_is_dfp"), Some(1.0), "DFP is the #1 partner");
    let share = f8.metric("dfp_share").unwrap();
    assert!(share > 0.70 && share < 0.90, "DFP share {share} vs paper >80%");
    let f10 = partners::f10_combinations(ix);
    let alone = f10.metric("dfp_alone_share").unwrap();
    assert!((alone - 0.48).abs() < 0.08, "DFP-alone {alone} vs paper 48%");
    let groups = f10.metric("dfp_in_groups_share").unwrap();
    assert!(groups > 0.35, "DFP in {groups} of multi-partner groups vs paper 51%");
}

#[test]
fn partner_counts_follow_fig9() {
    let r = partners::f09_partners_per_site(index());
    let one = r.metric("share_one_partner").unwrap();
    assert!(one > 0.45 && one < 0.62, "single-partner share {one} vs >50%");
    let ge5 = r.metric("share_ge5").unwrap();
    assert!(ge5 > 0.10 && ge5 < 0.30, "5+ share {ge5} vs ~20%");
    let ge10 = r.metric("share_ge10").unwrap();
    assert!(ge10 > 0.01 && ge10 < 0.10, "10+ share {ge10} vs ~5%");
    assert!(r.metric("max_partners").unwrap() <= 20.0, "max 20 partners");
}

#[test]
fn latency_shapes_match_fig12_and_13() {
    let ix = index();
    let f12 = latency::f12_latency_ecdf(ix);
    let median = f12.metric("median_ms").unwrap();
    assert!(
        median > 280.0 && median < 800.0,
        "median {median} ms (paper's two anchors: 268 ms single-partner, 600 ms overall)"
    );
    let over3s = f12.metric("frac_over_3s").unwrap();
    assert!(over3s > 0.04 && over3s < 0.18, "frac>3s {over3s} vs paper ~10%");
    let f13 = latency::f13_latency_vs_rank(ix);
    assert!(
        f13.metric("head_to_rest_ratio").unwrap() < 1.0,
        "top-ranked sites are faster"
    );
}

#[test]
fn partner_latency_hierarchy_fig14_16() {
    let ix = index();
    let f14 = latency::f14_partner_latency(ix);
    let fast = f14.metric("fastest10_median_max_ms").unwrap();
    let top = f14.metric("top_market_median_avg_ms").unwrap();
    let slow = f14.metric("slowest10_median_min_ms").unwrap();
    // At test scale few niche partners clear the min-observation bar, so
    // the "fastest 10" bleed into the mid-field; the paper-scale run gets
    // 325 ms (EXPERIMENTS.md) against the paper's 41-217 ms band.
    assert!(fast < 400.0, "fastest partners {fast} ms (paper 41-217)");
    assert!(slow > 500.0, "slowest partners {slow} ms (paper 646-1290)");
    assert!(top > fast * 0.8 && top < slow, "top market in between: {top}");
    let f16 = latency::f16_latency_vs_popularity(ix);
    assert!(
        f16.metric("spread_growth").unwrap() > 1.2,
        "variability grows with unpopularity"
    );
}

#[test]
fn fan_out_increases_latency_fig15_20() {
    let ix = index();
    let f15 = latency::f15_latency_vs_partners(ix);
    let one = f15.metric("median_1_partner_ms").unwrap();
    let three = f15.metric("median_3_partners_ms").unwrap();
    assert!((one - 268.0).abs() < 120.0, "1-partner median {one} vs paper 268 ms");
    assert!(three > one * 1.3, "3 partners {three} vs 1 partner {one}");
    let share1 = f15.metric("share_1_partner").unwrap();
    assert!(share1 > 0.45, "single-partner sites are the majority: {share1}");
    let f20 = slots::f20_latency_vs_slots(ix);
    let m13 = f20.metric("median_1to3_ms").unwrap();
    let m35 = f20.metric("median_3to5_ms").unwrap();
    assert!(m35 > m13 * 0.9, "latency grows with slots: {m13} -> {m35}");
}

#[test]
fn late_bids_match_fig17_18() {
    let ix = index();
    let f17 = late::f17_late_ecdf(ix);
    let median = f17.metric("median_late_fraction").unwrap();
    assert!(
        median > 0.30,
        "median late fraction {median} (paper ~50% among auctions with late bids)"
    );
    assert!(f17.metric("share_ge80pct_late").unwrap() > 0.03);
    let f18 = late::f18_late_by_partner(ix);
    let ge50 = f18.metric("partners_ge50pct_late").unwrap();
    assert!(ge50 >= 8.0, "partners ≥50% late: {ge50} (paper: 21)");
    assert!(f18.metric("max_late_rate").unwrap() > 0.6);
}

#[test]
fn slots_and_sizes_match_fig19_21() {
    let ix = index();
    let f19 = slots::f19_slots_ecdf(ix);
    for facet in ["client-side", "server-side", "hybrid"] {
        let m = f19.metric(&format!("median_{facet}")).unwrap();
        assert!((2.0..=6.0).contains(&m), "{facet} slot median {m} (paper 2-6)");
    }
    let over20 = f19.metric("share_over_20").unwrap();
    assert!(over20 > 0.003 && over20 < 0.08, ">20 slots share {over20} vs ~3%");
    let f21 = slots::f21_sizes(ix);
    for facet in ["client-side", "server-side", "hybrid"] {
        assert_eq!(
            f21.metric(&format!("{facet}_top_is_300x250")),
            Some(1.0),
            "{facet} must be topped by 300x250"
        );
    }
}

#[test]
fn prices_match_fig22_24() {
    let ix = index();
    let f22 = prices::f22_price_ecdf(ix);
    let client = f22.metric("median_client-side").unwrap();
    let server = f22.metric("median_server-side").unwrap();
    assert!(client > server, "client prices dominate: {client} vs {server}");
    let over_half = f22.metric("share_over_half_all").unwrap();
    assert!(over_half > 0.05 && over_half < 0.45, "share>0.5CPM {over_half} vs >20%");
    let f23 = prices::f23_price_by_size(ix);
    let mid = f23.metric("median_300x250").unwrap();
    assert!(mid > 0.005 && mid < 0.15, "300x250 median {mid} vs paper 0.031");
    let f24 = prices::f24_price_by_popularity(ix);
    let top = f24.metric("top_bin_median").unwrap();
    let bottom = f24.metric("bottom_bin_median").unwrap();
    assert!(top < bottom, "popular partners bid lower: {top} vs {bottom}");
}

#[test]
fn waterfall_headline_claim() {
    let r = waterfall_cmp::x01_waterfall_compare(index());
    let median_ratio = r.metric("median_ratio").unwrap();
    assert!(
        median_ratio > 1.8 && median_ratio < 4.5,
        "HB/waterfall median ratio {median_ratio} vs paper 'up to 3x'"
    );
    let p90 = r.metric("p90_ratio").unwrap();
    assert!(p90 > median_ratio, "tail ratio exceeds median: {p90}");
}

#[test]
fn detector_precision_is_total() {
    // 100% precision (paper §4.1): every detected site truly runs HB.
    let eco = ecosystem();
    let ds = dataset();
    let truth: std::collections::BTreeSet<&str> =
        eco.hb_sites().map(|s| s.domain.as_str()).collect();
    for v in ds.visits.iter().filter(|v| v.hb_detected) {
        let domain = ds.str(v.domain);
        assert!(truth.contains(domain), "false positive: {domain}");
    }
}
