//! Dataset persistence: CSV round-trips and file output.

use hb_repro::prelude::*;

#[test]
fn save_writes_three_csv_files() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let ds = run_campaign(&eco, &CampaignConfig::default());
    let dir = std::env::temp_dir().join(format!("hb-repro-test-{}", std::process::id()));
    ds.save(&dir).expect("save dataset");
    for f in ["visits.csv", "bids.csv", "truth.csv"] {
        let path = dir.join(f);
        let content = std::fs::read_to_string(&path).expect("file exists");
        assert!(content.lines().count() > 1, "{f} has data rows");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truth_csv_roundtrip_preserves_every_record() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let ds = run_campaign(&eco, &CampaignConfig::default());
    let csv = ds.truths_csv();
    let back = CrawlDataset::load_truths(&csv);
    assert_eq!(back.len(), ds.truths.len());
    for (a, b) in ds.truths.iter().zip(back.iter()) {
        assert_eq!(a.rank, b.rank);
        assert_eq!(a.day, b.day);
        assert_eq!(a.facet, b.facet);
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.client_bids, b.client_bids);
        assert_eq!(a.late_bids, b.late_bids);
        assert_eq!(a.hb_wins, b.hb_wins);
        match (a.hb_latency_ms, b.hb_latency_ms) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 0.01),
            (None, None) => {}
            other => panic!("latency mismatch {other:?}"),
        }
    }
}

#[test]
fn visits_csv_is_well_formed() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let ds = run_campaign(&eco, &CampaignConfig::default());
    let csv = ds.visits_csv();
    let rows = hb_repro::stats::parse_csv(&csv);
    assert_eq!(rows[0].len(), 11, "11 header columns");
    assert_eq!(rows.len(), ds.visits.len() + 1);
    for row in rows.iter().skip(1) {
        assert_eq!(row.len(), 11, "row width");
        assert!(row[1].parse::<u32>().is_ok(), "rank parses");
        assert!(matches!(
            row[4].as_str(),
            "none" | "client-side" | "server-side" | "hybrid"
        ));
    }
}

#[test]
fn bids_csv_rows_match_bid_count() {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let ds = run_campaign(&eco, &CampaignConfig::default());
    let csv = ds.bids_csv();
    let rows = hb_repro::stats::parse_csv(&csv);
    assert_eq!(rows.len() as u64, ds.total_bids() + 1);
}
