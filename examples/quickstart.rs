//! Quickstart: attach HBDetector to a single page visit and inspect what
//! it sees — events, requests, bids, facet, latency.
//!
//! Run with: `cargo run --example quickstart`

use hb_repro::core::Interner;
use hb_repro::prelude::*;

fn main() {
    // A tiny deterministic universe: 200 sites, 84 demand partners.
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    println!(
        "universe: {} sites, {} run header bidding, {} demand partners",
        eco.sites().len(),
        eco.hb_sites().count(),
        eco.partner_list().len()
    );

    // Visit the highest-ranked HB site with the detector attached.
    let site = eco.hb_sites().next().expect("tiny universe has HB sites");
    println!(
        "\nvisiting {} (rank {}, ground-truth facet: {})",
        site.domain,
        site.rank,
        site.facet.unwrap()
    );
    let mut strings = Interner::new();
    let visit = crawl_site(
        eco.net(),
        eco.runtime_for(site),
        eco.partner_list(),
        eco.visit_rng(site.rank, 0),
        0,
        &SessionConfig::default(),
        &mut strings,
    );

    let r = &visit.record;
    let s = |sym| strings.resolve(sym);
    println!("\n=== HBDetector findings ===");
    println!("hb detected:      {}", r.hb_detected);
    println!(
        "facet:            {}",
        r.facet.map(|f| f.label()).unwrap_or("-")
    );
    println!(
        "partners:         {}",
        r.partners.iter().map(|p| s(*p)).collect::<Vec<_>>().join(", ")
    );
    println!("slots auctioned:  {}", r.slots_auctioned);
    println!(
        "total HB latency: {:.0} ms",
        r.hb_latency_ms.unwrap_or(f64::NAN)
    );
    println!(
        "bids:             {} ({} late)",
        r.bids.len(),
        r.late_bids()
    );
    for b in &r.bids {
        println!(
            "  - {} bid {:.4} CPM on {} ({}, {})",
            s(b.bidder_code),
            b.cpm,
            s(b.slot),
            s(b.size),
            if b.late { "LATE" } else { "in time" }
        );
    }
    println!("\nDOM events observed:");
    for (name, count) in &r.event_counts {
        println!("  {:>18} x{count}", s(*name));
    }
    println!("\nslot outcomes:");
    for slot in &r.slots {
        println!(
            "  {} ({}) <- {} @ {:.2} via {}",
            s(slot.slot),
            s(slot.size),
            if slot.winner.is_empty() { "-" } else { s(slot.winner) },
            slot.price,
            s(slot.channel)
        );
    }

    // The detector's verdict matches the simulation's ground truth.
    assert_eq!(
        r.facet.map(|f| f.label()),
        visit.truth.facet.map(|f| f.label())
    );
    println!("\ndetector facet matches ground truth: OK");
}
