//! Latency study: regenerate the user-experience figures — the total HB
//! latency ECDF, latency vs rank / partner count / slot count, per-partner
//! whiskers, late-bid accounting, and the waterfall comparison.
//!
//! Run with: `cargo run --release --example latency_study`

use hb_repro::analysis::{late, latency, slots, waterfall_cmp, DatasetIndex};
use hb_repro::prelude::*;

fn main() {
    let eco = Ecosystem::generate(EcosystemConfig::test_scale());
    println!("crawling {} sites for latency analysis…", eco.sites().len());
    let ds = run_campaign(&eco, &CampaignConfig::default());

    // Build the columnar index once; every figure reads it.
    let ix = DatasetIndex::build(&ds);
    for report in [
        latency::f12_latency_ecdf(&ix),
        latency::f13_latency_vs_rank(&ix),
        latency::f14_partner_latency(&ix),
        latency::f15_latency_vs_partners(&ix),
        latency::f16_latency_vs_popularity(&ix),
        late::f17_late_ecdf(&ix),
        late::f18_late_by_partner(&ix),
        slots::f20_latency_vs_slots(&ix),
        waterfall_cmp::x01_waterfall_compare(&ix),
    ] {
        print!("{}", report.render());
    }

    let f12 = latency::f12_latency_ecdf(&ix);
    let x1 = waterfall_cmp::x01_waterfall_compare(&ix);
    println!("\n=== headline numbers ===");
    println!(
        "median HB latency: {:.0} ms; {:.1}% of visits exceed 3 s",
        f12.metric("median_ms").unwrap(),
        f12.metric("frac_over_3s").unwrap() * 100.0
    );
    println!(
        "HB vs waterfall: {:.2}x at the median, {:.2}x at p90 (paper: up to 3x median)",
        x1.metric("median_ratio").unwrap(),
        x1.metric("p90_ratio").unwrap()
    );
}
