//! Historical adoption: the six-year Wayback study (Figure 4) plus the
//! toplist overlap sanity check (§3.2), using the static-analysis path of
//! the detector.
//!
//! Run with: `cargo run --example adoption_history`

use hb_repro::analysis::adoption;
use hb_repro::prelude::*;

fn main() {
    println!("scanning archived top-1k snapshots for 2014-2019…\n");
    let points = adoption_study(42, 1_000);
    let overlaps = overlap_study(42, 5_000);

    print!("{}", adoption::f04_adoption(&points).render());
    print!("{}", adoption::f04b_overlaps(&overlaps).render());

    println!("\nyear-by-year detail (static analysis vs archive ground truth):");
    for p in &points {
        let bar = "#".repeat((p.detected_rate * 100.0).round() as usize);
        println!(
            "  {}  {:>5.1}% detected ({:>5.1}% true)  {bar}",
            p.year,
            p.detected_rate * 100.0,
            p.true_rate * 100.0
        );
    }
    println!(
        "\nearly adopters (~10% in 2014) grew to a steady ~20% plateau after the\n2016 breakthrough — the Figure 4 shape."
    );
}
