//! Ecosystem audit: run a reduced-scale campaign and print the market
//! structure figures — dataset summary (Table 1), adoption by rank band,
//! facet breakdown, top partners, partners per site, and combinations.
//!
//! Run with: `cargo run --release --example ecosystem_audit`

use hb_repro::analysis::{partners, summary, DatasetIndex};
use hb_repro::prelude::*;

fn main() {
    let eco = Ecosystem::generate(EcosystemConfig::test_scale());
    println!(
        "generated universe: {} sites / {} partners; crawling {} days…",
        eco.sites().len(),
        eco.partner_list().len(),
        eco.config.crawl_days
    );
    let ds = run_campaign(&eco, &CampaignConfig::default());
    println!(
        "campaign finished: {} visits, {} HB domains\n",
        ds.visits.len(),
        ds.hb_domains().len()
    );

    // Build the columnar index once; every figure reads it.
    let ix = DatasetIndex::build(&ds);
    for report in [
        summary::t1_summary(&ix),
        summary::adoption_bands(&ix),
        summary::facet_breakdown(&ix),
        partners::f08_top_partners(&ix),
        partners::f09_partners_per_site(&ix),
        partners::f10_combinations(&ix),
        partners::f11_bids_by_facet(&ix),
    ] {
        print!("{}", report.render());
    }

    // Headline checks against the paper's market-structure findings.
    let f8 = partners::f08_top_partners(&ix);
    println!(
        "\nDFP present on {:.1}% of HB sites (paper: >80%)",
        f8.metric("dfp_share").unwrap() * 100.0
    );
    let f9 = partners::f09_partners_per_site(&ix);
    println!(
        "{:.1}% of HB sites use a single Demand Partner (paper: >50%)",
        f9.metric("share_one_partner").unwrap() * 100.0
    );
}
