//! A distributed campaign on one machine: a lease coordinator plus N
//! local workers, with a simulated worker crash thrown in so the fabric's
//! recovery machinery has something to do.
//!
//! The coordinator folds chunks into the incremental figure index in
//! `(day, shard, seq)` order — the same order the single-process campaign
//! streams them — so the resulting figures are byte-identical to
//! `run_campaign_streamed` over the same universe, crashes and all.
//!
//! Run with: `cargo run --release --example distributed_campaign`

use hb_repro::analysis::DatasetIndexBuilder;
use hb_repro::distd::{
    config_fingerprint, read_msg, run_worker, write_msg, CoordConfig, Coordinator, Msg,
    WorkerConfig,
};
use hb_repro::ecosystem::EcosystemConfig;
use std::time::{Duration, Instant};

const WORKERS: usize = 3;

fn main() {
    let eco_cfg = EcosystemConfig::tiny_scale();
    let cfg = CoordConfig {
        chunk_visits: 32,
        shards: 2,
        // Short lease so the simulated crash recovers quickly.
        lease_timeout: Duration::from_millis(500),
        ..CoordConfig::new(eco_cfg.clone())
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg.clone()).expect("bind coordinator");
    let addr = coordinator.local_addr().expect("bound addr").to_string();
    println!("coordinator listening on {addr}");

    let mut builder = DatasetIndexBuilder::new(eco_cfg.n_sites, eco_cfg.crawl_days);
    // Raised once the doomed worker has crashed holding a lease; the
    // healthy fleet holds off until then so the recovery actually has a
    // lapsed lease to recover.
    let crash_landed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let (stats, per_worker) = std::thread::scope(|scope| {
        // A doomed worker: takes one lease and "crashes" (drops the
        // connection without submitting). Its lease lapses and the block
        // is re-issued to a healthy worker. The coordinator only starts
        // accepting once `run` is called below, so this thread must not
        // be joined before then — it signals through the flag instead.
        {
            let addr = addr.clone();
            let cfg = cfg.clone();
            let crash_landed = crash_landed.clone();
            scope.spawn(move || {
                let fp = config_fingerprint(&cfg.eco, cfg.shards, cfg.chunk_visits, &cfg.session);
                let mut stream = loop {
                    match std::net::TcpStream::connect(&addr) {
                        Ok(s) => break s,
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                };
                write_msg(&mut stream, &Msg::Hello { fingerprint: fp }).expect("hello");
                let Msg::Welcome { worker_id } = read_msg(&mut stream).expect("welcome") else {
                    panic!("handshake rejected");
                };
                write_msg(&mut stream, &Msg::RequestLease { worker_id }).expect("request");
                match read_msg(&mut stream).expect("lease") {
                    Msg::Lease { lease_id, .. } => {
                        println!("worker X  crashed holding lease {lease_id} (simulated)");
                    }
                    other => println!("worker X  got {other:?} instead of a lease"),
                }
                // Dropping the stream here is the crash.
                crash_landed.store(true, std::sync::atomic::Ordering::Release);
            });
        }

        // The healthy fleet.
        let handles: Vec<_> = (0..WORKERS)
            .map(|i| {
                let addr = addr.clone();
                let cfg = cfg.clone();
                let crash_landed = crash_landed.clone();
                scope.spawn(move || {
                    while !crash_landed.load(std::sync::atomic::Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    let wcfg = WorkerConfig {
                        shards: cfg.shards,
                        chunk_visits: cfg.chunk_visits,
                        heartbeat_every: Duration::from_millis(200),
                        ..WorkerConfig::new(addr, cfg.eco.clone())
                    };
                    let started = Instant::now();
                    let stats = run_worker(&wcfg).expect("worker run");
                    (i, stats, started.elapsed())
                })
            })
            .collect();

        let stats = coordinator
            .run(&mut |chunk| builder.push_chunk(&chunk))
            .expect("coordinator run");
        let per_worker: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect();
        (stats, per_worker)
    });

    println!();
    for (i, ws, elapsed) in &per_worker {
        let secs = elapsed.as_secs_f64().max(1e-9);
        println!(
            "worker {i}  visits {:>5}  blocks {:>3}  {:>8.0} visits/sec",
            ws.visits,
            ws.blocks_completed,
            ws.visits as f64 / secs,
        );
    }
    println!();
    println!(
        "recovered leases       {}  (re-issued after the simulated crash)",
        stats.leases_reissued
    );
    println!("duplicate chunks dropped {}", stats.chunks_duplicate_dropped);
    println!("frames rejected        {}", stats.frames_rejected);
    println!(
        "chunks folded          {} / {} blocks",
        stats.chunks_folded, stats.blocks_total
    );

    let index = builder.finish();
    println!(
        "dataset: {} HB visits across {} HB sites — identical bytes to the in-process campaign",
        index.n_hb_visits(),
        index.n_hb_sites()
    );
}
