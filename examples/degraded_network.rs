//! Degraded-network campaign scenarios side by side: the same universe
//! crawled healthy, under ambient loss, and with a scheduled partner
//! outage, with the fault-slice figure family (Z1/Z2) rendered for each.
//!
//! Run with: `cargo run --release --example degraded_network`

use hb_repro::analysis::fault_reports;
use hb_repro::prelude::*;
use hb_repro::simnet::{Dist, HostFaultProfile, LatencyModel};

fn crawl(label: &str, cfg: EcosystemConfig) -> (String, DatasetIndex) {
    let eco = Ecosystem::generate(cfg);
    let ds = run_campaign(&eco, &CampaignConfig::default());
    (label.to_string(), DatasetIndex::build(&ds))
}

fn main() {
    let base = EcosystemConfig::test_scale();
    let specs = hb_repro::ecosystem::catalog::catalog();

    // Three campaigns over the *same* (seed, toplist) universe; only the
    // scenario axes differ, so every delta below is caused by the faults.
    //
    // 1. Healthy: the paper's baseline. ScenarioConfig::healthy() is the
    //    default — figure bytes are identical to a scenario-free build.
    let healthy = base.clone();

    // 2. Ambient: two partner tiers run lossy/slow (drops and 900 ms
    //    stalls), a third sits behind a congested 1.2 s link, and the ad
    //    path runs its degraded posture (per-partner deadlines, one retry
    //    with backoff, passback when everyone fails).
    let ambient = base.clone().with_scenario(
        ScenarioConfig::healthy()
            .with_host_profile(
                specs[0].host(),
                HostFaultProfile {
                    drop_chance: 0.25,
                    slow_chance: 0.30,
                    slow_penalty_ms: Dist::Const(900.0),
                },
            )
            .with_host_profile(
                specs[3].host(),
                HostFaultProfile {
                    drop_chance: 0.10,
                    slow_chance: 0.15,
                    slow_penalty_ms: Dist::Const(400.0),
                },
            )
            .with_degraded_link(specs[2].host(), LatencyModel::constant(1_200.0))
            .with_robustness(RobustnessPolicy::degraded_defaults()),
    );

    // 3. Outage: on top of the ambient faults, one partner goes hard
    //    down for a window of crawl days — the Z2 timeline shows the
    //    timeout/passback step on exactly those days.
    let outage_days_to = base.crawl_days;
    let outage = base.clone().with_scenario(
        ScenarioConfig::healthy()
            .with_host_profile(
                specs[0].host(),
                HostFaultProfile {
                    drop_chance: 0.25,
                    slow_chance: 0.30,
                    slow_penalty_ms: Dist::Const(900.0),
                },
            )
            .with_outage(specs[1].host(), 1, outage_days_to)
            .with_robustness(RobustnessPolicy::degraded_defaults()),
    );

    println!("crawling the same universe under three scenarios…\n");
    for (label, ix) in [
        crawl("healthy", healthy),
        crawl("ambient faults", ambient),
        crawl("scheduled outage", outage),
    ] {
        println!("================ scenario: {label} ================\n");
        for report in fault_reports(&ix) {
            print!("{}", report.render());
            println!();
        }
        let z1 = &fault_reports(&ix)[0];
        println!(
            "adoption {:.1}%, clean visits {:.0}, degraded {:.0}, outage-hit {:.0}\n",
            z1.metric("adoption_rate").unwrap_or(0.0) * 100.0,
            z1.metric("clean_visits").unwrap_or(0.0),
            z1.metric("degraded_visits").unwrap_or(0.0),
            z1.metric("outage_hit_visits").unwrap_or(0.0),
        );
    }
}
