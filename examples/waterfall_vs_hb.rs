//! Protocol head-to-head: run the *same* publisher through header bidding
//! and through the waterfall daisy chain, tracing both visits, then show
//! the population-level comparison.
//!
//! Run with: `cargo run --release --example waterfall_vs_hb`

use hb_repro::adtech::HbFacet;
use hb_repro::analysis::waterfall_cmp;
use hb_repro::core::Interner;
use hb_repro::prelude::*;

fn main() {
    let eco = Ecosystem::generate(EcosystemConfig::test_scale());

    // Pick a client-side HB site and clone its runtime into a
    // waterfall-only variant: same page, same slots, same tiers.
    let site = eco
        .hb_sites()
        .find(|s| s.facet == Some(HbFacet::ClientSide) && s.client_partner_ids.len() >= 2)
        .expect("client-side site with fan-out");
    let hb_runtime = eco.runtime_for(site);
    let mut wf_runtime = hb_runtime.clone();
    wf_runtime.facet = None; // force the waterfall path

    println!(
        "site {} (rank {}): {} client partners, {} slots\n",
        site.domain,
        site.rank,
        hb_runtime.client_partners.len(),
        hb_runtime.ad_units.len()
    );

    let mut strings = Interner::new();
    let hb = crawl_site(
        eco.net(),
        hb_runtime,
        eco.partner_list(),
        eco.visit_rng(site.rank, 0),
        0,
        &SessionConfig::default(),
        &mut strings,
    );
    let wf = crawl_site(
        eco.net(),
        wf_runtime,
        eco.partner_list(),
        eco.visit_rng(site.rank, 0),
        0,
        &SessionConfig::default(),
        &mut strings,
    );

    println!("header bidding visit:");
    println!(
        "  detected: {} / facet {:?}",
        hb.record.hb_detected,
        hb.record.facet.map(|f| f.label())
    );
    println!(
        "  HB latency {:.0} ms, {} bids ({} late), {} partners",
        hb.record.hb_latency_ms.unwrap_or(f64::NAN),
        hb.record.bids.len(),
        hb.record.late_bids(),
        hb.record.partner_count(),
    );
    println!("\nwaterfall visit (same page, same slots):");
    println!(
        "  detected as HB: {} (the detector must NOT flag waterfall)",
        wf.record.hb_detected
    );
    println!(
        "  fill latency {:.0} ms via tier {:?}",
        wf.truth
            .waterfall_latency
            .map(|d| d.as_millis_f64())
            .unwrap_or(f64::NAN),
        wf.truth.waterfall_fill_tier
    );
    assert!(!wf.record.hb_detected);

    // Population-level comparison over a full campaign.
    println!("\nrunning the full campaign for the population comparison…");
    let ds = run_campaign(&eco, &CampaignConfig::default());
    let ix = hb_repro::analysis::DatasetIndex::build(&ds);
    print!("{}", waterfall_cmp::x01_waterfall_compare(&ix).render());
}
