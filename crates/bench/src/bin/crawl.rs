//! Run a crawl campaign and persist the dataset as CSV.
//!
//! Usage: `crawl [tiny|test|medium|paper] [--out DIR] [--shards N]`
//!
//! Writes `visits.csv`, `bids.csv` and `truth.csv` under the output
//! directory (default `results/dataset/`), ready for external analysis
//! tooling. The run is deterministic in the ecosystem seed *and* in the
//! shard count: chunks merge in `(day, shard, seq)` order, so `--shards 4`
//! produces byte-identical CSVs to an unsharded run.

use hb_bench::{stderr_progress, Scale};
use hb_crawler::{crawl_shard_streamed, merge_chunks, CampaignConfig, VisitChunk};
use hb_ecosystem::SiteFactory;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Test;
    let mut out = PathBuf::from("results/dataset");
    let mut shards: u32 = 1;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .expect("--shards needs a count")
                    .parse()
                    .expect("--shards needs a positive integer");
                assert!(shards > 0, "--shards needs a positive integer");
            }
            word => {
                scale = Scale::parse(word).unwrap_or_else(|| {
                    eprintln!("unknown scale {word:?}; use tiny|test|medium|paper");
                    std::process::exit(2);
                });
            }
        }
        i += 1;
    }
    eprintln!("crawling at {scale:?} scale over {shards} shard(s)…");
    let config = scale.config();
    let factory = SiteFactory::new(config.clone());
    let cfg = CampaignConfig {
        shards,
        progress_every: 5_000,
        progress: Some(stderr_progress()),
        ..CampaignConfig::default()
    };
    let started = std::time::Instant::now();
    let mut chunks: Vec<VisitChunk> = Vec::new();
    for shard_id in 0..shards {
        let shard_started = std::time::Instant::now();
        let before = chunks.len();
        crawl_shard_streamed(&factory, &cfg, shard_id, &mut |c| chunks.push(c));
        let visits: usize = chunks[before..].iter().map(VisitChunk::len).sum();
        let secs = shard_started.elapsed().as_secs_f64().max(1e-9);
        eprintln!(
            "  shard {shard_id}: {visits} visits in {:.1?} ({:.0} visits/sec)",
            shard_started.elapsed(),
            visits as f64 / secs,
        );
    }
    let ds = merge_chunks(chunks, config.n_sites, config.crawl_days);
    let elapsed = started.elapsed();
    let visits_per_sec = ds.visits.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "done: {} visits over {} sites in {:.1?} ({visits_per_sec:.0} visits/sec)",
        ds.visits.len(),
        config.n_sites,
        elapsed
    );
    if let Some(kb) = peak_rss_kb() {
        eprintln!("peak RSS: {:.1} MiB", kb as f64 / 1024.0);
    }
    ds.save(&out).expect("write dataset");
    eprintln!(
        "dataset written to {} ({} HB domains, {} auctions, {} bids)",
        out.display(),
        ds.hb_domains().len(),
        ds.total_auctions(),
        ds.total_bids()
    );
}

/// Peak resident set size in KiB, read from /proc (Linux) — `None` when
/// the platform does not expose it.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
