//! Run a crawl campaign and persist the dataset as CSV.
//!
//! Usage: `crawl [tiny|test|medium|paper] [--out DIR]`
//!
//! Writes `visits.csv`, `bids.csv` and `truth.csv` under the output
//! directory (default `results/dataset/`), ready for external analysis
//! tooling. The run is deterministic in the ecosystem seed.

use hb_bench::{build_dataset, Scale};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Test;
    let mut out = PathBuf::from("results/dataset");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            word => {
                scale = Scale::parse(word).unwrap_or_else(|| {
                    eprintln!("unknown scale {word:?}; use tiny|test|medium|paper");
                    std::process::exit(2);
                });
            }
        }
        i += 1;
    }
    eprintln!("crawling at {scale:?} scale…");
    let started = std::time::Instant::now();
    let (eco, ds) = build_dataset(scale, true);
    let elapsed = started.elapsed();
    let visits_per_sec = ds.visits.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "done: {} visits over {} sites in {:.1?} ({visits_per_sec:.0} visits/sec)",
        ds.visits.len(),
        eco.sites.len(),
        elapsed
    );
    if let Some(kb) = peak_rss_kb() {
        eprintln!("peak RSS: {:.1} MiB", kb as f64 / 1024.0);
    }
    ds.save(&out).expect("write dataset");
    eprintln!(
        "dataset written to {} ({} HB domains, {} auctions, {} bids)",
        out.display(),
        ds.hb_domains().len(),
        ds.total_auctions(),
        ds.total_bids()
    );
}

/// Peak resident set size in KiB, read from /proc (Linux) — `None` when
/// the platform does not expose it.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
