//! Run a crawl campaign and persist the dataset as CSV.
//!
//! Usage: `crawl [tiny|test|medium|paper] [--out DIR]`
//!
//! Writes `visits.csv`, `bids.csv` and `truth.csv` under the output
//! directory (default `results/dataset/`), ready for external analysis
//! tooling. The run is deterministic in the ecosystem seed.

use hb_bench::{build_dataset, Scale};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Test;
    let mut out = PathBuf::from("results/dataset");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            word => {
                scale = Scale::parse(word).unwrap_or_else(|| {
                    eprintln!("unknown scale {word:?}; use tiny|test|medium|paper");
                    std::process::exit(2);
                });
            }
        }
        i += 1;
    }
    eprintln!("crawling at {scale:?} scale…");
    let started = std::time::Instant::now();
    let (eco, ds) = build_dataset(scale, true);
    eprintln!(
        "done: {} visits over {} sites in {:.1?}",
        ds.visits.len(),
        eco.sites.len(),
        started.elapsed()
    );
    ds.save(&out).expect("write dataset");
    eprintln!(
        "dataset written to {} ({} HB domains, {} auctions, {} bids)",
        out.display(),
        ds.hb_domains().len(),
        ds.total_auctions(),
        ds.total_bids()
    );
}
