//! Gate the multi-worker scaling curve in CI.
//!
//! Reads the latest `campaign/scaling_1w` / `campaign/scaling_8w` medians
//! from the criterion shim's output (`target/shim-criterion/`), derives
//! `speedup_8w = median_1w / median_8w`, and fails (exit 1) when it falls
//! below a **core-aware** floor:
//!
//! * on a box with ≥ 8 cores, the floor is the `speedup_8w_floor`
//!   recorded in the newest `benches/BENCH_<n>.json` whose snapshot was
//!   also taken on ≥ 8 cores (falling back to 5.0, the acceptance bar,
//!   when no such snapshot exists);
//! * on 2–7 cores, near-linear scaling is physically capped at the core
//!   count, so the floor is `0.55 × cores` — parallel efficiency, not
//!   the 8-worker headline;
//! * on 1 core (CI containers), 8 oversubscribed workers can only tie a
//!   single worker, so the floor is 0.7 — the run fails only if the
//!   worker machinery itself (lock contention in the shared memo,
//!   scheduler overhead) makes parallel slower than serial by a wide
//!   margin.
//!
//! Usage (after `cargo bench -p hb-bench -- campaign/scaling`):
//!
//! ```text
//! cargo run --release -p hb-bench --bin scaling_check
//! ```

use std::path::PathBuf;

/// A minimal field extractor for the shim's flat JSON lines (keys and
/// numeric/string scalars only — exactly what the shim emits; kept in
/// lockstep with `bench_snapshot`).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split(|c: char| c == ',' || c == '}').next()
    }
    .map(str::trim)
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Latest median for one bench id across the shim's output files.
fn latest_median(shim_dir: &PathBuf, bench_id: &str) -> Option<f64> {
    let mut best: Option<(u64, f64)> = None;
    for entry in std::fs::read_dir(shim_dir).ok()?.flatten() {
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        for line in text.lines() {
            if field(line, "id") != Some(bench_id) {
                continue;
            }
            let Some(median) = field(line, "median_ns").and_then(|m| m.parse::<f64>().ok())
            else {
                continue;
            };
            let at_ms = field(line, "at_ms")
                .and_then(|a| a.parse::<u64>().ok())
                .unwrap_or(0);
            if best.map(|(prev, _)| at_ms >= prev).unwrap_or(true) {
                best = Some((at_ms, median));
            }
        }
    }
    best.map(|(_, median)| median)
}

/// The recorded `(speedup_8w_floor, cores)` from the newest
/// `benches/BENCH_<n>.json` carrying a scaling section.
fn recorded_floor(root: &PathBuf) -> Option<(f64, u64)> {
    let dir = root.join("benches");
    let mut newest: Option<(u64, f64, u64)> = None;
    for entry in std::fs::read_dir(&dir).ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        // The snapshot is multi-line JSON; flatten so the shim-style
        // field extractor sees one line.
        let flat = text.replace(['\n', ' '], "");
        let (Some(floor), Some(cores)) = (
            field(&flat, "speedup_8w_floor").and_then(|f| f.parse::<f64>().ok()),
            field(&flat, "cores").and_then(|c| c.parse::<u64>().ok()),
        ) else {
            continue;
        };
        if newest.map(|(prev, _, _)| n >= prev).unwrap_or(true) {
            newest = Some((n, floor, cores));
        }
    }
    newest.map(|(_, floor, cores)| (floor, cores))
}

fn main() {
    let root = workspace_root();
    let shim_dir = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| root.join("target"))
        .join("shim-criterion");
    let (Some(one), Some(eight)) = (
        latest_median(&shim_dir, "campaign/scaling_1w"),
        latest_median(&shim_dir, "campaign/scaling_8w"),
    ) else {
        eprintln!(
            "missing campaign/scaling_1w or scaling_8w samples under {}; \
             run `cargo bench -p hb-bench -- campaign/scaling` first",
            shim_dir.display()
        );
        std::process::exit(1);
    };
    if eight <= 0.0 {
        eprintln!("degenerate scaling_8w median ({eight} ns)");
        std::process::exit(1);
    }
    let speedup = one / eight;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let recorded = recorded_floor(&root);
    let (floor, basis) = match cores {
        1 => (0.7, "1-core oversubscription floor".to_string()),
        2..=7 => (
            0.55 * cores as f64,
            format!("parallel-efficiency floor at {cores} cores"),
        ),
        _ => match recorded {
            Some((floor, rec_cores)) if rec_cores >= 8 => (
                floor,
                format!("recorded floor (snapshot taken on {rec_cores} cores)"),
            ),
            _ => (5.0, "acceptance floor (no ≥8-core snapshot recorded)".to_string()),
        },
    };
    println!(
        "scaling: 1w {one:.0} ns, 8w {eight:.0} ns -> speedup_8w {speedup:.3} \
         on {cores} core(s); floor {floor:.3} ({basis})"
    );
    if speedup < floor {
        eprintln!("FAIL: speedup_8w {speedup:.3} fell below floor {floor:.3}");
        std::process::exit(1);
    }
    println!("OK: speedup_8w {speedup:.3} >= floor {floor:.3}");
}
