//! Collect the latest criterion-shim results into an in-repo snapshot.
//!
//! The criterion shim appends one JSON line per bench run to
//! `target/shim-criterion/<bench>.json`. This binary folds the latest
//! line of every bench into a single `benches/BENCH_<n>.json` snapshot —
//! median ns/op per bench plus derived visits/sec for throughput benches —
//! so the perf trajectory is tracked in-repo across PRs.
//!
//! Usage (after `cargo bench -p hb-bench`):
//!
//! ```text
//! cargo run --release -p hb-bench --bin bench_snapshot -- 3
//! # → writes benches/BENCH_3.json at the workspace root
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;

/// A minimal field extractor for the shim's flat JSON lines (keys and
/// numeric/string scalars only — exactly what the shim emits).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split(|c: char| c == ',' || c == '}').next()
    }
    .map(str::trim)
}

fn workspace_root() -> PathBuf {
    // Resolved at compile time: this crate lives at <root>/crates/bench,
    // so the workspace root is exactly two levels up — no filesystem walk
    // that a stray Cargo.toml above the checkout could derail.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() {
    let n: String = std::env::args().nth(1).unwrap_or_else(|| "0".into());
    let root = workspace_root();
    let shim_dir = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| root.join("target"))
        .join("shim-criterion");
    let mut latest: BTreeMap<String, (f64, Option<u64>, u64)> = BTreeMap::new();
    let entries = match std::fs::read_dir(&shim_dir) {
        Ok(e) => e,
        Err(err) => {
            eprintln!(
                "no shim results under {} ({err}); run `cargo bench -p hb-bench` first",
                shim_dir.display()
            );
            std::process::exit(1);
        }
    };
    for entry in entries.flatten() {
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        for line in text.lines() {
            let (Some(id), Some(median)) = (field(line, "id"), field(line, "median_ns")) else {
                continue;
            };
            let Ok(median_ns) = median.parse::<f64>() else {
                continue;
            };
            let elems = field(line, "elems").and_then(|e| e.parse::<u64>().ok());
            let at_ms = field(line, "at_ms")
                .and_then(|a| a.parse::<u64>().ok())
                .unwrap_or(0);
            // Keep the most recent observation per bench id.
            let keep = latest
                .get(id)
                .map(|(_, _, prev_at)| at_ms >= *prev_at)
                .unwrap_or(true);
            if keep {
                latest.insert(id.to_string(), (median_ns, elems, at_ms));
            }
        }
    }
    if latest.is_empty() {
        eprintln!("no bench samples found under {}", shim_dir.display());
        std::process::exit(1);
    }

    let mut out = String::from("{\n  \"benches\": {\n");
    let count = latest.len();
    for (i, (id, (median_ns, elems, _))) in latest.iter().enumerate() {
        out.push_str(&format!("    \"{id}\": {{\"median_ns\": {median_ns:.1}"));
        if let Some(n) = elems {
            let per_sec = *n as f64 / (median_ns / 1e9);
            out.push_str(&format!(", \"elems\": {n}, \"elems_per_sec\": {per_sec:.1}"));
        }
        out.push_str("}");
        out.push_str(if i + 1 == count { "\n" } else { ",\n" });
    }
    out.push_str("  }\n}\n");

    let dir = root.join("benches");
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {err}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(format!("BENCH_{n}.json"));
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {} ({count} benches)", path.display()),
        Err(err) => {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
    }
}
