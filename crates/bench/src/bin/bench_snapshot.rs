//! Collect the latest criterion-shim results into an in-repo snapshot.
//!
//! The criterion shim appends one JSON line per bench run to
//! `target/shim-criterion/<bench>.json`. This binary folds the latest
//! line of every bench into a single `benches/BENCH_<n>.json` snapshot —
//! median ns/op per bench plus derived visits/sec for throughput benches —
//! so the perf trajectory is tracked in-repo across PRs.
//!
//! The snapshot additionally records the **measured allocation counts per
//! visit flow** (client/server/hybrid/waterfall), observed with a
//! counting global allocator over the same visit paths
//! `tests/alloc_free.rs` budgets: the pooled row path (`alloc_per_visit`,
//! comparable to BENCH_3/BENCH_4) and the direct-to-column campaign hot
//! path with its steady/cold-fresh/memo-cleared split
//! (`alloc_per_visit_columnar`) — so both the allocation trajectory and
//! the cold-visit tax are tracked alongside throughput.
//!
//! When the `campaign/scaling_{1,2,4,8}w` family is present, a
//! `scaling` section is folded in too: per-worker-count medians, the
//! derived `speedup_8w` (scaling_1w median / scaling_8w median), the
//! core count the numbers were measured on, and a `speedup_8w_floor`
//! (75% of measured) that `scaling_check` gates against in CI.
//!
//! Usage (after `cargo bench -p hb-bench`):
//!
//! ```text
//! cargo run --release -p hb-bench --bin bench_snapshot -- 4
//! # → writes benches/BENCH_4.json at the workspace root
//! ```

use hb_adtech::HbFacet;
use hb_core::{Interner, VisitColumns};
use hb_crawler::{crawl_site_into, crawl_site_pooled, SessionConfig, TruthRecord, VisitScratch};
use hb_ecosystem::{Ecosystem, EcosystemConfig, ScenarioConfig};
use hb_serve::{serve_load_with, LoadGenConfig, ServeConfig};
use hb_simnet::{Dist, HostFaultProfile, SimDuration};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// System-allocator wrapper counting allocations (single-threaded here,
/// so a process-wide counter is exact).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY-FREE NOTE: implementing `GlobalAlloc` requires the `unsafe impl`
// form; the implementation only delegates to `System` and bumps a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Steady-state allocations for one pooled visit of each flow at tiny
/// scale (3 warm-up visits, then one measured). Keep the flow table and
/// warm-up protocol in lockstep with `tests/alloc_free.rs`, which
/// enforces the budgets over the same procedure — a drift between the
/// two would make the tracked trajectory incomparable to the gate.
fn measure_visit_allocs() -> Vec<(&'static str, u64)> {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let cfg = SessionConfig::default();
    let flows: [(&'static str, Option<HbFacet>); 4] = [
        ("client_side", Some(HbFacet::ClientSide)),
        ("server_side", Some(HbFacet::ServerSide)),
        ("hybrid", Some(HbFacet::Hybrid)),
        ("waterfall", None),
    ];
    let mut out = Vec::new();
    for (label, facet) in flows {
        let Some(site) = eco.sites().iter().find(|s| s.facet == facet) else {
            // Don't silently drop a flow from the snapshot — a missing
            // key would read as "never measured" across PRs.
            eprintln!("warning: no {label} site in the tiny universe; alloc_per_visit omits it");
            continue;
        };
        let mut scratch = VisitScratch::new(eco.partner_list());
        let mut strings = Interner::new();
        let visit = |strings: &mut Interner, scratch: &mut VisitScratch| {
            crawl_site_pooled(
                eco.net(),
                eco.runtime_shared(site.rank),
                eco.visit_rng(site.rank, 0),
                0,
                &cfg,
                strings,
                scratch,
            )
        };
        for _ in 0..3 {
            let _ = visit(&mut strings, &mut scratch);
        }
        let before = ALLOCS.load(Ordering::Relaxed);
        let _ = visit(&mut strings, &mut scratch);
        out.push((label, ALLOCS.load(Ordering::Relaxed) - before));
    }
    out
}

/// Allocations of `f` (single-threaded process, counter is exact).
fn allocs_during<R>(f: impl FnOnce() -> R) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    let _ = f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Steady-state and **cold** allocation counts for the direct-to-column
/// campaign hot path (`crawl_site_into`). Keep the protocol in lockstep
/// with `tests/alloc_free.rs`:
///
/// * `steady` — the Nth visit of the same rank after 3 warm-ups;
/// * `cold_fresh_mean` — mean over 5 never-visited ranks of the flow
///   with a warm scratch (the adoption-sweep / memo-miss shape);
/// * `cold_memo_cleared` — the warm rank again after
///   [`Ecosystem::clear_memos`] (pure re-derivation, no new interner
///   entries).
fn measure_columnar_allocs() -> Vec<(&'static str, u64, u64, u64)> {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let cfg = SessionConfig::default();
    let flows: [(&'static str, Option<HbFacet>); 4] = [
        ("client_side", Some(HbFacet::ClientSide)),
        ("server_side", Some(HbFacet::ServerSide)),
        ("hybrid", Some(HbFacet::Hybrid)),
        ("waterfall", None),
    ];
    let mut out = Vec::new();
    for (label, facet) in flows {
        let ranks: Vec<u32> = eco
            .sites()
            .iter()
            .filter(|s| s.facet == facet)
            .map(|s| s.rank)
            .collect();
        if ranks.len() < 6 {
            eprintln!("warning: too few {label} sites; cold_alloc_per_visit omits it");
            continue;
        }
        let mut scratch = VisitScratch::new(eco.partner_list());
        let mut strings = Interner::new();
        let mut cols = VisitColumns::new();
        let mut truths: Vec<TruthRecord> = Vec::new();
        let visit = |rank: u32,
                     strings: &mut Interner,
                     scratch: &mut VisitScratch,
                     cols: &mut VisitColumns,
                     truths: &mut Vec<TruthRecord>| {
            crawl_site_into(
                eco.net(),
                eco.runtime_shared(rank),
                eco.visit_rng(rank, 0),
                0,
                &cfg,
                strings,
                scratch,
                cols,
                truths,
            )
        };
        for _ in 0..3 {
            let _ = visit(ranks[0], &mut strings, &mut scratch, &mut cols, &mut truths);
        }
        let steady =
            allocs_during(|| visit(ranks[0], &mut strings, &mut scratch, &mut cols, &mut truths));
        let fresh: Vec<u64> = ranks[1..6]
            .iter()
            .map(|&r| {
                allocs_during(|| visit(r, &mut strings, &mut scratch, &mut cols, &mut truths))
            })
            .collect();
        let fresh_mean = fresh.iter().sum::<u64>() / fresh.len() as u64;
        eco.clear_memos();
        let cleared =
            allocs_during(|| visit(ranks[0], &mut strings, &mut scratch, &mut cols, &mut truths));
        out.push((label, steady, fresh_mean, cleared));
    }
    out
}

/// The serving plane's snapshot numbers: sim-time auction latency
/// quantiles plus the envelope counters, from the same degraded-slice
/// workload `benches/serve.rs` drives (tiny scale, 4 lossy providers,
/// 8 shards). The quantiles are **deterministic** — they come from the
/// simulation clock, not the host — so this section only moves when the
/// orchestrator's behavior moves; wall-clock auctions/sec rides in from
/// the `serve/auction_mixed` bench median.
fn measure_serving() -> (u64, f64, f64, f64, u64, u64, u64, u64) {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale().with_seed(0x5EE_D10));
    let f = eco.factory();
    let lossy = HostFaultProfile {
        drop_chance: 0.45,
        slow_chance: 0.35,
        slow_penalty_ms: Dist::Const(220.0),
    };
    let slice: Vec<String> = f
        .gen()
        .specs
        .iter()
        .filter(|s| !s.is_ad_server)
        .take(4)
        .map(|s| s.host())
        .collect();
    let scenario = ScenarioConfig::healthy().with_provider_slice(slice, lossy);
    let inj = scenario.injector_for_day(&f.faults(), 0);
    let net = hb_adtech::Net::new(f.router(), f.latency(), std::sync::Arc::new(inj));
    let cfg = ServeConfig {
        shards: 8,
        ..ServeConfig::default()
    };
    let load = LoadGenConfig {
        n_requests: 4_000,
        n_sites: f.config().n_sites as u64,
        mean_gap: SimDuration::from_micros(400),
        ..LoadGenConfig::default()
    };
    let report = serve_load_with(f.gen(), &net, &cfg, &load, 4, false);
    let (p50, p99, p999) = report.latency_ms();
    (
        report.stats.auctions,
        p50,
        p99,
        p999,
        report.stats.fills(),
        report.stats.sheds,
        report.stats.breaker_trips,
        report.stats.hedges_fired,
    )
}

/// A minimal field extractor for the shim's flat JSON lines (keys and
/// numeric/string scalars only — exactly what the shim emits).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split(|c: char| c == ',' || c == '}').next()
    }
    .map(str::trim)
}

fn workspace_root() -> PathBuf {
    // Resolved at compile time: this crate lives at <root>/crates/bench,
    // so the workspace root is exactly two levels up — no filesystem walk
    // that a stray Cargo.toml above the checkout could derail.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() {
    let n: String = std::env::args().nth(1).unwrap_or_else(|| "0".into());
    let root = workspace_root();
    let shim_dir = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| root.join("target"))
        .join("shim-criterion");
    let mut latest: BTreeMap<String, (f64, Option<u64>, u64)> = BTreeMap::new();
    let entries = match std::fs::read_dir(&shim_dir) {
        Ok(e) => e,
        Err(err) => {
            eprintln!(
                "no shim results under {} ({err}); run `cargo bench -p hb-bench` first",
                shim_dir.display()
            );
            std::process::exit(1);
        }
    };
    for entry in entries.flatten() {
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        for line in text.lines() {
            let (Some(id), Some(median)) = (field(line, "id"), field(line, "median_ns")) else {
                continue;
            };
            let Ok(median_ns) = median.parse::<f64>() else {
                continue;
            };
            let elems = field(line, "elems").and_then(|e| e.parse::<u64>().ok());
            let at_ms = field(line, "at_ms")
                .and_then(|a| a.parse::<u64>().ok())
                .unwrap_or(0);
            // Keep the most recent observation per bench id.
            let keep = latest
                .get(id)
                .map(|(_, _, prev_at)| at_ms >= *prev_at)
                .unwrap_or(true);
            if keep {
                latest.insert(id.to_string(), (median_ns, elems, at_ms));
            }
        }
    }
    if latest.is_empty() {
        eprintln!("no bench samples found under {}", shim_dir.display());
        std::process::exit(1);
    }

    let mut out = String::from("{\n  \"benches\": {\n");
    let count = latest.len();
    for (i, (id, (median_ns, elems, _))) in latest.iter().enumerate() {
        out.push_str(&format!("    \"{id}\": {{\"median_ns\": {median_ns:.1}"));
        if let Some(n) = elems {
            let per_sec = *n as f64 / (median_ns / 1e9);
            out.push_str(&format!(", \"elems\": {n}, \"elems_per_sec\": {per_sec:.1}"));
        }
        out.push_str("}");
        out.push_str(if i + 1 == count { "\n" } else { ",\n" });
    }
    out.push_str("  },\n");
    // Multi-worker scaling, when the scaling family ran: per-worker
    // medians plus the derived 8-worker speedup and the floor CI gates
    // against (75% of measured — headroom for run-to-run timing noise).
    let scaling: Vec<(usize, f64)> = [1usize, 2, 4, 8]
        .iter()
        .filter_map(|&w| {
            latest
                .get(&format!("campaign/scaling_{w}w"))
                .map(|(median_ns, _, _)| (w, *median_ns))
        })
        .collect();
    let speedup_8w = match (
        scaling.iter().find(|(w, _)| *w == 1),
        scaling.iter().find(|(w, _)| *w == 8),
    ) {
        (Some((_, one)), Some((_, eight))) if *eight > 0.0 => Some(one / eight),
        _ => None,
    };
    if let Some(speedup) = speedup_8w {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        out.push_str("  \"scaling\": {\n    \"workers\": {");
        for (i, (w, median_ns)) in scaling.iter().enumerate() {
            out.push_str(&format!("\"{w}\": {median_ns:.1}"));
            if i + 1 < scaling.len() {
                out.push_str(", ");
            }
        }
        out.push_str(&format!(
            "}},\n    \"speedup_8w\": {speedup:.3},\n    \"speedup_8w_floor\": {:.3},\n    \
             \"cores\": {cores}\n  }},\n",
            speedup * 0.75
        ));
    }
    // The serving plane: deterministic sim-time latency quantiles and
    // envelope counters, plus wall-clock auctions/sec from the
    // serve/auction_mixed bench when it ran.
    let (auctions, p50, p99, p999, fills, sheds, trips, hedges) = measure_serving();
    out.push_str(&format!(
        "  \"serving\": {{\n    \"auctions\": {auctions},\n"
    ));
    if let Some((median_ns, Some(elems), _)) = latest.get("serve/auction_mixed") {
        let per_sec = *elems as f64 / (median_ns / 1e9);
        out.push_str(&format!("    \"auctions_per_sec\": {per_sec:.1},\n"));
    }
    out.push_str(&format!(
        "    \"latency_ms\": {{\"p50\": {p50:.3}, \"p99\": {p99:.3}, \"p999\": {p999:.3}}},\n    \
         \"fills\": {fills},\n    \"sheds\": {sheds},\n    \"breaker_trips\": {trips},\n    \
         \"hedges_fired\": {hedges}\n  }},\n"
    ));
    out.push_str("  \"alloc_per_visit\": {\n");
    let allocs = measure_visit_allocs();
    let n_flows = allocs.len();
    for (i, (label, count)) in allocs.iter().enumerate() {
        out.push_str(&format!("    \"{label}\": {count}"));
        out.push_str(if i + 1 == n_flows { "\n" } else { ",\n" });
    }
    // The direct-to-column hot path, steady and cold (see
    // measure_columnar_allocs for the protocol).
    out.push_str("  },\n  \"alloc_per_visit_columnar\": {\n");
    let columnar = measure_columnar_allocs();
    let n_columnar = columnar.len();
    for (i, (label, steady, fresh, cleared)) in columnar.iter().enumerate() {
        out.push_str(&format!(
            "    \"{label}\": {{\"steady\": {steady}, \"cold_fresh_mean\": {fresh}, \
             \"cold_memo_cleared\": {cleared}}}"
        ));
        out.push_str(if i + 1 == n_columnar { "\n" } else { ",\n" });
    }
    out.push_str("  }\n}\n");

    let dir = root.join("benches");
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {err}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(format!("BENCH_{n}.json"));
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {} ({count} benches)", path.display()),
        Err(err) => {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
    }
}
