//! Regenerate every table and figure of the paper.
//!
//! Usage: `figures [tiny|test|medium|paper] [--csv DIR]`
//!
//! Runs the Wayback adoption study, generates the ecosystem, runs the full
//! crawl campaign, and prints each `FigureReport` with the paper's stated
//! expectation next to the regenerated numbers. With `--csv DIR`, every
//! report's table is additionally written as `DIR/<id>.csv`.

use hb_analysis::all_reports;
use hb_bench::{build_dataset, Scale};
use hb_crawler::{adoption_study, overlap_study};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Test;
    let mut csv_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => {
                i += 1;
                csv_dir = Some(PathBuf::from(
                    args.get(i).expect("--csv needs a directory"),
                ));
            }
            word => {
                scale = Scale::parse(word).unwrap_or_else(|| {
                    eprintln!("unknown scale {word:?}; use tiny|test|medium|paper");
                    std::process::exit(2);
                });
            }
        }
        i += 1;
    }

    eprintln!("[1/3] historical adoption study (Wayback substitute)…");
    let seed = scale.config().seed;
    let adoption = adoption_study(seed, 1_000);
    let overlaps = overlap_study(seed, 5_000);

    eprintln!("[2/3] generating ecosystem and running campaign at {scale:?} scale…");
    let started = std::time::Instant::now();
    let (_eco, ds) = build_dataset(scale, true);
    eprintln!(
        "      campaign done: {} visits in {:.1?}",
        ds.visits.len(),
        started.elapsed()
    );

    eprintln!("[3/3] building reports…");
    let reports = all_reports(&ds, &adoption, &overlaps);
    for r in &reports {
        print!("{}", r.render());
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = dir.join(format!("{}.csv", r.id));
            std::fs::write(&path, r.to_csv()).expect("write csv");
        }
    }
    if let Some(dir) = &csv_dir {
        eprintln!("CSV written to {}", dir.display());
    }
}
