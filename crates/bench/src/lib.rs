//! # hb-bench
//!
//! Shared harness for the benchmark suite and the `figures` binary: builds
//! ecosystems and datasets at the requested scale and caches the test-scale
//! dataset so every Criterion bench and analysis test reuses one crawl.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hb_analysis::DatasetIndex;
use hb_crawler::{run_campaign, CampaignConfig, CampaignProgress, CrawlDataset, ProgressFn};
use hb_ecosystem::{Ecosystem, EcosystemConfig};
use std::sync::OnceLock;

/// Scale selector for harness runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// 200 sites x 1 day - CI-friendly smoke runs.
    Tiny,
    /// 1,400 sites x 3 days - default for tests/examples.
    Test,
    /// 7,000 sites x 10 days - heavier shape-check runs.
    Medium,
    /// 35,000 sites x 34 days - the paper's full workload.
    Paper,
}

impl Scale {
    /// Parse from a CLI word.
    pub fn parse(s: &str) -> Option<Scale> {
        Some(match s {
            "tiny" => Scale::Tiny,
            "test" => Scale::Test,
            "medium" => Scale::Medium,
            "paper" => Scale::Paper,
            _ => return None,
        })
    }

    /// The ecosystem configuration for this scale.
    pub fn config(self) -> EcosystemConfig {
        match self {
            Scale::Tiny => EcosystemConfig::tiny_scale(),
            Scale::Test => EcosystemConfig::test_scale(),
            Scale::Medium => EcosystemConfig::paper_scale().with_sites(7_000).with_days(10),
            Scale::Paper => EcosystemConfig::paper_scale(),
        }
    }
}

/// A progress callback printing to stderr — the old hardwired behaviour of
/// the crawl library, now opt-in at the harness layer.
pub fn stderr_progress() -> ProgressFn {
    Box::new(|p: CampaignProgress| {
        eprintln!(
            "  [shard {}] day {}: crawled {}/{} visits",
            p.shard, p.day, p.done, p.total
        )
    })
}

/// Generate the ecosystem and run the full campaign at the given scale.
pub fn build_dataset(scale: Scale, progress: bool) -> (Ecosystem, CrawlDataset) {
    let eco = Ecosystem::generate(scale.config());
    let cfg = CampaignConfig {
        progress_every: if progress { 5_000 } else { 0 },
        progress: progress.then(stderr_progress),
        ..CampaignConfig::default()
    };
    let ds = run_campaign(&eco, &cfg);
    (eco, ds)
}

/// Cached test-scale dataset shared by the Criterion benches.
pub fn cached_test_dataset() -> &'static CrawlDataset {
    static DS: OnceLock<CrawlDataset> = OnceLock::new();
    DS.get_or_init(|| build_dataset(Scale::Test, false).1)
}

/// Cached columnar index over [`cached_test_dataset`] (built once, shared
/// by every figure bench — the index's build-once/read-many contract).
pub fn cached_test_index() -> &'static DatasetIndex {
    static IX: OnceLock<DatasetIndex> = OnceLock::new();
    IX.get_or_init(|| DatasetIndex::build(cached_test_dataset()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn tiny_dataset_builds() {
        let (eco, ds) = build_dataset(Scale::Tiny, false);
        assert_eq!(eco.sites().len(), 200);
        assert!(ds.total_auctions() > 0);
    }
}
