//! Serving-plane benches: auctions/sec through the orchestrator and the
//! raw synthetic-traffic generation rate.
//!
//! `serve/auction_mixed` drives a mixed workload — zipf site preference
//! over the tiny-scale ecosystem, a degraded provider slice so breakers
//! trip and hedges fire — through 4 serving workers and reports
//! auctions/sec. The p50/p99/p999 auction latency of the same workload
//! lands in the BENCH snapshot's `serving` section (sim-time quantiles
//! are deterministic; the bench throughput is the wall-clock number).
//!
//! `serve/loadgen_throughput` is the pure load-model rate: how fast
//! [`LoadGenConfig::request`] maps request numbers to requests. It
//! bounds the orchestration overhead measurable above it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hb_ecosystem::{Ecosystem, EcosystemConfig, ScenarioConfig};
use hb_serve::{serve_load_with, LoadGenConfig, ServeConfig};
use hb_simnet::{Dist, HostFaultProfile, SimDuration};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

/// The bench workload shared with `bench_snapshot`'s serving section:
/// tiny-scale universe, four degraded providers, 8 shards.
pub fn bench_setup() -> (Ecosystem, ServeConfig, LoadGenConfig) {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale().with_seed(0x5EE_D10));
    let cfg = ServeConfig {
        shards: 8,
        ..ServeConfig::default()
    };
    let load = LoadGenConfig {
        n_requests: 4_000,
        n_sites: eco.factory().config().n_sites as u64,
        mean_gap: SimDuration::from_micros(400),
        ..LoadGenConfig::default()
    };
    (eco, cfg, load)
}

fn serve_bench(c: &mut Criterion) {
    let (eco, cfg, load) = bench_setup();
    let f = eco.factory();
    let lossy = HostFaultProfile {
        drop_chance: 0.45,
        slow_chance: 0.35,
        slow_penalty_ms: Dist::Const(220.0),
    };
    let slice: Vec<String> = f
        .gen()
        .specs
        .iter()
        .filter(|s| !s.is_ad_server)
        .take(4)
        .map(|s| s.host())
        .collect();
    let scenario = ScenarioConfig::healthy().with_provider_slice(slice, lossy);
    let inj = scenario.injector_for_day(&f.faults(), 0);
    let net = hb_adtech::Net::new(f.router(), f.latency(), Arc::new(inj));

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.throughput(Throughput::Elements(load.n_requests));
    group.bench_function("auction_mixed", |b| {
        b.iter(|| black_box(serve_load_with(f.gen(), &net, &cfg, &load, 4, false)))
    });
    group.finish();
}

fn loadgen_bench(c: &mut Criterion) {
    let load = LoadGenConfig {
        n_requests: 100_000,
        ..LoadGenConfig::default()
    };
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(load.n_requests));
    group.bench_function("loadgen_throughput", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for n in 0..load.n_requests {
                let r = load.request(n);
                acc = acc.wrapping_add(r.user).wrapping_add(r.rank as u64);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, serve_bench, loadgen_bench);
criterion_main!(benches);
