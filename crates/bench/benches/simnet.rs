//! Microbenches for the simnet scheduler core: slab-queue churn and the
//! pooled-simulation lifecycle. These track the structures PR 4 rebuilt —
//! regressions here surface before they show up as campaign throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use hb_simnet::{EventQueue, SimDuration, SimTime, Simulation};
use std::hint::black_box;

/// Random-ish schedule/cancel/pop interleaving over one persistent queue,
/// the pattern a visit's wrapper timeout + request fan-out produces. The
/// queue storage survives across iterations, so steady-state iterations
/// exercise the slab free list rather than the allocator.
fn schedule_cancel(c: &mut Criterion) {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut ids = Vec::with_capacity(64);
    c.bench_function("simnet/schedule_cancel", |b| {
        b.iter(|| {
            ids.clear();
            for i in 0..64u64 {
                // Scatter times so the heap actually reorders.
                let at = SimTime::from_micros((i * 37) % 101);
                ids.push(q.schedule(at, i));
            }
            for id in ids.iter().step_by(2) {
                black_box(q.cancel(*id));
            }
            while let Some(popped) = q.pop() {
                black_box(popped);
            }
        })
    });
}

/// The pooled-simulation steady state: seed a small callback cascade, run
/// to idle, reset in place. Callback boxes and event storage recycle
/// across iterations exactly as they do across a worker's visits.
fn pooled_simulation(c: &mut Criterion) {
    let mut sim = Simulation::new(0u64);
    c.bench_function("simnet/pooled_sim_visit", |b| {
        b.iter(|| {
            sim.reset_in_place();
            for i in 0..16u64 {
                sim.scheduler()
                    .after(SimDuration::from_micros(i * 13 % 40), move |w: &mut u64, s| {
                        *w = w.wrapping_add(i);
                        s.after(SimDuration::from_micros(5), move |w: &mut u64, _| {
                            *w = w.wrapping_add(1);
                        });
                    });
            }
            sim.run_to_idle(1_000);
            black_box(*sim.world());
        })
    });
}

criterion_group!(
    name = simnet;
    config = Criterion::default().sample_size(10);
    targets = schedule_cancel, pooled_simulation
);
criterion_main!(simnet);
