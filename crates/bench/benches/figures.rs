//! Criterion benches — one per table/figure of the paper.
//!
//! Each bench measures regenerating one artifact from the cached
//! test-scale dataset (the crawl itself is benchmarked separately in
//! `pipeline.rs`). This keeps a per-figure performance budget visible:
//! a regression in any analysis path shows up under its figure id.

use criterion::{criterion_group, criterion_main, Criterion};
use hb_bench::{cached_test_dataset, cached_test_index};
use hb_crawler::{adoption_study, overlap_study};
use std::hint::black_box;

macro_rules! figure_bench {
    ($fn_name:ident, $id:literal, $builder:path) => {
        fn $fn_name(c: &mut Criterion) {
            let ix = cached_test_index();
            c.bench_function(concat!("figure/", $id), |b| {
                b.iter(|| black_box($builder(black_box(ix))))
            });
        }
    };
}

/// The one-off cost the figure benches amortize: building the index.
fn bench_index_build(c: &mut Criterion) {
    let ds = cached_test_dataset();
    c.bench_function("figure/INDEX_build", |b| {
        b.iter(|| black_box(hb_analysis::DatasetIndex::build(black_box(ds))))
    });
}

figure_bench!(bench_t1, "T1_summary", hb_analysis::summary::t1_summary);
figure_bench!(bench_a1, "A1_adoption_bands", hb_analysis::summary::adoption_bands);
figure_bench!(bench_a2, "A2_facet_breakdown", hb_analysis::summary::facet_breakdown);
figure_bench!(bench_f8, "F8_top_partners", hb_analysis::partners::f08_top_partners);
figure_bench!(bench_f9, "F9_partners_per_site", hb_analysis::partners::f09_partners_per_site);
figure_bench!(bench_f10, "F10_combinations", hb_analysis::partners::f10_combinations);
figure_bench!(bench_f11, "F11_bids_by_facet", hb_analysis::partners::f11_bids_by_facet);
figure_bench!(bench_f12, "F12_latency_ecdf", hb_analysis::latency::f12_latency_ecdf);
figure_bench!(bench_f13, "F13_latency_vs_rank", hb_analysis::latency::f13_latency_vs_rank);
figure_bench!(bench_f14, "F14_partner_latency", hb_analysis::latency::f14_partner_latency);
figure_bench!(bench_f15, "F15_latency_vs_partners", hb_analysis::latency::f15_latency_vs_partners);
figure_bench!(bench_f16, "F16_latency_vs_popularity", hb_analysis::latency::f16_latency_vs_popularity);
figure_bench!(bench_f17, "F17_late_ecdf", hb_analysis::late::f17_late_ecdf);
figure_bench!(bench_f18, "F18_late_by_partner", hb_analysis::late::f18_late_by_partner);
figure_bench!(bench_f19, "F19_slots_ecdf", hb_analysis::slots::f19_slots_ecdf);
figure_bench!(bench_f20, "F20_latency_vs_slots", hb_analysis::slots::f20_latency_vs_slots);
figure_bench!(bench_f21, "F21_sizes", hb_analysis::slots::f21_sizes);
figure_bench!(bench_f22, "F22_price_ecdf", hb_analysis::prices::f22_price_ecdf);
figure_bench!(bench_f23, "F23_price_by_size", hb_analysis::prices::f23_price_by_size);
figure_bench!(bench_f24, "F24_price_by_popularity", hb_analysis::prices::f24_price_by_popularity);
figure_bench!(bench_x1, "X1_waterfall_compare", hb_analysis::waterfall_cmp::x01_waterfall_compare);

/// Fig. 4 + overlap study (no crawl dataset needed).
fn bench_f4(c: &mut Criterion) {
    c.bench_function("figure/F4_adoption_history", |b| {
        b.iter(|| {
            let pts = adoption_study(black_box(7), 250);
            black_box(hb_analysis::adoption::f04_adoption(&pts))
        })
    });
    c.bench_function("figure/F4b_toplist_overlap", |b| {
        b.iter(|| {
            let pts = overlap_study(black_box(7), 1_000);
            black_box(hb_analysis::adoption::f04b_overlaps(&pts))
        })
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(20);
    targets =
        bench_index_build,
        bench_t1, bench_a1, bench_a2, bench_f4, bench_f8, bench_f9, bench_f10,
        bench_f11, bench_f12, bench_f13, bench_f14, bench_f15, bench_f16,
        bench_f17, bench_f18, bench_f19, bench_f20, bench_f21, bench_f22,
        bench_f23, bench_f24, bench_x1
);
criterion_main!(figures);
