//! Criterion benches for the measurement pipeline itself: single-visit
//! simulation per protocol flow, detector hot paths, and a tiny campaign.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hb_adtech::HbFacet;
use hb_core::Interner;
use hb_crawler::{crawl_site_pooled, SessionConfig, VisitScratch};
use hb_ecosystem::{Ecosystem, EcosystemConfig};
use hb_http::{Json, Request, RequestId, Url};
use std::hint::black_box;

/// One steady-state visit per flow type, through the pooled per-worker
/// path the campaign actually runs: the scratch (browser, detector
/// buffers, message pools) and the shared runtime survive across
/// iterations, exactly as they survive across a worker's visits.
fn visit_bench(c: &mut Criterion) {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let pick = |facet: Option<HbFacet>| {
        eco.sites()
            .iter()
            .find(|s| s.facet == facet)
            .expect("facet present in tiny universe")
    };
    let cases = [
        ("client_side", pick(Some(HbFacet::ClientSide))),
        ("server_side", pick(Some(HbFacet::ServerSide))),
        ("hybrid", pick(Some(HbFacet::Hybrid))),
        ("waterfall", pick(None)),
    ];
    let session = SessionConfig::default();
    for (label, site) in cases {
        let mut strings = Interner::new();
        let mut scratch = VisitScratch::new(eco.partner_list());
        c.bench_function(&format!("visit/{label}"), |b| {
            b.iter(|| {
                black_box(crawl_site_pooled(
                    eco.net(),
                    eco.runtime_shared(site.rank),
                    eco.visit_rng(site.rank, 0),
                    0,
                    &session,
                    &mut strings,
                    &mut scratch,
                ))
            })
        });
    }
}

fn detector_hot_paths(c: &mut Criterion) {
    let list = hb_core::PartnerList::demo();
    let bid_req = Request::get(
        RequestId(1),
        Url::parse(
            "https://appnexus-adnet.example/hb/bid?hb_auction=a1&hb_bidder=appnexus&hb_source=client&slots=4",
        )
        .unwrap(),
    );
    let unrelated = Request::get(
        RequestId(2),
        Url::parse("https://static.site.example/app.js?v=12").unwrap(),
    );
    c.bench_function("detector/classify_bid_request", |b| {
        b.iter(|| black_box(hb_core::classify_request(&list, black_box(&bid_req))))
    });
    c.bench_function("detector/classify_unrelated", |b| {
        b.iter(|| black_box(hb_core::classify_request(&list, black_box(&unrelated))))
    });
    let payload = r#"{"hb_auction":"a1","bids":[{"bidder":"appnexus","hb_slot":"s1","cpm":0.4,"hb_size":"300x250","hb_adid":"c","hb_currency":"USD"}]}"#;
    c.bench_function("detector/parse_bid_response_json", |b| {
        b.iter(|| black_box(Json::parse(black_box(payload)).unwrap()))
    });
    let html = hb_dom::HtmlBuilder::new("t")
        .head_script("https://cdn.hbrepro.example/prebid.js")
        .head_inline("pbjs.requestBids({timeout: 3000});")
        .ad_slot("ad-slot-1")
        .build();
    let sigs = hb_core::LibrarySignatures::default();
    c.bench_function("detector/static_analysis", |b| {
        b.iter(|| black_box(hb_core::analyze_html(&sigs, black_box(&html))))
    });
}

fn campaign_bench(c: &mut Criterion) {
    c.bench_function("campaign/tiny_200_sites", |b| {
        b.iter(|| {
            let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
            black_box(hb_crawler::run_campaign(
                &eco,
                &hb_crawler::CampaignConfig::default(),
            ))
        })
    });
    // Visits/sec throughput over a prebuilt tiny universe: the campaign
    // re-crawls the same 200 sites each iteration, so Criterion reports
    // elements/sec directly comparable to the crawl binary's output.
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let visits = {
        // One warm-up run to learn the visit count (sweep + dailies).
        let ds = hb_crawler::run_campaign(&eco, &hb_crawler::CampaignConfig::default());
        ds.visits.len() as u64
    };
    let mut group = c.benchmark_group("campaign");
    group.throughput(Throughput::Elements(visits));
    group.bench_function("throughput", |b| {
        b.iter(|| {
            black_box(hb_crawler::run_campaign(
                &eco,
                &hb_crawler::CampaignConfig::default(),
            ))
        })
    });
    group.finish();
}

/// A 2,000-site × 1-day campaign over the lazy factory — the scale where
/// eager universe construction used to dominate. Reported as visits/sec
/// (`Throughput::Elements`), directly comparable to the crawl binary.
fn campaign_small_bench(c: &mut Criterion) {
    let factory =
        hb_ecosystem::SiteFactory::new(EcosystemConfig::paper_scale().with_sites(2_000).with_days(1));
    let cfg = hb_crawler::CampaignConfig::default();
    let visits = {
        // One warm-up run to learn the visit count (sweep + dailies).
        let ds = hb_crawler::run_factory_campaign(&factory, &cfg);
        ds.visits.len() as u64
    };
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    // One campaign run takes tens of milliseconds; stretch the sample
    // window so every criterion sample completes several iterations and
    // the median is an actual median, not a single observation.
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(visits));
    group.bench_function("small_2k_sites", |b| {
        b.iter(|| black_box(hb_crawler::run_factory_campaign(&factory, &cfg)))
    });
    group.finish();
}

criterion_group!(
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets = visit_bench, detector_hot_paths, campaign_bench, campaign_small_bench
);
criterion_main!(pipeline);
