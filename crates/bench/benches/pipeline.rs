//! Criterion benches for the measurement pipeline itself: single-visit
//! simulation per protocol flow, detector hot paths, and a tiny campaign.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hb_adtech::{HbFacet, RobustnessPolicy};
use hb_core::{Interner, VisitColumns};
use hb_crawler::{crawl_site_into, crawl_site_pooled, SessionConfig, VisitScratch};
use hb_ecosystem::{Ecosystem, EcosystemConfig, ScenarioConfig, SiteFactory};
use hb_http::{Json, Request, RequestId, Url};
use hb_simnet::{Dist, HostFaultProfile, LatencyModel};
use std::hint::black_box;

/// One steady-state visit per flow type, through the pooled per-worker
/// path the campaign actually runs: the scratch (browser, detector
/// buffers, message pools) and the shared runtime survive across
/// iterations, exactly as they survive across a worker's visits.
fn visit_bench(c: &mut Criterion) {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let pick = |facet: Option<HbFacet>| {
        eco.sites()
            .iter()
            .find(|s| s.facet == facet)
            .expect("facet present in tiny universe")
    };
    let cases = [
        ("client_side", pick(Some(HbFacet::ClientSide))),
        ("server_side", pick(Some(HbFacet::ServerSide))),
        ("hybrid", pick(Some(HbFacet::Hybrid))),
        ("waterfall", pick(None)),
    ];
    let session = SessionConfig::default();
    for (label, site) in cases {
        let mut strings = Interner::new();
        let mut scratch = VisitScratch::new(eco.partner_list());
        c.bench_function(&format!("visit/{label}"), |b| {
            b.iter(|| {
                black_box(crawl_site_pooled(
                    eco.net(),
                    eco.runtime_shared(site.rank),
                    eco.visit_rng(site.rank, 0),
                    0,
                    &session,
                    &mut strings,
                    &mut scratch,
                ))
            })
        });
    }
}

/// Columnar twins of `visit/*`: the same steady-state flows through
/// [`crawl_site_into`] — the direct-to-column path campaign workers
/// actually run. The row benches above stay for cross-PR continuity;
/// these report what a worker's visit really costs (no `SiteVisit`
/// materialization, records appended straight to the columns).
fn visit_columnar_bench(c: &mut Criterion) {
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let pick = |facet: Option<HbFacet>| {
        eco.sites()
            .iter()
            .find(|s| s.facet == facet)
            .expect("facet present in tiny universe")
    };
    let cases = [
        ("client_side_columnar", pick(Some(HbFacet::ClientSide))),
        ("server_side_columnar", pick(Some(HbFacet::ServerSide))),
        ("hybrid_columnar", pick(Some(HbFacet::Hybrid))),
        ("waterfall_columnar", pick(None)),
    ];
    let session = SessionConfig::default();
    for (label, site) in cases {
        let mut strings = Interner::new();
        let mut scratch = VisitScratch::new(eco.partner_list());
        let mut cols = VisitColumns::new();
        let mut truths = Vec::new();
        c.bench_function(&format!("visit/{label}"), |b| {
            b.iter(|| {
                // Restart the columns each visit (a cheap len-reset of
                // pooled buffers) so they don't grow without bound across
                // iterations — the marginal cost a sealed chunk pays.
                cols.clear();
                truths.clear();
                black_box(crawl_site_into(
                    eco.net(),
                    eco.runtime_shared(site.rank),
                    eco.visit_rng(site.rank, 0),
                    0,
                    &session,
                    &mut strings,
                    &mut scratch,
                    &mut cols,
                    &mut truths,
                ));
                cols.len()
            })
        });
    }
}

fn detector_hot_paths(c: &mut Criterion) {
    let list = hb_core::PartnerList::demo();
    let bid_req = Request::get(
        RequestId(1),
        Url::parse(
            "https://appnexus-adnet.example/hb/bid?hb_auction=a1&hb_bidder=appnexus&hb_source=client&slots=4",
        )
        .unwrap(),
    );
    let unrelated = Request::get(
        RequestId(2),
        Url::parse("https://static.site.example/app.js?v=12").unwrap(),
    );
    c.bench_function("detector/classify_bid_request", |b| {
        b.iter(|| black_box(hb_core::classify_request(&list, black_box(&bid_req))))
    });
    c.bench_function("detector/classify_unrelated", |b| {
        b.iter(|| black_box(hb_core::classify_request(&list, black_box(&unrelated))))
    });
    let payload = r#"{"hb_auction":"a1","bids":[{"bidder":"appnexus","hb_slot":"s1","cpm":0.4,"hb_size":"300x250","hb_adid":"c","hb_currency":"USD"}]}"#;
    c.bench_function("detector/parse_bid_response_json", |b| {
        b.iter(|| black_box(Json::parse(black_box(payload)).unwrap()))
    });
    let html = hb_dom::HtmlBuilder::new("t")
        .head_script("https://cdn.hbrepro.example/prebid.js")
        .head_inline("pbjs.requestBids({timeout: 3000});")
        .ad_slot("ad-slot-1")
        .build();
    let sigs = hb_core::LibrarySignatures::default();
    c.bench_function("detector/static_analysis", |b| {
        b.iter(|| black_box(hb_core::analyze_html(&sigs, black_box(&html))))
    });
}

fn campaign_bench(c: &mut Criterion) {
    c.bench_function("campaign/tiny_200_sites", |b| {
        b.iter(|| {
            let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
            black_box(hb_crawler::run_campaign(
                &eco,
                &hb_crawler::CampaignConfig::default(),
            ))
        })
    });
    // Visits/sec throughput over a prebuilt tiny universe: the campaign
    // re-crawls the same 200 sites each iteration, so Criterion reports
    // elements/sec directly comparable to the crawl binary's output.
    let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
    let visits = {
        // One warm-up run to learn the visit count (sweep + dailies).
        let ds = hb_crawler::run_campaign(&eco, &hb_crawler::CampaignConfig::default());
        ds.visits.len() as u64
    };
    let mut group = c.benchmark_group("campaign");
    group.throughput(Throughput::Elements(visits));
    group.bench_function("throughput", |b| {
        b.iter(|| {
            black_box(hb_crawler::run_campaign(
                &eco,
                &hb_crawler::CampaignConfig::default(),
            ))
        })
    });
    group.finish();
}

/// `campaign/throughput` again, but under a stressed scenario touching
/// every fault axis: a lossy ambient profile on one partner, a scheduled
/// outage on a second, a congested link to a third, and the degraded
/// robustness posture (per-partner deadlines, one retry with backoff,
/// passback). Same prebuilt tiny universe shape and the same
/// `Throughput::Elements` denominator, so the two visits/sec numbers are
/// directly comparable — the fault machinery is budgeted to stay within
/// 15% of the healthy sweep.
fn campaign_faulty_bench(c: &mut Criterion) {
    let specs = hb_ecosystem::catalog::catalog();
    let base = EcosystemConfig::tiny_scale();
    let scenario = ScenarioConfig::healthy()
        .with_host_profile(
            specs[0].host(),
            HostFaultProfile {
                drop_chance: 0.20,
                slow_chance: 0.30,
                slow_penalty_ms: Dist::Const(900.0),
            },
        )
        .with_outage(specs[1].host(), 1, base.crawl_days)
        .with_degraded_link(specs[2].host(), LatencyModel::constant(1_200.0))
        .with_robustness(RobustnessPolicy::degraded_defaults());
    let eco = Ecosystem::generate(base.with_scenario(scenario));
    let visits = {
        // One warm-up run to learn the visit count (sweep + dailies).
        let ds = hb_crawler::run_campaign(&eco, &hb_crawler::CampaignConfig::default());
        ds.visits.len() as u64
    };
    let mut group = c.benchmark_group("campaign");
    group.throughput(Throughput::Elements(visits));
    group.bench_function("faulty_sweep", |b| {
        b.iter(|| {
            black_box(hb_crawler::run_campaign(
                &eco,
                &hb_crawler::CampaignConfig::default(),
            ))
        })
    });
    group.finish();
}

/// A 2,000-site × 1-day campaign over the lazy factory — the scale where
/// eager universe construction used to dominate. Reported as visits/sec
/// (`Throughput::Elements`), directly comparable to the crawl binary.
fn campaign_small_bench(c: &mut Criterion) {
    let factory =
        hb_ecosystem::SiteFactory::new(EcosystemConfig::paper_scale().with_sites(2_000).with_days(1));
    let cfg = hb_crawler::CampaignConfig::default();
    let visits = {
        // One warm-up run to learn the visit count (sweep + dailies).
        let ds = hb_crawler::run_factory_campaign(&factory, &cfg);
        ds.visits.len() as u64
    };
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    // One campaign run takes tens of milliseconds; stretch the sample
    // window so every criterion sample completes several iterations and
    // the median is an actual median, not a single observation.
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(visits));
    group.bench_function("small_2k_sites", |b| {
        b.iter(|| black_box(hb_crawler::run_factory_campaign(&factory, &cfg)))
    });
    group.finish();
}

/// Multi-worker scaling over one shared universe: the same 2,000-site ×
/// 1-day campaign at 1 / 2 / 4 / 8 workers. The chunk size is shrunk to
/// 64 visits so the workload splits into ~40 blocks — enough claimable
/// blocks that every worker stays busy (at the default 256 the sweep
/// collapses into a handful of blocks and the tail dominates). All
/// workers share the factory's sharded derivation memo, so the per-rank
/// derivations are paid once regardless of worker count; on a
/// many-core box visits/sec should scale near-linearly, and
/// `speedup_8w` (scaling_1w median / scaling_8w median) is folded into
/// the snapshot and gated in CI.
fn campaign_scaling_bench(c: &mut Criterion) {
    let factory = hb_ecosystem::SiteFactory::new(
        EcosystemConfig::paper_scale().with_sites(2_000).with_days(1),
    );
    let visits = {
        let cfg = hb_crawler::CampaignConfig {
            chunk_visits: 64,
            ..hb_crawler::CampaignConfig::default()
        };
        let ds = hb_crawler::run_factory_campaign(&factory, &cfg);
        ds.visits.len() as u64
    };
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(visits));
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(&format!("scaling_{workers}w"), |b| {
            b.iter(|| {
                let cfg = hb_crawler::CampaignConfig {
                    parallelism: workers,
                    chunk_visits: 64,
                    ..hb_crawler::CampaignConfig::default()
                };
                black_box(hb_crawler::run_factory_campaign(&factory, &cfg))
            })
        });
    }
    group.finish();
}

/// Pure cold site derivation: every iteration derives a rank no memo has
/// ever seen (the factory's lazy universe is huge, the rank cursor never
/// wraps), so this isolates `generate_site` + profile assembly — the
/// per-site cost an adoption sweep pays before the first request flies.
fn derive_site_cold_bench(c: &mut Criterion) {
    let factory = SiteFactory::new(EcosystemConfig::paper_scale().with_sites(100_000_000));
    let mut rank: u32 = 0;
    c.bench_function("ecosystem/derive_site_cold", |b| {
        b.iter(|| {
            rank += 1;
            black_box(factory.site(rank))
        })
    });
}

/// The adoption-sweep shape: a warm worker scratch crawling a block of
/// ranks it has never visited — every visit is a memo miss (cold
/// `runtime_shared`, cold page HTML) appending direct-to-column. Reported
/// as visits/sec over the block, directly comparable to the campaign
/// benches; the rank window advances each iteration so the path never
/// warms up.
fn campaign_cold_sweep_bench(c: &mut Criterion) {
    const BLOCK: u32 = 256;
    let factory = SiteFactory::new(EcosystemConfig::paper_scale().with_sites(100_000_000));
    let session = SessionConfig::default();
    let net = factory.net();
    let mut scratch = VisitScratch::new(factory.partner_list());
    let mut strings = Interner::new();
    let mut cols = VisitColumns::new();
    let mut truths = Vec::new();
    let mut next_rank: u32 = 1;
    let mut group = c.benchmark_group("campaign");
    group.throughput(Throughput::Elements(BLOCK as u64));
    group.bench_function("cold_sweep", |b| {
        b.iter(|| {
            // Seal the previous "chunk": columns, truths and the local
            // interner restart per block, like a campaign block does.
            cols.clear();
            truths.clear();
            strings = Interner::new();
            let lo = next_rank;
            next_rank += BLOCK;
            for rank in lo..lo + BLOCK {
                black_box(crawl_site_into(
                    net.clone(),
                    factory.runtime_shared(rank),
                    factory.visit_rng(rank, 0),
                    0,
                    &session,
                    &mut strings,
                    &mut scratch,
                    &mut cols,
                    &mut truths,
                ));
            }
            cols.len()
        })
    });
    group.finish();
}

criterion_group!(
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets = visit_bench, visit_columnar_bench, detector_hot_paths, campaign_bench,
        campaign_faulty_bench, campaign_small_bench, campaign_scaling_bench,
        derive_site_cold_bench, campaign_cold_sweep_bench
);
criterion_main!(pipeline);
