//! Distributed-fabric benches: what the lease fabric costs relative to
//! the in-process campaign, and how long lease recovery takes.
//!
//! `campaign/distd_local_3w` runs the same tiny campaign the scaling
//! benches run, but through a real coordinator socket and three worker
//! threads speaking the wire protocol — reported as visits/sec so the
//! fabric tax is directly comparable to `campaign/scaling_*`.
//!
//! `campaign/distd_batched_3w` is the same campaign with four blocks
//! per lease — the delta against `distd_local_3w` (one block per lease)
//! is the request/grant round-trip tax that batching removes. On a
//! single-core loopback box the round-trips are nearly free and the
//! tiny campaign has few blocks, so load imbalance from 4-block grants
//! can dominate and the delta can go negative; the pair still pins both
//! code paths and what each costs.
//!
//! `campaign/distd_recovery` is the recovery-time number: a doomed
//! client takes the campaign's only lease and crashes, and the iteration
//! ends when a healthy worker has re-leased and re-crawled that block
//! after the 100ms heartbeat deadline lapses. The median is dominated by
//! the lease timeout — the bound the fabric promises — plus the re-issue
//! and re-crawl overhead on top.
//!
//! `campaign/distd_chaos` completes a small campaign under a seeded
//! level-4 fault storm (resets, corruption, stalls, duplicated submits,
//! heartbeat blackouts) with shepherded workers — the campaign wall
//! clock when the network actively fights back.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hb_analysis::DatasetIndexBuilder;
use hb_distd::{
    config_fingerprint, read_msg, run_worker, run_worker_session, write_msg, ChaosConfig,
    ChaosConnector, CoordConfig, Coordinator, Msg, WorkerConfig, WorkerStats,
};
use hb_ecosystem::EcosystemConfig;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// One full distributed campaign over a prebound coordinator config:
/// bind, spawn `workers` in-process worker threads, fold every chunk
/// through the incremental figure index, return the finished stats.
fn run_distributed(cfg: &CoordConfig, workers: usize) -> (u64, u64) {
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg.clone()).expect("bind");
    let addr = coordinator.local_addr().expect("addr").to_string();
    let mut builder = DatasetIndexBuilder::new(cfg.eco.n_sites, cfg.eco.crawl_days);
    let stats = std::thread::scope(|scope| {
        for _ in 0..workers {
            let addr = addr.clone();
            let cfg = cfg.clone();
            scope.spawn(move || {
                let wcfg = WorkerConfig {
                    shards: cfg.shards,
                    chunk_visits: cfg.chunk_visits,
                    heartbeat_every: Duration::from_millis(250),
                    ..WorkerConfig::new(addr, cfg.eco.clone())
                };
                run_worker(&wcfg).expect("worker");
            });
        }
        coordinator
            .run(&mut |chunk| builder.push_chunk(&chunk))
            .expect("coordinator")
    });
    let index = builder.finish();
    (stats.chunks_folded as u64, index.n_hb_visits() as u64)
}

/// Distributed throughput: the full tiny campaign through coordinator +
/// 3 local workers over real sockets, as visits/sec. The elements
/// denominator is the campaign's visit count (chunking-independent), so
/// this reads on the same scale as `campaign/scaling_*` — the gap is the
/// fabric tax (framing, checksums, leases, socket hops, fold ordering).
fn distd_local_bench(c: &mut Criterion) {
    let eco = EcosystemConfig::tiny_scale();
    // One block per lease: the PR-8 fabric behavior, kept as the
    // baseline the batched number is read against.
    let cfg = CoordConfig {
        shards: 2,
        chunk_visits: 64,
        lease_blocks: 1,
        ..CoordConfig::new(eco)
    };
    let visits = {
        // One warm-up distributed run to learn the visit count (sweep +
        // dailies) and to pre-warm the derivation memo pattern.
        let eco = hb_ecosystem::Ecosystem::generate(cfg.eco.clone());
        let ds = hb_crawler::run_campaign(&eco, &hb_crawler::CampaignConfig::default());
        ds.visits.len() as u64
    };
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.throughput(Throughput::Elements(visits));
    group.bench_function("distd_local_3w", |b| {
        b.iter(|| black_box(run_distributed(&cfg, 3)))
    });
    // Batched leases: four blocks per lease round-trip. The delta
    // against `distd_local_3w` is the request/grant round-trip tax the
    // batching removes.
    let batched = CoordConfig {
        lease_blocks: 4,
        ..cfg.clone()
    };
    group.throughput(Throughput::Elements(visits));
    group.bench_function("distd_batched_3w", |b| {
        b.iter(|| black_box(run_distributed(&batched, 3)))
    });
    group.finish();
}

/// One full campaign under a seeded mid-level chaos storm: two workers
/// dialing through a fault-injecting connector, shepherded back up when
/// a storm kills them, until the coordinator folds every block. The
/// median is the campaign-completion wall clock under faults — read it
/// against `distd_local_3w` for the price of the storm.
fn run_chaotic(cfg: &CoordConfig, workers: u64, seed: u64, level: u32) -> u64 {
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg.clone()).expect("bind");
    let addr = coordinator.local_addr().expect("addr").to_string();
    let connector = ChaosConnector::new(addr, ChaosConfig::new(seed, level));
    let done = AtomicBool::new(false);
    let mut builder = DatasetIndexBuilder::new(cfg.eco.n_sites, cfg.eco.crawl_days);
    let stats = std::thread::scope(|scope| {
        let connector = &connector;
        let done = &done;
        for slot in 0..workers {
            let cfg = cfg.clone();
            scope.spawn(move || {
                let mut respawn = 0u64;
                loop {
                    let wcfg = WorkerConfig {
                        shards: cfg.shards,
                        chunk_visits: cfg.chunk_visits,
                        heartbeat_every: Duration::from_millis(10),
                        connect_attempts: 6,
                        backoff_base: Duration::from_millis(5),
                        io_timeout: Duration::from_secs(1),
                        hb_deadline: Duration::from_millis(100),
                        reconnect_budget: Duration::from_secs(1),
                        instance: slot * 1_000 + respawn,
                        ..WorkerConfig::new(String::new(), cfg.eco.clone())
                    };
                    let mut stats = WorkerStats::default();
                    match run_worker_session(&wcfg, connector, &mut stats) {
                        Ok(()) => break,
                        Err(_) if done.load(Ordering::Acquire) => break,
                        Err(_) => respawn += 1,
                    }
                }
            });
        }
        let stats = coordinator
            .run(&mut |chunk| builder.push_chunk(&chunk))
            .expect("coordinator");
        done.store(true, Ordering::Release);
        stats
    });
    assert_eq!(stats.chunks_folded, stats.blocks_total);
    black_box(builder.finish());
    stats.chunks_folded as u64
}

fn distd_chaos_bench(c: &mut Criterion) {
    let eco = EcosystemConfig::tiny_scale().with_sites(64);
    let cfg = CoordConfig {
        shards: 1,
        chunk_visits: 16,
        lease_timeout: Duration::from_millis(300),
        wait_millis: 5,
        ..CoordConfig::new(eco)
    };
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("distd_chaos", |b| {
        b.iter(|| black_box(run_chaotic(&cfg, 2, 0xC5A0_5EED, 4)))
    });
    group.finish();
}

/// Recovery time, measured end to end: the campaign is one 32-visit
/// block, a doomed client leases it and drops the connection, and a
/// healthy worker must wait out the 100ms lease deadline, win the
/// re-issue, and re-crawl the block before the campaign can complete.
/// The median is the fabric's crash-to-recovered wall clock.
fn distd_recovery_bench(c: &mut Criterion) {
    let eco = EcosystemConfig::tiny_scale().with_sites(32).with_days(1);
    let cfg = CoordConfig {
        shards: 1,
        chunk_visits: 32,
        lease_timeout: Duration::from_millis(100),
        ..CoordConfig::new(eco)
    };
    let fingerprint = config_fingerprint(&cfg.eco, cfg.shards, cfg.chunk_visits, &cfg.session);
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("distd_recovery", |b| {
        b.iter(|| {
            let coordinator = Coordinator::bind("127.0.0.1:0", cfg.clone()).expect("bind");
            let addr = coordinator.local_addr().expect("addr").to_string();
            let mut builder = DatasetIndexBuilder::new(cfg.eco.n_sites, cfg.eco.crawl_days);
            // The coordinator only accepts once `run` starts below, so
            // both clients live in the scope; the healthy worker holds
            // off until the crash has landed.
            let crashed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let stats = std::thread::scope(|scope| {
                {
                    // The crash: take the only lease, then vanish.
                    let addr = addr.clone();
                    let crashed = crashed.clone();
                    scope.spawn(move || {
                        let mut doomed = loop {
                            match std::net::TcpStream::connect(&addr) {
                                Ok(s) => break s,
                                Err(_) => std::thread::sleep(Duration::from_millis(2)),
                            }
                        };
                        write_msg(&mut doomed, &Msg::Hello { fingerprint }).expect("hello");
                        let Msg::Welcome { worker_id } = read_msg(&mut doomed).expect("welcome")
                        else {
                            panic!("handshake rejected");
                        };
                        write_msg(&mut doomed, &Msg::RequestLease { worker_id }).expect("request");
                        let Msg::Lease { .. } = read_msg(&mut doomed).expect("lease") else {
                            panic!("doomed client should win the first lease");
                        };
                        drop(doomed);
                        crashed.store(true, std::sync::atomic::Ordering::Release);
                    });
                }
                {
                    // The recovery: a healthy worker waits out the
                    // deadline, wins the re-issue, and re-crawls.
                    let addr = addr.clone();
                    let cfg = cfg.clone();
                    let crashed = crashed.clone();
                    scope.spawn(move || {
                        while !crashed.load(std::sync::atomic::Ordering::Acquire) {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        let wcfg = WorkerConfig {
                            shards: cfg.shards,
                            chunk_visits: cfg.chunk_visits,
                            heartbeat_every: Duration::from_millis(50),
                            ..WorkerConfig::new(addr, cfg.eco.clone())
                        };
                        run_worker(&wcfg).expect("worker");
                    });
                }
                coordinator
                    .run(&mut |chunk| builder.push_chunk(&chunk))
                    .expect("coordinator")
            });
            assert_eq!(stats.leases_reissued, 1, "the crashed lease must be re-issued");
            black_box(builder.finish())
        })
    });
    group.finish();
}

criterion_group!(benches, distd_local_bench, distd_recovery_bench, distd_chaos_bench);
criterion_main!(benches);
