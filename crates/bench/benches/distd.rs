//! Distributed-fabric benches: what the lease fabric costs relative to
//! the in-process campaign, and how long lease recovery takes.
//!
//! `campaign/distd_local_3w` runs the same tiny campaign the scaling
//! benches run, but through a real coordinator socket and three worker
//! threads speaking the wire protocol — reported as visits/sec so the
//! fabric tax is directly comparable to `campaign/scaling_*`.
//!
//! `campaign/distd_recovery` is the recovery-time number: a doomed
//! client takes the campaign's only lease and crashes, and the iteration
//! ends when a healthy worker has re-leased and re-crawled that block
//! after the 100ms heartbeat deadline lapses. The median is dominated by
//! the lease timeout — the bound the fabric promises — plus the re-issue
//! and re-crawl overhead on top.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hb_analysis::DatasetIndexBuilder;
use hb_distd::{
    config_fingerprint, read_msg, run_worker, write_msg, CoordConfig, Coordinator, Msg,
    WorkerConfig,
};
use hb_ecosystem::EcosystemConfig;
use std::hint::black_box;
use std::time::Duration;

/// One full distributed campaign over a prebound coordinator config:
/// bind, spawn `workers` in-process worker threads, fold every chunk
/// through the incremental figure index, return the finished stats.
fn run_distributed(cfg: &CoordConfig, workers: usize) -> (u64, u64) {
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg.clone()).expect("bind");
    let addr = coordinator.local_addr().expect("addr").to_string();
    let mut builder = DatasetIndexBuilder::new(cfg.eco.n_sites, cfg.eco.crawl_days);
    let stats = std::thread::scope(|scope| {
        for _ in 0..workers {
            let addr = addr.clone();
            let cfg = cfg.clone();
            scope.spawn(move || {
                let wcfg = WorkerConfig {
                    shards: cfg.shards,
                    chunk_visits: cfg.chunk_visits,
                    heartbeat_every: Duration::from_millis(250),
                    ..WorkerConfig::new(addr, cfg.eco.clone())
                };
                run_worker(&wcfg).expect("worker");
            });
        }
        coordinator
            .run(&mut |chunk| builder.push_chunk(&chunk))
            .expect("coordinator")
    });
    let index = builder.finish();
    (stats.chunks_folded as u64, index.n_hb_visits() as u64)
}

/// Distributed throughput: the full tiny campaign through coordinator +
/// 3 local workers over real sockets, as visits/sec. The elements
/// denominator is the campaign's visit count (chunking-independent), so
/// this reads on the same scale as `campaign/scaling_*` — the gap is the
/// fabric tax (framing, checksums, leases, socket hops, fold ordering).
fn distd_local_bench(c: &mut Criterion) {
    let eco = EcosystemConfig::tiny_scale();
    let cfg = CoordConfig {
        shards: 2,
        chunk_visits: 64,
        ..CoordConfig::new(eco)
    };
    let visits = {
        // One warm-up distributed run to learn the visit count (sweep +
        // dailies) and to pre-warm the derivation memo pattern.
        let eco = hb_ecosystem::Ecosystem::generate(cfg.eco.clone());
        let ds = hb_crawler::run_campaign(&eco, &hb_crawler::CampaignConfig::default());
        ds.visits.len() as u64
    };
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.throughput(Throughput::Elements(visits));
    group.bench_function("distd_local_3w", |b| {
        b.iter(|| black_box(run_distributed(&cfg, 3)))
    });
    group.finish();
}

/// Recovery time, measured end to end: the campaign is one 32-visit
/// block, a doomed client leases it and drops the connection, and a
/// healthy worker must wait out the 100ms lease deadline, win the
/// re-issue, and re-crawl the block before the campaign can complete.
/// The median is the fabric's crash-to-recovered wall clock.
fn distd_recovery_bench(c: &mut Criterion) {
    let eco = EcosystemConfig::tiny_scale().with_sites(32).with_days(1);
    let cfg = CoordConfig {
        shards: 1,
        chunk_visits: 32,
        lease_timeout: Duration::from_millis(100),
        ..CoordConfig::new(eco)
    };
    let fingerprint = config_fingerprint(&cfg.eco, cfg.shards, cfg.chunk_visits, &cfg.session);
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("distd_recovery", |b| {
        b.iter(|| {
            let coordinator = Coordinator::bind("127.0.0.1:0", cfg.clone()).expect("bind");
            let addr = coordinator.local_addr().expect("addr").to_string();
            let mut builder = DatasetIndexBuilder::new(cfg.eco.n_sites, cfg.eco.crawl_days);
            // The coordinator only accepts once `run` starts below, so
            // both clients live in the scope; the healthy worker holds
            // off until the crash has landed.
            let crashed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let stats = std::thread::scope(|scope| {
                {
                    // The crash: take the only lease, then vanish.
                    let addr = addr.clone();
                    let crashed = crashed.clone();
                    scope.spawn(move || {
                        let mut doomed = loop {
                            match std::net::TcpStream::connect(&addr) {
                                Ok(s) => break s,
                                Err(_) => std::thread::sleep(Duration::from_millis(2)),
                            }
                        };
                        write_msg(&mut doomed, &Msg::Hello { fingerprint }).expect("hello");
                        let Msg::Welcome { worker_id } = read_msg(&mut doomed).expect("welcome")
                        else {
                            panic!("handshake rejected");
                        };
                        write_msg(&mut doomed, &Msg::RequestLease { worker_id }).expect("request");
                        let Msg::Lease { .. } = read_msg(&mut doomed).expect("lease") else {
                            panic!("doomed client should win the first lease");
                        };
                        drop(doomed);
                        crashed.store(true, std::sync::atomic::Ordering::Release);
                    });
                }
                {
                    // The recovery: a healthy worker waits out the
                    // deadline, wins the re-issue, and re-crawls.
                    let addr = addr.clone();
                    let cfg = cfg.clone();
                    let crashed = crashed.clone();
                    scope.spawn(move || {
                        while !crashed.load(std::sync::atomic::Ordering::Acquire) {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        let wcfg = WorkerConfig {
                            shards: cfg.shards,
                            chunk_visits: cfg.chunk_visits,
                            heartbeat_every: Duration::from_millis(50),
                            ..WorkerConfig::new(addr, cfg.eco.clone())
                        };
                        run_worker(&wcfg).expect("worker");
                    });
                }
                coordinator
                    .run(&mut |chunk| builder.push_chunk(&chunk))
                    .expect("coordinator")
            });
            assert_eq!(stats.leases_reissued, 1, "the crashed lease must be re-issued");
            black_box(builder.finish())
        })
    });
    group.finish();
}

criterion_group!(benches, distd_local_bench, distd_recovery_bench);
criterion_main!(benches);
