//! The HBDetector: attachment, observation, and reconstruction.
//!
//! Combines the paper's detection methods 2 (DOM event inspection) and 3
//! (webRequest inspection). The detector attaches to a [`Browser`] before
//! navigation, records everything relevant during the visit, and
//! [`HbDetector::finish`] reconstructs a [`VisitRecord`]: HB presence,
//! facet, partners, bids, latencies, late bids, prices, sizes.
//!
//! The webRequest tap is allocation-conscious: each observed request
//! stores its traffic class and a partner *index* into the list (not
//! cloned strings), and response bodies are only parsed when they carry
//! bid/winner payloads. All strings entering the [`VisitRecord`] are
//! interned at reconstruction time.

use crate::classify::{classify_request, response_has_hb_params, RequestKind};
use crate::columns::{VisitColumns, VisitScalars};
use crate::events::{CapturedEvent, HbEventKind};
use crate::intern::{Interner, Symbol};
use crate::list::PartnerList;
use crate::record::{
    BidSource, DetectedBid, DetectedFacet, DetectedSlot, PartnerLatency, VisitRecord,
};
use hb_dom::{Browser, WebRequestEvent};
use hb_http::{HStr, Json, RequestId};
use hb_simnet::SimTime;
use std::cell::RefCell;
use hb_simnet::FxHashMap;
use std::rc::Rc;
use std::sync::Arc;

/// One observed request with its lifecycle timing and extracted content.
/// Parsed bid/winner entries live in the state's flattened side tables
/// (`raw_bids`/`raw_winners`) as half-open ranges, so the per-request
/// record is flat data and clearing the state keeps every capacity.
#[derive(Clone, Copy, Debug)]
struct ObservedRequest {
    kind: RequestKind,
    /// Matched partner, as an index into the detector's list.
    partner_index: Option<u32>,
    sent_at: SimTime,
    completed_at: Option<SimTime>,
    failed: bool,
    /// Was this request a marked retry (`hb_retry` query param)?
    retry: bool,
    /// Range of parsed bid entries in `DetectorState::raw_bids`.
    bids: (u32, u32),
    /// Range of parsed winner entries in `DetectorState::raw_winners`.
    winners: (u32, u32),
    /// Did the response body carry HB params (server-side signal)?
    response_has_hb_params: bool,
}

/// A bid parsed from response JSON (before enrichment).
#[derive(Clone, Debug)]
struct RawBid {
    bidder: HStr,
    slot: HStr,
    cpm: f64,
    size: HStr,
}

/// A winner parsed from an ad-server response.
#[derive(Clone, Debug)]
struct RawWinner {
    slot: HStr,
    bidder: HStr,
    pb: f64,
    size: HStr,
    channel: HStr,
}

/// Accumulated observation state (shared with the browser taps).
#[derive(Default)]
struct DetectorState {
    events: Vec<CapturedEvent>,
    /// Observed requests in classification order — reconstruction walks
    /// this flat, cache-friendly slice directly (the former per-finish
    /// `Vec<&ObservedRequest>` temporaries are gone).
    requests: Vec<ObservedRequest>,
    // Fx-hashed: touched 1-2 times per classified request on the visit
    // hot path; iteration for output goes through `requests`.
    index: FxHashMap<RequestId, u32>,
    /// Flattened parsed bid entries, windowed by `ObservedRequest::bids`.
    raw_bids: Vec<RawBid>,
    /// Flattened parsed winner entries, windowed by
    /// `ObservedRequest::winners`.
    raw_winners: Vec<RawWinner>,
}

/// Reusable reconstruction buffers (capacity survives across visits).
#[derive(Default)]
struct FinishScratch {
    /// Distinct participating partners, as list indices.
    partners: Vec<u32>,
    /// `(event name, count)` pairs being sorted for output.
    events: Vec<(&'static str, u32)>,
    /// Distinct bid slots (slots-auctioned fallback count).
    slots: Vec<Symbol>,
    /// Distinct partners with an uncompleted bid request, as list indices.
    timed_out: Vec<u32>,
}

/// The HBDetector. Create with a partner list, [`attach`](Self::attach) to
/// a browser, run the visit, then [`finish`](Self::finish).
pub struct HbDetector {
    list: Arc<PartnerList>,
    state: Rc<RefCell<DetectorState>>,
    scratch: RefCell<FinishScratch>,
}

impl HbDetector {
    /// Create a detector with the given known-partner list.
    pub fn new(list: PartnerList) -> HbDetector {
        HbDetector::with_list(Arc::new(list))
    }

    /// Create a detector sharing an already-built partner list (the
    /// crawler path: one list per campaign, not one rebuild per visit).
    pub fn with_list(list: Arc<PartnerList>) -> HbDetector {
        HbDetector {
            list,
            state: Rc::new(RefCell::new(DetectorState::default())),
            scratch: RefCell::new(FinishScratch::default()),
        }
    }

    /// Attach the detector's taps to a browser (content script + webRequest
    /// observer). Must be called before the visit starts.
    pub fn attach(&self, browser: &mut Browser) {
        // DOM event tap (method 2).
        let state = self.state.clone();
        browser.events.tap(move |ev| {
            if let Some(captured) = CapturedEvent::from_dom(ev) {
                state.borrow_mut().events.push(captured);
            }
        });
        // webRequest tap (method 3).
        let state = self.state.clone();
        let list = self.list.clone();
        browser.webrequest.tap(move |ev| {
            let st = &mut *state.borrow_mut();
            match ev {
                WebRequestEvent::Before { request, at } => {
                    let classification = classify_request(&list, request);
                    if classification.kind == RequestKind::Unrelated {
                        return;
                    }
                    st.index.insert(request.id, st.requests.len() as u32);
                    st.requests.push(ObservedRequest {
                        kind: classification.kind,
                        partner_index: classification.partner_index,
                        sent_at: *at,
                        completed_at: None,
                        failed: false,
                        retry: request.url.query.get("hb_retry").is_some(),
                        bids: (0, 0),
                        winners: (0, 0),
                        response_has_hb_params: false,
                    });
                }
                WebRequestEvent::Completed { request, response, at } => {
                    let DetectorState {
                        requests,
                        index,
                        raw_bids,
                        raw_winners,
                        ..
                    } = st;
                    if let Some(obs) =
                        index.get(&request.id).map(|&i| &mut requests[i as usize])
                    {
                        obs.completed_at = Some(*at);
                        obs.response_has_hb_params = response_has_hb_params(response);
                        // Parse every JSON body, not just hb_-flagged ones:
                        // bid/winner extraction must not depend on the
                        // payload carrying an hb_ key alongside the lists.
                        // Structured bodies are borrowed (no tree clone);
                        // text bodies are still parsed opportunistically.
                        response.body.with_json(|body| {
                            parse_response_content(obs, raw_bids, raw_winners, body)
                        });
                    }
                }
                WebRequestEvent::Failed { request, .. } => {
                    if let Some(obs) = st
                        .index
                        .get(&request.id)
                        .map(|&i| &mut st.requests[i as usize])
                    {
                        obs.failed = true;
                    }
                }
            }
        });
    }

    /// Number of HB events captured so far (diagnostics).
    pub fn events_captured(&self) -> usize {
        self.state.borrow().events.len()
    }

    /// Clear all accumulated observation state for a fresh visit while
    /// keeping the allocated capacity (vectors, request map). The pooled
    /// crawl path attaches the detector to a reused browser once per
    /// worker and calls `reset` between visits.
    pub fn reset(&self) {
        let mut st = self.state.borrow_mut();
        st.events.clear();
        st.requests.clear();
        st.index.clear();
        st.raw_bids.clear();
        st.raw_winners.clear();
    }

    /// Reconstruct the visit record. `domain`, `rank` and `day` are crawl
    /// metadata; `page_load_ms` comes from the page timing. All strings
    /// are interned into `strings` — resolve the record against it.
    ///
    /// Thin row wrapper over [`HbDetector::finish_into`] for one-shot
    /// callers (tests, examples, validation); the campaign workers append
    /// straight into their chunk's columns.
    pub fn finish(
        &self,
        domain: &str,
        rank: u32,
        day: u32,
        page_load_ms: Option<f64>,
        strings: &mut Interner,
    ) -> VisitRecord {
        let mut cols = VisitColumns::new();
        self.finish_into(domain, rank, day, page_load_ms, strings, &mut cols);
        cols.get(0).to_record()
    }

    /// Reconstruct the visit and append it as one row directly into
    /// `cols` — detected bids, slots and latencies stream into the
    /// worker's columnar storage without materializing an owned
    /// [`VisitRecord`] (the crawl hot path: nothing escapes the visit but
    /// the column tails). Interning order, row content and child-row
    /// order are identical to [`HbDetector::finish`] by construction.
    pub fn finish_into(
        &self,
        domain: &str,
        rank: u32,
        day: u32,
        page_load_ms: Option<f64>,
        strings: &mut Interner,
        cols: &mut VisitColumns,
    ) {
        let st = self.state.borrow();
        let scratch = &mut *self.scratch.borrow_mut();
        let entry = |idx: Option<u32>| idx.map(|i| self.list.entry(i));
        let mut scalars = VisitScalars {
            domain: strings.intern(domain),
            rank,
            day,
            page_load_ms,
            ..VisitScalars::default()
        };
        let mut row = cols.begin_visit();

        // --- Gather the key requests -------------------------------------
        // `st.requests` is already the classification-ordered flat slice;
        // the reconstruction passes below re-walk it instead of collecting
        // per-kind temporaries.
        let bid_requests = || st.requests.iter().filter(|r| r.kind == RequestKind::BidRequest);
        let adserver_calls =
            || st.requests.iter().filter(|r| r.kind == RequestKind::AdServerCall);

        // --- HB present? ---------------------------------------------------
        let has_proof_event = st.events.iter().any(|e| e.kind.proves_hb());
        let has_hb_response_params = adserver_calls().any(|r| r.response_has_hb_params)
            || bid_requests().any(|r| r.response_has_hb_params);
        let has_bid_requests = bid_requests().next().is_some();
        scalars.hb_detected = has_proof_event || has_bid_requests || has_hb_response_params;
        if !scalars.hb_detected {
            row.finish_row(scalars);
            return;
        }

        // --- Facet --------------------------------------------------------
        let adserver_call = adserver_calls().next();
        let adserver_is_partner = adserver_call
            .map(|c| c.partner_index.is_some())
            .unwrap_or(false);
        scalars.facet = Some(if !has_bid_requests {
            DetectedFacet::Server
        } else if adserver_is_partner {
            DetectedFacet::Hybrid
        } else {
            DetectedFacet::Client
        });

        // --- Partners (request-level evidence) ------------------------------
        // Distinct list indices, deduped and sorted by display name in a
        // reusable buffer, interned in sorted order (matching the former
        // `Vec<&str>` path symbol for symbol).
        let partners = &mut scratch.partners;
        partners.clear();
        for r in bid_requests().chain(adserver_call) {
            if let Some(i) = r.partner_index {
                let name = &self.list.entry(i).name;
                if !partners.iter().any(|&j| self.list.entry(j).name == *name) {
                    partners.push(i);
                }
            }
        }
        partners.sort_unstable_by(|&a, &b| {
            self.list.entry(a).name.cmp(&self.list.entry(b).name)
        });
        for &i in partners.iter() {
            let sym = strings.intern(&self.list.entry(i).name);
            row.push_partner(sym);
        }

        // --- Timing ---------------------------------------------------------
        let first_hb_request_at = bid_requests()
            .map(|r| r.sent_at)
            .chain(adserver_call.map(|r| r.sent_at))
            .min();
        let adserver_sent_at = adserver_call.map(|c| c.sent_at);
        let adserver_done_at = adserver_call.and_then(|c| c.completed_at);
        if let (Some(t0), Some(t1)) = (first_hb_request_at, adserver_done_at) {
            scalars.hb_latency_ms = Some(t1.saturating_since(t0).as_millis_f64());
        }

        // --- Bids -----------------------------------------------------------
        for r in bid_requests() {
            let late = match (r.completed_at, adserver_sent_at) {
                (Some(done), Some(sent)) => done > sent,
                // Never completed: counts as lost, not late.
                _ => false,
            };
            let latency_ms = r
                .completed_at
                .map(|done| done.saturating_since(r.sent_at).as_millis_f64());
            if let Some(e) = entry(r.partner_index) {
                if let Some(lat) = latency_ms {
                    row.push_partner_latency(PartnerLatency {
                        partner_name: strings.intern(&e.name),
                        bidder_code: strings.intern(&e.code),
                        latency_ms: lat,
                        late,
                    });
                }
            }
            for bid in &st.raw_bids[r.bids.0 as usize..r.bids.1 as usize] {
                let partner_name = match self.list.by_code(&bid.bidder) {
                    Some(e) => strings.intern(&e.name),
                    None => strings.intern(&bid.bidder),
                };
                row.push_bid(DetectedBid {
                    bidder_code: strings.intern(&bid.bidder),
                    partner_name,
                    slot: strings.intern(&bid.slot),
                    cpm: bid.cpm,
                    size: strings.intern(&bid.size),
                    late,
                    latency_ms,
                    source: BidSource::ClientVisible,
                });
            }
        }
        // Provider latency for the ad-server call itself (the paper's
        // partner-latency view includes the providers).
        if let Some(c) = adserver_call {
            if let (Some(e), Some(done)) = (entry(c.partner_index), c.completed_at) {
                row.push_partner_latency(PartnerLatency {
                    partner_name: strings.intern(&e.name),
                    bidder_code: strings.intern(&e.code),
                    latency_ms: done.saturating_since(c.sent_at).as_millis_f64(),
                    late: false,
                });
            }
        }

        // --- Winners / slots -------------------------------------------------
        for c in adserver_calls() {
            for w in &st.raw_winners[c.winners.0 as usize..c.winners.1 as usize] {
                let slot = strings.intern(&w.slot);
                let size = strings.intern(&w.size);
                let winner = strings.intern(&w.bidder);
                if w.channel == "hb" && !w.bidder.is_empty() {
                    // Server-reported wins: visible bid evidence for
                    // Server-Side and Hybrid HB (the only price signal the
                    // client gets there). Skip bidders already seen as
                    // client bids for this slot to avoid double counting.
                    let already = row.bids().iter().any(|b| {
                        b.source == BidSource::ClientVisible
                            && b.bidder_code == winner
                            && b.slot == slot
                    });
                    if !already {
                        let partner_name = match self.list.by_code(&w.bidder) {
                            Some(e) => strings.intern(&e.name),
                            None => winner,
                        };
                        row.push_bid(DetectedBid {
                            bidder_code: winner,
                            partner_name,
                            slot,
                            cpm: w.pb,
                            size,
                            late: false,
                            latency_ms: None,
                            source: BidSource::ServerReported,
                        });
                    }
                }
                row.push_slot(DetectedSlot {
                    slot,
                    size,
                    winner,
                    price: w.pb,
                    channel: strings.intern(&w.channel),
                });
            }
        }

        // --- Slots auctioned --------------------------------------------------
        // Prefer the auctionInit adUnitCodes count; fall back to the
        // ad-server call's hb_slot parameters; then to rendered slots.
        let init_units: Option<u32> = None; // adUnitCodes not stored per event; use slots
        scalars.slots_auctioned = init_units.unwrap_or_else(|| {
            let from_slots = row.slots_len() as u32;
            if from_slots > 0 {
                from_slots
            } else {
                // Distinct bid slots, counted in a reusable buffer (the
                // former per-finish `BTreeSet`).
                let distinct = &mut scratch.slots;
                distinct.clear();
                distinct.extend(row.bids().iter().map(|b| b.slot));
                distinct.sort_unstable();
                distinct.dedup();
                distinct.len() as u32
            }
        });

        // --- Fault accounting -------------------------------------------------
        // A bid request with no completion never produced a response on
        // the wire (dropped, hard-down partner, or past the browser
        // network timeout) — the robustness figures slice on these.
        let timed_out = &mut scratch.timed_out;
        timed_out.clear();
        for r in bid_requests() {
            if r.completed_at.is_none() {
                scalars.bids_dropped += 1;
                if let Some(i) = r.partner_index {
                    if !timed_out.contains(&i) {
                        timed_out.push(i);
                    }
                }
            }
            if r.retry {
                scalars.retries += 1;
            }
        }
        scalars.timed_out_partners = timed_out.len() as u32;
        scalars.passback_served = st.events.iter().any(|e| e.kind == HbEventKind::Passback);

        // --- Event counters ----------------------------------------------------
        // Fixed-size count array indexed by kind; emitted sorted by event
        // name, skipping kinds that never fired.
        let mut counts = [0u32; HbEventKind::ALL.len()];
        for e in &st.events {
            counts[e.kind as usize] += 1;
        }
        let names = &mut scratch.events;
        names.clear();
        names.extend(
            HbEventKind::ALL
                .iter()
                .map(|k| (k.event_name(), counts[*k as usize]))
                .filter(|(_, n)| *n > 0),
        );
        names.sort_unstable();
        for &(name, n) in names.iter() {
            let sym = strings.intern(name);
            row.push_event_count(sym, n);
        }

        row.finish_row(scalars);
    }
}

/// Parse bid-response and ad-server-response JSON into the flattened raw
/// tables, recording the half-open ranges on the request.
fn parse_response_content(
    obs: &mut ObservedRequest,
    raw_bids: &mut Vec<RawBid>,
    raw_winners: &mut Vec<RawWinner>,
    body: &Json,
) {
    // Keep the body's own `HStr` handles instead of rebuilding from
    // `&str`: a string past the inline cap would otherwise spill into a
    // fresh `Arc<str>` per bid field, which was the last steady-state
    // allocation in the detector's response path.
    let hstr = |v: Option<&Json>| v.and_then(Json::as_hstr).cloned().unwrap_or(HStr::EMPTY);
    let bid_start = raw_bids.len() as u32;
    if let Some(bids) = body.get("bids").and_then(|b| b.as_arr()) {
        for b in bids {
            let bidder = hstr(b.get("bidder"));
            if bidder.is_empty() {
                continue;
            }
            raw_bids.push(RawBid {
                bidder,
                slot: hstr(b.get("hb_slot")),
                cpm: b.get("cpm").and_then(|v| v.as_f64()).unwrap_or(0.0),
                size: hstr(b.get("hb_size")),
            });
        }
    }
    obs.bids = (bid_start, raw_bids.len() as u32);
    let win_start = raw_winners.len() as u32;
    if let Some(winners) = body.get("winners").and_then(|w| w.as_arr()) {
        for w in winners {
            raw_winners.push(RawWinner {
                slot: hstr(w.get("hb_slot")),
                bidder: hstr(w.get("hb_bidder")),
                pb: w
                    .get("hb_pb")
                    .and_then(|v| v.as_str())
                    .and_then(|s| s.parse::<f64>().ok())
                    .unwrap_or(0.0),
                size: hstr(w.get("hb_size")),
                channel: hstr(w.get("channel")),
            });
        }
    }
    obs.winners = (win_start, raw_winners.len() as u32);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_http::{Request, Response, Url};
    use hb_simnet::SimTime;

    fn browser() -> Browser {
        Browser::open(Url::parse("https://pub.example/").unwrap(), SimTime::ZERO)
    }

    /// Resolve a symbol list to strings for assertions.
    fn resolved(strings: &Interner, syms: &[crate::intern::Symbol]) -> Vec<String> {
        syms.iter().map(|s| strings.resolve(*s).to_string()).collect()
    }

    /// Drive a synthetic client-side HB visit directly against the browser
    /// notification API (no simulator needed at this level).
    fn synthetic_client_visit(b: &mut Browser) {
        // auctionInit
        b.fire_event(
            SimTime::from_millis(100),
            "auctionInit",
            &Json::obj([("hb_auction", Json::str("a1"))]),
        );
        // bid request to AppNexus at t=100, response at t=300 with one bid.
        let id = b.next_request_id();
        let req = Request::get(
            id,
            Url::parse(
                "https://appnexus-adnet.example/hb/bid?hb_auction=a1&hb_bidder=appnexus&hb_source=client",
            )
            .unwrap(),
        );
        b.note_request_out(&req, SimTime::from_millis(100));
        let rsp_body = Json::parse(
            r#"{"hb_auction":"a1","bids":[{"bidder":"appnexus","hb_slot":"s1","cpm":0.4,"hb_size":"300x250","hb_adid":"cr1","hb_currency":"USD"}]}"#,
        )
        .unwrap();
        b.note_response_in(&req, &Response::json(id, rsp_body), SimTime::from_millis(300));
        b.fire_event(
            SimTime::from_millis(300),
            "bidResponse",
            &Json::obj([("bidder", Json::str("appnexus")), ("cpm", Json::num(0.4))]),
        );
        // auctionEnd + ad server call to the publisher's own server.
        b.fire_event(
            SimTime::from_millis(400),
            "auctionEnd",
            &Json::obj([]));
        let id2 = b.next_request_id();
        let req2 = Request::get(
            id2,
            Url::parse(
                "https://ads.pub.example/gampad/ads?account=pub-1&hb_auction=a1&hb_slot=s1&hb_bidder=appnexus&hb_pb=0.40&hb_size=300x250",
            )
            .unwrap(),
        );
        b.note_request_out(&req2, SimTime::from_millis(400));
        let winners = Json::parse(
            r#"{"hb_auction":"a1","winners":[{"hb_slot":"s1","channel":"hb","hb_bidder":"appnexus","hb_pb":"0.40","hb_size":"300x250","hb_adid":"cr1"}]}"#,
        )
        .unwrap();
        b.note_response_in(&req2, &Response::json(id2, winners), SimTime::from_millis(460));
        b.fire_event(
            SimTime::from_millis(470),
            "bidWon",
            &Json::obj([("hb_bidder", Json::str("appnexus"))]),
        );
    }

    #[test]
    fn client_side_reconstruction() {
        let det = HbDetector::new(PartnerList::demo());
        let mut b = browser();
        det.attach(&mut b);
        synthetic_client_visit(&mut b);
        let mut strings = Interner::new();
        let rec = det.finish("pub.example", 10, 0, Some(900.0), &mut strings);
        assert!(rec.hb_detected);
        assert_eq!(strings.resolve(rec.domain), "pub.example");
        assert_eq!(rec.facet, Some(DetectedFacet::Client));
        assert_eq!(resolved(&strings, &rec.partners), vec!["AppNexus"]);
        assert_eq!(rec.bids.len(), 1);
        assert_eq!(strings.resolve(rec.bids[0].bidder_code), "appnexus");
        assert!(!rec.bids[0].late);
        assert_eq!(rec.bids[0].latency_ms, Some(200.0));
        // 100 → 460 ms.
        assert_eq!(rec.hb_latency_ms, Some(360.0));
        assert_eq!(rec.slots_auctioned, 1);
        assert_eq!(rec.slots.len(), 1);
        assert_eq!(strings.resolve(rec.slots[0].channel), "hb");
        assert_eq!(rec.page_load_ms, Some(900.0));
        // Winner already counted as a client bid: no double count.
        assert_eq!(rec.bids.len(), 1);
    }

    #[test]
    fn server_side_reconstruction() {
        let det = HbDetector::new(PartnerList::demo());
        let mut b = browser();
        det.attach(&mut b);
        // Single call to DFP, hb params only in request/response; no events
        // except render.
        let id = b.next_request_id();
        let req = Request::get(
            id,
            Url::parse(
                "https://doubleclick-adnet.example/gampad/ads?account=pub-2&hb_auction=a2&hb_source=s2s&hb_slot=s1&hb_slot=s2",
            )
            .unwrap(),
        );
        b.note_request_out(&req, SimTime::from_millis(50));
        let winners = Json::parse(
            r#"{"hb_auction":"a2","winners":[
                {"hb_slot":"s1","channel":"hb","hb_bidder":"rubicon","hb_pb":"0.30","hb_size":"300x250","hb_adid":"x"},
                {"hb_slot":"s2","channel":"fallback","hb_size":"728x90"}
            ]}"#,
        )
        .unwrap();
        b.note_response_in(&req, &Response::json(id, winners), SimTime::from_millis(320));
        b.fire_event(
            SimTime::from_millis(340),
            "slotRenderEnded",
            &Json::obj([("hb_slot", Json::str("s1"))]),
        );
        let mut strings = Interner::new();
        let rec = det.finish("pub2.example", 20, 3, None, &mut strings);
        assert!(rec.hb_detected);
        assert_eq!(rec.facet, Some(DetectedFacet::Server));
        assert_eq!(resolved(&strings, &rec.partners), vec!["DFP"]);
        assert_eq!(rec.hb_latency_ms, Some(270.0));
        // One server-reported bid (the winner), one fallback slot.
        assert_eq!(rec.bids.len(), 1);
        assert_eq!(rec.bids[0].source, BidSource::ServerReported);
        assert_eq!(strings.resolve(rec.bids[0].partner_name), "Rubicon");
        assert_eq!(rec.slots.len(), 2);
        assert_eq!(rec.slots_auctioned, 2);
        assert_eq!(rec.day, 3);
    }

    #[test]
    fn hybrid_reconstruction() {
        let det = HbDetector::new(PartnerList::demo());
        let mut b = browser();
        det.attach(&mut b);
        // Client bid to rubicon + ad-server call to DFP (a known partner).
        let id = b.next_request_id();
        let req = Request::get(
            id,
            Url::parse(
                "https://rubicon-adnet.example/hb/bid?hb_auction=a3&hb_bidder=rubicon&hb_source=client",
            )
            .unwrap(),
        );
        b.note_request_out(&req, SimTime::from_millis(10));
        b.note_response_in(&req, &Response::no_content(id), SimTime::from_millis(150));
        let id2 = b.next_request_id();
        let req2 = Request::get(
            id2,
            Url::parse(
                "https://doubleclick-adnet.example/gampad/ads?account=pub-3&hb_auction=a3&hb_source=client&hb_slot=s1",
            )
            .unwrap(),
        );
        b.note_request_out(&req2, SimTime::from_millis(200));
        b.note_response_in(&req2, &Response::no_content(id2), SimTime::from_millis(350));
        let mut strings = Interner::new();
        let rec = det.finish("pub3.example", 30, 1, None, &mut strings);
        assert!(rec.hb_detected);
        assert_eq!(rec.facet, Some(DetectedFacet::Hybrid));
        let mut partners = resolved(&strings, &rec.partners);
        partners.sort();
        assert_eq!(partners, vec!["DFP".to_string(), "Rubicon".to_string()]);
        // No-bid from rubicon still yields a latency observation.
        assert_eq!(rec.partner_latencies.len(), 2, "rubicon + provider");
    }

    #[test]
    fn late_bids_detected_from_timing() {
        let det = HbDetector::new(PartnerList::demo());
        let mut b = browser();
        det.attach(&mut b);
        // Bid request out at 10; ad server call sent at 100; bid response
        // arrives at 500 → late.
        let id = b.next_request_id();
        let req = Request::get(
            id,
            Url::parse(
                "https://appnexus-adnet.example/hb/bid?hb_auction=a4&hb_bidder=appnexus&hb_source=client",
            )
            .unwrap(),
        );
        b.note_request_out(&req, SimTime::from_millis(10));
        let id2 = b.next_request_id();
        let req2 = Request::get(
            id2,
            Url::parse("https://ads.pub.example/gampad/ads?account=p&hb_auction=a4&hb_slot=s1")
                .unwrap(),
        );
        b.note_request_out(&req2, SimTime::from_millis(100));
        b.note_response_in(&req2, &Response::no_content(id2), SimTime::from_millis(160));
        let body = Json::parse(
            r#"{"hb_auction":"a4","bids":[{"bidder":"appnexus","hb_slot":"s1","cpm":0.2,"hb_size":"300x250","hb_adid":"c","hb_currency":"USD"}]}"#,
        )
        .unwrap();
        b.note_response_in(&req, &Response::json(id, body), SimTime::from_millis(500));
        let mut strings = Interner::new();
        let rec = det.finish("pub4.example", 40, 0, None, &mut strings);
        assert_eq!(rec.bids.len(), 1);
        assert!(rec.bids[0].late);
        assert_eq!(rec.late_fraction(), Some(1.0));
        assert_eq!(rec.partner_latencies.len(), 1);
        assert!(rec.partner_latencies[0].late);
    }

    #[test]
    fn waterfall_site_not_detected() {
        let det = HbDetector::new(PartnerList::demo());
        let mut b = browser();
        det.attach(&mut b);
        // RTB-style traffic to a known partner without hb params.
        let id = b.next_request_id();
        let req = Request::get(
            id,
            Url::parse("https://rubicon-adnet.example/rtb/ad?floor=0.10&size=300x250&cb=7")
                .unwrap(),
        );
        b.note_request_out(&req, SimTime::from_millis(10));
        b.note_response_in(&req, &Response::no_content(id), SimTime::from_millis(90));
        let id2 = b.next_request_id();
        let req2 = Request::get(
            id2,
            Url::parse("https://rubicon-adnet.example/rtb/notify?wp=0.21&cb=9").unwrap(),
        );
        b.note_request_out(&req2, SimTime::from_millis(100));
        let mut strings = Interner::new();
        let rec = det.finish("wf.example", 50, 0, None, &mut strings);
        assert!(!rec.hb_detected, "waterfall must not be flagged");
        assert!(rec.facet.is_none());
        assert!(rec.bids.is_empty());
    }

    #[test]
    fn fault_accounting_counts_drops_retries_and_passback() {
        let det = HbDetector::new(PartnerList::demo());
        let mut b = browser();
        det.attach(&mut b);
        // First attempt to AppNexus: never completes (dropped on the wire).
        let id = b.next_request_id();
        let req = Request::get(
            id,
            Url::parse(
                "https://appnexus-adnet.example/hb/bid?hb_auction=a7&hb_bidder=appnexus&hb_source=client",
            )
            .unwrap(),
        );
        b.note_request_out(&req, SimTime::from_millis(10));
        // Deterministic retry, marked with hb_retry: also dropped.
        let id2 = b.next_request_id();
        let req2 = Request::get(
            id2,
            Url::parse(
                "https://appnexus-adnet.example/hb/bid?hb_auction=a7&hb_bidder=appnexus&hb_source=client&hb_retry=1",
            )
            .unwrap(),
        );
        b.note_request_out(&req2, SimTime::from_millis(250));
        // Every bidder failed: the wrapper serves a passback house ad.
        b.fire_event(SimTime::from_millis(3300), "passbackServed", &Json::obj([]));
        let mut strings = Interner::new();
        let rec = det.finish("pub7.example", 70, 0, None, &mut strings);
        assert!(rec.hb_detected, "bid requests alone prove HB");
        assert_eq!(rec.bids_dropped, 2);
        assert_eq!(rec.retries, 1);
        assert_eq!(rec.timed_out_partners, 1, "both drops are the same partner");
        assert!(rec.passback_served);
        assert!(rec.bids.is_empty());
        // passbackServed is counted but proves nothing by itself.
        assert_eq!(
            rec.event_counts.len(),
            1,
            "only the passback event fired"
        );
    }

    #[test]
    fn healthy_visit_has_zero_fault_counters() {
        let det = HbDetector::new(PartnerList::demo());
        let mut b = browser();
        det.attach(&mut b);
        synthetic_client_visit(&mut b);
        let mut strings = Interner::new();
        let rec = det.finish("pub.example", 10, 0, None, &mut strings);
        assert_eq!(rec.bids_dropped, 0);
        assert_eq!(rec.retries, 0);
        assert_eq!(rec.timed_out_partners, 0);
        assert!(!rec.passback_served);
    }

    #[test]
    fn empty_visit_not_detected() {
        let det = HbDetector::new(PartnerList::demo());
        let mut b = browser();
        det.attach(&mut b);
        let mut strings = Interner::new();
        let rec = det.finish("static.example", 60, 0, Some(120.0), &mut strings);
        assert!(!rec.hb_detected);
        assert_eq!(rec.partner_count(), 0);
        assert_eq!(det.events_captured(), 0);
    }
}
