//! The HBDetector: attachment, observation, and reconstruction.
//!
//! Combines the paper's detection methods 2 (DOM event inspection) and 3
//! (webRequest inspection). The detector attaches to a [`Browser`] before
//! navigation, records everything relevant during the visit, and
//! [`HbDetector::finish`] reconstructs a [`VisitRecord`]: HB presence,
//! facet, partners, bids, latencies, late bids, prices, sizes.
//!
//! The webRequest tap is allocation-conscious: each observed request
//! stores its traffic class and a partner *index* into the list (not
//! cloned strings), and response bodies are only parsed when they carry
//! bid/winner payloads. All strings entering the [`VisitRecord`] are
//! interned at reconstruction time.

use crate::classify::{classify_request, response_has_hb_params, RequestKind};
use crate::events::{CapturedEvent, HbEventKind};
use crate::intern::Interner;
use crate::list::PartnerList;
use crate::record::{
    BidSource, DetectedBid, DetectedFacet, DetectedSlot, PartnerLatency, VisitRecord,
};
use hb_dom::{Browser, WebRequestEvent};
use hb_http::{HStr, Json, RequestId};
use hb_simnet::SimTime;
use std::cell::RefCell;
use hb_simnet::FxHashMap;
use std::rc::Rc;
use std::sync::Arc;

/// One observed request with its lifecycle timing and extracted content.
#[derive(Clone, Debug)]
struct ObservedRequest {
    kind: RequestKind,
    /// Matched partner, as an index into the detector's list.
    partner_index: Option<u32>,
    sent_at: SimTime,
    completed_at: Option<SimTime>,
    failed: bool,
    /// Parsed bid entries from a successful bid response.
    response_bids: Vec<RawBid>,
    /// Parsed winner entries from an ad-server response.
    response_winners: Vec<RawWinner>,
    /// Did the response body carry HB params (server-side signal)?
    response_has_hb_params: bool,
}

/// A bid parsed from response JSON (before enrichment).
#[derive(Clone, Debug)]
struct RawBid {
    bidder: HStr,
    slot: HStr,
    cpm: f64,
    size: HStr,
}

/// A winner parsed from an ad-server response.
#[derive(Clone, Debug)]
struct RawWinner {
    slot: HStr,
    bidder: HStr,
    pb: f64,
    size: HStr,
    channel: HStr,
}

/// Accumulated observation state (shared with the browser taps).
#[derive(Default)]
struct DetectorState {
    events: Vec<CapturedEvent>,
    // Fx-hashed: touched 2-3 times per classified request on the visit
    // hot path; iteration for output goes through `order`.
    requests: FxHashMap<RequestId, ObservedRequest>,
    order: Vec<RequestId>,
}

/// The HBDetector. Create with a partner list, [`attach`](Self::attach) to
/// a browser, run the visit, then [`finish`](Self::finish).
pub struct HbDetector {
    list: Arc<PartnerList>,
    state: Rc<RefCell<DetectorState>>,
}

impl HbDetector {
    /// Create a detector with the given known-partner list.
    pub fn new(list: PartnerList) -> HbDetector {
        HbDetector::with_list(Arc::new(list))
    }

    /// Create a detector sharing an already-built partner list (the
    /// crawler path: one list per campaign, not one rebuild per visit).
    pub fn with_list(list: Arc<PartnerList>) -> HbDetector {
        HbDetector {
            list,
            state: Rc::new(RefCell::new(DetectorState::default())),
        }
    }

    /// Attach the detector's taps to a browser (content script + webRequest
    /// observer). Must be called before the visit starts.
    pub fn attach(&self, browser: &mut Browser) {
        // DOM event tap (method 2).
        let state = self.state.clone();
        browser.events.tap(move |ev| {
            if let Some(captured) = CapturedEvent::from_dom(ev) {
                state.borrow_mut().events.push(captured);
            }
        });
        // webRequest tap (method 3).
        let state = self.state.clone();
        let list = self.list.clone();
        browser.webrequest.tap(move |ev| {
            let mut st = state.borrow_mut();
            match ev {
                WebRequestEvent::Before { request, at } => {
                    let classification = classify_request(&list, request);
                    if classification.kind == RequestKind::Unrelated {
                        return;
                    }
                    st.order.push(request.id);
                    st.requests.insert(
                        request.id,
                        ObservedRequest {
                            kind: classification.kind,
                            partner_index: classification.partner_index,
                            sent_at: *at,
                            completed_at: None,
                            failed: false,
                            response_bids: Vec::new(),
                            response_winners: Vec::new(),
                            response_has_hb_params: false,
                        },
                    );
                }
                WebRequestEvent::Completed { request, response, at } => {
                    if let Some(obs) = st.requests.get_mut(&request.id) {
                        obs.completed_at = Some(*at);
                        obs.response_has_hb_params = response_has_hb_params(response);
                        // Parse every JSON body, not just hb_-flagged ones:
                        // bid/winner extraction must not depend on the
                        // payload carrying an hb_ key alongside the lists.
                        // Structured bodies are borrowed (no tree clone);
                        // text bodies are still parsed opportunistically.
                        response.body.with_json(|body| parse_response_content(obs, body));
                    }
                }
                WebRequestEvent::Failed { request, .. } => {
                    if let Some(obs) = st.requests.get_mut(&request.id) {
                        obs.failed = true;
                    }
                }
            }
        });
    }

    /// Number of HB events captured so far (diagnostics).
    pub fn events_captured(&self) -> usize {
        self.state.borrow().events.len()
    }

    /// Clear all accumulated observation state for a fresh visit while
    /// keeping the allocated capacity (vectors, request map). The pooled
    /// crawl path attaches the detector to a reused browser once per
    /// worker and calls `reset` between visits.
    pub fn reset(&self) {
        let mut st = self.state.borrow_mut();
        st.events.clear();
        st.requests.clear();
        st.order.clear();
    }

    /// Reconstruct the visit record. `domain`, `rank` and `day` are crawl
    /// metadata; `page_load_ms` comes from the page timing. All strings
    /// are interned into `strings` — resolve the record against it.
    pub fn finish(
        &self,
        domain: &str,
        rank: u32,
        day: u32,
        page_load_ms: Option<f64>,
        strings: &mut Interner,
    ) -> VisitRecord {
        let st = self.state.borrow();
        let entry = |idx: Option<u32>| idx.map(|i| self.list.entry(i));
        let mut rec = VisitRecord {
            domain: strings.intern(domain),
            rank,
            day,
            page_load_ms,
            ..VisitRecord::default()
        };

        // --- Gather the key requests -------------------------------------
        let ordered: Vec<&ObservedRequest> = st
            .order
            .iter()
            .filter_map(|id| st.requests.get(id))
            .collect();
        let bid_requests: Vec<&ObservedRequest> = ordered
            .iter()
            .copied()
            .filter(|r| r.kind == RequestKind::BidRequest)
            .collect();
        let adserver_calls: Vec<&ObservedRequest> = ordered
            .iter()
            .copied()
            .filter(|r| r.kind == RequestKind::AdServerCall)
            .collect();

        // --- HB present? ---------------------------------------------------
        let has_proof_event = st.events.iter().any(|e| e.kind.proves_hb());
        let has_hb_response_params = adserver_calls
            .iter()
            .any(|r| r.response_has_hb_params)
            || bid_requests.iter().any(|r| r.response_has_hb_params);
        rec.hb_detected = has_proof_event || !bid_requests.is_empty() || has_hb_response_params;
        if !rec.hb_detected {
            return rec;
        }

        // --- Facet --------------------------------------------------------
        let adserver_call = adserver_calls.first().copied();
        let adserver_is_partner = adserver_call
            .map(|c| c.partner_index.is_some())
            .unwrap_or(false);
        rec.facet = Some(if bid_requests.is_empty() {
            DetectedFacet::Server
        } else if adserver_is_partner {
            DetectedFacet::Hybrid
        } else {
            DetectedFacet::Client
        });

        // --- Partners (request-level evidence) ------------------------------
        let mut partners: Vec<&str> = Vec::new();
        for r in bid_requests.iter().chain(adserver_call.iter()) {
            if let Some(e) = entry(r.partner_index) {
                if !partners.contains(&e.name.as_str()) {
                    partners.push(&e.name);
                }
            }
        }
        partners.sort_unstable();
        rec.partners = partners.iter().map(|name| strings.intern(name)).collect();

        // --- Timing ---------------------------------------------------------
        let first_hb_request_at = bid_requests
            .iter()
            .map(|r| r.sent_at)
            .chain(adserver_call.iter().map(|r| r.sent_at))
            .min();
        let adserver_sent_at = adserver_call.map(|c| c.sent_at);
        let adserver_done_at = adserver_call.and_then(|c| c.completed_at);
        if let (Some(t0), Some(t1)) = (first_hb_request_at, adserver_done_at) {
            rec.hb_latency_ms = Some(t1.saturating_since(t0).as_millis_f64());
        }

        // --- Bids -----------------------------------------------------------
        for r in &bid_requests {
            let late = match (r.completed_at, adserver_sent_at) {
                (Some(done), Some(sent)) => done > sent,
                // Never completed: counts as lost, not late.
                _ => false,
            };
            let latency_ms = r
                .completed_at
                .map(|done| done.saturating_since(r.sent_at).as_millis_f64());
            if let Some(e) = entry(r.partner_index) {
                if let Some(lat) = latency_ms {
                    rec.partner_latencies.push(PartnerLatency {
                        partner_name: strings.intern(&e.name),
                        bidder_code: strings.intern(&e.code),
                        latency_ms: lat,
                        late,
                    });
                }
            }
            for bid in &r.response_bids {
                let partner_name = match self.list.by_code(&bid.bidder) {
                    Some(e) => strings.intern(&e.name),
                    None => strings.intern(&bid.bidder),
                };
                rec.bids.push(DetectedBid {
                    bidder_code: strings.intern(&bid.bidder),
                    partner_name,
                    slot: strings.intern(&bid.slot),
                    cpm: bid.cpm,
                    size: strings.intern(&bid.size),
                    late,
                    latency_ms,
                    source: BidSource::ClientVisible,
                });
            }
        }
        // Provider latency for the ad-server call itself (the paper's
        // partner-latency view includes the providers).
        if let Some(c) = adserver_call {
            if let (Some(e), Some(done)) = (entry(c.partner_index), c.completed_at) {
                rec.partner_latencies.push(PartnerLatency {
                    partner_name: strings.intern(&e.name),
                    bidder_code: strings.intern(&e.code),
                    latency_ms: done.saturating_since(c.sent_at).as_millis_f64(),
                    late: false,
                });
            }
        }

        // --- Winners / slots -------------------------------------------------
        for c in &adserver_calls {
            for w in &c.response_winners {
                let slot = strings.intern(&w.slot);
                let size = strings.intern(&w.size);
                let winner = strings.intern(&w.bidder);
                if w.channel == "hb" && !w.bidder.is_empty() {
                    // Server-reported wins: visible bid evidence for
                    // Server-Side and Hybrid HB (the only price signal the
                    // client gets there). Skip bidders already seen as
                    // client bids for this slot to avoid double counting.
                    let already = rec
                        .bids
                        .iter()
                        .any(|b| b.source == BidSource::ClientVisible
                            && b.bidder_code == winner
                            && b.slot == slot);
                    if !already {
                        let partner_name = match self.list.by_code(&w.bidder) {
                            Some(e) => strings.intern(&e.name),
                            None => winner,
                        };
                        rec.bids.push(DetectedBid {
                            bidder_code: winner,
                            partner_name,
                            slot,
                            cpm: w.pb,
                            size,
                            late: false,
                            latency_ms: None,
                            source: BidSource::ServerReported,
                        });
                    }
                }
                rec.slots.push(DetectedSlot {
                    slot,
                    size,
                    winner,
                    price: w.pb,
                    channel: strings.intern(&w.channel),
                });
            }
        }

        // --- Slots auctioned --------------------------------------------------
        // Prefer the auctionInit adUnitCodes count; fall back to the
        // ad-server call's hb_slot parameters; then to rendered slots.
        let init_units: Option<u32> = None; // adUnitCodes not stored per event; use slots
        rec.slots_auctioned = init_units.unwrap_or_else(|| {
            let from_slots = rec.slots.len() as u32;
            if from_slots > 0 {
                from_slots
            } else {
                rec.bids
                    .iter()
                    .map(|b| b.slot)
                    .collect::<std::collections::BTreeSet<_>>()
                    .len() as u32
            }
        });

        // --- Event counters ----------------------------------------------------
        // Fixed-size count array indexed by kind; emitted sorted by event
        // name, skipping kinds that never fired.
        let mut counts = [0u32; HbEventKind::ALL.len()];
        for e in &st.events {
            counts[e.kind as usize] += 1;
        }
        let mut names: Vec<(&'static str, u32)> = HbEventKind::ALL
            .iter()
            .map(|k| (k.event_name(), counts[*k as usize]))
            .filter(|(_, n)| *n > 0)
            .collect();
        names.sort_unstable();
        rec.event_counts = names
            .into_iter()
            .map(|(name, n)| (strings.intern(name), n))
            .collect();

        rec
    }
}

/// Parse bid-response and ad-server-response JSON into raw entries.
fn parse_response_content(obs: &mut ObservedRequest, body: &Json) {
    if let Some(bids) = body.get("bids").and_then(|b| b.as_arr()) {
        for b in bids {
            let bidder = b.get("bidder").and_then(|v| v.as_str()).unwrap_or("");
            if bidder.is_empty() {
                continue;
            }
            obs.response_bids.push(RawBid {
                bidder: HStr::new(bidder),
                slot: HStr::new(b.get("hb_slot").and_then(|v| v.as_str()).unwrap_or("")),
                cpm: b.get("cpm").and_then(|v| v.as_f64()).unwrap_or(0.0),
                size: HStr::new(b.get("hb_size").and_then(|v| v.as_str()).unwrap_or("")),
            });
        }
    }
    if let Some(winners) = body.get("winners").and_then(|w| w.as_arr()) {
        for w in winners {
            obs.response_winners.push(RawWinner {
                slot: HStr::new(w.get("hb_slot").and_then(|v| v.as_str()).unwrap_or("")),
                bidder: HStr::new(w.get("hb_bidder").and_then(|v| v.as_str()).unwrap_or("")),
                pb: w
                    .get("hb_pb")
                    .and_then(|v| v.as_str())
                    .and_then(|s| s.parse::<f64>().ok())
                    .unwrap_or(0.0),
                size: HStr::new(w.get("hb_size").and_then(|v| v.as_str()).unwrap_or("")),
                channel: HStr::new(w.get("channel").and_then(|v| v.as_str()).unwrap_or("")),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_http::{Request, Response, Url};
    use hb_simnet::SimTime;

    fn browser() -> Browser {
        Browser::open(Url::parse("https://pub.example/").unwrap(), SimTime::ZERO)
    }

    /// Resolve a symbol list to strings for assertions.
    fn resolved(strings: &Interner, syms: &[crate::intern::Symbol]) -> Vec<String> {
        syms.iter().map(|s| strings.resolve(*s).to_string()).collect()
    }

    /// Drive a synthetic client-side HB visit directly against the browser
    /// notification API (no simulator needed at this level).
    fn synthetic_client_visit(b: &mut Browser) {
        // auctionInit
        b.fire_event(
            SimTime::from_millis(100),
            "auctionInit",
            &Json::obj([("hb_auction", Json::str("a1"))]),
        );
        // bid request to AppNexus at t=100, response at t=300 with one bid.
        let id = b.next_request_id();
        let req = Request::get(
            id,
            Url::parse(
                "https://appnexus-adnet.example/hb/bid?hb_auction=a1&hb_bidder=appnexus&hb_source=client",
            )
            .unwrap(),
        );
        b.note_request_out(&req, SimTime::from_millis(100));
        let rsp_body = Json::parse(
            r#"{"hb_auction":"a1","bids":[{"bidder":"appnexus","hb_slot":"s1","cpm":0.4,"hb_size":"300x250","hb_adid":"cr1","hb_currency":"USD"}]}"#,
        )
        .unwrap();
        b.note_response_in(&req, &Response::json(id, rsp_body), SimTime::from_millis(300));
        b.fire_event(
            SimTime::from_millis(300),
            "bidResponse",
            &Json::obj([("bidder", Json::str("appnexus")), ("cpm", Json::num(0.4))]),
        );
        // auctionEnd + ad server call to the publisher's own server.
        b.fire_event(
            SimTime::from_millis(400),
            "auctionEnd",
            &Json::obj([]));
        let id2 = b.next_request_id();
        let req2 = Request::get(
            id2,
            Url::parse(
                "https://ads.pub.example/gampad/ads?account=pub-1&hb_auction=a1&hb_slot=s1&hb_bidder=appnexus&hb_pb=0.40&hb_size=300x250",
            )
            .unwrap(),
        );
        b.note_request_out(&req2, SimTime::from_millis(400));
        let winners = Json::parse(
            r#"{"hb_auction":"a1","winners":[{"hb_slot":"s1","channel":"hb","hb_bidder":"appnexus","hb_pb":"0.40","hb_size":"300x250","hb_adid":"cr1"}]}"#,
        )
        .unwrap();
        b.note_response_in(&req2, &Response::json(id2, winners), SimTime::from_millis(460));
        b.fire_event(
            SimTime::from_millis(470),
            "bidWon",
            &Json::obj([("hb_bidder", Json::str("appnexus"))]),
        );
    }

    #[test]
    fn client_side_reconstruction() {
        let det = HbDetector::new(PartnerList::demo());
        let mut b = browser();
        det.attach(&mut b);
        synthetic_client_visit(&mut b);
        let mut strings = Interner::new();
        let rec = det.finish("pub.example", 10, 0, Some(900.0), &mut strings);
        assert!(rec.hb_detected);
        assert_eq!(strings.resolve(rec.domain), "pub.example");
        assert_eq!(rec.facet, Some(DetectedFacet::Client));
        assert_eq!(resolved(&strings, &rec.partners), vec!["AppNexus"]);
        assert_eq!(rec.bids.len(), 1);
        assert_eq!(strings.resolve(rec.bids[0].bidder_code), "appnexus");
        assert!(!rec.bids[0].late);
        assert_eq!(rec.bids[0].latency_ms, Some(200.0));
        // 100 → 460 ms.
        assert_eq!(rec.hb_latency_ms, Some(360.0));
        assert_eq!(rec.slots_auctioned, 1);
        assert_eq!(rec.slots.len(), 1);
        assert_eq!(strings.resolve(rec.slots[0].channel), "hb");
        assert_eq!(rec.page_load_ms, Some(900.0));
        // Winner already counted as a client bid: no double count.
        assert_eq!(rec.bids.len(), 1);
    }

    #[test]
    fn server_side_reconstruction() {
        let det = HbDetector::new(PartnerList::demo());
        let mut b = browser();
        det.attach(&mut b);
        // Single call to DFP, hb params only in request/response; no events
        // except render.
        let id = b.next_request_id();
        let req = Request::get(
            id,
            Url::parse(
                "https://doubleclick-adnet.example/gampad/ads?account=pub-2&hb_auction=a2&hb_source=s2s&hb_slot=s1&hb_slot=s2",
            )
            .unwrap(),
        );
        b.note_request_out(&req, SimTime::from_millis(50));
        let winners = Json::parse(
            r#"{"hb_auction":"a2","winners":[
                {"hb_slot":"s1","channel":"hb","hb_bidder":"rubicon","hb_pb":"0.30","hb_size":"300x250","hb_adid":"x"},
                {"hb_slot":"s2","channel":"fallback","hb_size":"728x90"}
            ]}"#,
        )
        .unwrap();
        b.note_response_in(&req, &Response::json(id, winners), SimTime::from_millis(320));
        b.fire_event(
            SimTime::from_millis(340),
            "slotRenderEnded",
            &Json::obj([("hb_slot", Json::str("s1"))]),
        );
        let mut strings = Interner::new();
        let rec = det.finish("pub2.example", 20, 3, None, &mut strings);
        assert!(rec.hb_detected);
        assert_eq!(rec.facet, Some(DetectedFacet::Server));
        assert_eq!(resolved(&strings, &rec.partners), vec!["DFP"]);
        assert_eq!(rec.hb_latency_ms, Some(270.0));
        // One server-reported bid (the winner), one fallback slot.
        assert_eq!(rec.bids.len(), 1);
        assert_eq!(rec.bids[0].source, BidSource::ServerReported);
        assert_eq!(strings.resolve(rec.bids[0].partner_name), "Rubicon");
        assert_eq!(rec.slots.len(), 2);
        assert_eq!(rec.slots_auctioned, 2);
        assert_eq!(rec.day, 3);
    }

    #[test]
    fn hybrid_reconstruction() {
        let det = HbDetector::new(PartnerList::demo());
        let mut b = browser();
        det.attach(&mut b);
        // Client bid to rubicon + ad-server call to DFP (a known partner).
        let id = b.next_request_id();
        let req = Request::get(
            id,
            Url::parse(
                "https://rubicon-adnet.example/hb/bid?hb_auction=a3&hb_bidder=rubicon&hb_source=client",
            )
            .unwrap(),
        );
        b.note_request_out(&req, SimTime::from_millis(10));
        b.note_response_in(&req, &Response::no_content(id), SimTime::from_millis(150));
        let id2 = b.next_request_id();
        let req2 = Request::get(
            id2,
            Url::parse(
                "https://doubleclick-adnet.example/gampad/ads?account=pub-3&hb_auction=a3&hb_source=client&hb_slot=s1",
            )
            .unwrap(),
        );
        b.note_request_out(&req2, SimTime::from_millis(200));
        b.note_response_in(&req2, &Response::no_content(id2), SimTime::from_millis(350));
        let mut strings = Interner::new();
        let rec = det.finish("pub3.example", 30, 1, None, &mut strings);
        assert!(rec.hb_detected);
        assert_eq!(rec.facet, Some(DetectedFacet::Hybrid));
        let mut partners = resolved(&strings, &rec.partners);
        partners.sort();
        assert_eq!(partners, vec!["DFP".to_string(), "Rubicon".to_string()]);
        // No-bid from rubicon still yields a latency observation.
        assert_eq!(rec.partner_latencies.len(), 2, "rubicon + provider");
    }

    #[test]
    fn late_bids_detected_from_timing() {
        let det = HbDetector::new(PartnerList::demo());
        let mut b = browser();
        det.attach(&mut b);
        // Bid request out at 10; ad server call sent at 100; bid response
        // arrives at 500 → late.
        let id = b.next_request_id();
        let req = Request::get(
            id,
            Url::parse(
                "https://appnexus-adnet.example/hb/bid?hb_auction=a4&hb_bidder=appnexus&hb_source=client",
            )
            .unwrap(),
        );
        b.note_request_out(&req, SimTime::from_millis(10));
        let id2 = b.next_request_id();
        let req2 = Request::get(
            id2,
            Url::parse("https://ads.pub.example/gampad/ads?account=p&hb_auction=a4&hb_slot=s1")
                .unwrap(),
        );
        b.note_request_out(&req2, SimTime::from_millis(100));
        b.note_response_in(&req2, &Response::no_content(id2), SimTime::from_millis(160));
        let body = Json::parse(
            r#"{"hb_auction":"a4","bids":[{"bidder":"appnexus","hb_slot":"s1","cpm":0.2,"hb_size":"300x250","hb_adid":"c","hb_currency":"USD"}]}"#,
        )
        .unwrap();
        b.note_response_in(&req, &Response::json(id, body), SimTime::from_millis(500));
        let mut strings = Interner::new();
        let rec = det.finish("pub4.example", 40, 0, None, &mut strings);
        assert_eq!(rec.bids.len(), 1);
        assert!(rec.bids[0].late);
        assert_eq!(rec.late_fraction(), Some(1.0));
        assert_eq!(rec.partner_latencies.len(), 1);
        assert!(rec.partner_latencies[0].late);
    }

    #[test]
    fn waterfall_site_not_detected() {
        let det = HbDetector::new(PartnerList::demo());
        let mut b = browser();
        det.attach(&mut b);
        // RTB-style traffic to a known partner without hb params.
        let id = b.next_request_id();
        let req = Request::get(
            id,
            Url::parse("https://rubicon-adnet.example/rtb/ad?floor=0.10&size=300x250&cb=7")
                .unwrap(),
        );
        b.note_request_out(&req, SimTime::from_millis(10));
        b.note_response_in(&req, &Response::no_content(id), SimTime::from_millis(90));
        let id2 = b.next_request_id();
        let req2 = Request::get(
            id2,
            Url::parse("https://rubicon-adnet.example/rtb/notify?wp=0.21&cb=9").unwrap(),
        );
        b.note_request_out(&req2, SimTime::from_millis(100));
        let mut strings = Interner::new();
        let rec = det.finish("wf.example", 50, 0, None, &mut strings);
        assert!(!rec.hb_detected, "waterfall must not be flagged");
        assert!(rec.facet.is_none());
        assert!(rec.bids.is_empty());
    }

    #[test]
    fn empty_visit_not_detected() {
        let det = HbDetector::new(PartnerList::demo());
        let mut b = browser();
        det.attach(&mut b);
        let mut strings = Interner::new();
        let rec = det.finish("static.example", 60, 0, Some(120.0), &mut strings);
        assert!(!rec.hb_detected);
        assert_eq!(rec.partner_count(), 0);
        assert_eq!(det.events_captured(), 0);
    }
}
