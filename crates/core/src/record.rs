//! Detection records — the dataset rows the analysis layer consumes.

use std::fmt;

/// The detector's independent facet verdict (kept separate from the
/// simulator's ground-truth enum so hb-core never depends on hb-adtech).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DetectedFacet {
    /// Auction ran in the browser; bids forwarded to the publisher's own
    /// ad server.
    Client,
    /// A single known partner ran the auction remotely.
    Server,
    /// Client fan-out plus a known-partner ad server.
    Hybrid,
}

impl DetectedFacet {
    /// Stable label matching the paper's terminology.
    pub fn label(&self) -> &'static str {
        match self {
            DetectedFacet::Client => "client-side",
            DetectedFacet::Server => "server-side",
            DetectedFacet::Hybrid => "hybrid",
        }
    }
}

impl fmt::Display for DetectedFacet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a detected bid was observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BidSource {
    /// Client-visible bid response (Client-Side / Hybrid HB).
    ClientVisible,
    /// Reported in an ad-server/provider response (Server-Side winners).
    ServerReported,
}

/// One bid the detector extracted.
#[derive(Clone, Debug)]
pub struct DetectedBid {
    /// Bidder code (`appnexus`).
    pub bidder_code: String,
    /// Display name resolved through the partner list (falls back to the
    /// code when unknown).
    pub partner_name: String,
    /// Slot the bid targeted.
    pub slot: String,
    /// Price in CPM (client bids: raw cpm; server-reported: price bucket).
    pub cpm: f64,
    /// Creative size string (`300x250`).
    pub size: String,
    /// Did it arrive after the ad-server send (late)?
    pub late: bool,
    /// Partner response latency in milliseconds, when measurable.
    pub latency_ms: Option<f64>,
    /// Observation channel.
    pub source: BidSource,
}

/// One per-partner request latency observation.
#[derive(Clone, Debug)]
pub struct PartnerLatency {
    /// Partner display name.
    pub partner_name: String,
    /// Bidder code.
    pub bidder_code: String,
    /// Round-trip milliseconds (request out → response completed).
    pub latency_ms: f64,
    /// Was the response late relative to the ad-server send?
    pub late: bool,
}

/// A rendered/decisioned slot observation.
#[derive(Clone, Debug)]
pub struct DetectedSlot {
    /// Slot code.
    pub slot: String,
    /// Size string.
    pub size: String,
    /// Winning bidder code, when an HB bid won (empty otherwise).
    pub winner: String,
    /// Price bucket it cleared at (0 when not HB).
    pub price: f64,
    /// Channel label reported by the ad server (`hb`/`direct`/`fallback`/
    /// `unfilled`), when visible.
    pub channel: String,
}

/// Everything the detector learned from one page visit.
#[derive(Clone, Debug, Default)]
pub struct VisitRecord {
    /// Site hostname.
    pub domain: String,
    /// Site rank (1-based) — metadata supplied by the crawler.
    pub rank: u32,
    /// Crawl day (0-based) — metadata supplied by the crawler.
    pub day: u32,
    /// Did the visit exhibit HB activity?
    pub hb_detected: bool,
    /// Facet classification, when HB was detected.
    pub facet: Option<DetectedFacet>,
    /// Unique partner display names participating (request-level evidence).
    pub partners: Vec<String>,
    /// Number of ad slots auctioned.
    pub slots_auctioned: u32,
    /// Total HB latency (first bid request → ad-server response), ms.
    pub hb_latency_ms: Option<f64>,
    /// All bids observed.
    pub bids: Vec<DetectedBid>,
    /// Per-partner latency observations.
    pub partner_latencies: Vec<PartnerLatency>,
    /// Slot decisions observed.
    pub slots: Vec<DetectedSlot>,
    /// Count of HB DOM events seen, per kind label.
    pub event_counts: Vec<(String, u32)>,
    /// Page load time in ms, when the page finished loading.
    pub page_load_ms: Option<f64>,
}

impl VisitRecord {
    /// Bids that arrived in time.
    pub fn on_time_bids(&self) -> usize {
        self.bids.iter().filter(|b| !b.late).count()
    }

    /// Bids that arrived late.
    pub fn late_bids(&self) -> usize {
        self.bids.iter().filter(|b| b.late).count()
    }

    /// Fraction of bids that were late; `None` when no bids arrived.
    pub fn late_fraction(&self) -> Option<f64> {
        if self.bids.is_empty() {
            None
        } else {
            Some(self.late_bids() as f64 / self.bids.len() as f64)
        }
    }

    /// Number of distinct partners.
    pub fn partner_count(&self) -> usize {
        self.partners.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(late: bool) -> DetectedBid {
        DetectedBid {
            bidder_code: "x".into(),
            partner_name: "X".into(),
            slot: "s".into(),
            cpm: 0.1,
            size: "300x250".into(),
            late,
            latency_ms: Some(100.0),
            source: BidSource::ClientVisible,
        }
    }

    #[test]
    fn late_accounting() {
        let mut r = VisitRecord::default();
        assert_eq!(r.late_fraction(), None);
        r.bids = vec![bid(false), bid(true), bid(true), bid(false)];
        assert_eq!(r.on_time_bids(), 2);
        assert_eq!(r.late_bids(), 2);
        assert_eq!(r.late_fraction(), Some(0.5));
    }

    #[test]
    fn facet_labels() {
        assert_eq!(DetectedFacet::Client.label(), "client-side");
        assert_eq!(DetectedFacet::Server.label(), "server-side");
        assert_eq!(DetectedFacet::Hybrid.label(), "hybrid");
        assert_eq!(format!("{}", DetectedFacet::Hybrid), "hybrid");
    }

    #[test]
    fn partner_count_uses_list() {
        let r = VisitRecord {
            partners: vec!["DFP".into(), "Criteo".into()],
            ..VisitRecord::default()
        };
        assert_eq!(r.partner_count(), 2);
    }
}
