//! Detection records — the dataset rows the analysis layer consumes.
//!
//! All high-cardinality repeated strings (domains, partner names, bidder
//! codes, slot codes, size strings, channel labels) are stored as interned
//! [`Symbol`]s; resolve them against the interner the record was built
//! with (per-visit: the detector's; per-campaign: the dataset's).

use crate::intern::Symbol;
use std::fmt;

/// The detector's independent facet verdict (kept separate from the
/// simulator's ground-truth enum so hb-core never depends on hb-adtech).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DetectedFacet {
    /// Auction ran in the browser; bids forwarded to the publisher's own
    /// ad server.
    Client,
    /// A single known partner ran the auction remotely.
    Server,
    /// Client fan-out plus a known-partner ad server.
    Hybrid,
}

impl DetectedFacet {
    /// Stable label matching the paper's terminology.
    pub fn label(&self) -> &'static str {
        match self {
            DetectedFacet::Client => "client-side",
            DetectedFacet::Server => "server-side",
            DetectedFacet::Hybrid => "hybrid",
        }
    }
}

impl fmt::Display for DetectedFacet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a detected bid was observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BidSource {
    /// Client-visible bid response (Client-Side / Hybrid HB).
    ClientVisible,
    /// Reported in an ad-server/provider response (Server-Side winners).
    ServerReported,
}

/// One bid the detector extracted.
#[derive(Clone, Copy, Debug)]
pub struct DetectedBid {
    /// Bidder code (`appnexus`).
    pub bidder_code: Symbol,
    /// Display name resolved through the partner list (falls back to the
    /// code when unknown).
    pub partner_name: Symbol,
    /// Slot the bid targeted.
    pub slot: Symbol,
    /// Price in CPM (client bids: raw cpm; server-reported: price bucket).
    pub cpm: f64,
    /// Creative size string (`300x250`).
    pub size: Symbol,
    /// Did it arrive after the ad-server send (late)?
    pub late: bool,
    /// Partner response latency in milliseconds, when measurable.
    pub latency_ms: Option<f64>,
    /// Observation channel.
    pub source: BidSource,
}

/// One per-partner request latency observation.
#[derive(Clone, Copy, Debug)]
pub struct PartnerLatency {
    /// Partner display name.
    pub partner_name: Symbol,
    /// Bidder code.
    pub bidder_code: Symbol,
    /// Round-trip milliseconds (request out → response completed).
    pub latency_ms: f64,
    /// Was the response late relative to the ad-server send?
    pub late: bool,
}

/// A rendered/decisioned slot observation.
#[derive(Clone, Copy, Debug)]
pub struct DetectedSlot {
    /// Slot code.
    pub slot: Symbol,
    /// Size string.
    pub size: Symbol,
    /// Winning bidder code, when an HB bid won ([`Symbol::EMPTY`]
    /// otherwise).
    pub winner: Symbol,
    /// Price bucket it cleared at (0 when not HB).
    pub price: f64,
    /// Channel label reported by the ad server (`hb`/`direct`/`fallback`/
    /// `unfilled`), when visible.
    pub channel: Symbol,
}

/// Everything the detector learned from one page visit.
#[derive(Clone, Debug, Default)]
pub struct VisitRecord {
    /// Site hostname.
    pub domain: Symbol,
    /// Site rank (1-based) — metadata supplied by the crawler.
    pub rank: u32,
    /// Crawl day (0-based) — metadata supplied by the crawler.
    pub day: u32,
    /// Did the visit exhibit HB activity?
    pub hb_detected: bool,
    /// Facet classification, when HB was detected.
    pub facet: Option<DetectedFacet>,
    /// Unique partner display names participating (request-level
    /// evidence), sorted by resolved name.
    pub partners: Vec<Symbol>,
    /// Number of ad slots auctioned.
    pub slots_auctioned: u32,
    /// Total HB latency (first bid request → ad-server response), ms.
    pub hb_latency_ms: Option<f64>,
    /// All bids observed.
    pub bids: Vec<DetectedBid>,
    /// Per-partner latency observations.
    pub partner_latencies: Vec<PartnerLatency>,
    /// Slot decisions observed.
    pub slots: Vec<DetectedSlot>,
    /// Count of HB DOM events seen, per kind label (sorted by label).
    pub event_counts: Vec<(Symbol, u32)>,
    /// Page load time in ms, when the page finished loading.
    pub page_load_ms: Option<f64>,
    /// Bid requests that never completed (dropped/timed out on the wire).
    pub bids_dropped: u32,
    /// Bid requests that were deterministic retries of a failed attempt.
    pub retries: u32,
    /// Distinct partners with at least one uncompleted bid request.
    pub timed_out_partners: u32,
    /// Did a passback / house ad fill the slots after every demand source
    /// failed?
    pub passback_served: bool,
}

impl VisitRecord {
    /// Bids that arrived in time.
    pub fn on_time_bids(&self) -> usize {
        self.bids.iter().filter(|b| !b.late).count()
    }

    /// Bids that arrived late.
    pub fn late_bids(&self) -> usize {
        self.bids.iter().filter(|b| b.late).count()
    }

    /// Fraction of bids that were late; `None` when no bids arrived.
    pub fn late_fraction(&self) -> Option<f64> {
        if self.bids.is_empty() {
            None
        } else {
            Some(self.late_bids() as f64 / self.bids.len() as f64)
        }
    }

    /// Number of distinct partners.
    pub fn partner_count(&self) -> usize {
        self.partners.len()
    }

    /// Rewrite every symbol in the record through `f`. Used by the
    /// campaign collector to migrate records from a worker-local interner
    /// into the campaign-wide one.
    pub fn remap_symbols(&mut self, f: &mut impl FnMut(Symbol) -> Symbol) {
        self.domain = f(self.domain);
        for p in &mut self.partners {
            *p = f(*p);
        }
        for b in &mut self.bids {
            b.bidder_code = f(b.bidder_code);
            b.partner_name = f(b.partner_name);
            b.slot = f(b.slot);
            b.size = f(b.size);
        }
        for pl in &mut self.partner_latencies {
            pl.partner_name = f(pl.partner_name);
            pl.bidder_code = f(pl.bidder_code);
        }
        for s in &mut self.slots {
            s.slot = f(s.slot);
            s.size = f(s.size);
            s.winner = f(s.winner);
            s.channel = f(s.channel);
        }
        for (label, _) in &mut self.event_counts {
            *label = f(*label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Interner;

    fn bid(strings: &mut Interner, late: bool) -> DetectedBid {
        DetectedBid {
            bidder_code: strings.intern("x"),
            partner_name: strings.intern("X"),
            slot: strings.intern("s"),
            cpm: 0.1,
            size: strings.intern("300x250"),
            late,
            latency_ms: Some(100.0),
            source: BidSource::ClientVisible,
        }
    }

    #[test]
    fn late_accounting() {
        let mut strings = Interner::new();
        let mut r = VisitRecord::default();
        assert_eq!(r.late_fraction(), None);
        r.bids = vec![
            bid(&mut strings, false),
            bid(&mut strings, true),
            bid(&mut strings, true),
            bid(&mut strings, false),
        ];
        assert_eq!(r.on_time_bids(), 2);
        assert_eq!(r.late_bids(), 2);
        assert_eq!(r.late_fraction(), Some(0.5));
    }

    #[test]
    fn facet_labels() {
        assert_eq!(DetectedFacet::Client.label(), "client-side");
        assert_eq!(DetectedFacet::Server.label(), "server-side");
        assert_eq!(DetectedFacet::Hybrid.label(), "hybrid");
        assert_eq!(format!("{}", DetectedFacet::Hybrid), "hybrid");
    }

    #[test]
    fn partner_count_uses_list() {
        let mut strings = Interner::new();
        let r = VisitRecord {
            partners: vec![strings.intern("DFP"), strings.intern("Criteo")],
            ..VisitRecord::default()
        };
        assert_eq!(r.partner_count(), 2);
    }

    #[test]
    fn remap_rewrites_every_symbol() {
        let mut local = Interner::new();
        let mut global = Interner::new();
        global.intern("already-there");
        let mut r = VisitRecord {
            domain: local.intern("pub1.example"),
            partners: vec![local.intern("DFP")],
            bids: vec![bid(&mut local, false)],
            partner_latencies: vec![PartnerLatency {
                partner_name: local.intern("DFP"),
                bidder_code: local.intern("dfp"),
                latency_ms: 10.0,
                late: false,
            }],
            slots: vec![DetectedSlot {
                slot: local.intern("s1"),
                size: local.intern("728x90"),
                winner: Symbol::EMPTY,
                price: 0.0,
                channel: local.intern("hb"),
            }],
            event_counts: vec![(local.intern("auctionInit"), 2)],
            ..VisitRecord::default()
        };
        r.remap_symbols(&mut |sym| global.intern(local.resolve(sym)));
        assert_eq!(global.resolve(r.domain), "pub1.example");
        assert_eq!(global.resolve(r.partners[0]), "DFP");
        assert_eq!(global.resolve(r.bids[0].size), "300x250");
        assert_eq!(global.resolve(r.partner_latencies[0].bidder_code), "dfp");
        assert_eq!(global.resolve(r.slots[0].channel), "hb");
        assert_eq!(global.resolve(r.event_counts[0].0), "auctionInit");
        assert_eq!(r.slots[0].winner, Symbol::EMPTY, "EMPTY maps to EMPTY");
    }
}
