//! # hb-core — HBDetector
//!
//! The paper's primary contribution, re-implemented as a Rust library: a
//! real-time header bidding detector operating purely on browser-level
//! artifacts. It combines:
//!
//! * **DOM event inspection** ([`events`]): the eight wrapper events
//!   reverse-engineered from prebid.js and friends;
//! * **webRequest inspection** ([`classify`]): matching traffic against a
//!   curated partner list ([`list`]) and the library-fixed `hb_*`
//!   parameter dictionary;
//! * **reconstruction** ([`detector`]): correlating both streams into
//!   per-visit records ([`record`]) with facet classification, partner
//!   sets, bids, prices, total HB latency and late-bid accounting;
//! * **static analysis** ([`static_analysis`]): the signature-scan method
//!   used for historical (Wayback) snapshots, with its documented
//!   false-positive/negative modes.
//!
//! The crate deliberately depends only on the browser substrate
//! (`hb-dom`/`hb-http`), never on the ad-tech simulation — the same
//! measurement boundary the original Chrome extension has.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod columns;
pub mod detector;
pub mod events;
pub mod intern;
pub mod list;
pub mod record;
pub mod static_analysis;

pub use classify::{
    classify_request, hb_params_of_request, hb_params_of_response, is_hb_param,
    response_has_hb_params, Classification, RequestKind,
};
pub use columns::wire::{
    decode_columns, decode_interner, encode_columns, encode_interner, frame_payload_len,
    open_frame, seal_frame, seal_frame_into, xxh64, WireError, WireReader, WireWriter,
    FRAME_HEADER, FRAME_OVERHEAD, WIRE_MAGIC, WIRE_VERSION,
};
pub use columns::{VisitBuilder, VisitColumns, VisitScalars, VisitView};
pub use detector::HbDetector;
pub use events::{CapturedEvent, HbEventKind};
pub use intern::{Interner, Symbol};
pub use list::{LibrarySignatures, PartnerEntry, PartnerList};
pub use record::{
    BidSource, DetectedBid, DetectedFacet, DetectedSlot, PartnerLatency, VisitRecord,
};
pub use static_analysis::{analyze_html, StaticFinding};
