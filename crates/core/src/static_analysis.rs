//! Static HTML analysis — detection method 1.
//!
//! The paper uses static analysis only where dynamic analysis is
//! impossible: historical Wayback Machine snapshots for the six-year
//! adoption study (Figure 4). The method scans page source for known HB
//! library signatures and is documented as prone to both false positives
//! (misnamed libraries, HB code present but never executed) and false
//! negatives (renamed or unknown libraries) — which is why HBDetector's
//! live path uses events + requests instead.

use crate::list::LibrarySignatures;
use hb_dom::HtmlDoc;

/// Outcome of statically analyzing one page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticFinding {
    /// Did any signature match?
    pub hb_suspected: bool,
    /// The script `src` values that matched.
    pub matched_srcs: Vec<String>,
    /// Number of inline scripts that matched.
    pub matched_inline: usize,
}

/// Scan an HTML document for HB library signatures.
pub fn analyze_html(sigs: &LibrarySignatures, html: &str) -> StaticFinding {
    let doc = HtmlDoc::scan(html);
    let mut matched_srcs = Vec::new();
    for src in doc.script_srcs() {
        if sigs.matches_src(src) {
            matched_srcs.push(src.to_string());
        }
    }
    let matched_inline = doc
        .scripts
        .iter()
        .filter(|s| !s.inline.is_empty() && sigs.matches_inline(&s.inline))
        .count();
    StaticFinding {
        hb_suspected: !matched_srcs.is_empty() || matched_inline > 0,
        matched_srcs,
        matched_inline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_dom::HtmlBuilder;

    fn sigs() -> LibrarySignatures {
        LibrarySignatures::default()
    }

    #[test]
    fn detects_external_wrapper() {
        let html = HtmlBuilder::new("t")
            .head_script("https://cdn.example/prebid.js")
            .build();
        let f = analyze_html(&sigs(), &html);
        assert!(f.hb_suspected);
        assert_eq!(f.matched_srcs.len(), 1);
    }

    #[test]
    fn detects_inline_wrapper_code() {
        let html = HtmlBuilder::new("t")
            .head_inline("pbjs.requestBids({ timeout: 3000 });")
            .build();
        let f = analyze_html(&sigs(), &html);
        assert!(f.hb_suspected);
        assert_eq!(f.matched_inline, 1);
    }

    #[test]
    fn clean_page_not_flagged() {
        let html = HtmlBuilder::new("t")
            .head_script("https://cdn.example/jquery.js")
            .head_inline("console.log('x')")
            .build();
        let f = analyze_html(&sigs(), &html);
        assert!(!f.hb_suspected);
    }

    #[test]
    fn false_positive_mode_misnamed_library() {
        // A non-HB library shipped under an HB-ish name — the paper's
        // stated false-positive mode for static analysis.
        let html = HtmlBuilder::new("t")
            .head_script("https://cdn.example/vendor/prebid-polyfill-shim.js")
            .build();
        let f = analyze_html(&sigs(), &html);
        assert!(f.hb_suspected, "static analysis cannot tell the difference");
    }

    #[test]
    fn false_negative_mode_renamed_library() {
        // A renamed wrapper evades the signature list.
        let html = HtmlBuilder::new("t")
            .head_script("https://cdn.example/w.min.js")
            .build();
        let f = analyze_html(&sigs(), &html);
        assert!(!f.hb_suspected, "renamed wrappers are missed");
    }

    #[test]
    fn case_insensitive_matching() {
        let html = "<head><script src=\"https://c/PREBID.JS\"></script></head>";
        let f = analyze_html(&sigs(), html);
        assert!(f.hb_suspected);
    }
}
