//! HB DOM event taxonomy.
//!
//! Mirrors the event list the paper reverse-engineered from prebid.js (and
//! gpt.js / pubfood.js): the detector keeps its *own* copy of these names —
//! it must not share code with the wrapper, exactly as the real extension
//! is independent from the libraries it observes.

use hb_dom::DomEvent;
use hb_http::HStr;
use std::fmt;

/// The HB events the detector recognizes (paper §3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HbEventKind {
    /// The auction has started.
    AuctionInit,
    /// Bids have been requested.
    RequestBids,
    /// A bid was requested from a specific partner.
    BidRequested,
    /// A response has arrived.
    BidResponse,
    /// The auction has ended.
    AuctionEnd,
    /// A bid has won.
    BidWon,
    /// The ad's code is injected into a slot.
    SlotRenderEnded,
    /// An ad failed to render.
    AdRenderFailed,
    /// A passback / house ad filled the slots because every demand source
    /// failed (graceful degradation under network faults).
    Passback,
}

impl HbEventKind {
    /// All recognized kinds.
    pub const ALL: [HbEventKind; 9] = [
        HbEventKind::AuctionInit,
        HbEventKind::RequestBids,
        HbEventKind::BidRequested,
        HbEventKind::BidResponse,
        HbEventKind::AuctionEnd,
        HbEventKind::BidWon,
        HbEventKind::SlotRenderEnded,
        HbEventKind::AdRenderFailed,
        HbEventKind::Passback,
    ];

    /// The DOM event name this kind corresponds to.
    pub fn event_name(&self) -> &'static str {
        match self {
            HbEventKind::AuctionInit => "auctionInit",
            HbEventKind::RequestBids => "requestBids",
            HbEventKind::BidRequested => "bidRequested",
            HbEventKind::BidResponse => "bidResponse",
            HbEventKind::AuctionEnd => "auctionEnd",
            HbEventKind::BidWon => "bidWon",
            HbEventKind::SlotRenderEnded => "slotRenderEnded",
            HbEventKind::AdRenderFailed => "adRenderFailed",
            HbEventKind::Passback => "passbackServed",
        }
    }

    /// Parse a DOM event name.
    pub fn parse(name: &str) -> Option<HbEventKind> {
        Self::ALL.iter().copied().find(|k| k.event_name() == name)
    }

    /// Events that *prove* an HB auction is running in the browser.
    /// `slotRenderEnded` alone does not qualify: ad-manager tags fire it
    /// for any programmatic fill, including waterfall. `passbackServed`
    /// likewise: any tag setup can fall back to a house ad.
    pub fn proves_hb(&self) -> bool {
        !matches!(
            self,
            HbEventKind::SlotRenderEnded
                | HbEventKind::AdRenderFailed
                | HbEventKind::Passback
        )
    }
}

impl fmt::Display for HbEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.event_name())
    }
}

/// A recognized HB event with its payload, as captured by the tap.
#[derive(Clone, Debug)]
pub struct CapturedEvent {
    /// Which event.
    pub kind: HbEventKind,
    /// When it fired (simulated time, ms).
    pub at_ms: f64,
    /// Auction id, when the payload carried one.
    pub auction_id: Option<HStr>,
    /// Bidder code, when the payload carried one.
    pub bidder: Option<HStr>,
    /// Slot code, when the payload carried one.
    pub slot: Option<HStr>,
    /// CPM, when the payload carried one.
    pub cpm: Option<f64>,
    /// Size string, when the payload carried one.
    pub size: Option<HStr>,
}

impl CapturedEvent {
    /// Try to capture a DOM event as an HB event.
    pub fn from_dom(ev: &DomEvent) -> Option<CapturedEvent> {
        let kind = HbEventKind::parse(ev.name)?;
        let p = ev.payload;
        let get_str = |key: &str| p.get(key).and_then(|v| v.as_str()).map(HStr::new);
        Some(CapturedEvent {
            kind,
            at_ms: ev.at.as_millis_f64(),
            auction_id: get_str("hb_auction"),
            bidder: get_str("bidder").or_else(|| get_str("hb_bidder")),
            slot: get_str("hb_slot"),
            cpm: p.get("cpm").and_then(|v| v.as_f64()),
            size: get_str("hb_size"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_http::Json;
    use hb_simnet::SimTime;

    fn dom<'a>(name: &'a str, payload: &'a Json) -> DomEvent<'a> {
        DomEvent {
            name,
            payload,
            at: SimTime::from_millis(250),
        }
    }

    #[test]
    fn all_names_roundtrip() {
        for kind in HbEventKind::ALL {
            assert_eq!(HbEventKind::parse(kind.event_name()), Some(kind));
        }
        assert_eq!(HbEventKind::parse("click"), None);
        assert_eq!(HbEventKind::parse("AuctionInit"), None, "case sensitive");
    }

    #[test]
    fn proof_semantics() {
        assert!(HbEventKind::AuctionEnd.proves_hb());
        assert!(HbEventKind::BidWon.proves_hb());
        assert!(HbEventKind::BidResponse.proves_hb());
        assert!(!HbEventKind::SlotRenderEnded.proves_hb());
        assert!(!HbEventKind::AdRenderFailed.proves_hb());
        assert!(!HbEventKind::Passback.proves_hb());
    }

    #[test]
    fn capture_extracts_payload_fields() {
        let payload = Json::obj([
                ("bidder", Json::str("rubicon")),
                ("hb_auction", Json::str("auc-1")),
                ("hb_slot", Json::str("ad-slot-2")),
                ("cpm", Json::num(0.37)),
                ("hb_size", Json::str("300x250")),
            ]);
        let ev = dom("bidResponse", &payload);
        let c = CapturedEvent::from_dom(&ev).unwrap();
        assert_eq!(c.kind, HbEventKind::BidResponse);
        assert_eq!(c.at_ms, 250.0);
        assert_eq!(c.bidder.as_deref(), Some("rubicon"));
        assert_eq!(c.auction_id.as_deref(), Some("auc-1"));
        assert_eq!(c.slot.as_deref(), Some("ad-slot-2"));
        assert_eq!(c.cpm, Some(0.37));
        assert_eq!(c.size.as_deref(), Some("300x250"));
    }

    #[test]
    fn non_hb_events_ignored() {
        let ev = dom("scroll", &Json::Null);
        assert!(CapturedEvent::from_dom(&ev).is_none());
    }

    #[test]
    fn hb_bidder_fallback_key() {
        let payload = Json::obj([("hb_bidder", Json::str("appnexus"))]);
        let ev = dom("bidWon", &payload);
        let c = CapturedEvent::from_dom(&ev).unwrap();
        assert_eq!(c.bidder.as_deref(), Some("appnexus"));
    }

    #[test]
    fn missing_fields_are_none() {
        let payload = Json::obj([]);
        let ev = dom("auctionEnd", &payload);
        let c = CapturedEvent::from_dom(&ev).unwrap();
        assert!(c.auction_id.is_none());
        assert!(c.bidder.is_none());
        assert!(c.cpm.is_none());
    }
}
