//! Compact columnar wire encoding for [`VisitColumns`] and the chunk
//! interner — the unit that crosses machine boundaries in a distributed
//! campaign.
//!
//! ## Frame layout
//!
//! Every wire payload travels inside a *sealed frame*:
//!
//! ```text
//! [0..4)   magic  b"HBWF"
//! [4]      version byte (currently 1)
//! [5..13)  payload length, u64 LE
//! [13..n)  payload bytes
//! [n..n+8) XXH64(payload), u64 LE
//! ```
//!
//! [`open_frame`] verifies magic, version, length *and* checksum before a
//! single payload byte is parsed, so corrupt or truncated frames —
//! including a one-bit flip anywhere in the frame — are rejected with a
//! [`WireError`] instead of being trusted (or panicking the decoder).
//! Structural validation (offset monotonicity, symbol bounds, enum tags)
//! still runs during decode as defense in depth: a frame that passes the
//! checksum but violates the format (an encoder bug, a hostile peer with
//! a valid checksum) is rejected, never mis-decoded.
//!
//! ## Payload encoding
//!
//! Deliberately boring: little-endian fixed-width scalars, `u32`
//! length-prefixed flat `Vec` columns in a fixed order, `Option<f64>`
//! as a presence byte + value, enums as one tag byte. The columns are
//! already flat arrays, so encoding is a linear copy — no per-row
//! branching beyond the option tags.

use super::VisitColumns;
use crate::intern::{Interner, Symbol};
use crate::record::{BidSource, DetectedBid, DetectedFacet, DetectedSlot, PartnerLatency};
use std::fmt;

/// Wire format version this build writes and accepts.
pub const WIRE_VERSION: u8 = 1;

/// Frame magic: identifies a sealed hb wire frame.
pub const WIRE_MAGIC: [u8; 4] = *b"HBWF";

/// Bytes of frame overhead around a payload (magic + version + length +
/// checksum).
pub const FRAME_OVERHEAD: usize = 4 + 1 + 8 + 8;

/// Bytes of the frame *header* alone (magic + version + payload length)
/// — what a streaming reader must buffer before it knows how many more
/// bytes the frame occupies. The trailing checksum travels after the
/// payload and is not part of this prefix.
pub const FRAME_HEADER: usize = 4 + 1 + 8;

/// Validate a frame header prefix and return the declared payload
/// length. Magic and version are checked before the length field is
/// trusted, so a stray peer (or a corrupt spool segment) cannot steer a
/// streaming reader with a garbage length; the checksum is still
/// verified later by [`open_frame`] once the full frame is buffered.
pub fn frame_payload_len(header: &[u8]) -> Result<usize, WireError> {
    if header.len() < FRAME_HEADER {
        return Err(WireError::Truncated);
    }
    if header[0..4] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    if header[4] != WIRE_VERSION {
        return Err(WireError::BadVersion(header[4]));
    }
    Ok(u64::from_le_bytes(header[5..13].try_into().expect("8 bytes")) as usize)
}

/// Decode failure. Every variant is a *rejection* — the decoder never
/// trusts a frame it cannot fully validate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a well-formed frame/payload requires.
    Truncated,
    /// Leading magic bytes are not [`WIRE_MAGIC`].
    BadMagic,
    /// Version byte this build does not speak.
    BadVersion(u8),
    /// Declared payload length disagrees with the byte count.
    LengthMismatch,
    /// Payload checksum disagrees with the sealed value.
    ChecksumMismatch,
    /// Structurally invalid payload (bad tag, non-monotonic offsets,
    /// out-of-range symbol, …) with a static description.
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::LengthMismatch => write!(f, "frame length mismatch"),
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            WireError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// --- XXH64 -----------------------------------------------------------------

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xxh_round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn xxh_merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ xxh_round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn read_u64_le(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

#[inline]
fn read_u32_le(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))
}

/// One-shot XXH64 with seed 0 — the frame integrity checksum. A 64-bit
/// avalanche hash: any single-bit corruption of the payload flips the
/// digest with overwhelming probability (verified exhaustively for every
/// bit position by the round-trip proptest).
pub fn xxh64(data: &[u8]) -> u64 {
    let len = data.len() as u64;
    let mut h: u64;
    let mut rest = data;
    if rest.len() >= 32 {
        let mut v1 = PRIME64_1.wrapping_add(PRIME64_2);
        let mut v2 = PRIME64_2;
        let mut v3 = 0u64;
        let mut v4 = 0u64.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = xxh_round(v1, read_u64_le(&rest[0..]));
            v2 = xxh_round(v2, read_u64_le(&rest[8..]));
            v3 = xxh_round(v3, read_u64_le(&rest[16..]));
            v4 = xxh_round(v4, read_u64_le(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = xxh_merge_round(h, v1);
        h = xxh_merge_round(h, v2);
        h = xxh_merge_round(h, v3);
        h = xxh_merge_round(h, v4);
    } else {
        h = PRIME64_5;
    }
    h = h.wrapping_add(len);
    while rest.len() >= 8 {
        h = (h ^ xxh_round(0, read_u64_le(rest)))
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h = (h ^ u64::from(read_u32_le(rest)).wrapping_mul(PRIME64_1))
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &b in rest {
        h = (h ^ u64::from(b).wrapping_mul(PRIME64_5))
            .rotate_left(11)
            .wrapping_mul(PRIME64_1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

// --- Frames ----------------------------------------------------------------

/// Seal `payload` into a checksummed frame appended to `out`.
pub fn seal_frame_into(payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(WIRE_VERSION);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&xxh64(payload).to_le_bytes());
}

/// Seal `payload` into a fresh frame.
pub fn seal_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    seal_frame_into(payload, &mut out);
    out
}

/// Open a sealed frame, returning the validated payload slice. Magic,
/// version, declared length and checksum are all verified *before* the
/// payload is handed to any parser.
pub fn open_frame(frame: &[u8]) -> Result<&[u8], WireError> {
    if frame.len() < FRAME_OVERHEAD {
        return Err(WireError::Truncated);
    }
    if frame[0..4] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    if frame[4] != WIRE_VERSION {
        return Err(WireError::BadVersion(frame[4]));
    }
    let declared = read_u64_le(&frame[5..13]);
    let actual = (frame.len() - FRAME_OVERHEAD) as u64;
    if declared != actual {
        return Err(WireError::LengthMismatch);
    }
    let payload = &frame[13..frame.len() - 8];
    let sealed = read_u64_le(&frame[frame.len() - 8..]);
    if xxh64(payload) != sealed {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(payload)
}

// --- Primitive writer/reader ----------------------------------------------

/// Append-only little-endian payload writer.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Fresh writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its LE bit pattern (NaN payloads round-trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Write an optional `f64` as a presence byte + value.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
            None => self.u8(0),
        }
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a `usize` collection length (must fit `u32` — chunk columns
    /// always do).
    pub fn len(&mut self, n: usize) {
        debug_assert!(n <= u32::MAX as usize, "wire collection too large");
        self.u32(n as u32);
    }

    /// Write a length-prefixed byte blob (nested frames, opaque payloads).
    pub fn bytes(&mut self, b: &[u8]) {
        self.len(b.len());
        self.buf.extend_from_slice(b);
    }
}

/// Cursor-based payload reader; every accessor validates remaining bytes.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The payload is fully consumed (trailing garbage is corruption).
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Corrupt("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Corrupt("bool tag")),
        }
    }

    /// Read a `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(read_u32_le(self.take(4)?))
    }

    /// Read a `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(read_u64_le(self.take(8)?))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read an optional `f64` (presence byte + value).
    pub fn opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            _ => Err(WireError::Corrupt("option tag")),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let n = self.len()?;
        std::str::from_utf8(self.take(n)?).map_err(|_| WireError::Corrupt("utf-8"))
    }

    /// Read a length-prefixed byte blob (the declared length is bounded by
    /// the remaining payload, so a corrupt length cannot over-read).
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.len()?;
        self.take(n)
    }

    /// Read a collection length, bounded by the remaining byte count so a
    /// corrupt length can never drive an over-allocation (`min_item` is
    /// the smallest on-wire footprint of one element).
    pub fn bounded_len(&mut self, min_item: usize) -> Result<usize, WireError> {
        let n = self.len()?;
        if n.saturating_mul(min_item.max(1)) > self.remaining() {
            return Err(WireError::Corrupt("length exceeds payload"));
        }
        Ok(n)
    }

    fn len(&mut self) -> Result<usize, WireError> {
        Ok(self.u32()? as usize)
    }
}

// --- Column encode/decode ---------------------------------------------------

fn facet_tag(f: Option<DetectedFacet>) -> u8 {
    match f {
        None => 0,
        Some(DetectedFacet::Client) => 1,
        Some(DetectedFacet::Server) => 2,
        Some(DetectedFacet::Hybrid) => 3,
    }
}

fn facet_from_tag(tag: u8) -> Result<Option<DetectedFacet>, WireError> {
    Ok(match tag {
        0 => None,
        1 => Some(DetectedFacet::Client),
        2 => Some(DetectedFacet::Server),
        3 => Some(DetectedFacet::Hybrid),
        _ => return Err(WireError::Corrupt("facet tag")),
    })
}

fn write_symbols(w: &mut WireWriter, col: &[Symbol]) {
    w.len(col.len());
    for s in col {
        w.u32(s.index() as u32);
    }
}

fn read_symbols(r: &mut WireReader<'_>, n_strings: usize) -> Result<Vec<Symbol>, WireError> {
    let n = r.bounded_len(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_symbol(r, n_strings)?);
    }
    Ok(out)
}

fn read_symbol(r: &mut WireReader<'_>, n_strings: usize) -> Result<Symbol, WireError> {
    let raw = r.u32()?;
    if raw as usize >= n_strings {
        return Err(WireError::Corrupt("symbol out of range"));
    }
    Ok(Symbol::from_raw(raw))
}

/// Offsets column: `n + 1` monotonically non-decreasing entries ending at
/// the child column length (or empty for never-seeded columns).
fn write_offsets(w: &mut WireWriter, off: &[u32]) {
    w.len(off.len());
    for &o in off {
        w.u32(o);
    }
}

fn read_offsets(
    r: &mut WireReader<'_>,
    n_rows: usize,
    child_len: usize,
) -> Result<Vec<u32>, WireError> {
    let n = r.bounded_len(4)?;
    if n == 0 {
        if n_rows != 0 || child_len != 0 {
            return Err(WireError::Corrupt("missing offsets"));
        }
        return Ok(Vec::new());
    }
    if n != n_rows + 1 {
        return Err(WireError::Corrupt("offsets length"));
    }
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u32;
    for i in 0..n {
        let o = r.u32()?;
        if (i == 0 && o != 0) || o < prev {
            return Err(WireError::Corrupt("offsets not monotonic"));
        }
        prev = o;
        out.push(o);
    }
    if prev as usize != child_len {
        return Err(WireError::Corrupt("offsets do not seal children"));
    }
    Ok(out)
}

/// Encode the chunk-local interner: every string in symbol order. Index 0
/// is always the pre-interned `""`.
pub fn encode_interner(strings: &Interner, w: &mut WireWriter) {
    w.len(strings.len());
    for (_, s) in strings.iter() {
        w.str(s);
    }
}

/// Decode an interner: interning the unique strings in order reproduces
/// the exact symbol numbering they were encoded with.
pub fn decode_interner(r: &mut WireReader<'_>) -> Result<Interner, WireError> {
    let n = r.bounded_len(4)?;
    if n == 0 {
        return Err(WireError::Corrupt("empty interner"));
    }
    let mut strings = Interner::new();
    for i in 0..n {
        let s = r.str()?;
        let sym = strings.intern(s);
        // Duplicate strings would silently renumber every later symbol.
        if sym.index() != i {
            return Err(WireError::Corrupt("interner duplicate"));
        }
    }
    Ok(strings)
}

/// Encode the full column set into `w`. Symbols are written as raw `u32`
/// indexes into the companion interner (encode it alongside with
/// [`encode_interner`]).
pub fn encode_columns(cols: &VisitColumns, w: &mut WireWriter) {
    let n = cols.len();
    w.len(n);
    write_symbols(w, &cols.domain);
    for &v in &cols.rank {
        w.u32(v);
    }
    for &v in &cols.day {
        w.u32(v);
    }
    for &v in &cols.hb_detected {
        w.bool(v);
    }
    for &v in &cols.facet {
        w.u8(facet_tag(v));
    }
    for &v in &cols.slots_auctioned {
        w.u32(v);
    }
    for &v in &cols.hb_latency_ms {
        w.opt_f64(v);
    }
    for &v in &cols.page_load_ms {
        w.opt_f64(v);
    }
    for &v in &cols.bids_dropped {
        w.u32(v);
    }
    for &v in &cols.retries {
        w.u32(v);
    }
    for &v in &cols.timed_out_partners {
        w.u32(v);
    }
    for &v in &cols.passback_served {
        w.bool(v);
    }
    write_symbols(w, &cols.partners);
    write_offsets(w, &cols.partners_off);
    w.len(cols.bids.len());
    for b in &cols.bids {
        w.u32(b.bidder_code.index() as u32);
        w.u32(b.partner_name.index() as u32);
        w.u32(b.slot.index() as u32);
        w.f64(b.cpm);
        w.u32(b.size.index() as u32);
        w.bool(b.late);
        w.opt_f64(b.latency_ms);
        w.u8(match b.source {
            BidSource::ClientVisible => 0,
            BidSource::ServerReported => 1,
        });
    }
    write_offsets(w, &cols.bids_off);
    w.len(cols.partner_latencies.len());
    for l in &cols.partner_latencies {
        w.u32(l.partner_name.index() as u32);
        w.u32(l.bidder_code.index() as u32);
        w.f64(l.latency_ms);
        w.bool(l.late);
    }
    write_offsets(w, &cols.latencies_off);
    w.len(cols.slots.len());
    for s in &cols.slots {
        w.u32(s.slot.index() as u32);
        w.u32(s.size.index() as u32);
        w.u32(s.winner.index() as u32);
        w.f64(s.price);
        w.u32(s.channel.index() as u32);
    }
    write_offsets(w, &cols.slots_off);
    w.len(cols.event_counts.len());
    for (label, count) in &cols.event_counts {
        w.u32(label.index() as u32);
        w.u32(*count);
    }
    write_offsets(w, &cols.events_off);
}

/// Decode a column set encoded by [`encode_columns`]. `n_strings` bounds
/// every symbol (the companion interner's length).
pub fn decode_columns(
    r: &mut WireReader<'_>,
    n_strings: usize,
) -> Result<VisitColumns, WireError> {
    // Scalar columns are at least 1 byte per row each; 4 covers the
    // cheapest (u32) without being exact — bounded_len only guards
    // against allocation bombs, take() still validates every read.
    let n = r.bounded_len(4)?;
    let mut cols = VisitColumns::with_capacity(n);
    cols.domain = read_symbols(r, n_strings)?;
    if cols.domain.len() != n {
        return Err(WireError::Corrupt("domain column length"));
    }
    for _ in 0..n {
        cols.rank.push(r.u32()?);
    }
    for _ in 0..n {
        cols.day.push(r.u32()?);
    }
    for _ in 0..n {
        cols.hb_detected.push(r.bool()?);
    }
    for _ in 0..n {
        cols.facet.push(facet_from_tag(r.u8()?)?);
    }
    for _ in 0..n {
        cols.slots_auctioned.push(r.u32()?);
    }
    for _ in 0..n {
        cols.hb_latency_ms.push(r.opt_f64()?);
    }
    for _ in 0..n {
        cols.page_load_ms.push(r.opt_f64()?);
    }
    for _ in 0..n {
        cols.bids_dropped.push(r.u32()?);
    }
    for _ in 0..n {
        cols.retries.push(r.u32()?);
    }
    for _ in 0..n {
        cols.timed_out_partners.push(r.u32()?);
    }
    for _ in 0..n {
        cols.passback_served.push(r.bool()?);
    }
    cols.partners = read_symbols(r, n_strings)?;
    cols.partners_off = read_offsets(r, n, cols.partners.len())?;
    let n_bids = r.bounded_len(4 * 4 + 8 + 1 + 1 + 1)?;
    for _ in 0..n_bids {
        cols.bids.push(DetectedBid {
            bidder_code: read_symbol(r, n_strings)?,
            partner_name: read_symbol(r, n_strings)?,
            slot: read_symbol(r, n_strings)?,
            cpm: r.f64()?,
            size: read_symbol(r, n_strings)?,
            late: r.bool()?,
            latency_ms: r.opt_f64()?,
            source: match r.u8()? {
                0 => BidSource::ClientVisible,
                1 => BidSource::ServerReported,
                _ => return Err(WireError::Corrupt("bid source tag")),
            },
        });
    }
    cols.bids_off = read_offsets(r, n, cols.bids.len())?;
    let n_lats = r.bounded_len(4 + 4 + 8 + 1)?;
    for _ in 0..n_lats {
        cols.partner_latencies.push(PartnerLatency {
            partner_name: read_symbol(r, n_strings)?,
            bidder_code: read_symbol(r, n_strings)?,
            latency_ms: r.f64()?,
            late: r.bool()?,
        });
    }
    cols.latencies_off = read_offsets(r, n, cols.partner_latencies.len())?;
    let n_slots = r.bounded_len(4 * 4 + 8)?;
    for _ in 0..n_slots {
        cols.slots.push(DetectedSlot {
            slot: read_symbol(r, n_strings)?,
            size: read_symbol(r, n_strings)?,
            winner: read_symbol(r, n_strings)?,
            price: r.f64()?,
            channel: read_symbol(r, n_strings)?,
        });
    }
    cols.slots_off = read_offsets(r, n, cols.slots.len())?;
    let n_events = r.bounded_len(4 + 4)?;
    for _ in 0..n_events {
        let label = read_symbol(r, n_strings)?;
        let count = r.u32()?;
        cols.event_counts.push((label, count));
    }
    cols.events_off = read_offsets(r, n, cols.event_counts.len())?;
    Ok(cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference digests from the XXH64 specification test vectors
    // (seed 0).
    #[test]
    fn xxh64_known_vectors() {
        assert_eq!(xxh64(b""), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a"), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc"), 0x44BC_2CF5_AD77_0999);
        assert_eq!(
            xxh64(b"Nobody inspects the spammish repetition"),
            0xFBCE_A83C_8A37_8BF1
        );
    }

    #[test]
    fn frame_round_trip_and_rejections() {
        let payload = b"hello columnar world".to_vec();
        let frame = seal_frame(&payload);
        assert_eq!(open_frame(&frame).unwrap(), &payload[..]);

        // Truncated.
        assert_eq!(open_frame(&frame[..10]), Err(WireError::Truncated));
        // Magic.
        let mut bad = frame.clone();
        bad[0] ^= 1;
        assert_eq!(open_frame(&bad), Err(WireError::BadMagic));
        // Version.
        let mut bad = frame.clone();
        bad[4] = 9;
        assert_eq!(open_frame(&bad), Err(WireError::BadVersion(9)));
        // Length.
        let mut bad = frame.clone();
        bad[5] ^= 1;
        assert_eq!(open_frame(&bad), Err(WireError::LengthMismatch));
        // Payload bit flip.
        let mut bad = frame.clone();
        bad[14] ^= 0x40;
        assert_eq!(open_frame(&bad), Err(WireError::ChecksumMismatch));
        // Checksum bit flip.
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x80;
        assert_eq!(open_frame(&bad), Err(WireError::ChecksumMismatch));
    }

    #[test]
    fn interner_round_trip() {
        let mut strings = Interner::new();
        strings.intern("appnexus");
        strings.intern("AppNexus");
        strings.intern("300x250");
        let mut w = WireWriter::new();
        encode_interner(&strings, &mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = decode_interner(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.len(), strings.len());
        for ((sa, ta), (sb, tb)) in strings.iter().zip(back.iter()) {
            assert_eq!(sa, sb);
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn empty_columns_round_trip() {
        let cols = VisitColumns::new();
        let mut w = WireWriter::new();
        encode_columns(&cols, &mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = decode_columns(&mut r, 1).unwrap();
        r.finish().unwrap();
        assert!(back.is_empty());
    }
}
