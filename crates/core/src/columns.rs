//! Columnar storage for finished visit records.
//!
//! A [`VisitRecord`] is a row: scalar fields plus five nested vectors, so
//! holding a campaign's worth of them means six heap allocations per visit
//! and pointer-chasing scans. [`VisitColumns`] stores the same data
//! struct-of-arrays: scalars in parallel columns, child rows (partners,
//! bids, latency observations, slot decisions, event counts) flattened
//! into shared arrays indexed by per-visit offset ranges. The crawl
//! pipeline streams finished visits into per-shard columnar chunks built
//! on this type, and the analysis layer's incremental index builder reads
//! the columns directly — rows are only re-materialized when a
//! [`CrawlDataset`-style] row view is explicitly requested.

use crate::intern::Symbol;
use crate::record::{DetectedBid, DetectedFacet, DetectedSlot, PartnerLatency, VisitRecord};

pub mod wire;

/// Struct-of-arrays storage for visit records. Append-only; offsets keep
/// child rows in visit order.
#[derive(Clone, Debug, Default)]
pub struct VisitColumns {
    domain: Vec<Symbol>,
    rank: Vec<u32>,
    day: Vec<u32>,
    hb_detected: Vec<bool>,
    facet: Vec<Option<DetectedFacet>>,
    slots_auctioned: Vec<u32>,
    hb_latency_ms: Vec<Option<f64>>,
    page_load_ms: Vec<Option<f64>>,
    bids_dropped: Vec<u32>,
    retries: Vec<u32>,
    timed_out_partners: Vec<u32>,
    passback_served: Vec<bool>,
    partners: Vec<Symbol>,
    partners_off: Vec<u32>,
    bids: Vec<DetectedBid>,
    bids_off: Vec<u32>,
    partner_latencies: Vec<PartnerLatency>,
    latencies_off: Vec<u32>,
    slots: Vec<DetectedSlot>,
    slots_off: Vec<u32>,
    event_counts: Vec<(Symbol, u32)>,
    events_off: Vec<u32>,
}

/// Borrowed view of one visit row inside a [`VisitColumns`].
#[derive(Clone, Copy, Debug)]
pub struct VisitView<'a> {
    /// Site hostname.
    pub domain: Symbol,
    /// Site rank (1-based).
    pub rank: u32,
    /// Crawl day (0-based).
    pub day: u32,
    /// Did the visit exhibit HB activity?
    pub hb_detected: bool,
    /// Facet classification, when HB was detected.
    pub facet: Option<DetectedFacet>,
    /// Number of ad slots auctioned.
    pub slots_auctioned: u32,
    /// Total HB latency, ms.
    pub hb_latency_ms: Option<f64>,
    /// Page load time, ms.
    pub page_load_ms: Option<f64>,
    /// Bid requests that never completed (dropped/timed out on the wire).
    pub bids_dropped: u32,
    /// Bid requests that were deterministic retries of a failed attempt.
    pub retries: u32,
    /// Distinct partners with at least one uncompleted bid request.
    pub timed_out_partners: u32,
    /// Did a passback / house ad fill the slots?
    pub passback_served: bool,
    /// Unique partner display names participating.
    pub partners: &'a [Symbol],
    /// All bids observed.
    pub bids: &'a [DetectedBid],
    /// Per-partner latency observations.
    pub partner_latencies: &'a [PartnerLatency],
    /// Slot decisions observed.
    pub slots: &'a [DetectedSlot],
    /// HB DOM event counts per kind label.
    pub event_counts: &'a [(Symbol, u32)],
}

impl VisitView<'_> {
    /// Bids that arrived late.
    pub fn late_bids(&self) -> usize {
        self.bids.iter().filter(|b| b.late).count()
    }

    /// Re-materialize this view as an owned row.
    pub fn to_record(&self) -> VisitRecord {
        VisitRecord {
            domain: self.domain,
            rank: self.rank,
            day: self.day,
            hb_detected: self.hb_detected,
            facet: self.facet,
            partners: self.partners.to_vec(),
            slots_auctioned: self.slots_auctioned,
            hb_latency_ms: self.hb_latency_ms,
            bids: self.bids.to_vec(),
            partner_latencies: self.partner_latencies.to_vec(),
            slots: self.slots.to_vec(),
            event_counts: self.event_counts.to_vec(),
            page_load_ms: self.page_load_ms,
            bids_dropped: self.bids_dropped,
            retries: self.retries,
            timed_out_partners: self.timed_out_partners,
            passback_served: self.passback_served,
        }
    }
}

/// Range helper: the `i`-th window of an offsets column.
fn window(off: &[u32], i: usize) -> std::ops::Range<usize> {
    off[i] as usize..off[i + 1] as usize
}

impl VisitColumns {
    /// Empty column set.
    pub fn new() -> VisitColumns {
        VisitColumns::default()
    }

    /// Empty column set with scalar capacity for `n` visits.
    pub fn with_capacity(n: usize) -> VisitColumns {
        VisitColumns {
            domain: Vec::with_capacity(n),
            rank: Vec::with_capacity(n),
            day: Vec::with_capacity(n),
            hb_detected: Vec::with_capacity(n),
            facet: Vec::with_capacity(n),
            slots_auctioned: Vec::with_capacity(n),
            hb_latency_ms: Vec::with_capacity(n),
            page_load_ms: Vec::with_capacity(n),
            bids_dropped: Vec::with_capacity(n),
            retries: Vec::with_capacity(n),
            timed_out_partners: Vec::with_capacity(n),
            passback_served: Vec::with_capacity(n),
            ..VisitColumns::default()
        }
    }

    /// Number of visit rows.
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// True when no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }

    /// Drop every row while keeping the allocated capacity of all columns
    /// (benches and long-lived per-worker buffers reuse the storage).
    pub fn clear(&mut self) {
        let VisitColumns {
            domain,
            rank,
            day,
            hb_detected,
            facet,
            slots_auctioned,
            hb_latency_ms,
            page_load_ms,
            bids_dropped,
            retries,
            timed_out_partners,
            passback_served,
            partners,
            partners_off,
            bids,
            bids_off,
            partner_latencies,
            latencies_off,
            slots,
            slots_off,
            event_counts,
            events_off,
        } = self;
        domain.clear();
        rank.clear();
        day.clear();
        hb_detected.clear();
        facet.clear();
        slots_auctioned.clear();
        hb_latency_ms.clear();
        page_load_ms.clear();
        bids_dropped.clear();
        retries.clear();
        timed_out_partners.clear();
        passback_served.clear();
        partners.clear();
        partners_off.clear();
        bids.clear();
        bids_off.clear();
        partner_latencies.clear();
        latencies_off.clear();
        slots.clear();
        slots_off.clear();
        event_counts.clear();
        events_off.clear();
    }

    /// Lazily seed the offset columns (they carry one extra leading 0).
    fn ensure_offsets(&mut self) {
        if self.partners_off.is_empty() {
            self.partners_off.push(0);
            self.bids_off.push(0);
            self.latencies_off.push(0);
            self.slots_off.push(0);
            self.events_off.push(0);
        }
    }

    /// Start appending one visit row directly into the columns. Child
    /// rows (partners, bids, latencies, slots, event counts) are pushed
    /// straight into the flattened arrays; [`VisitBuilder::finish_row`]
    /// commits the scalars and offsets. This is the crawl hot path: a
    /// finished visit lands in columnar storage without ever
    /// materializing an owned [`VisitRecord`].
    pub fn begin_visit(&mut self) -> VisitBuilder<'_> {
        self.ensure_offsets();
        VisitBuilder {
            cols: self,
            committed: false,
        }
    }

    /// Append one finished visit, consuming the row (child vectors are
    /// drained into the flattened arrays). Equivalent to streaming the
    /// row through [`VisitColumns::begin_visit`] — enforced row-for-row
    /// by the builder-equivalence proptest.
    pub fn push(&mut self, v: VisitRecord) {
        let mut b = self.begin_visit();
        for p in v.partners {
            b.push_partner(p);
        }
        for bid in v.bids {
            b.push_bid(bid);
        }
        for l in v.partner_latencies {
            b.push_partner_latency(l);
        }
        for s in v.slots {
            b.push_slot(s);
        }
        for (label, n) in v.event_counts {
            b.push_event_count(label, n);
        }
        b.finish_row(VisitScalars {
            domain: v.domain,
            rank: v.rank,
            day: v.day,
            hb_detected: v.hb_detected,
            facet: v.facet,
            slots_auctioned: v.slots_auctioned,
            hb_latency_ms: v.hb_latency_ms,
            page_load_ms: v.page_load_ms,
            bids_dropped: v.bids_dropped,
            retries: v.retries,
            timed_out_partners: v.timed_out_partners,
            passback_served: v.passback_served,
        });
    }

    /// Borrowed view of row `i`.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn get(&self, i: usize) -> VisitView<'_> {
        VisitView {
            domain: self.domain[i],
            rank: self.rank[i],
            day: self.day[i],
            hb_detected: self.hb_detected[i],
            facet: self.facet[i],
            slots_auctioned: self.slots_auctioned[i],
            hb_latency_ms: self.hb_latency_ms[i],
            page_load_ms: self.page_load_ms[i],
            bids_dropped: self.bids_dropped[i],
            retries: self.retries[i],
            timed_out_partners: self.timed_out_partners[i],
            passback_served: self.passback_served[i],
            partners: &self.partners[window(&self.partners_off, i)],
            bids: &self.bids[window(&self.bids_off, i)],
            partner_latencies: &self.partner_latencies[window(&self.latencies_off, i)],
            slots: &self.slots[window(&self.slots_off, i)],
            event_counts: &self.event_counts[window(&self.events_off, i)],
        }
    }

    /// Iterate borrowed row views in push order.
    pub fn iter(&self) -> impl Iterator<Item = VisitView<'_>> {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Rewrite every symbol in every column through `f` (the chunk-merge
    /// step migrating from a chunk-local interner into the campaign-wide
    /// one).
    pub fn remap_symbols(&mut self, f: &mut impl FnMut(Symbol) -> Symbol) {
        for d in &mut self.domain {
            *d = f(*d);
        }
        for p in &mut self.partners {
            *p = f(*p);
        }
        for b in &mut self.bids {
            b.bidder_code = f(b.bidder_code);
            b.partner_name = f(b.partner_name);
            b.slot = f(b.slot);
            b.size = f(b.size);
        }
        for pl in &mut self.partner_latencies {
            pl.partner_name = f(pl.partner_name);
            pl.bidder_code = f(pl.bidder_code);
        }
        for s in &mut self.slots {
            s.slot = f(s.slot);
            s.size = f(s.size);
            s.winner = f(s.winner);
            s.channel = f(s.channel);
        }
        for (label, _) in &mut self.event_counts {
            *label = f(*label);
        }
    }
}

/// The scalar fields of one visit row, committed together by
/// [`VisitBuilder::finish_row`].
#[derive(Clone, Copy, Debug, Default)]
pub struct VisitScalars {
    /// Site hostname.
    pub domain: Symbol,
    /// Site rank (1-based).
    pub rank: u32,
    /// Crawl day (0-based).
    pub day: u32,
    /// Did the visit exhibit HB activity?
    pub hb_detected: bool,
    /// Facet classification, when HB was detected.
    pub facet: Option<DetectedFacet>,
    /// Number of ad slots auctioned.
    pub slots_auctioned: u32,
    /// Total HB latency, ms.
    pub hb_latency_ms: Option<f64>,
    /// Page load time, ms.
    pub page_load_ms: Option<f64>,
    /// Bid requests that never completed.
    pub bids_dropped: u32,
    /// Deterministic retry attempts observed.
    pub retries: u32,
    /// Distinct partners with an uncompleted bid request.
    pub timed_out_partners: u32,
    /// Did a passback / house ad fill the slots?
    pub passback_served: bool,
}

/// In-progress appender for one visit row inside a [`VisitColumns`].
///
/// Child rows accumulate in the flattened arrays as they are pushed;
/// [`VisitBuilder::finish_row`] commits the row by appending the scalar
/// columns and the offset entries. Dropping an unfinished builder rolls
/// the uncommitted child rows back, leaving the columns exactly as they
/// were before [`VisitColumns::begin_visit`].
pub struct VisitBuilder<'a> {
    cols: &'a mut VisitColumns,
    committed: bool,
}

impl VisitBuilder<'_> {
    /// Append one participating partner (sorted order is the caller's
    /// responsibility, matching [`VisitRecord::partners`]).
    pub fn push_partner(&mut self, p: Symbol) {
        self.cols.partners.push(p);
    }

    /// Append one detected bid.
    pub fn push_bid(&mut self, b: DetectedBid) {
        self.cols.bids.push(b);
    }

    /// Append one per-partner latency observation.
    pub fn push_partner_latency(&mut self, l: PartnerLatency) {
        self.cols.partner_latencies.push(l);
    }

    /// Append one slot decision.
    pub fn push_slot(&mut self, s: DetectedSlot) {
        self.cols.slots.push(s);
    }

    /// Append one DOM-event count.
    pub fn push_event_count(&mut self, label: Symbol, n: u32) {
        self.cols.event_counts.push((label, n));
    }

    /// The bids pushed for *this* row so far (the detector's
    /// double-count check reads them back while reconstructing winners).
    pub fn bids(&self) -> &[DetectedBid] {
        let start = *self.cols.bids_off.last().expect("offsets seeded") as usize;
        &self.cols.bids[start..]
    }

    /// Number of slot decisions pushed for this row so far.
    pub fn slots_len(&self) -> usize {
        let start = *self.cols.slots_off.last().expect("offsets seeded") as usize;
        self.cols.slots.len() - start
    }

    /// Commit the row: append the scalar columns and seal the child
    /// windows.
    pub fn finish_row(mut self, s: VisitScalars) {
        let c = &mut *self.cols;
        c.domain.push(s.domain);
        c.rank.push(s.rank);
        c.day.push(s.day);
        c.hb_detected.push(s.hb_detected);
        c.facet.push(s.facet);
        c.slots_auctioned.push(s.slots_auctioned);
        c.hb_latency_ms.push(s.hb_latency_ms);
        c.page_load_ms.push(s.page_load_ms);
        c.bids_dropped.push(s.bids_dropped);
        c.retries.push(s.retries);
        c.timed_out_partners.push(s.timed_out_partners);
        c.passback_served.push(s.passback_served);
        c.partners_off.push(c.partners.len() as u32);
        c.bids_off.push(c.bids.len() as u32);
        c.latencies_off.push(c.partner_latencies.len() as u32);
        c.slots_off.push(c.slots.len() as u32);
        c.events_off.push(c.event_counts.len() as u32);
        self.committed = true;
    }
}

impl Drop for VisitBuilder<'_> {
    fn drop(&mut self) {
        if !self.committed {
            // Roll back child rows of the abandoned visit.
            let c = &mut *self.cols;
            c.partners.truncate(*c.partners_off.last().unwrap_or(&0) as usize);
            c.bids.truncate(*c.bids_off.last().unwrap_or(&0) as usize);
            c.partner_latencies
                .truncate(*c.latencies_off.last().unwrap_or(&0) as usize);
            c.slots.truncate(*c.slots_off.last().unwrap_or(&0) as usize);
            c.event_counts
                .truncate(*c.events_off.last().unwrap_or(&0) as usize);
        }
    }
}

impl<'a> From<&'a VisitRecord> for VisitView<'a> {
    fn from(v: &'a VisitRecord) -> VisitView<'a> {
        VisitView {
            domain: v.domain,
            rank: v.rank,
            day: v.day,
            hb_detected: v.hb_detected,
            facet: v.facet,
            slots_auctioned: v.slots_auctioned,
            hb_latency_ms: v.hb_latency_ms,
            page_load_ms: v.page_load_ms,
            bids_dropped: v.bids_dropped,
            retries: v.retries,
            timed_out_partners: v.timed_out_partners,
            passback_served: v.passback_served,
            partners: &v.partners,
            bids: &v.bids,
            partner_latencies: &v.partner_latencies,
            slots: &v.slots,
            event_counts: &v.event_counts,
        }
    }
}

impl FromIterator<VisitRecord> for VisitColumns {
    fn from_iter<T: IntoIterator<Item = VisitRecord>>(iter: T) -> VisitColumns {
        let mut c = VisitColumns::new();
        for v in iter {
            c.push(v);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Interner;
    use crate::record::BidSource;

    fn sample(strings: &mut Interner, rank: u32, n_bids: usize) -> VisitRecord {
        VisitRecord {
            domain: strings.intern(&format!("pub{rank}.example")),
            rank,
            day: 1,
            hb_detected: n_bids > 0,
            facet: (n_bids > 0).then_some(DetectedFacet::Client),
            partners: vec![strings.intern("AppNexus")],
            slots_auctioned: 2,
            hb_latency_ms: Some(320.0),
            bids: (0..n_bids)
                .map(|i| DetectedBid {
                    bidder_code: strings.intern("appnexus"),
                    partner_name: strings.intern("AppNexus"),
                    slot: strings.intern(&format!("s{i}")),
                    cpm: 0.1 * (i + 1) as f64,
                    size: strings.intern("300x250"),
                    late: i % 2 == 1,
                    latency_ms: Some(100.0 + i as f64),
                    source: BidSource::ClientVisible,
                })
                .collect(),
            partner_latencies: vec![PartnerLatency {
                partner_name: strings.intern("AppNexus"),
                bidder_code: strings.intern("appnexus"),
                latency_ms: 210.0,
                late: false,
            }],
            slots: vec![],
            event_counts: vec![(strings.intern("auctionInit"), 1)],
            page_load_ms: Some(900.0),
            bids_dropped: (rank % 2) as u32,
            retries: 0,
            timed_out_partners: 0,
            passback_served: rank == 3,
        }
    }

    #[test]
    fn roundtrip_preserves_rows() {
        let mut strings = Interner::new();
        let rows: Vec<VisitRecord> = (1..=5).map(|r| sample(&mut strings, r, r as usize % 3)).collect();
        let cols: VisitColumns = rows.iter().cloned().collect();
        assert_eq!(cols.len(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            let back = cols.get(i).to_record();
            assert_eq!(back.domain, row.domain);
            assert_eq!(back.rank, row.rank);
            assert_eq!(back.hb_detected, row.hb_detected);
            assert_eq!(back.bids.len(), row.bids.len());
            assert_eq!(back.partners, row.partners);
            assert_eq!(back.event_counts, row.event_counts);
            assert_eq!(back.hb_latency_ms, row.hb_latency_ms);
            assert_eq!(back.bids_dropped, row.bids_dropped);
            assert_eq!(back.passback_served, row.passback_served);
        }
    }

    #[test]
    fn views_window_child_tables() {
        let mut strings = Interner::new();
        let cols: VisitColumns = vec![
            sample(&mut strings, 1, 3),
            sample(&mut strings, 2, 0),
            sample(&mut strings, 3, 2),
        ]
        .into_iter()
        .collect();
        assert_eq!(cols.get(0).bids.len(), 3);
        assert_eq!(cols.get(1).bids.len(), 0);
        assert_eq!(cols.get(2).bids.len(), 2);
        assert_eq!(cols.get(0).late_bids(), 1);
        let total: usize = cols.iter().map(|v| v.bids.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn remap_rewrites_every_column() {
        // Column-order remap visits symbols in a different sequence than
        // the per-record remap, so ids may differ — the *resolved text*
        // of every field must agree.
        let mut local = Interner::new();
        let rows: Vec<VisitRecord> = (1..=3).map(|r| sample(&mut local, r, 2)).collect();
        let mut cols: VisitColumns = rows.iter().cloned().collect();

        let mut global_a = Interner::new();
        let mut global_b = Interner::new();
        cols.remap_symbols(&mut |sym| global_a.intern(local.resolve(sym)));
        for (i, mut row) in rows.into_iter().enumerate() {
            row.remap_symbols(&mut |sym| global_b.intern(local.resolve(sym)));
            let view = cols.get(i);
            assert_eq!(global_a.resolve(view.domain), global_b.resolve(row.domain));
            assert_eq!(
                global_a.resolve(view.bids[0].slot),
                global_b.resolve(row.bids[0].slot)
            );
            assert_eq!(
                global_a.resolve(view.partner_latencies[0].bidder_code),
                global_b.resolve(row.partner_latencies[0].bidder_code)
            );
            assert_eq!(
                global_a.resolve(view.event_counts[0].0),
                global_b.resolve(row.event_counts[0].0)
            );
        }
        // Same distinct strings end up interned either way.
        assert_eq!(global_a.len(), global_b.len());
    }

    #[test]
    fn empty_columns() {
        let cols = VisitColumns::new();
        assert!(cols.is_empty());
        assert_eq!(cols.iter().count(), 0);
    }
}
