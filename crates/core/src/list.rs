//! The known-Demand-Partner list.
//!
//! The paper's HBDetector carries a curated list of HB Demand Partners
//! ("we collected and combined several lists used by HB tools designed to
//! help publishers fine tune their HB") and checks all WebRequests against
//! it. [`PartnerList`] is that list: domain-suffix matching from hostname
//! to partner identity.

use hb_dom::find_ci;
use std::collections::HashMap;

/// One entry of the partner list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartnerEntry {
    /// Display name as reported in figures (e.g. `AppNexus`).
    pub name: String,
    /// Bidder/adapter code (e.g. `appnexus`).
    pub code: String,
    /// Domains owned by this partner.
    pub domains: Vec<String>,
    /// Whether the partner is known to operate an ad server / server-side
    /// HB product (DFP-like). Used by facet classification.
    pub is_ad_server: bool,
}

/// The detector's curated list of known HB Demand Partners.
#[derive(Clone, Debug, Default)]
pub struct PartnerList {
    entries: Vec<PartnerEntry>,
    by_domain: HashMap<String, u32>,
    by_code: HashMap<String, u32>,
    by_name: HashMap<String, u32>,
}

impl PartnerList {
    /// Build from entries.
    pub fn new(entries: impl IntoIterator<Item = PartnerEntry>) -> PartnerList {
        let mut list = PartnerList::default();
        for e in entries {
            list.push(e);
        }
        list
    }

    /// Append one entry.
    pub fn push(&mut self, entry: PartnerEntry) {
        let idx = self.entries.len() as u32;
        for d in &entry.domains {
            self.by_domain.insert(d.to_ascii_lowercase(), idx);
        }
        // entry() not insert(): keep the first entry on duplicate codes or
        // names, matching the linear-scan semantics this map replaced.
        self.by_code
            .entry(entry.code.to_ascii_lowercase())
            .or_insert(idx);
        self.by_name
            .entry(entry.name.to_ascii_lowercase())
            .or_insert(idx);
        self.entries.push(entry);
    }

    /// Number of partners known.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[PartnerEntry] {
        &self.entries
    }

    /// The entry at a [`match_host_index`](Self::match_host_index) result.
    pub fn entry(&self, idx: u32) -> &PartnerEntry {
        &self.entries[idx as usize]
    }

    /// Match a hostname against the list (exact or subdomain), returning
    /// the entry index.
    ///
    /// Allocation-free for hosts that are already ASCII-lowercase (which
    /// `hb_http::Url` guarantees for parsed URLs): the suffix walk reuses
    /// slices of `host`. Mixed-case callers pay one lowercase copy.
    pub fn match_host_index(&self, host: &str) -> Option<u32> {
        if host.bytes().any(|b| b.is_ascii_uppercase()) {
            let lowered = host.to_ascii_lowercase();
            return self.match_lowercase(&lowered);
        }
        self.match_lowercase(host)
    }

    fn match_lowercase(&self, host: &str) -> Option<u32> {
        let mut rest = host;
        loop {
            if let Some(&idx) = self.by_domain.get(rest) {
                return Some(idx);
            }
            match rest.split_once('.') {
                Some((_, suffix)) if !suffix.is_empty() => rest = suffix,
                _ => return None,
            }
        }
    }

    /// Match a hostname against the list (exact or subdomain).
    pub fn match_host(&self, host: &str) -> Option<&PartnerEntry> {
        self.match_host_index(host).map(|idx| self.entry(idx))
    }

    /// Find an entry by bidder code (case-insensitive, O(1)).
    pub fn by_code(&self, code: &str) -> Option<&PartnerEntry> {
        match self.by_code.get(code) {
            Some(&idx) => Some(self.entry(idx)),
            None if code.bytes().any(|b| b.is_ascii_uppercase()) => {
                let idx = *self.by_code.get(&code.to_ascii_lowercase())?;
                Some(self.entry(idx))
            }
            None => None,
        }
    }

    /// Find an entry by display name (case-insensitive, O(1)).
    pub fn by_name(&self, name: &str) -> Option<&PartnerEntry> {
        match self.by_name.get(name) {
            Some(&idx) => Some(self.entry(idx)),
            None if name.bytes().any(|b| b.is_ascii_uppercase()) => {
                let idx = *self.by_name.get(&name.to_ascii_lowercase())?;
                Some(self.entry(idx))
            }
            None => None,
        }
    }

    /// A tiny built-in list for tests and the quickstart example. The full
    /// 84-partner catalog lives in `hb-ecosystem`, which exports it as a
    /// `PartnerList` the way real deployments feed tuned lists to the tool.
    pub fn demo() -> PartnerList {
        PartnerList::new([
            PartnerEntry {
                name: "DFP".into(),
                code: "dfp".into(),
                domains: vec!["doubleclick-adnet.example".into()],
                is_ad_server: true,
            },
            PartnerEntry {
                name: "AppNexus".into(),
                code: "appnexus".into(),
                domains: vec!["appnexus-adnet.example".into()],
                is_ad_server: false,
            },
            PartnerEntry {
                name: "Rubicon".into(),
                code: "rubicon".into(),
                domains: vec!["rubicon-adnet.example".into()],
                is_ad_server: false,
            },
        ])
    }
}

/// Known HB library signatures for static analysis (Figure 4 methodology).
///
/// Each signature is matched case-insensitively against script `src`
/// attributes and inline script bodies.
#[derive(Clone, Debug)]
pub struct LibrarySignatures {
    /// Substrings identifying wrapper script files.
    pub src_markers: Vec<String>,
    /// Substrings identifying inline wrapper code.
    pub inline_markers: Vec<String>,
}

impl Default for LibrarySignatures {
    fn default() -> Self {
        LibrarySignatures {
            src_markers: vec![
                "prebid".into(),
                "pubfood".into(),
                "hb-wrapper".into(),
                "headerbid".into(),
            ],
            inline_markers: vec![
                "pbjs.requestbids".into(),
                "pbjs.addadunits".into(),
                "pubfood(".into(),
                "headerbidding.init".into(),
            ],
        }
    }
}

impl LibrarySignatures {
    /// Does a script `src` URL look like an HB wrapper?
    pub fn matches_src(&self, src: &str) -> bool {
        self.src_markers.iter().any(|m| find_ci(src, m).is_some())
    }

    /// Does an inline script body look like HB wrapper code?
    pub fn matches_inline(&self, body: &str) -> bool {
        self.inline_markers
            .iter()
            .any(|m| find_ci(body, m).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_subdomain_matching() {
        let list = PartnerList::demo();
        assert_eq!(
            list.match_host("appnexus-adnet.example").unwrap().name,
            "AppNexus"
        );
        assert_eq!(
            list.match_host("fast.cdn.appnexus-adnet.example").unwrap().code,
            "appnexus"
        );
        assert!(list.match_host("unknown.example").is_none());
        assert!(list.match_host("notappnexus-adnet.example").is_none());
    }

    #[test]
    fn case_insensitive_host_matching() {
        let list = PartnerList::demo();
        assert!(list.match_host("AppNexus-AdNet.Example").is_some());
    }

    #[test]
    fn lookup_by_code_and_name() {
        let list = PartnerList::demo();
        assert_eq!(list.by_code("rubicon").unwrap().name, "Rubicon");
        assert_eq!(list.by_name("dfp").unwrap().code, "dfp");
        assert!(list.by_code("ghost").is_none());
    }

    #[test]
    fn ad_server_flag() {
        let list = PartnerList::demo();
        assert!(list.by_code("dfp").unwrap().is_ad_server);
        assert!(!list.by_code("appnexus").unwrap().is_ad_server);
    }

    #[test]
    fn signatures_match_known_libraries() {
        let sigs = LibrarySignatures::default();
        assert!(sigs.matches_src("https://cdn.example/Prebid.js"));
        assert!(sigs.matches_src("https://x/pubfood.min.js"));
        assert!(!sigs.matches_src("https://x/jquery.js"));
        assert!(sigs.matches_inline("pbjs.requestBids({timeout: 3000})"));
        assert!(!sigs.matches_inline("console.log('hi')"));
    }

    #[test]
    fn empty_list_matches_nothing() {
        let list = PartnerList::new([]);
        assert!(list.is_empty());
        assert!(list.match_host("x.example").is_none());
    }
}
