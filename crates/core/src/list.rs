//! The known-Demand-Partner list.
//!
//! The paper's HBDetector carries a curated list of HB Demand Partners
//! ("we collected and combined several lists used by HB tools designed to
//! help publishers fine tune their HB") and checks all WebRequests against
//! it. [`PartnerList`] is that list: domain-suffix matching from hostname
//! to partner identity.

use hb_dom::find_ci;
use std::collections::HashMap;

/// One entry of the partner list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartnerEntry {
    /// Display name as reported in figures (e.g. `AppNexus`).
    pub name: String,
    /// Bidder/adapter code (e.g. `appnexus`).
    pub code: String,
    /// Domains owned by this partner.
    pub domains: Vec<String>,
    /// Whether the partner is known to operate an ad server / server-side
    /// HB product (DFP-like). Used by facet classification.
    pub is_ad_server: bool,
}

/// The detector's curated list of known HB Demand Partners.
#[derive(Clone, Debug, Default)]
pub struct PartnerList {
    entries: Vec<PartnerEntry>,
    by_domain: HashMap<String, usize>,
}

impl PartnerList {
    /// Build from entries.
    pub fn new(entries: impl IntoIterator<Item = PartnerEntry>) -> PartnerList {
        let mut list = PartnerList::default();
        for e in entries {
            list.push(e);
        }
        list
    }

    /// Append one entry.
    pub fn push(&mut self, entry: PartnerEntry) {
        let idx = self.entries.len();
        for d in &entry.domains {
            self.by_domain.insert(d.to_ascii_lowercase(), idx);
        }
        self.entries.push(entry);
    }

    /// Number of partners known.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[PartnerEntry] {
        &self.entries
    }

    /// Match a hostname against the list (exact or subdomain).
    pub fn match_host(&self, host: &str) -> Option<&PartnerEntry> {
        let host = host.to_ascii_lowercase();
        let mut rest = host.as_str();
        loop {
            if let Some(&idx) = self.by_domain.get(rest) {
                return Some(&self.entries[idx]);
            }
            match rest.split_once('.') {
                Some((_, suffix)) if !suffix.is_empty() => rest = suffix,
                _ => return None,
            }
        }
    }

    /// Find an entry by bidder code.
    pub fn by_code(&self, code: &str) -> Option<&PartnerEntry> {
        self.entries
            .iter()
            .find(|e| e.code.eq_ignore_ascii_case(code))
    }

    /// Find an entry by display name (case-insensitive).
    pub fn by_name(&self, name: &str) -> Option<&PartnerEntry> {
        self.entries
            .iter()
            .find(|e| e.name.eq_ignore_ascii_case(name))
    }

    /// A tiny built-in list for tests and the quickstart example. The full
    /// 84-partner catalog lives in `hb-ecosystem`, which exports it as a
    /// `PartnerList` the way real deployments feed tuned lists to the tool.
    pub fn demo() -> PartnerList {
        PartnerList::new([
            PartnerEntry {
                name: "DFP".into(),
                code: "dfp".into(),
                domains: vec!["doubleclick-adnet.example".into()],
                is_ad_server: true,
            },
            PartnerEntry {
                name: "AppNexus".into(),
                code: "appnexus".into(),
                domains: vec!["appnexus-adnet.example".into()],
                is_ad_server: false,
            },
            PartnerEntry {
                name: "Rubicon".into(),
                code: "rubicon".into(),
                domains: vec!["rubicon-adnet.example".into()],
                is_ad_server: false,
            },
        ])
    }
}

/// Known HB library signatures for static analysis (Figure 4 methodology).
///
/// Each signature is matched case-insensitively against script `src`
/// attributes and inline script bodies.
#[derive(Clone, Debug)]
pub struct LibrarySignatures {
    /// Substrings identifying wrapper script files.
    pub src_markers: Vec<String>,
    /// Substrings identifying inline wrapper code.
    pub inline_markers: Vec<String>,
}

impl Default for LibrarySignatures {
    fn default() -> Self {
        LibrarySignatures {
            src_markers: vec![
                "prebid".into(),
                "pubfood".into(),
                "hb-wrapper".into(),
                "headerbid".into(),
            ],
            inline_markers: vec![
                "pbjs.requestbids".into(),
                "pbjs.addadunits".into(),
                "pubfood(".into(),
                "headerbidding.init".into(),
            ],
        }
    }
}

impl LibrarySignatures {
    /// Does a script `src` URL look like an HB wrapper?
    pub fn matches_src(&self, src: &str) -> bool {
        self.src_markers.iter().any(|m| find_ci(src, m).is_some())
    }

    /// Does an inline script body look like HB wrapper code?
    pub fn matches_inline(&self, body: &str) -> bool {
        self.inline_markers
            .iter()
            .any(|m| find_ci(body, m).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_subdomain_matching() {
        let list = PartnerList::demo();
        assert_eq!(
            list.match_host("appnexus-adnet.example").unwrap().name,
            "AppNexus"
        );
        assert_eq!(
            list.match_host("fast.cdn.appnexus-adnet.example").unwrap().code,
            "appnexus"
        );
        assert!(list.match_host("unknown.example").is_none());
        assert!(list.match_host("notappnexus-adnet.example").is_none());
    }

    #[test]
    fn case_insensitive_host_matching() {
        let list = PartnerList::demo();
        assert!(list.match_host("AppNexus-AdNet.Example").is_some());
    }

    #[test]
    fn lookup_by_code_and_name() {
        let list = PartnerList::demo();
        assert_eq!(list.by_code("rubicon").unwrap().name, "Rubicon");
        assert_eq!(list.by_name("dfp").unwrap().code, "dfp");
        assert!(list.by_code("ghost").is_none());
    }

    #[test]
    fn ad_server_flag() {
        let list = PartnerList::demo();
        assert!(list.by_code("dfp").unwrap().is_ad_server);
        assert!(!list.by_code("appnexus").unwrap().is_ad_server);
    }

    #[test]
    fn signatures_match_known_libraries() {
        let sigs = LibrarySignatures::default();
        assert!(sigs.matches_src("https://cdn.example/Prebid.js"));
        assert!(sigs.matches_src("https://x/pubfood.min.js"));
        assert!(!sigs.matches_src("https://x/jquery.js"));
        assert!(sigs.matches_inline("pbjs.requestBids({timeout: 3000})"));
        assert!(!sigs.matches_inline("console.log('hi')"));
    }

    #[test]
    fn empty_list_matches_nothing() {
        let list = PartnerList::new([]);
        assert!(list.is_empty());
        assert!(list.match_host("x.example").is_none());
    }
}
