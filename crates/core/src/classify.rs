//! WebRequest classification.
//!
//! The request inspector checks every request/response pair against the
//! partner list and the library-fixed `hb_*` parameter dictionary, then
//! classifies it into the traffic classes the reconstruction needs. This is
//! the paper's third detection method ("monitor the web requests of a page
//! in real-time, and detect all the requests sent to and received from
//! known HB Demand Partners").
//!
//! The classifier is the detector's per-request hot path, so it borrows
//! everything: [`Classification`] holds a reference into the
//! [`PartnerList`] rather than cloned strings, and the parameter scan
//! walks the request in place. Classifying a request with a form or empty
//! body performs **zero heap allocations**.

use crate::list::{PartnerEntry, PartnerList};
use hb_http::{Request, Response};

/// The prefix the HB parameter dictionary shares.
pub const HB_PARAM_PREFIX: &str = "hb_";

/// Parameter keys that alone indicate HB even without the prefix.
const BARE_HB_KEYS: [&str; 2] = ["bidder", "cpm"];

/// Traffic classes relevant to HB reconstruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RequestKind {
    /// A bid request to a known partner.
    BidRequest,
    /// A call to an ad-server-like decisioning endpoint carrying HB
    /// targeting (either the publisher's own ad server or a provider).
    AdServerCall,
    /// A win notification carrying an HB clearing price.
    WinNotification,
    /// A wrapper / ad-manager library fetch.
    LibraryLoad,
    /// Request to a known partner that carries no HB parameters (pixels,
    /// cookie syncs, trackers).
    PartnerOther,
    /// Not related to HB.
    Unrelated,
}

/// Does this key belong to the HB parameter dictionary?
pub fn is_hb_param(key: &str) -> bool {
    key.starts_with(HB_PARAM_PREFIX) || BARE_HB_KEYS.contains(&key)
}

/// Extract the HB parameters visible in a request (URL + body).
///
/// Allocating convenience for tests and tooling; the detector itself
/// scans in place via [`Request::for_each_visible_param`].
pub fn hb_params_of_request(req: &Request) -> Vec<(String, String)> {
    let mut out = Vec::new();
    req.for_each_visible_param(|k, v| {
        if is_hb_param(k) {
            out.push((k.to_string(), v.to_string()));
        }
    });
    out
}

/// Extract the HB parameters visible in a response body.
pub fn hb_params_of_response(rsp: &Response) -> Vec<(String, String)> {
    let mut out = Vec::new();
    rsp.for_each_visible_param(|k, v| {
        if is_hb_param(k) {
            out.push((k.to_string(), v.to_string()));
        }
    });
    out
}

/// Does the response body carry any HB dictionary key? (The detector's
/// server-side signal — checked on every completed response, so it avoids
/// materializing the parameter list.)
pub fn response_has_hb_params(rsp: &Response) -> bool {
    rsp.body.any_visible_param(&mut |k, _| is_hb_param(k))
}

/// Classification result, borrowing the matched partner from the list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Classification<'a> {
    /// The traffic class.
    pub kind: RequestKind,
    /// Index of the matched partner in the list, when the host matched.
    pub partner_index: Option<u32>,
    /// The matched partner entry, when the host matched.
    pub partner: Option<&'a PartnerEntry>,
}

impl<'a> Classification<'a> {
    /// Partner display name when the host matched the list.
    pub fn partner_name(&self) -> Option<&'a str> {
        self.partner.map(|e| e.name.as_str())
    }

    /// Partner bidder code when the host matched the list.
    pub fn partner_code(&self) -> Option<&'a str> {
        self.partner.map(|e| e.code.as_str())
    }

    /// Whether the matched partner is a known ad-server operator.
    pub fn partner_is_ad_server(&self) -> bool {
        self.partner.is_some_and(|e| e.is_ad_server)
    }
}

/// Classify one outgoing request. Zero-allocation for requests with form
/// or empty bodies (the no-match fast path in particular).
pub fn classify_request<'a>(list: &'a PartnerList, req: &Request) -> Classification<'a> {
    let partner_index = list.match_host_index(&req.url.host);
    let partner = partner_index.map(|i| list.entry(i));

    // Single in-place scan over the visible parameters.
    let mut has_hb = false;
    let mut has_price = false;
    let mut has_slot = false;
    let mut has_account = false;
    let mut first_source_is_s2s: Option<bool> = None;
    req.for_each_visible_param(|k, v| {
        if is_hb_param(k) {
            has_hb = true;
        }
        match k {
            "hb_price" => has_price = true,
            "hb_slot" => has_slot = true,
            "account" => has_account = true,
            "hb_source" => {
                if first_source_is_s2s.is_none() {
                    first_source_is_s2s = Some(v == "s2s");
                }
            }
            _ => {}
        }
    });
    let path = req.url.path.as_str();

    let kind = if path.ends_with(".js")
        || path.contains("prebid")
        || path.contains("gpt")
        || path.contains("pubfood")
    {
        RequestKind::LibraryLoad
    } else if has_hb {
        // The parameter *shape* separates the message types:
        // win notifications carry a clearing price; decisioning calls carry
        // slot lists / source tags; everything else with hb_ keys to a
        // partner is a bid request.
        if has_price {
            RequestKind::WinNotification
        } else if has_slot || first_source_is_s2s == Some(true) || has_account {
            RequestKind::AdServerCall
        } else if partner.is_some() {
            RequestKind::BidRequest
        } else {
            // hb_ params to an unknown host: treat as the publisher's own
            // ad server only when slot/source info is present (handled
            // above); otherwise it is unclassifiable bid-like traffic.
            RequestKind::AdServerCall
        }
    } else if partner.is_some() {
        RequestKind::PartnerOther
    } else {
        RequestKind::Unrelated
    };

    Classification {
        kind,
        partner_index,
        partner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_http::{Body, Json, RequestId, Url};

    fn list() -> PartnerList {
        PartnerList::demo()
    }

    fn get(url: &str) -> Request {
        Request::get(RequestId(1), Url::parse(url).unwrap())
    }

    #[test]
    fn hb_param_dictionary() {
        assert!(is_hb_param("hb_pb"));
        assert!(is_hb_param("hb_bidder"));
        assert!(is_hb_param("bidder"));
        assert!(is_hb_param("cpm"));
        assert!(!is_hb_param("price"));
        assert!(!is_hb_param("q"));
        assert!(!is_hb_param("hbx"));
    }

    #[test]
    fn bid_request_classified() {
        let req = get(
            "https://appnexus-adnet.example/hb/bid?hb_auction=a1&hb_bidder=appnexus&hb_source=client",
        );
        let list = list();
        let c = classify_request(&list, &req);
        assert_eq!(c.kind, RequestKind::BidRequest);
        assert_eq!(c.partner_name(), Some("AppNexus"));
        assert!(!c.partner_is_ad_server());
    }

    #[test]
    fn adserver_call_to_partner() {
        let req = get(
            "https://doubleclick-adnet.example/gampad/ads?account=pub-1&hb_auction=a1&hb_source=s2s&hb_slot=s1",
        );
        let list = list();
        let c = classify_request(&list, &req);
        assert_eq!(c.kind, RequestKind::AdServerCall);
        assert!(c.partner_is_ad_server());
        assert_eq!(c.partner_name(), Some("DFP"));
    }

    #[test]
    fn adserver_call_to_own_host() {
        let req = get(
            "https://ads.pub77.example/gampad/ads?account=pub-77&hb_auction=a1&hb_slot=s1&hb_bidder=rubicon&hb_pb=0.50",
        );
        let list = list();
        let c = classify_request(&list, &req);
        assert_eq!(c.kind, RequestKind::AdServerCall);
        assert!(c.partner_name().is_none(), "own ad server is not in the list");
    }

    #[test]
    fn win_notification_classified() {
        let req = get(
            "https://rubicon-adnet.example/hb/win?hb_price=0.40&hb_adid=cr-1&hb_auction=a1",
        );
        let list = list();
        let c = classify_request(&list, &req);
        assert_eq!(c.kind, RequestKind::WinNotification);
        assert_eq!(c.partner_code(), Some("rubicon"));
    }

    #[test]
    fn library_load_classified() {
        let req = get("https://cdn.example/prebid.js");
        let list = list();
        let c = classify_request(&list, &req);
        assert_eq!(c.kind, RequestKind::LibraryLoad);
    }

    #[test]
    fn partner_tracker_without_hb_params() {
        let req = get("https://rubicon-adnet.example/pixel?uid=123");
        let list = list();
        let c = classify_request(&list, &req);
        assert_eq!(c.kind, RequestKind::PartnerOther);
    }

    #[test]
    fn rtb_waterfall_traffic_is_partner_other_not_hb() {
        // Waterfall notification: DSP-specific param names, no hb_ keys.
        let req = get("https://rubicon-adnet.example/rtb/notify?wp=0.3021&cb=99");
        let list = list();
        let c = classify_request(&list, &req);
        assert_eq!(c.kind, RequestKind::PartnerOther);
    }

    #[test]
    fn unrelated_traffic() {
        let req = get("https://images.news.example/logo.png");
        let list = list();
        let c = classify_request(&list, &req);
        assert_eq!(c.kind, RequestKind::Unrelated);
        assert!(c.partner_name().is_none());
        assert!(c.partner_index.is_none());
    }

    #[test]
    fn body_params_also_scanned() {
        let body = Json::obj([("hb_auction", Json::str("a9"))]);
        let req = Request::post(
            RequestId(2),
            Url::parse("https://appnexus-adnet.example/hb/bid").unwrap(),
            Body::Json(body),
        );
        let list = list();
        let c = classify_request(&list, &req);
        assert_eq!(c.kind, RequestKind::BidRequest);
        let params = hb_params_of_request(&req);
        assert!(params.iter().any(|(k, v)| k == "hb_auction" && v == "a9"));
    }

    #[test]
    fn response_param_extraction() {
        let rsp = hb_http::Response::json(
            RequestId(3),
            Json::obj([
                ("hb_bidder", Json::str("ix")),
                ("hb_pb", Json::str("0.30")),
                ("other", Json::str("x")),
            ]),
        );
        let params = hb_params_of_response(&rsp);
        assert_eq!(params.len(), 2);
        assert!(params.iter().all(|(k, _)| k.starts_with("hb_")));
        assert!(response_has_hb_params(&rsp));
        let empty = hb_http::Response::no_content(RequestId(4));
        assert!(!response_has_hb_params(&empty));
    }

    #[test]
    fn partner_index_resolves_to_entry() {
        let list = list();
        let req = get("https://fast.cdn.appnexus-adnet.example/hb/bid?hb_auction=a1");
        let c = classify_request(&list, &req);
        let idx = c.partner_index.unwrap();
        assert_eq!(list.entry(idx).code, "appnexus");
        assert_eq!(c.partner_code(), Some("appnexus"));
    }
}
