//! String interning for the detector's high-cardinality repeated strings.
//!
//! Every visit record repeats the same handful of strings thousands of
//! times across a campaign — partner names, bidder codes, slot codes, size
//! strings, channel labels, domains. Storing them as owned `String`s makes
//! the per-request hot path allocation-bound and the dataset
//! cache-hostile. [`Interner`] stores each distinct string once and hands
//! out copyable 4-byte [`Symbol`] handles; records store symbols, and the
//! analysis layer resolves them against the campaign-wide interner carried
//! by the dataset.
//!
//! ## Concurrency model
//!
//! The interner is deliberately *not* shared across threads. Each crawl
//! worker owns a private interner; the campaign collector re-interns every
//! record into the campaign interner in deterministic (day, site) order,
//! so symbol numbering is identical regardless of scheduling or
//! parallelism (see `hb-crawler`'s campaign module).

use hb_simnet::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// A handle to an interned string. `Symbol::EMPTY` (the default) always
/// resolves to `""` in every interner.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Symbol(u32);

impl Symbol {
    /// The empty string, pre-interned at index 0 by [`Interner::new`].
    pub const EMPTY: Symbol = Symbol(0);

    /// The raw index (stable within one interner).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for the pre-interned empty string.
    pub fn is_empty(self) -> bool {
        self == Symbol::EMPTY
    }

    /// Rebuild a symbol from its raw index — wire decoding only. Kept
    /// crate-private so external code cannot forge symbols that bypass an
    /// interner; the wire decoder bounds-checks every index against the
    /// companion interner before constructing.
    pub(crate) const fn from_raw(raw: u32) -> Symbol {
        Symbol(raw)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

/// A string interner: each distinct string is stored once (an `Arc<str>`
/// shared between the lookup map and the index), and [`Interner::intern`]
/// is idempotent — the same text always yields the same [`Symbol`].
#[derive(Clone, Debug)]
pub struct Interner {
    strings: Vec<Arc<str>>,
    /// Fx-hashed: interning happens per record string on the crawl and
    /// merge hot paths; symbol numbering comes from `strings` order, so
    /// the hasher cannot influence any output.
    map: FxHashMap<Arc<str>, Symbol>,
}

impl Default for Interner {
    fn default() -> Interner {
        Interner::new()
    }
}

impl Interner {
    /// New interner with `""` pre-interned as [`Symbol::EMPTY`].
    pub fn new() -> Interner {
        let mut interner = Interner {
            strings: Vec::new(),
            map: FxHashMap::default(),
        };
        interner.intern("");
        interner
    }

    /// Intern `s`, returning its symbol (allocating only on first sight).
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(arc.clone());
        self.map.insert(arc, sym);
        sym
    }

    /// Resolve a symbol to its text.
    ///
    /// # Panics
    /// Panics if `sym` was produced by a different interner with more
    /// entries than this one.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Resolve without panicking.
    pub fn try_resolve(&self, sym: Symbol) -> Option<&str> {
        self.strings.get(sym.0 as usize).map(|s| &**s)
    }

    /// Number of distinct strings (including the pre-interned `""`).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Always false: `""` is pre-interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate `(symbol, text)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_preinterned() {
        let mut i = Interner::new();
        assert_eq!(i.intern(""), Symbol::EMPTY);
        assert_eq!(i.resolve(Symbol::EMPTY), "");
        assert_eq!(Symbol::default(), Symbol::EMPTY);
        assert!(Symbol::EMPTY.is_empty());
    }

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("appnexus");
        let b = i.intern("rubicon");
        assert_ne!(a, b);
        assert_eq!(i.intern("appnexus"), a);
        assert_eq!(i.resolve(a), "appnexus");
        assert_eq!(i.resolve(b), "rubicon");
        assert_eq!(i.len(), 3, "two strings plus the empty string");
    }

    #[test]
    fn iteration_order_is_interning_order() {
        let mut i = Interner::new();
        i.intern("b");
        i.intern("a");
        let texts: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(texts, vec!["", "b", "a"]);
    }

    #[test]
    fn try_resolve_bounds() {
        let i = Interner::new();
        assert_eq!(i.try_resolve(Symbol(5)), None);
        assert_eq!(i.try_resolve(Symbol::EMPTY), Some(""));
    }
}
