//! Builder-equivalence property: streaming a visit into [`VisitColumns`]
//! through a [`VisitBuilder`] row produces exactly the same columnar data
//! as materializing a [`VisitRecord`] and `push`ing it — row for row,
//! child table for child table — including when abandoned (dropped,
//! uncommitted) builders are interleaved between rows.

use hb_core::{
    BidSource, DetectedBid, DetectedFacet, DetectedSlot, Interner, PartnerLatency, VisitColumns,
    VisitRecord, VisitScalars,
};
use proptest::prelude::*;

/// Everything needed to build one synthetic visit row from small integers
/// (symbols come from a shared interner keyed by these values).
#[derive(Clone, Debug)]
struct RowSpec {
    rank: u32,
    day: u32,
    hb: bool,
    facet: u8,
    n_partners: usize,
    n_bids: usize,
    n_lats: usize,
    n_slots: usize,
    n_events: usize,
    latency: Option<f64>,
    page_ms: Option<f64>,
}

fn arb_row() -> impl Strategy<Value = RowSpec> {
    (
        (1u32..5000, 0u32..10, any::<bool>(), 0u8..4),
        (0usize..5, 0usize..6, 0usize..4, 0usize..4, 0usize..3),
        ((any::<bool>(), 0.0f64..5000.0), (any::<bool>(), 0.0f64..9000.0)),
    )
        .prop_map(|((rank, day, hb, facet), (n_partners, n_bids, n_lats, n_slots, n_events), ((lat_some, lat), (pm_some, pm)))| RowSpec {
            rank,
            day,
            hb,
            facet,
            n_partners,
            n_bids,
            n_lats,
            n_slots,
            n_events,
            latency: lat_some.then_some(lat),
            page_ms: pm_some.then_some(pm),
        })
}

fn facet_of(spec: &RowSpec) -> Option<DetectedFacet> {
    match spec.facet {
        0 => None,
        1 => Some(DetectedFacet::Client),
        2 => Some(DetectedFacet::Server),
        _ => Some(DetectedFacet::Hybrid),
    }
}

fn record_for(spec: &RowSpec, strings: &mut Interner) -> VisitRecord {
    let sym = |s: &mut Interner, tag: &str, i: usize| s.intern(&format!("{tag}-{}-{i}", spec.rank));
    VisitRecord {
        domain: strings.intern(&format!("pub{}.example", spec.rank)),
        rank: spec.rank,
        day: spec.day,
        hb_detected: spec.hb,
        facet: facet_of(spec),
        partners: (0..spec.n_partners).map(|i| sym(strings, "p", i)).collect(),
        slots_auctioned: spec.n_slots as u32,
        hb_latency_ms: spec.latency,
        bids: (0..spec.n_bids)
            .map(|i| DetectedBid {
                bidder_code: sym(strings, "bc", i),
                partner_name: sym(strings, "pn", i),
                slot: sym(strings, "s", i % 3),
                cpm: 0.05 * (i + 1) as f64,
                size: sym(strings, "sz", i % 2),
                late: i % 2 == 1,
                latency_ms: (i % 3 != 0).then(|| 50.0 + i as f64),
                source: if i % 4 == 0 {
                    BidSource::ServerReported
                } else {
                    BidSource::ClientVisible
                },
            })
            .collect(),
        partner_latencies: (0..spec.n_lats)
            .map(|i| PartnerLatency {
                partner_name: sym(strings, "pn", i),
                bidder_code: sym(strings, "bc", i),
                latency_ms: 10.0 * (i + 1) as f64,
                late: i % 2 == 0,
            })
            .collect(),
        slots: (0..spec.n_slots)
            .map(|i| DetectedSlot {
                slot: sym(strings, "s", i),
                size: sym(strings, "sz", i % 2),
                winner: sym(strings, "w", i),
                price: 0.1 * i as f64,
                channel: sym(strings, "ch", i % 2),
            })
            .collect(),
        event_counts: (0..spec.n_events)
            .map(|i| (sym(strings, "ev", i), (i + 1) as u32))
            .collect(),
        page_load_ms: spec.page_ms,
        bids_dropped: (spec.rank % 3) as u32,
        retries: (spec.day % 2) as u32,
        timed_out_partners: (spec.rank % 2) as u32,
        passback_served: spec.rank % 5 == 0,
    }
}

/// Stream `rec` through a builder row, interleaving the child types the
/// way a detector would (latencies between bids, slots after winners…).
fn build_row(cols: &mut VisitColumns, rec: &VisitRecord) {
    let mut row = cols.begin_visit();
    // Child-type interleaving differs from push()'s order on purpose —
    // only within-type order must be preserved.
    for p in &rec.partners {
        row.push_partner(*p);
    }
    let mut bids = rec.bids.iter();
    for l in &rec.partner_latencies {
        if let Some(b) = bids.next() {
            row.push_bid(*b);
        }
        row.push_partner_latency(*l);
    }
    for b in bids {
        row.push_bid(*b);
    }
    for s in &rec.slots {
        row.push_slot(*s);
    }
    for (label, n) in &rec.event_counts {
        row.push_event_count(*label, *n);
    }
    assert_eq!(row.bids().len(), rec.bids.len());
    assert_eq!(row.slots_len(), rec.slots.len());
    row.finish_row(VisitScalars {
        domain: rec.domain,
        rank: rec.rank,
        day: rec.day,
        hb_detected: rec.hb_detected,
        facet: rec.facet,
        slots_auctioned: rec.slots_auctioned,
        hb_latency_ms: rec.hb_latency_ms,
        page_load_ms: rec.page_load_ms,
        bids_dropped: rec.bids_dropped,
        retries: rec.retries,
        timed_out_partners: rec.timed_out_partners,
        passback_served: rec.passback_served,
    });
}

proptest! {
    /// Builder output equals `push(record)` row-for-row, with abandoned
    /// builders rolling back cleanly between rows.
    #[test]
    fn builder_equals_push(
        specs in proptest::collection::vec(arb_row(), 0..12),
        abandon_every in 1usize..4,
    ) {
        let mut strings = Interner::new();
        let records: Vec<VisitRecord> =
            specs.iter().map(|s| record_for(s, &mut strings)).collect();

        let mut pushed = VisitColumns::new();
        for r in &records {
            pushed.push(r.clone());
        }

        let mut built = VisitColumns::with_capacity(records.len());
        for (i, r) in records.iter().enumerate() {
            if i % abandon_every == 0 {
                // An abandoned (dropped, unfinished) row must leave no
                // trace in the columns.
                let mut dead = built.begin_visit();
                dead.push_partner(r.domain);
                if let Some(b) = r.bids.first() {
                    dead.push_bid(*b);
                }
                drop(dead);
            }
            build_row(&mut built, r);
        }

        prop_assert_eq!(pushed.len(), built.len());
        for i in 0..pushed.len() {
            let a = pushed.get(i).to_record();
            let b = built.get(i).to_record();
            // VisitRecord doesn't implement PartialEq; its Debug output
            // covers every field.
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    /// `clear` keeps no rows and reuses cleanly.
    #[test]
    fn clear_then_reuse(specs in proptest::collection::vec(arb_row(), 1..6)) {
        let mut strings = Interner::new();
        let mut cols = VisitColumns::new();
        for s in &specs {
            cols.push(record_for(s, &mut strings));
        }
        prop_assert_eq!(cols.len(), specs.len());
        cols.clear();
        prop_assert!(cols.is_empty());
        prop_assert_eq!(cols.iter().count(), 0);
        // Reuse after clear behaves like a fresh column set.
        let rec = record_for(&specs[0], &mut strings);
        build_row(&mut cols, &rec);
        prop_assert_eq!(cols.len(), 1);
        prop_assert_eq!(
            format!("{:?}", cols.get(0).to_record()),
            format!("{rec:?}")
        );
    }
}
