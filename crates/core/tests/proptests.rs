//! Property tests for the detector's classification and list-matching
//! invariants.

use hb_core::{classify_request, is_hb_param, PartnerEntry, PartnerList, RequestKind};
use hb_http::{Request, RequestId, Url};
use proptest::prelude::*;

fn arb_host() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z][a-z0-9]{0,10}(\\.[a-z][a-z0-9]{0,10}){1,3}").unwrap()
}

fn arb_path() -> impl Strategy<Value = String> {
    proptest::string::string_regex("(/[a-z0-9._-]{0,12}){0,4}").unwrap()
}

fn arb_query() -> impl Strategy<Value = String> {
    proptest::string::string_regex("([a-z_]{1,10}=[a-zA-Z0-9.%-]{0,10}&?){0,6}").unwrap()
}

proptest! {
    /// Classification never panics and always returns a coherent result on
    /// arbitrary URLs.
    #[test]
    fn classification_total(host in arb_host(), path in arb_path(), query in arb_query()) {
        let list = PartnerList::demo();
        let raw = format!("https://{host}{}{}{}",
            if path.is_empty() { "/" } else { &path },
            if query.is_empty() { "" } else { "?" },
            query);
        let url = Url::parse(&raw).unwrap();
        let url_host = url.host.clone();
        let req = Request::get(RequestId(1), url);
        let c = classify_request(&list, &req);
        // The borrowed classification agrees with an independent list
        // lookup: same entry (by index), same name.
        let expected = list.match_host(&url_host);
        prop_assert_eq!(c.partner_name(), expected.map(|e| e.name.as_str()));
        prop_assert_eq!(
            c.partner_index.map(|i| list.entry(i).code.as_str()),
            expected.map(|e| e.code.as_str())
        );
        if c.kind == RequestKind::PartnerOther {
            prop_assert!(c.partner_name().is_some());
        }
    }

    /// Traffic without hb_* params to unknown hosts is never HB-classified.
    #[test]
    fn no_hb_params_no_hb_class(host in arb_host(), path in arb_path()) {
        let list = PartnerList::demo();
        prop_assume!(list.match_host(&host).is_none());
        prop_assume!(!path.ends_with(".js"));
        prop_assume!(!path.contains("prebid") && !path.contains("gpt") && !path.contains("pubfood"));
        let url = Url::parse(&format!("https://{host}{}", if path.is_empty() { "/" } else { &path })).unwrap();
        let req = Request::get(RequestId(1), url);
        let c = classify_request(&list, &req);
        prop_assert_eq!(c.kind, RequestKind::Unrelated);
    }

    /// The hb_ param dictionary is prefix-consistent.
    #[test]
    fn hb_param_prefix(key in "[a-z_]{1,16}") {
        if key.starts_with("hb_") {
            prop_assert!(is_hb_param(&key));
        }
        if is_hb_param(&key) {
            prop_assert!(key.starts_with("hb_") || key == "bidder" || key == "cpm");
        }
    }

    /// Subdomains of listed partner domains always match; unrelated
    /// suffix-similar hosts never do.
    #[test]
    fn partner_list_matching(sub in "[a-z]{1,8}", decoy in "[a-z]{1,8}") {
        let list = PartnerList::new([PartnerEntry {
            name: "X".into(),
            code: "x".into(),
            domains: vec!["x-adnet.example".into()],
            is_ad_server: false,
        }]);
        let sub_host = format!("{sub}.x-adnet.example");
        let decoy_host = format!("{decoy}x-adnet.example");
        prop_assert!(list.match_host(&sub_host).is_some());
        prop_assert!(list.match_host(&decoy_host).is_none());
    }
}

fn arb_token() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9._-]{0,12}").unwrap()
}

proptest! {
    /// Interning then resolving always returns the original string, and
    /// re-interning returns the same symbol (dedup invariant).
    #[test]
    fn intern_resolve_roundtrip(words in proptest::collection::vec(arb_token(), 0..40)) {
        let mut interner = hb_core::Interner::new();
        let symbols: Vec<hb_core::Symbol> = words.iter().map(|w| interner.intern(w)).collect();
        for (word, sym) in words.iter().zip(&symbols) {
            prop_assert_eq!(interner.resolve(*sym), word.as_str());
            prop_assert_eq!(interner.intern(word), *sym);
        }
    }

    /// The interner stores exactly one entry per distinct string: its size
    /// equals the distinct word count plus the pre-interned "".
    #[test]
    fn intern_dedup_invariant(words in proptest::collection::vec(arb_token(), 0..40)) {
        let mut interner = hb_core::Interner::new();
        for w in &words {
            interner.intern(w);
        }
        let distinct: std::collections::BTreeSet<&str> =
            words.iter().map(|w| w.as_str()).collect();
        let expected = distinct.len() + usize::from(!distinct.contains(""));
        prop_assert_eq!(interner.len(), expected);
        // Equal strings map to equal symbols; distinct strings to distinct.
        let mut seen: std::collections::HashMap<&str, hb_core::Symbol> = Default::default();
        for w in &words {
            let sym = interner.intern(w);
            match seen.get(w.as_str()) {
                Some(prev) => prop_assert_eq!(*prev, sym),
                None => {
                    prop_assert!(!seen.values().any(|s| *s == sym));
                    seen.insert(w, sym);
                }
            }
        }
    }

    /// Interning order is stable: symbols are handed out densely in
    /// first-sight order, and iteration replays it.
    #[test]
    fn intern_iteration_replays_first_sight_order(words in proptest::collection::vec(arb_token(), 0..24)) {
        let mut interner = hb_core::Interner::new();
        let mut first_sight: Vec<String> = vec![String::new()];
        for w in &words {
            if !first_sight.iter().any(|s| s == w) {
                first_sight.push(w.clone());
            }
            interner.intern(w);
        }
        let replayed: Vec<String> = interner.iter().map(|(_, s)| s.to_string()).collect();
        prop_assert_eq!(replayed, first_sight);
    }
}
