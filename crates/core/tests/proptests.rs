//! Property tests for the detector's classification and list-matching
//! invariants.

use hb_core::{classify_request, is_hb_param, PartnerEntry, PartnerList, RequestKind};
use hb_http::{Request, RequestId, Url};
use proptest::prelude::*;

fn arb_host() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z][a-z0-9]{0,10}(\\.[a-z][a-z0-9]{0,10}){1,3}").unwrap()
}

fn arb_path() -> impl Strategy<Value = String> {
    proptest::string::string_regex("(/[a-z0-9._-]{0,12}){0,4}").unwrap()
}

fn arb_query() -> impl Strategy<Value = String> {
    proptest::string::string_regex("([a-z_]{1,10}=[a-zA-Z0-9.%-]{0,10}&?){0,6}").unwrap()
}

proptest! {
    /// Classification never panics and always returns a coherent result on
    /// arbitrary URLs.
    #[test]
    fn classification_total(host in arb_host(), path in arb_path(), query in arb_query()) {
        let list = PartnerList::demo();
        let raw = format!("https://{host}{}{}{}",
            if path.is_empty() { "/" } else { &path },
            if query.is_empty() { "" } else { "?" },
            query);
        let url = Url::parse(&raw).unwrap();
        let req = Request::get(RequestId(1), url);
        let c = classify_request(&list, &req);
        // Partner metadata is present iff the host matched.
        prop_assert_eq!(c.partner_name.is_some(), c.partner_code.is_some());
        if c.kind == RequestKind::PartnerOther {
            prop_assert!(c.partner_name.is_some());
        }
    }

    /// Traffic without hb_* params to unknown hosts is never HB-classified.
    #[test]
    fn no_hb_params_no_hb_class(host in arb_host(), path in arb_path()) {
        let list = PartnerList::demo();
        prop_assume!(list.match_host(&host).is_none());
        prop_assume!(!path.ends_with(".js"));
        prop_assume!(!path.contains("prebid") && !path.contains("gpt") && !path.contains("pubfood"));
        let url = Url::parse(&format!("https://{host}{}", if path.is_empty() { "/" } else { &path })).unwrap();
        let req = Request::get(RequestId(1), url);
        let c = classify_request(&list, &req);
        prop_assert_eq!(c.kind, RequestKind::Unrelated);
    }

    /// The hb_ param dictionary is prefix-consistent.
    #[test]
    fn hb_param_prefix(key in "[a-z_]{1,16}") {
        if key.starts_with("hb_") {
            prop_assert!(is_hb_param(&key));
        }
        if is_hb_param(&key) {
            prop_assert!(key.starts_with("hb_") || key == "bidder" || key == "cpm");
        }
    }

    /// Subdomains of listed partner domains always match; unrelated
    /// suffix-similar hosts never do.
    #[test]
    fn partner_list_matching(sub in "[a-z]{1,8}", decoy in "[a-z]{1,8}") {
        let list = PartnerList::new([PartnerEntry {
            name: "X".into(),
            code: "x".into(),
            domains: vec!["x-adnet.example".into()],
            is_ad_server: false,
        }]);
        let sub_host = format!("{sub}.x-adnet.example");
        let decoy_host = format!("{decoy}x-adnet.example");
        prop_assert!(list.match_host(&sub_host).is_some());
        prop_assert!(list.match_host(&decoy_host).is_none());
    }
}
