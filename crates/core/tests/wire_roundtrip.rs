//! Wire-format properties: any encodable chunk payload — arbitrary
//! [`VisitColumns`] including the fault-truth columns (dropped bids,
//! retries, timed-out partners, passbacks) plus its interner — round
//! trips the sealed frame exactly, and a single flipped bit anywhere in
//! the frame is always rejected (checksum for the payload, header
//! validation for the envelope). Nothing a frame says about itself is
//! trusted until the checksum passes.

use hb_core::{
    decode_columns, decode_interner, encode_columns, encode_interner, open_frame, seal_frame,
    BidSource, DetectedBid, DetectedFacet, DetectedSlot, Interner, PartnerLatency, VisitColumns,
    VisitRecord, WireReader, WireWriter,
};
use proptest::prelude::*;

/// Small-integer recipe for one synthetic visit row (the interner symbols
/// derive from these values, so equal specs intern equal strings).
#[derive(Clone, Debug)]
struct RowSpec {
    rank: u32,
    day: u32,
    hb: bool,
    facet: u8,
    n_partners: usize,
    n_bids: usize,
    n_lats: usize,
    n_slots: usize,
    n_events: usize,
    latency: Option<f64>,
    page_ms: Option<f64>,
}

fn arb_row() -> impl Strategy<Value = RowSpec> {
    (
        (1u32..5000, 0u32..10, any::<bool>(), 0u8..4),
        (0usize..5, 0usize..6, 0usize..4, 0usize..4, 0usize..3),
        ((any::<bool>(), 0.0f64..5000.0), (any::<bool>(), 0.0f64..9000.0)),
    )
        .prop_map(
            |(
                (rank, day, hb, facet),
                (n_partners, n_bids, n_lats, n_slots, n_events),
                ((lat_some, lat), (pm_some, pm)),
            )| RowSpec {
                rank,
                day,
                hb,
                facet,
                n_partners,
                n_bids,
                n_lats,
                n_slots,
                n_events,
                latency: lat_some.then_some(lat),
                page_ms: pm_some.then_some(pm),
            },
        )
}

fn record_for(spec: &RowSpec, strings: &mut Interner) -> VisitRecord {
    let sym = |s: &mut Interner, tag: &str, i: usize| s.intern(&format!("{tag}-{}-{i}", spec.rank));
    VisitRecord {
        domain: strings.intern(&format!("pub{}.example", spec.rank)),
        rank: spec.rank,
        day: spec.day,
        hb_detected: spec.hb,
        facet: match spec.facet {
            0 => None,
            1 => Some(DetectedFacet::Client),
            2 => Some(DetectedFacet::Server),
            _ => Some(DetectedFacet::Hybrid),
        },
        partners: (0..spec.n_partners).map(|i| sym(strings, "p", i)).collect(),
        slots_auctioned: spec.n_slots as u32,
        hb_latency_ms: spec.latency,
        bids: (0..spec.n_bids)
            .map(|i| DetectedBid {
                bidder_code: sym(strings, "bc", i),
                partner_name: sym(strings, "pn", i),
                slot: sym(strings, "s", i % 3),
                cpm: 0.05 * (i + 1) as f64,
                size: sym(strings, "sz", i % 2),
                late: i % 2 == 1,
                latency_ms: (i % 3 != 0).then(|| 50.0 + i as f64),
                source: if i % 4 == 0 {
                    BidSource::ServerReported
                } else {
                    BidSource::ClientVisible
                },
            })
            .collect(),
        partner_latencies: (0..spec.n_lats)
            .map(|i| PartnerLatency {
                partner_name: sym(strings, "pn", i),
                bidder_code: sym(strings, "bc", i),
                latency_ms: 10.0 * (i + 1) as f64,
                late: i % 2 == 0,
            })
            .collect(),
        slots: (0..spec.n_slots)
            .map(|i| DetectedSlot {
                slot: sym(strings, "s", i),
                size: sym(strings, "sz", i % 2),
                winner: sym(strings, "w", i),
                price: 0.1 * i as f64,
                channel: sym(strings, "ch", i % 2),
            })
            .collect(),
        event_counts: (0..spec.n_events)
            .map(|i| (sym(strings, "ev", i), (i + 1) as u32))
            .collect(),
        page_load_ms: spec.page_ms,
        // The fault-truth columns.
        bids_dropped: (spec.rank % 3) as u32,
        retries: (spec.day % 2) as u32,
        timed_out_partners: (spec.rank % 2) as u32,
        passback_served: spec.rank % 5 == 0,
    }
}

/// Build `(interner, columns)` from specs and seal them as one frame.
fn sealed_frame(specs: &[RowSpec]) -> (Interner, VisitColumns, Vec<u8>) {
    let mut strings = Interner::new();
    let mut cols = VisitColumns::with_capacity(specs.len());
    for spec in specs {
        let rec = record_for(spec, &mut strings);
        cols.push(rec);
    }
    let mut w = WireWriter::new();
    encode_interner(&strings, &mut w);
    encode_columns(&cols, &mut w);
    (strings.clone(), cols, seal_frame(&w.into_bytes()))
}

fn decode_frame(frame: &[u8]) -> Result<(Interner, VisitColumns), hb_core::WireError> {
    let payload = open_frame(frame)?;
    let mut r = WireReader::new(payload);
    let strings = decode_interner(&mut r)?;
    let cols = decode_columns(&mut r, strings.len())?;
    r.finish()?;
    Ok((strings, cols))
}

proptest! {
    #[test]
    fn arbitrary_columns_round_trip(specs in proptest::collection::vec(arb_row(), 0..12)) {
        let (strings, cols, frame) = sealed_frame(&specs);
        let (strings2, cols2) = decode_frame(&frame).expect("clean frame decodes");
        prop_assert_eq!(strings.len(), strings2.len());
        for ((sa, ta), (sb, tb)) in strings.iter().zip(strings2.iter()) {
            prop_assert_eq!(sa, sb);
            prop_assert_eq!(ta, tb);
        }
        prop_assert_eq!(cols.len(), cols2.len());
        for i in 0..cols.len() {
            // Debug form covers every field including raw symbol ids, so
            // this checks numbering identity, not just resolved text.
            let a = format!("{:?}", cols.get(i).to_record());
            let b = format!("{:?}", cols2.get(i).to_record());
            prop_assert_eq!(a, b, "row {} differs", i);
        }
    }

    #[test]
    fn one_bit_corruption_is_always_detected(
        specs in proptest::collection::vec(arb_row(), 0..6),
        pos_seed in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let (_, _, frame) = sealed_frame(&specs);
        let pos = pos_seed % frame.len();
        let mut bad = frame.clone();
        bad[pos] ^= 1 << bit;
        // Whatever byte was hit — magic, version, length, payload or the
        // checksum itself — the decode must fail; a flipped bit can never
        // yield a chunk that quietly parses.
        prop_assert!(
            decode_frame(&bad).is_err(),
            "bit {} of byte {} (frame len {}) went undetected",
            bit, pos, frame.len()
        );
    }

    #[test]
    fn truncation_is_always_detected(
        specs in proptest::collection::vec(arb_row(), 0..6),
        cut_seed in 0usize..1_000_000,
    ) {
        let (_, _, frame) = sealed_frame(&specs);
        // Any strict prefix, including an empty one.
        let keep = cut_seed % frame.len();
        prop_assert!(
            decode_frame(&frame[..keep]).is_err(),
            "truncation to {} of {} went undetected",
            keep, frame.len()
        );
    }
}
