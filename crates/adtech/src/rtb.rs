//! OpenRTB-lite internal auctions.
//!
//! Every exchange-like demand partner runs its own second-price auction
//! among affiliated seats before answering a header bid request (Figure 1
//! of the paper shows these nested "RTB AUCTION (2nd best price)" boxes).
//! The same engine powers the waterfall tiers and the server-side
//! provider's remote auction.

use crate::types::Cpm;
use hb_simnet::{Dist, Rng};

/// One seat's sealed bid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeatBid {
    /// Seat index within the partner.
    pub seat: u32,
    /// Offered price.
    pub price: Cpm,
}

/// Outcome of a sealed-bid auction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuctionOutcome {
    /// The winning seat.
    pub winner: SeatBid,
    /// The price actually charged (second price, or the winner's bid when
    /// it stood alone).
    pub clearing_price: Cpm,
    /// Number of seats that submitted bids.
    pub n_bids: usize,
}

/// A second-price sealed auction among `seats` participants drawing from a
/// shared price distribution.
#[derive(Clone, Debug)]
pub struct InternalAuction<'a> {
    seats: u32,
    price: &'a Dist,
    /// Per-seat participation probability.
    pub participation: f64,
}

impl<'a> InternalAuction<'a> {
    /// Create an auction; every seat participates with probability 0.7.
    pub fn new(seats: u32, price: &'a Dist) -> InternalAuction<'a> {
        InternalAuction {
            seats,
            price,
            participation: 0.7,
        }
    }

    /// Collect seat bids.
    pub fn collect_bids(&self, rng: &mut Rng) -> Vec<SeatBid> {
        let mut bids = Vec::new();
        for seat in 0..self.seats {
            if !rng.chance(self.participation) {
                continue;
            }
            let p = self.price.sample(rng);
            if p > 0.0 {
                bids.push(SeatBid {
                    seat,
                    price: Cpm(p),
                });
            }
        }
        bids
    }

    /// Run the full auction, returning the second-price outcome.
    pub fn run_detailed(&self, rng: &mut Rng) -> Option<AuctionOutcome> {
        let mut bids = self.collect_bids(rng);
        if bids.is_empty() {
            return None;
        }
        bids.sort_by(|a, b| b.price.partial_cmp(&a.price).unwrap());
        let winner = bids[0];
        let clearing_price = if bids.len() >= 2 {
            bids[1].price
        } else {
            winner.price
        };
        Some(AuctionOutcome {
            winner,
            clearing_price,
            n_bids: bids.len(),
        })
    }

    /// Run and return just the clearing price (what leaves the partner as
    /// its outgoing header bid).
    pub fn run(&self, rng: &mut Rng) -> Option<Cpm> {
        self.run_detailed(rng).map(|o| o.clearing_price)
    }
}

/// Pick the highest-price winner among candidate `(label, price)` pairs —
/// first-price selection used by the ad server when comparing channels.
/// Deterministic tie-break: earliest candidate wins.
pub fn first_price_winner<T: Clone>(candidates: &[(T, Cpm)]) -> Option<(T, Cpm)> {
    let mut best: Option<(T, Cpm)> = None;
    for (label, price) in candidates {
        match &best {
            Some((_, b)) if b.0 >= price.0 => {}
            _ => best = Some((label.clone(), *price)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_price_charged() {
        let price = Dist::Const(0.0); // unused below
        let _ = price;
        // Deterministic: force two known bids via a custom run.
        let d = Dist::Uniform { lo: 0.1, hi: 2.0 };
        let a = InternalAuction {
            seats: 8,
            price: &d,
            participation: 1.0,
        };
        let mut rng = Rng::new(3);
        let out = a.run_detailed(&mut rng).unwrap();
        assert!(out.n_bids == 8);
        assert!(out.clearing_price.0 <= out.winner.price.0);
    }

    #[test]
    fn single_bid_pays_own_price() {
        let d = Dist::Const(0.8);
        let a = InternalAuction {
            seats: 1,
            price: &d,
            participation: 1.0,
        };
        let mut rng = Rng::new(4);
        let out = a.run_detailed(&mut rng).unwrap();
        assert_eq!(out.clearing_price, Cpm(0.8));
        assert_eq!(out.n_bids, 1);
    }

    #[test]
    fn no_participation_no_outcome() {
        let d = Dist::Const(1.0);
        let a = InternalAuction {
            seats: 5,
            price: &d,
            participation: 0.0,
        };
        let mut rng = Rng::new(5);
        assert!(a.run(&mut rng).is_none());
    }

    #[test]
    fn zero_prices_filtered() {
        let d = Dist::Const(0.0);
        let a = InternalAuction {
            seats: 5,
            price: &d,
            participation: 1.0,
        };
        let mut rng = Rng::new(6);
        assert!(a.run(&mut rng).is_none());
    }

    #[test]
    fn second_price_never_exceeds_first() {
        let d = Dist::LogNormal { mu: -1.5, sigma: 1.0 };
        let a = InternalAuction {
            seats: 6,
            price: &d,
            participation: 0.8,
        };
        let mut rng = Rng::new(7);
        for _ in 0..500 {
            if let Some(out) = a.run_detailed(&mut rng) {
                assert!(out.clearing_price.0 <= out.winner.price.0 + 1e-12);
            }
        }
    }

    #[test]
    fn first_price_winner_selection() {
        let c = vec![("a", Cpm(0.3)), ("b", Cpm(0.9)), ("c", Cpm(0.9))];
        let (label, price) = first_price_winner(&c).unwrap();
        assert_eq!(label, "b", "earliest among ties");
        assert_eq!(price, Cpm(0.9));
        assert!(first_price_winner::<&str>(&[]).is_none());
    }
}
