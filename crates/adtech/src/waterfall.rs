//! The waterfall (daisy-chain) baseline.
//!
//! In the traditional standard the publisher's ad server tries sale
//! channels in priority order: direct orders first, then ad networks tier
//! by tier (each running its own RTB auction), finally remnant fallback.
//! Each tier is a sequential request/passback round trip — which is exactly
//! why HB's parallel fan-out trades extra traffic for (supposedly) better
//! prices, and why waterfall's *latency* is usually lower: the chain
//! typically stops at the first or second hop.
//!
//! Waterfall traffic deliberately carries **no `hb_*` parameters** and
//! fires **no HB DOM events**; notification URLs use DSP-specific parameter
//! names (paper §2.2). The detector must not flag it — tests assert that.

use crate::protocol::{self, FillChannel, WinnerPayload};
use crate::rtb::InternalAuction;
use crate::session::{send_request, NetOutcome, PageWorld};
use crate::types::{AdSize, Cpm};
use crate::wrapper::PartnerRef;
use hb_http::{Endpoint, HStr, Json, Request, Response, ServerReply, Url};
use hb_simnet::{Dist, Rng, Scheduler, SimDuration};

/// One tier of the waterfall chain.
#[derive(Clone, Debug)]
pub struct WaterfallTier {
    /// The ad network handling this tier.
    pub partner: PartnerRef,
    /// Price floor this tier must beat to fill.
    pub floor: Cpm,
}

/// Per-DSP notification parameter names — the paper's point that RTB
/// notification URLs are DSP-dependent, unlike the library-fixed `hb_*`
/// keys. Index by a stable hash of the bidder code.
pub fn rtb_price_param(bidder_code: &str) -> &'static str {
    const NAMES: [&str; 6] = ["p", "price", "wp", "cost", "cpm_enc", "winbid"];
    let h = hb_simnet::fnv1a(bidder_code.as_bytes());
    NAMES[(h % NAMES.len() as u64) as usize]
}

/// The waterfall ad endpoint a tier partner serves (`GET /rtb/ad`).
///
/// Runs the partner's internal auction; fills when the clearing price
/// beats the `floor` query parameter, otherwise passes back with 204.
pub fn waterfall_endpoint(
    bid_rate: f64,
    price: Dist,
    processing_ms: f64,
) -> impl Endpoint {
    move |req: &Request, rng: &mut Rng| -> ServerReply {
        match req.url.path.as_str() {
            p if p == protocol::paths::RTB_AD => {
                let floor = req
                    .url
                    .query
                    .get("floor")
                    .and_then(Cpm::parse)
                    .unwrap_or(Cpm::ZERO);
                let size = req
                    .url
                    .query
                    .get("size")
                    .and_then(AdSize::parse)
                    .unwrap_or(AdSize::MEDIUM_RECT);
                let processing = SimDuration::from_millis_f64(processing_ms);
                if !rng.chance(bid_rate) {
                    return ServerReply::after(Response::no_content(req.id), processing);
                }
                let auction = InternalAuction::new(4, &price);
                match auction.run(rng) {
                    Some(clearing) if clearing.0 >= floor.0 => {
                        let body = Json::obj([
                            ("price", Json::num(clearing.0)),
                            ("size", Json::str(HStr::from_display(size))),
                            ("adm", Json::str(HStr::from_static("<creative/>"))),
                        ]);
                        ServerReply::after(Response::json(req.id, body), processing)
                    }
                    _ => ServerReply::after(Response::no_content(req.id), processing),
                }
            }
            p if p == protocol::paths::RTB_NOTIFY => {
                ServerReply::instant(Response::no_content(req.id))
            }
            _ => ServerReply::instant(Response::error(req.id, hb_http::Status::NOT_FOUND)),
        }
    }
}

/// Begin the waterfall flow for the current site.
pub fn start_waterfall(w: &mut PageWorld, s: &mut Scheduler<PageWorld>) {
    let site = w
        .flow
        .site
        .as_ref()
        .expect("waterfall started without a site")
        .clone();
    w.flow.truth.facet = None;
    w.flow.truth.slots_auctioned = site.ad_units.len();
    let start = s.now();
    w.flow.truth.first_bid_request_at = Some(start);
    try_tier(w, s, 0);
}

/// Attempt tier `idx`; on passback move to the next tier; when exhausted,
/// fall back to house ads.
fn try_tier(w: &mut PageWorld, s: &mut Scheduler<PageWorld>, idx: usize) {
    let site = w.flow.site.as_ref().unwrap().clone();
    let start = w.flow.truth.first_bid_request_at.unwrap();
    if idx >= site.waterfall_tiers.len() {
        // Chain exhausted: fallback/house ad, no further network cost.
        let now = s.now();
        w.flow.truth.waterfall_latency = Some(now.saturating_since(start));
        w.flow.truth.waterfall_fill_tier = None;
        finish_waterfall(w, s, FillChannel::Fallback, Cpm(0.05));
        return;
    }
    send_tier_request(w, s, idx, 0);
}

/// Send the tier's RTB call (attempt 0 or the one `rt=1`-marked retry).
///
/// Every send bumps the waterfall attempt generation; the response
/// continuation and the optional tier deadline both capture it, so
/// whichever fires second sees a stale generation and no-ops. A dropped
/// tier therefore advances on the deadline instead of hanging until the
/// 30 s browser network timeout — and never advances twice.
///
/// Waterfall traffic must never carry `hb_*` keys (the detector asserts
/// it), so the retry marker is the DSP-style `rt` parameter.
fn send_tier_request(w: &mut PageWorld, s: &mut Scheduler<PageWorld>, idx: usize, attempt: u8) {
    let site = w.flow.site.as_ref().unwrap().clone();
    let tier = site.waterfall_tiers[idx].clone();
    let size = site
        .ad_units
        .first()
        .map(|u| u.primary_size())
        .unwrap_or(AdSize::MEDIUM_RECT);
    let mut q = w.scratch.take_params();
    q.append("floor", tier.floor.to_param());
    q.append("size", HStr::from_display(size));
    q.append("cb", HStr::from_display(w.rng.below(1_000_000_000)));
    if attempt > 0 {
        q.append("rt", "1");
    }
    let url = Url::https_pooled(
        HStr::from_display(format_args!("rtb.{}", tier.partner.host)),
        HStr::from_static(protocol::paths::RTB_AD),
        q,
    );
    let id = w.browser.next_request_id();
    let req = Request::get(id, url).from_initiator("adserver-tag");
    w.flow.wf_attempt = w.flow.wf_attempt.wrapping_add(1);
    let gen = w.flow.wf_attempt;
    send_request(w, s, req, move |w, s, out| {
        if matches!(&out, NetOutcome::Failed(_)) {
            w.flow.truth.bids_dropped += 1;
        }
        if w.flow.done || w.flow.wf_attempt != gen {
            return; // the deadline already moved the chain on
        }
        let filled_price = match out {
            NetOutcome::Response(rsp) if rsp.status == hb_http::Status::OK => {
                match rsp.body.into_json() {
                    Some(body) => {
                        let price =
                            body.get("price").and_then(|p| p.as_f64()).map(Cpm);
                        w.scratch.recycle_json(body);
                        price
                    }
                    None => None,
                }
            }
            _ => None,
        };
        match filled_price {
            Some(price) => {
                let now = s.now();
                let start = w.flow.truth.first_bid_request_at.unwrap();
                w.flow.truth.waterfall_latency = Some(now.saturating_since(start));
                w.flow.truth.waterfall_fill_tier = Some(idx);
                // DSP-specific win notification (no hb_* keys).
                let pparam = rtb_price_param(&tier.partner.code);
                let mut q = w.scratch.take_params();
                q.append(
                    HStr::from_static(pparam),
                    HStr::from_display(format_args!("{:.4}", price.0)),
                );
                q.append("cb", HStr::from_display(w.rng.below(1_000_000_000)));
                let url = Url::https_pooled(
                    HStr::from_display(format_args!("rtb.{}", tier.partner.host)),
                    HStr::from_static(protocol::paths::RTB_NOTIFY),
                    q,
                );
                let id = w.browser.next_request_id();
                let req = Request::get(id, url).from_initiator("adserver-tag");
                send_request(w, s, req, |_, _, _| {});
                finish_waterfall(w, s, FillChannel::HeaderBid, price);
            }
            None => try_tier(w, s, idx + 1),
        }
    });
    if let Some(deadline) = site.robustness.tier_deadline {
        let retry = attempt == 0 && site.robustness.retry;
        let backoff = site.robustness.retry_backoff;
        s.after(deadline, move |w: &mut PageWorld, s| {
            if w.flow.done || w.flow.wf_attempt != gen {
                return; // tier answered in time
            }
            if retry {
                s.after(backoff, move |w: &mut PageWorld, s| {
                    if w.flow.done || w.flow.wf_attempt != gen {
                        return; // the late answer landed during backoff
                    }
                    w.flow.truth.retries += 1;
                    send_tier_request(w, s, idx, 1);
                });
            } else {
                // Retry spent (or disabled): the tier is dead — advance.
                w.flow.truth.timed_out_partners += 1;
                try_tier(w, s, idx + 1);
            }
        });
    }
}

fn finish_waterfall(
    w: &mut PageWorld,
    s: &mut Scheduler<PageWorld>,
    channel: FillChannel,
    price: Cpm,
) {
    // Record a synthetic winner per slot for revenue accounting. Waterfall
    // fills are recorded as DirectOrder/Fallback-style winners without
    // bidder attribution (the client cannot see who won inside the network).
    let site = w.flow.site.as_ref().unwrap().clone();
    let now = s.now();
    let channel = if channel == FillChannel::HeaderBid {
        // Within the waterfall, a network fill is "programmatic RTB"; we
        // reuse DirectOrder/Fallback only for the non-auction channels.
        FillChannel::HeaderBid
    } else {
        channel
    };
    for unit in site.ad_units.iter() {
        w.flow.truth.winners.push(WinnerPayload {
            slot: unit.code.clone(),
            bidder: HStr::EMPTY,
            pb: price,
            size: unit.primary_size(),
            ad_id: HStr::EMPTY,
            channel,
        });
        w.browser.page.mark_ad_rendered(now);
    }
    w.browser.page.mark_loaded(now);
    w.flow.done = true;
    let _ = s;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{HostDirectory, Net};
    use crate::types::AdUnit;
    use crate::wrapper::{begin_visit, RobustnessPolicy, SiteRuntime, WrapperConfig};
    use hb_http::Router;
    use hb_simnet::{FaultInjector, LatencyModel, Rng, Simulation, SimTime};
    use std::sync::Arc as Rc;

    fn tier(code: &str, host: &str, floor: f64) -> WaterfallTier {
        WaterfallTier {
            partner: PartnerRef {
                code: code.into(),
                name: code.to_uppercase().into(),
                host: host.into(),
            },
            floor: Cpm(floor),
        }
    }

    /// World with a 2-tier waterfall: tier0 never fills, tier1 always does.
    fn build(fill0: f64, fill1: f64) -> Simulation<PageWorld> {
        build_with(fill0, fill1, FaultInjector::none(), RobustnessPolicy::off())
    }

    /// [`build`] plus a fault injector and a robustness policy.
    fn build_with(
        fill0: f64,
        fill1: f64,
        faults: FaultInjector,
        robustness: RobustnessPolicy,
    ) -> Simulation<PageWorld> {
        let mut router = Router::new();
        router.register("pub1.example", |r: &Request, _: &mut Rng| {
            ServerReply::instant(Response::text(r.id, "<html><head></head></html>"))
        });
        router.register("cdn.example", |r: &Request, _: &mut Rng| {
            ServerReply::instant(Response::text(r.id, "// js"))
        });
        router.register(
            "rtb.adx0.example",
            waterfall_endpoint(fill0, Dist::Const(0.5), 5.0),
        );
        router.register(
            "rtb.adx1.example",
            waterfall_endpoint(fill1, Dist::Const(0.5), 5.0),
        );
        let mut latency = HostDirectory::new();
        latency.insert("pub1.example", LatencyModel::constant(30.0));
        latency.insert("cdn.example", LatencyModel::constant(10.0));
        latency.insert("rtb.adx0.example", LatencyModel::constant(80.0));
        latency.insert("rtb.adx1.example", LatencyModel::constant(80.0));
        let net = Net::new(Rc::new(router), Rc::new(latency), Rc::new(faults));
        let url = Url::parse("https://pub1.example/").unwrap();
        let mut world = PageWorld::new(url.clone(), net, Rng::new(7));
        world.handler_service_ms = Dist::Const(2.0);
        let site = SiteRuntime {
            page_url: url,
            rank: 10,
            facet: None,
            ad_units: vec![AdUnit::new("ad-slot-1", AdSize::MEDIUM_RECT, Cpm(0.01))].into(),
            client_partners: vec![],
            ad_server_host: "ads.pub1.example".into(),
            account_id: "pub-10".into(),
            wrapper: WrapperConfig::default(),
            waterfall_tiers: vec![
                tier("adx0", "adx0.example", 0.0),
                tier("adx1", "adx1.example", 0.0),
            ],
            cdn_host: "cdn.example".into(),
            render_fail_rate: 0.0,
            net_quality: 1.0,
            robustness,
        };
        let mut sim = Simulation::new(world);
        sim.scheduler()
            .after(SimDuration::ZERO, move |w: &mut PageWorld, s| {
                begin_visit(w, s, site);
            });
        sim
    }

    #[test]
    fn first_tier_fill_is_fast() {
        let mut sim = build(1.0, 1.0);
        sim.run_to_idle(10_000);
        let truth = &sim.world().flow.truth;
        assert_eq!(truth.waterfall_fill_tier, Some(0));
        let lat = truth.waterfall_latency.unwrap();
        // One 80ms hop + handling.
        assert!(lat >= SimDuration::from_millis(80), "lat {lat}");
        assert!(lat <= SimDuration::from_millis(120), "lat {lat}");
        assert_eq!(truth.winners.len(), 1);
    }

    #[test]
    fn passback_chains_to_second_tier() {
        let mut sim = build(0.0, 1.0);
        sim.run_to_idle(10_000);
        let truth = &sim.world().flow.truth;
        assert_eq!(truth.waterfall_fill_tier, Some(1));
        let lat = truth.waterfall_latency.unwrap();
        // Two sequential 80ms hops.
        assert!(lat >= SimDuration::from_millis(160), "lat {lat}");
    }

    #[test]
    fn exhausted_chain_falls_back() {
        let mut sim = build(0.0, 0.0);
        sim.run_to_idle(10_000);
        let truth = &sim.world().flow.truth;
        assert_eq!(truth.waterfall_fill_tier, None);
        assert_eq!(truth.winners[0].channel, FillChannel::Fallback);
    }

    #[test]
    fn no_hb_events_and_no_hb_params_in_waterfall() {
        let mut sim = build(1.0, 1.0);
        // Track every outgoing request's params.
        let hb_seen = Rc::new(std::cell::RefCell::new(false));
        let h2 = hb_seen.clone();
        sim.world_mut().browser.webrequest.tap(move |ev| {
            if let hb_dom::WebRequestEvent::Before { request, .. } = ev {
                let params = request.visible_params();
                if params.iter().any(|(k, _)| k.starts_with("hb_")) {
                    *h2.borrow_mut() = true;
                }
            }
        });
        sim.run_to_idle(10_000);
        let w = sim.world();
        assert!(!*hb_seen.borrow(), "waterfall traffic must not carry hb_*");
        assert_eq!(w.browser.events.emitted_count("auctionInit"), 0);
        assert_eq!(w.browser.events.emitted_count("bidResponse"), 0);
        assert_eq!(w.browser.events.emitted_count("bidWon"), 0);
    }

    #[test]
    fn dead_tier_advances_on_deadline_after_one_retry() {
        // Tier 0's endpoint is hard-down. With a tier deadline + retry the
        // chain retries once (marked rt=1, never hb_*) and then advances
        // to tier 1 instead of hanging until the browser network timeout.
        let policy = RobustnessPolicy {
            tier_deadline: Some(SimDuration::from_millis(300)),
            retry: true,
            retry_backoff: SimDuration::from_millis(50),
            ..RobustnessPolicy::off()
        };
        let faults = FaultInjector::none().with_outage("rtb.adx0.example");
        let mut sim = build_with(0.0, 1.0, faults, policy);
        sim.run_to_idle(60_000);
        let truth = &sim.world().flow.truth;
        assert_eq!(truth.waterfall_fill_tier, Some(1), "chain advanced");
        assert_eq!(truth.retries, 1, "one rt=1 retry against tier 0");
        assert_eq!(truth.timed_out_partners, 1, "tier 0 resolved as dead");
        assert_eq!(truth.bids_dropped, 2, "both tier-0 attempts dropped");
        let lat = truth.waterfall_latency.unwrap();
        // deadline (300) + backoff (50) + deadline (300) + tier1 hop.
        assert!(lat >= SimDuration::from_millis(650), "lat {lat}");
        assert!(lat <= SimDuration::from_millis(1_500), "lat {lat}");
    }

    #[test]
    fn dead_chain_with_deadlines_falls_back_without_hanging() {
        // Every tier is down and retry is disabled: the chain must walk
        // the deadlines and land on the house-ad fallback.
        let policy = RobustnessPolicy {
            tier_deadline: Some(SimDuration::from_millis(200)),
            ..RobustnessPolicy::off()
        };
        let faults = FaultInjector::none()
            .with_outage("rtb.adx0.example")
            .with_outage("rtb.adx1.example");
        let mut sim = build_with(1.0, 1.0, faults, policy);
        sim.run_to_idle(60_000);
        let w = sim.world();
        assert!(w.flow.done);
        let truth = &w.flow.truth;
        assert_eq!(truth.waterfall_fill_tier, None);
        assert_eq!(truth.winners[0].channel, FillChannel::Fallback);
        assert_eq!(truth.timed_out_partners, 2);
        let lat = truth.waterfall_latency.unwrap();
        assert!(lat <= SimDuration::from_millis(1_000), "lat {lat}");
    }

    #[test]
    fn retried_waterfall_traffic_still_carries_no_hb_params() {
        let policy = RobustnessPolicy {
            tier_deadline: Some(SimDuration::from_millis(300)),
            retry: true,
            retry_backoff: SimDuration::from_millis(50),
            ..RobustnessPolicy::off()
        };
        let faults = FaultInjector::none().with_outage("rtb.adx0.example");
        let mut sim = build_with(0.0, 1.0, faults, policy);
        let hb_seen = Rc::new(std::cell::RefCell::new(false));
        let h2 = hb_seen.clone();
        sim.world_mut().browser.webrequest.tap(move |ev| {
            if let hb_dom::WebRequestEvent::Before { request, .. } = ev {
                let params = request.visible_params();
                if params.iter().any(|(k, _)| k.starts_with("hb_")) {
                    *h2.borrow_mut() = true;
                }
            }
        });
        sim.run_to_idle(60_000);
        assert!(
            !*hb_seen.borrow(),
            "retried waterfall traffic must not carry hb_*"
        );
    }

    #[test]
    fn rtb_price_param_is_dsp_dependent_but_stable() {
        let a = rtb_price_param("adx0");
        let b = rtb_price_param("adx0");
        assert_eq!(a, b);
        // Different DSPs mostly use different names; at minimum the name
        // is never an hb_* key.
        for code in ["adx0", "adx1", "criteo", "rubicon"] {
            assert!(!rtb_price_param(code).starts_with("hb_"));
        }
    }

    #[test]
    fn waterfall_fill_time_before_page_marked_loaded() {
        let mut sim = build(1.0, 1.0);
        sim.run_to_idle(10_000);
        let w = sim.world();
        assert!(w.flow.done);
        assert!(w.browser.page.loaded.is_some());
        assert!(w.browser.page.loaded.unwrap() > SimTime::ZERO);
    }
}
