//! Wire-level conventions of the simulated HB protocol.
//!
//! The paper's detection hinges on two facts: (a) HB libraries fire a fixed
//! set of DOM events, and (b) HB traffic carries library-fixed `hb_*`
//! parameters that every partner must use, unlike RTB where notification
//! parameter names are DSP-specific. This module pins down both surfaces
//! for the simulation: event names, parameter keys, URL paths, and the
//! payload builders/parsers used by wrapper, partners and ad server.

use crate::types::{AdSize, Cpm};
use hb_http::{HStr, Json, QueryParams};

/// DOM events fired by the wrapper / ad-manager tag (paper §3.1).
pub mod events {
    /// The auction has started.
    pub const AUCTION_INIT: &str = "auctionInit";
    /// Bids have been requested.
    pub const REQUEST_BIDS: &str = "requestBids";
    /// A bid was requested from a specific partner.
    pub const BID_REQUESTED: &str = "bidRequested";
    /// A response has arrived.
    pub const BID_RESPONSE: &str = "bidResponse";
    /// The auction has ended.
    pub const AUCTION_END: &str = "auctionEnd";
    /// A bid has won.
    pub const BID_WON: &str = "bidWon";
    /// The ad's code is injected into a slot.
    pub const SLOT_RENDER_ENDED: &str = "slotRenderEnded";
    /// An ad failed to render.
    pub const AD_RENDER_FAILED: &str = "adRenderFailed";
    /// Every demand source failed; a passback / house ad filled the slots.
    pub const PASSBACK: &str = "passbackServed";
}

/// Library-fixed HB parameter keys (paper §3.1: "bidder", "hb_partner",
/// "hb_price", etc.).
pub mod params {
    /// Bidder code of the partner.
    pub const HB_BIDDER: &str = "hb_bidder";
    /// Price bucket (floored CPM) for ad-server targeting.
    pub const HB_PB: &str = "hb_pb";
    /// Creative/ad id.
    pub const HB_ADID: &str = "hb_adid";
    /// Creative size `WxH`.
    pub const HB_SIZE: &str = "hb_size";
    /// Auction correlation id.
    pub const HB_AUCTION: &str = "hb_auction";
    /// Ad unit (slot) code.
    pub const HB_SLOT: &str = "hb_slot";
    /// Auction source: `client` or `s2s`.
    pub const HB_SOURCE: &str = "hb_source";
    /// Exact clearing price (win notifications).
    pub const HB_PRICE: &str = "hb_price";
    /// Bid currency.
    pub const HB_CURRENCY: &str = "hb_currency";
    /// Raw CPM on bid responses.
    pub const CPM: &str = "cpm";
    /// Generic bidder key also used by bid responses.
    pub const BIDDER: &str = "bidder";
    /// Marks a bid request as a deterministic retry of a failed attempt.
    pub const HB_RETRY: &str = "hb_retry";
}

/// URL path conventions in the simulated namespace.
pub mod paths {
    /// Client-side bid request endpoint on partner hosts.
    pub const BID: &str = "/hb/bid";
    /// Win notification endpoint on partner hosts.
    pub const WIN: &str = "/hb/win";
    /// Server-side HB auction endpoint on provider hosts.
    pub const S2S_AUCTION: &str = "/openrtb2/auction";
    /// Ad-server decisioning endpoint.
    pub const AD_SERVER: &str = "/gampad/ads";
    /// Waterfall RTB ad request endpoint.
    pub const RTB_AD: &str = "/rtb/ad";
    /// Waterfall RTB win notification (DSP-specific params!).
    pub const RTB_NOTIFY: &str = "/rtb/notify";
    /// HB wrapper library file.
    pub const WRAPPER_JS: &str = "/prebid.js";
    /// Ad manager tag library file.
    pub const GPT_JS: &str = "/gpt/pubads_impl.js";
}

/// Default bidder timeout used by most wrappers (paper §5.2: 3 seconds).
pub const DEFAULT_BIDDER_TIMEOUT_MS: u64 = 3_000;

/// Default `hb_pb` price-bucket granularity (prebid "dense"-ish: 1 cent).
pub const DEFAULT_PB_GRANULARITY: f64 = 0.01;

/// One bid inside a bid response payload.
#[derive(Clone, Debug, PartialEq)]
pub struct BidPayload {
    /// Bidder code (e.g. `appnexus`).
    pub bidder: HStr,
    /// Ad unit code the bid targets.
    pub slot: HStr,
    /// Bid price.
    pub cpm: Cpm,
    /// Creative size.
    pub size: AdSize,
    /// Creative id.
    pub ad_id: HStr,
    /// Currency (always USD in the baseline crawl).
    pub currency: HStr,
}

impl BidPayload {
    /// Encode as the JSON object carried in bid responses.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (params::BIDDER, Json::str(self.bidder.clone())),
            (params::HB_SLOT, Json::str(self.slot.clone())),
            (params::CPM, Json::num(self.cpm.0)),
            (params::HB_SIZE, Json::str(HStr::from_display(self.size))),
            (params::HB_ADID, Json::str(self.ad_id.clone())),
            (params::HB_CURRENCY, Json::str(self.currency.clone())),
        ])
    }

    /// Decode from a bid-response JSON object. Clones the body's own
    /// string handles ([`Json::as_hstr`]) so values past the inline cap
    /// share the body's `Arc<str>` instead of re-allocating.
    pub fn from_json(j: &Json) -> Option<BidPayload> {
        Some(BidPayload {
            bidder: j.get(params::BIDDER)?.as_hstr()?.clone(),
            slot: j.get(params::HB_SLOT)?.as_hstr()?.clone(),
            cpm: Cpm(j.get(params::CPM)?.as_f64()?),
            size: AdSize::parse(j.get(params::HB_SIZE)?.as_str()?)?,
            ad_id: j.get(params::HB_ADID)?.as_hstr()?.clone(),
            currency: j
                .get(params::HB_CURRENCY)
                .and_then(|c| c.as_hstr())
                .cloned()
                .unwrap_or(HStr::from_static("USD")),
        })
    }
}

/// The bid-response body: `{"hb_auction": id, "bids": [...]}`.
pub fn bid_response_body(auction_id: &str, bids: &[BidPayload]) -> Json {
    Json::obj([
        (params::HB_AUCTION, Json::str(auction_id)),
        ("bids", Json::arr(bids.iter().map(BidPayload::to_json))),
    ])
}

/// Parse a bid-response body back into payloads.
pub fn parse_bid_response(body: &Json) -> Option<(HStr, Vec<BidPayload>)> {
    let auction = body.get(params::HB_AUCTION)?.as_hstr()?.clone();
    let bids = body
        .get("bids")?
        .as_arr()?
        .iter()
        .filter_map(BidPayload::from_json)
        .collect();
    Some((auction, bids))
}

/// A winner entry in an ad-server (or s2s provider) response.
#[derive(Clone, Debug, PartialEq)]
pub struct WinnerPayload {
    /// Slot the winner fills.
    pub slot: HStr,
    /// Winning bidder code (empty when a non-HB line item won).
    pub bidder: HStr,
    /// Price bucket the win cleared at.
    pub pb: Cpm,
    /// Creative size.
    pub size: AdSize,
    /// Creative id.
    pub ad_id: HStr,
    /// Which channel filled the slot.
    pub channel: FillChannel,
}

/// How a slot ended up filled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillChannel {
    /// A header bidding bid won.
    HeaderBid,
    /// A direct order (sponsorship) filled the slot.
    DirectOrder,
    /// Remnant/fallback (house ads, AdSense-like).
    Fallback,
    /// Nothing filled the slot.
    Unfilled,
}

impl FillChannel {
    /// Stable label.
    pub fn label(&self) -> &'static str {
        match self {
            FillChannel::HeaderBid => "hb",
            FillChannel::DirectOrder => "direct",
            FillChannel::Fallback => "fallback",
            FillChannel::Unfilled => "unfilled",
        }
    }

    /// Parse from label.
    pub fn parse(s: &str) -> Option<FillChannel> {
        Some(match s {
            "hb" => FillChannel::HeaderBid,
            "direct" => FillChannel::DirectOrder,
            "fallback" => FillChannel::Fallback,
            "unfilled" => FillChannel::Unfilled,
            _ => return None,
        })
    }
}

impl WinnerPayload {
    /// Encode as JSON. HB winners carry the full `hb_*` targeting echo,
    /// which is exactly what the detector scans for in responses.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj([
            (params::HB_SLOT, Json::str(self.slot.clone())),
            ("channel", Json::str(self.channel.label())),
            (params::HB_SIZE, Json::str(HStr::from_display(self.size))),
        ]);
        if self.channel == FillChannel::HeaderBid {
            j.insert(params::HB_BIDDER, Json::str(self.bidder.clone()));
            j.insert(params::HB_PB, Json::str(self.pb.to_param()));
            j.insert(params::HB_ADID, Json::str(self.ad_id.clone()));
        }
        j
    }

    /// Decode from JSON. Like [`BidPayload::from_json`], shares the
    /// body's string handles instead of re-allocating them.
    pub fn from_json(j: &Json) -> Option<WinnerPayload> {
        let channel = FillChannel::parse(j.get("channel")?.as_str()?)?;
        Some(WinnerPayload {
            slot: j.get(params::HB_SLOT)?.as_hstr()?.clone(),
            bidder: j
                .get(params::HB_BIDDER)
                .and_then(|b| b.as_hstr())
                .cloned()
                .unwrap_or(HStr::EMPTY),
            pb: j
                .get(params::HB_PB)
                .and_then(|p| p.as_str())
                .and_then(Cpm::parse)
                .unwrap_or(Cpm::ZERO),
            size: AdSize::parse(j.get(params::HB_SIZE)?.as_str()?)?,
            ad_id: j
                .get(params::HB_ADID)
                .and_then(|a| a.as_hstr())
                .cloned()
                .unwrap_or(HStr::EMPTY),
            channel,
        })
    }
}

/// The ad-server response body: `{"winners": [...]}` (plus `hb_auction`).
pub fn ad_server_response_body(auction_id: &str, winners: &[WinnerPayload]) -> Json {
    Json::obj([
        (params::HB_AUCTION, Json::str(auction_id)),
        ("winners", Json::arr(winners.iter().map(WinnerPayload::to_json))),
    ])
}

/// Parse an ad-server response body.
pub fn parse_ad_server_response(body: &Json) -> Option<(HStr, Vec<WinnerPayload>)> {
    let auction = HStr::new(body.get(params::HB_AUCTION)?.as_str()?);
    let winners = body
        .get("winners")?
        .as_arr()?
        .iter()
        .filter_map(WinnerPayload::from_json)
        .collect();
    Some((auction, winners))
}

/// Build the query parameters of a client-side bid request.
pub fn bid_request_params(auction_id: &str, bidder: &str, n_slots: usize) -> QueryParams {
    let mut q = QueryParams::new();
    q.append(params::HB_AUCTION, auction_id);
    q.append(params::HB_BIDDER, bidder);
    q.append(params::HB_SOURCE, "client");
    q.append("slots", HStr::from_display(n_slots));
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid() -> BidPayload {
        BidPayload {
            bidder: "rubicon".into(),
            slot: "ad-slot-1".into(),
            cpm: Cpm(0.42),
            size: AdSize::MEDIUM_RECT,
            ad_id: "cr-99".into(),
            currency: "USD".into(),
        }
    }

    #[test]
    fn bid_payload_roundtrip() {
        let b = bid();
        let j = b.to_json();
        let back = BidPayload::from_json(&j).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn bid_response_roundtrip() {
        let body = bid_response_body("auc-1", &[bid(), bid()]);
        let (auction, bids) = parse_bid_response(&body).unwrap();
        assert_eq!(auction, "auc-1");
        assert_eq!(bids.len(), 2);
        assert_eq!(bids[0].bidder, "rubicon");
    }

    #[test]
    fn winner_payload_roundtrip_hb() {
        let w = WinnerPayload {
            slot: "ad-slot-2".into(),
            bidder: "appnexus".into(),
            pb: Cpm(0.5),
            size: AdSize::LEADERBOARD,
            ad_id: "cr-1".into(),
            channel: FillChannel::HeaderBid,
        };
        let back = WinnerPayload::from_json(&w.to_json()).unwrap();
        assert_eq!(w, back);
        // HB winners expose hb_* keys in the flattened response params.
        let flat = hb_http::Response::json(hb_http::RequestId(1), w.to_json());
        assert_eq!(flat.visible_params().get(params::HB_BIDDER), Some("appnexus"));
        assert_eq!(flat.visible_params().get(params::HB_PB), Some("0.50"));
    }

    #[test]
    fn non_hb_winner_hides_hb_params() {
        let w = WinnerPayload {
            slot: "ad-slot-1".into(),
            bidder: HStr::EMPTY,
            pb: Cpm::ZERO,
            size: AdSize::MEDIUM_RECT,
            ad_id: HStr::EMPTY,
            channel: FillChannel::DirectOrder,
        };
        let j = w.to_json();
        assert!(j.get(params::HB_BIDDER).is_none());
        assert!(j.get(params::HB_PB).is_none());
        let back = WinnerPayload::from_json(&j).unwrap();
        assert_eq!(back.channel, FillChannel::DirectOrder);
        assert_eq!(back.bidder, "");
    }

    #[test]
    fn ad_server_response_roundtrip() {
        let winners = vec![
            WinnerPayload {
                slot: "s1".into(),
                bidder: "openx".into(),
                pb: Cpm(0.3),
                size: AdSize::MEDIUM_RECT,
                ad_id: "a".into(),
                channel: FillChannel::HeaderBid,
            },
            WinnerPayload {
                slot: "s2".into(),
                bidder: HStr::EMPTY,
                pb: Cpm::ZERO,
                size: AdSize::LEADERBOARD,
                ad_id: HStr::EMPTY,
                channel: FillChannel::Unfilled,
            },
        ];
        let body = ad_server_response_body("auc-9", &winners);
        let (auction, back) = parse_ad_server_response(&body).unwrap();
        assert_eq!(auction, "auc-9");
        assert_eq!(back, winners);
    }

    #[test]
    fn fill_channel_labels_roundtrip() {
        for ch in [
            FillChannel::HeaderBid,
            FillChannel::DirectOrder,
            FillChannel::Fallback,
            FillChannel::Unfilled,
        ] {
            assert_eq!(FillChannel::parse(ch.label()), Some(ch));
        }
        assert_eq!(FillChannel::parse("nope"), None);
    }

    #[test]
    fn bid_request_params_carry_hb_keys() {
        let q = bid_request_params("a-1", "criteo", 3);
        assert_eq!(q.get(params::HB_AUCTION), Some("a-1"));
        assert_eq!(q.get(params::HB_BIDDER), Some("criteo"));
        assert_eq!(q.get(params::HB_SOURCE), Some("client"));
        assert_eq!(q.get("slots"), Some("3"));
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert!(BidPayload::from_json(&Json::Null).is_none());
        assert!(parse_bid_response(&Json::obj([("bids", Json::Arr(vec![]))])).is_none());
        assert!(WinnerPayload::from_json(&Json::obj([("channel", Json::str("hb"))])).is_none());
    }
}
