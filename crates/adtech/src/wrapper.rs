//! The header bidding wrapper and visit flows.
//!
//! This module drives a full page visit through one of the four protocol
//! flows the paper studies:
//!
//! * **Client-Side HB** (Fig. 5): wrapper fans out to partners from the
//!   browser, collects bids, forwards them to the publisher's own ad server;
//! * **Server-Side HB** (Fig. 6): a single request to a provider who runs
//!   the auction remotely and returns only winning impressions;
//! * **Hybrid HB** (Fig. 7): client fan-out plus a server-side auction at
//!   the provider/ad server;
//! * **Waterfall** (baseline): the prioritized daisy chain, implemented in
//!   [`crate::waterfall`].
//!
//! The wrapper fires the DOM events the paper's detector reverse-engineered
//! (`auctionInit`, `bidRequested`, `bidResponse`, `auctionEnd`, `bidWon`,
//! `slotRenderEnded`, `adRenderFailed`).

use crate::partner::bid_request_body;
use crate::protocol::{self, events, params, BidPayload, FillChannel, WinnerPayload};
use crate::session::{send_request, NetOutcome, PageWorld};
use crate::types::{AdUnit, HbFacet};
use hb_http::{Body, HStr, Json, Request, Url};
use hb_simnet::{Scheduler, SimDuration, SimTime};
use std::sync::Arc;

/// Reference to a partner as the publisher configures it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartnerRef {
    /// Bidder code (`appnexus`).
    pub code: HStr,
    /// Display name (`AppNexus`).
    pub name: HStr,
    /// Hostname of the partner's endpoint.
    pub host: HStr,
}

/// Publisher-tunable wrapper configuration.
#[derive(Clone, Debug)]
pub struct WrapperConfig {
    /// Bidder timeout; `None` = wait for every partner (no cut-off).
    pub timeout: Option<SimDuration>,
    /// Misconfiguration: send to the ad server immediately, without
    /// waiting for any bid (the paper's §5.2 explanation for partners
    /// losing 100% of their bids).
    pub send_immediately: bool,
    /// `hb_pb` price bucket granularity.
    pub pb_granularity: f64,
}

impl Default for WrapperConfig {
    fn default() -> Self {
        WrapperConfig {
            timeout: Some(SimDuration::from_millis(
                protocol::DEFAULT_BIDDER_TIMEOUT_MS,
            )),
            send_immediately: false,
            pb_granularity: protocol::DEFAULT_PB_GRANULARITY,
        }
    }
}

/// Robustness behavior of the ad path under degraded networks. Everything
/// defaults to **off**, which reproduces the baseline flows bit for bit:
/// no extra events are scheduled, no retry requests are issued, and no
/// RNG draws are added, so a healthy-scenario campaign stays
/// byte-identical to one built without any robustness policy.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RobustnessPolicy {
    /// Per-partner client bid deadline: a partner that has not answered
    /// by then is resolved (retried once when [`Self::retry`] is set,
    /// failed otherwise) so the auction never waits on a dead endpoint.
    pub partner_deadline: Option<SimDuration>,
    /// Issue one deterministic retry (marked `hb_retry=1`) when a bid
    /// request fails or exceeds its deadline.
    pub retry: bool,
    /// Backoff before the retry request leaves.
    pub retry_backoff: SimDuration,
    /// Waterfall tier deadline: a tier that has not answered by then is
    /// retried once (marked `rt=1`, no `hb_*` keys — waterfall traffic
    /// must never carry them) and then advanced past, so the daisy chain
    /// cannot hang on a dropped tier.
    pub tier_deadline: Option<SimDuration>,
    /// Serve a passback / house ad when every demand source failed, so a
    /// fully degraded visit still renders and completes.
    pub passback: bool,
    /// Per-partner deadline of the server-side mediator's fan-out
    /// (threaded into [`crate::adserver::AdServerAccount::s2s_deadline`]
    /// by the ecosystem). `None` = wait for every s2s partner.
    pub s2s_deadline: Option<SimDuration>,
}

impl RobustnessPolicy {
    /// Everything disabled (the baseline semantics).
    pub fn off() -> RobustnessPolicy {
        RobustnessPolicy::default()
    }

    /// A sane degraded-network posture: 2.5 s partner deadline, one retry
    /// after 100 ms, 2 s waterfall tier deadline, passback on.
    pub fn degraded_defaults() -> RobustnessPolicy {
        RobustnessPolicy {
            partner_deadline: Some(SimDuration::from_millis(2_500)),
            retry: true,
            retry_backoff: SimDuration::from_millis(100),
            tier_deadline: Some(SimDuration::from_millis(2_000)),
            passback: true,
            s2s_deadline: Some(SimDuration::from_millis(600)),
        }
    }

    /// True when every knob is off (the baseline fast path).
    pub fn is_off(&self) -> bool {
        *self == RobustnessPolicy::default()
    }
}

/// Everything the simulation needs to visit one site.
#[derive(Clone, Debug)]
pub struct SiteRuntime {
    /// Page URL.
    pub page_url: Url,
    /// Alexa-style rank (1-based).
    pub rank: u32,
    /// The HB facet; `None` = waterfall-only site.
    pub facet: Option<HbFacet>,
    /// Ad units up for auction (already includes any multi-device
    /// duplication the publisher misconfigured). Shared with the site
    /// profile and ad-server account — runtime derivation is a handle
    /// clone, not a unit-list deep copy.
    pub ad_units: Arc<[AdUnit]>,
    /// Client-side partners (client and hybrid facets).
    pub client_partners: Vec<PartnerRef>,
    /// The ad server / server-side provider host.
    pub ad_server_host: HStr,
    /// Account id at the ad server.
    pub account_id: HStr,
    /// Wrapper tuning.
    pub wrapper: WrapperConfig,
    /// Waterfall tiers (baseline comparison).
    pub waterfall_tiers: Vec<crate::waterfall::WaterfallTier>,
    /// CDN host serving wrapper/ad-manager libraries.
    pub cdn_host: HStr,
    /// Probability an ad render fails after winning.
    pub render_fail_rate: f64,
    /// Per-site network quality multiplier applied to every RTT of the
    /// visit (premium publishers sit on better-peered infrastructure;
    /// drives the rank-latency association of Fig. 13). 1.0 = neutral.
    pub net_quality: f64,
    /// Robustness posture of the ad path (deadlines, retry, passback).
    /// The default keeps everything off, i.e. baseline semantics.
    pub robustness: RobustnessPolicy,
}

/// Ground truth collected during the visit (for validating the detector
/// and for the waterfall baseline, which the detector deliberately does
/// not capture).
#[derive(Clone, Debug, Default)]
pub struct VisitGroundTruth {
    /// Facet that actually ran.
    pub facet: Option<HbFacet>,
    /// Number of slots auctioned.
    pub slots_auctioned: usize,
    /// Client-visible bids received (in time or late).
    pub client_bids: usize,
    /// Bids that arrived after the ad-server send.
    pub late_bids: usize,
    /// When the first bid request left.
    pub first_bid_request_at: Option<SimTime>,
    /// When the ad-server request left.
    pub adserver_sent_at: Option<SimTime>,
    /// When the ad-server response arrived.
    pub adserver_response_at: Option<SimTime>,
    /// Winners per slot.
    pub winners: Vec<WinnerPayload>,
    /// Waterfall fill latency (waterfall sites only).
    pub waterfall_latency: Option<SimDuration>,
    /// Which waterfall tier filled (0-based; `None` = fallback).
    pub waterfall_fill_tier: Option<usize>,
    /// Ad-path requests (bid, tier, ad-server calls) whose response never
    /// arrived (network drop / timeout).
    pub bids_dropped: usize,
    /// Retry requests issued by the robustness policy.
    pub retries: usize,
    /// Distinct client partners resolved as timed out / failed.
    pub timed_out_partners: usize,
    /// Did a passback / house ad fill the slots because every demand
    /// source failed?
    pub passback_served: bool,
}

impl VisitGroundTruth {
    /// Total HB latency per the paper's definition: first bid request until
    /// the ad server responds.
    pub fn hb_latency(&self) -> Option<SimDuration> {
        Some(
            self.adserver_response_at?
                .saturating_since(self.first_bid_request_at?),
        )
    }

    /// Clear for the next pooled visit while keeping the winners vector's
    /// capacity (equivalent to `*self = Default::default()` observably).
    /// The exhaustive destructuring makes a newly added field a compile
    /// error here, so per-visit state can never leak across pooled visits
    /// silently.
    pub fn reset_for_visit(&mut self) {
        let VisitGroundTruth {
            facet,
            slots_auctioned,
            client_bids,
            late_bids,
            first_bid_request_at,
            adserver_sent_at,
            adserver_response_at,
            winners,
            waterfall_latency,
            waterfall_fill_tier,
            bids_dropped,
            retries,
            timed_out_partners,
            passback_served,
        } = self;
        *facet = None;
        *slots_auctioned = 0;
        *client_bids = 0;
        *late_bids = 0;
        *first_bid_request_at = None;
        *adserver_sent_at = None;
        *adserver_response_at = None;
        winners.clear();
        *waterfall_latency = None;
        *waterfall_fill_tier = None;
        *bids_dropped = 0;
        *retries = 0;
        *timed_out_partners = 0;
        *passback_served = false;
    }
}

/// Mutable per-visit flow state living inside [`PageWorld`].
#[derive(Default)]
pub struct FlowState {
    /// The site being visited (shared: flow steps take cheap `Arc`
    /// handles instead of deep-cloning ad units and partner lists on
    /// every continuation).
    pub site: Option<Arc<SiteRuntime>>,
    /// Auction correlation id.
    pub auction_id: HStr,
    /// Client-collected bids.
    pub bids: Vec<BidPayload>,
    /// Partners that have not answered yet.
    pub partners_pending: usize,
    /// Has the ad-server request been sent?
    pub sent_to_adserver: bool,
    /// Is the visit complete (ads rendered / given up)?
    pub done: bool,
    /// Per-partner: has this partner's auction participation been
    /// resolved (answered, failed, or deadline-expired)? Indexed like
    /// `site.client_partners`. A partner resolves exactly once, even
    /// when deadlines and in-flight responses race.
    pub partner_resolved: Vec<bool>,
    /// Per-partner: has the one robustness retry been spent?
    pub partner_retried: Vec<bool>,
    /// Waterfall attempt generation, bumped on every tier transition or
    /// retry so stale deadline/response continuations no-op.
    pub wf_attempt: u32,
    /// Ground truth accumulator.
    pub truth: VisitGroundTruth,
}

impl FlowState {
    /// Shared handle to the site runtime (two atomic ops, not a deep
    /// clone of ad units / partner refs / waterfall tiers).
    fn site_handle(&self) -> Arc<SiteRuntime> {
        self.site.clone().expect("flow started without a site")
    }

    /// Re-arm for the next pooled visit, keeping the collected-bids
    /// buffer capacity. Equivalent to `*self = FlowState::default()`
    /// minus the allocation churn.
    pub fn reset_for_visit(&mut self) {
        self.site = None;
        self.auction_id = HStr::EMPTY;
        self.bids.clear();
        self.partners_pending = 0;
        self.sent_to_adserver = false;
        self.done = false;
        self.partner_resolved.clear();
        self.partner_retried.clear();
        self.wf_attempt = 0;
        self.truth.reset_for_visit();
    }
}

/// Entry point: start a visit for `site`. Schedules the page fetch and the
/// facet-appropriate flow. Run the simulation to completion afterwards.
/// Accepts the runtime owned or pre-shared — the pooled crawl path passes
/// an `Arc<SiteRuntime>` straight from the factory's memo, so starting a
/// visit never deep-copies ad units or partner lists.
pub fn begin_visit(
    w: &mut PageWorld,
    s: &mut Scheduler<PageWorld>,
    site: impl Into<Arc<SiteRuntime>>,
) {
    let site = site.into();
    w.scratch.begin_visit();
    let auction_id =
        HStr::from_display(format_args!("auc-{}-{}", site.rank, w.rng.below(1_000_000_000)));
    w.rtt_scale = site.net_quality;
    w.flow.site = Some(site.clone());
    w.flow.auction_id = auction_id;
    // 1. Fetch the page HTML.
    let id = w.browser.next_request_id();
    let req = Request::get(id, site.page_url.clone()).from_initiator("navigation");
    send_request(w, s, req, move |w, s, out| {
        if !matches!(out, NetOutcome::Response(_)) {
            w.flow.done = true; // site unreachable
            return;
        }
        w.browser.page.mark_header_parsed(s.now());
        fetch_libraries(w, s);
    });
}

/// 2. Fetch wrapper + ad-manager libraries from the CDN, then start the flow.
fn fetch_libraries(w: &mut PageWorld, s: &mut Scheduler<PageWorld>) {
    let site = w.flow.site_handle();
    let cdn = site.cdn_host.clone();
    // The ad-manager tag is fetched in parallel; we only gate on the
    // wrapper library (it is what issues the bid requests).
    let gpt_id = w.browser.next_request_id();
    let gpt_req = Request::get(
        gpt_id,
        Url::https_pooled(
            cdn.clone(),
            HStr::from_static(protocol::paths::GPT_JS),
            w.scratch.take_params(),
        ),
    )
    .from_initiator("document");
    send_request(w, s, gpt_req, |_, _, _| {});

    let lib_id = w.browser.next_request_id();
    let lib_req = Request::get(
        lib_id,
        Url::https_pooled(
            cdn,
            HStr::from_static(protocol::paths::WRAPPER_JS),
            w.scratch.take_params(),
        ),
    )
    .from_initiator("document");
    send_request(w, s, lib_req, move |w, s, _| {
        w.browser.page.mark_dom_ready(s.now());
        match site.facet {
            Some(HbFacet::ClientSide) | Some(HbFacet::Hybrid) => start_client_auction(w, s),
            Some(HbFacet::ServerSide) => start_server_side(w, s),
            None => crate::waterfall::start_waterfall(w, s),
        }
    });
}

/// 3a. Client-side / hybrid: fan out to the configured partners.
fn start_client_auction(w: &mut PageWorld, s: &mut Scheduler<PageWorld>) {
    let site = w.flow.site_handle();
    let auction_id = w.flow.auction_id.clone();
    let now = s.now();
    w.flow.truth.facet = site.facet;
    w.flow.truth.slots_auctioned = site.ad_units.len();

    // Event payloads are built from pooled spines and recycled as soon
    // as the listeners have seen them (listeners copy what they keep).
    let payload = Json::obj([
        (params::HB_AUCTION, Json::str(auction_id.clone())),
        (
            "adUnitCodes",
            Json::arr(site.ad_units.iter().map(|u| Json::str(u.code.clone()))),
        ),
        ("timestamp", Json::num(now.as_millis_f64())),
    ]);
    w.browser.fire_event(now, events::AUCTION_INIT, &payload);
    w.scratch.recycle_json(payload);
    let payload = Json::obj([(params::HB_AUCTION, Json::str(auction_id.clone()))]);
    w.browser.fire_event(now, events::REQUEST_BIDS, &payload);
    w.scratch.recycle_json(payload);

    let slots: Vec<(HStr, crate::types::AdSize)> = site
        .ad_units
        .iter()
        .map(|u| (u.code.clone(), u.primary_size()))
        .collect();
    w.flow.partners_pending = site.client_partners.len();
    w.flow.partner_resolved.clear();
    w.flow
        .partner_resolved
        .resize(site.client_partners.len(), false);
    w.flow.partner_retried.clear();
    w.flow
        .partner_retried
        .resize(site.client_partners.len(), false);

    for (idx, partner) in site.client_partners.iter().enumerate() {
        let code = partner.code.clone();
        let mut q = w.scratch.take_params();
        q.append(params::HB_AUCTION, auction_id.clone());
        q.append(params::HB_BIDDER, code.clone());
        q.append(params::HB_SOURCE, "client");
        q.append("slots", HStr::from_display(slots.len()));
        let url = Url::https_pooled(
            partner.host.clone(),
            HStr::from_static(protocol::paths::BID),
            q,
        );
        let id = w.browser.next_request_id();
        let req = Request::post(id, url, Body::Json(bid_request_body(&slots)))
            .from_initiator("prebid.js");
        let payload = Json::obj([
            (params::HB_BIDDER, Json::str(code.clone())),
            (params::HB_AUCTION, Json::str(auction_id.clone())),
        ]);
        w.browser.fire_event(s.now(), events::BID_REQUESTED, &payload);
        w.scratch.recycle_json(payload);
        if w.flow.truth.first_bid_request_at.is_none() {
            w.flow.truth.first_bid_request_at = Some(s.now());
        }
        send_request(w, s, req, move |w, s, out| {
            handle_bid_outcome(w, s, idx, 0, out)
        });
        if let Some(deadline) = site.robustness.partner_deadline {
            s.after(deadline, move |w: &mut PageWorld, s| {
                partner_deadline_expired(w, s, idx, 0);
            });
        }
    }

    if site.client_partners.is_empty() {
        // Degenerate config: nothing to wait for.
        send_to_adserver(w, s);
        return;
    }

    if site.wrapper.send_immediately {
        // Misconfigured wrapper: ship an empty bid set right away.
        send_to_adserver(w, s);
    } else if let Some(timeout) = site.wrapper.timeout {
        s.after(timeout, |w: &mut PageWorld, s| {
            if !w.flow.sent_to_adserver && !w.flow.done {
                send_to_adserver(w, s);
            }
        });
    }
}

/// Handle a partner's bid response (or failure) for one attempt.
///
/// With the robustness policy off every partner produces exactly one
/// outcome, so the resolution bookkeeping degenerates to the baseline
/// "decrement pending once per partner" semantics. With deadlines/retry
/// on, a partner can produce several outcomes (deadline expiry, the
/// original slow response, the retry response) — only the first
/// *resolving* one decrements `partners_pending`.
fn handle_bid_outcome(
    w: &mut PageWorld,
    s: &mut Scheduler<PageWorld>,
    partner_idx: usize,
    attempt: u8,
    out: NetOutcome,
) {
    let succeeded = matches!(&out, NetOutcome::Response(rsp) if rsp.status.is_success());
    if matches!(&out, NetOutcome::Failed(_)) {
        w.flow.truth.bids_dropped += 1;
    }
    let arrived_late = w.flow.sent_to_adserver;
    if let NetOutcome::Response(rsp) = out {
        if rsp.status.is_success() {
            if let Some(body) = rsp.body.into_json() {
                if let Some((_, bids)) = protocol::parse_bid_response(&body) {
                    for bid in bids {
                        w.flow.truth.client_bids += 1;
                        if arrived_late {
                            w.flow.truth.late_bids += 1;
                        }
                        let payload = Json::obj([
                            (params::BIDDER, Json::str(bid.bidder.clone())),
                            (params::HB_AUCTION, Json::str(w.flow.auction_id.clone())),
                            (params::HB_SLOT, Json::str(bid.slot.clone())),
                            (params::CPM, Json::num(bid.cpm.0)),
                            (params::HB_SIZE, Json::str(HStr::from_display(bid.size))),
                            (params::HB_CURRENCY, Json::str(bid.currency.clone())),
                        ]);
                        w.browser.fire_event(s.now(), events::BID_RESPONSE, &payload);
                        w.scratch.recycle_json(payload);
                        if !arrived_late {
                            w.flow.bids.push(bid);
                        }
                    }
                }
                // The response tree is dead; pool its spines for the
                // next payload this worker builds.
                w.scratch.recycle_json(body);
            }
        }
    }

    // Resolution bookkeeping. Outcomes arriving after the partner
    // resolved (late responses past a deadline, the straggling network
    // failure of an already-expired attempt) count bids/drops above but
    // must not decrement `partners_pending` again.
    if w.flow.partner_resolved.get(partner_idx).copied().unwrap_or(true) {
        return;
    }
    if !succeeded {
        let site = w.flow.site_handle();
        if attempt == 0 && site.robustness.retry && !w.flow.partner_retried[partner_idx] {
            // First attempt failed fast: spend the retry; resolution is
            // deferred to the retry's outcome or deadline.
            launch_partner_retry(w, s, partner_idx);
            return;
        }
        w.flow.truth.timed_out_partners += 1;
    } else if attempt == 0 && w.flow.partner_retried[partner_idx] {
        // The original attempt answered after its deadline launched a
        // retry: the bids were counted above; the retry resolves.
        return;
    }
    w.flow.partner_resolved[partner_idx] = true;
    w.flow.partners_pending = w.flow.partners_pending.saturating_sub(1);
    if w.flow.partners_pending == 0 && !w.flow.sent_to_adserver && !w.flow.done {
        send_to_adserver(w, s);
    }
}

/// A partner's per-attempt deadline fired. No-op when the partner already
/// resolved or (for attempt 0) a retry superseded the attempt; otherwise
/// spend the retry, or resolve the partner as timed out.
fn partner_deadline_expired(
    w: &mut PageWorld,
    s: &mut Scheduler<PageWorld>,
    partner_idx: usize,
    attempt: u8,
) {
    if w.flow.done || w.flow.partner_resolved.get(partner_idx).copied().unwrap_or(true) {
        return;
    }
    if attempt == 0 && w.flow.partner_retried[partner_idx] {
        return; // the retry's own deadline is armed
    }
    let site = w.flow.site_handle();
    if attempt == 0 && site.robustness.retry {
        launch_partner_retry(w, s, partner_idx);
        return;
    }
    w.flow.truth.timed_out_partners += 1;
    w.flow.partner_resolved[partner_idx] = true;
    w.flow.partners_pending = w.flow.partners_pending.saturating_sub(1);
    if w.flow.partners_pending == 0 && !w.flow.sent_to_adserver && !w.flow.done {
        send_to_adserver(w, s);
    }
}

/// Issue the one deterministic retry for a partner: after the configured
/// backoff, re-send the bid request marked `hb_retry=1` and re-arm the
/// per-attempt deadline.
fn launch_partner_retry(w: &mut PageWorld, s: &mut Scheduler<PageWorld>, partner_idx: usize) {
    let site = w.flow.site_handle();
    w.flow.partner_retried[partner_idx] = true;
    w.flow.truth.retries += 1;
    let partner = &site.client_partners[partner_idx];
    let code = partner.code.clone();
    let host = partner.host.clone();
    let auction_id = w.flow.auction_id.clone();
    let slots: Vec<(HStr, crate::types::AdSize)> = site
        .ad_units
        .iter()
        .map(|u| (u.code.clone(), u.primary_size()))
        .collect();
    let backoff = site.robustness.retry_backoff;
    let deadline = site.robustness.partner_deadline;
    s.after(backoff, move |w: &mut PageWorld, s| {
        if w.flow.done
            || w.flow.partner_resolved.get(partner_idx).copied().unwrap_or(true)
        {
            return;
        }
        let mut q = w.scratch.take_params();
        q.append(params::HB_AUCTION, auction_id.clone());
        q.append(params::HB_BIDDER, code.clone());
        q.append(params::HB_SOURCE, "client");
        q.append("slots", HStr::from_display(slots.len()));
        q.append(params::HB_RETRY, "1");
        let url = Url::https_pooled(host, HStr::from_static(protocol::paths::BID), q);
        let id = w.browser.next_request_id();
        let req = Request::post(id, url, Body::Json(bid_request_body(&slots)))
            .from_initiator("prebid.js");
        let payload = Json::obj([
            (params::HB_BIDDER, Json::str(code)),
            (params::HB_AUCTION, Json::str(auction_id)),
        ]);
        w.browser.fire_event(s.now(), events::BID_REQUESTED, &payload);
        w.scratch.recycle_json(payload);
        send_request(w, s, req, move |w, s, out| {
            handle_bid_outcome(w, s, partner_idx, 1, out)
        });
        if let Some(d) = deadline {
            s.after(d, move |w: &mut PageWorld, s| {
                partner_deadline_expired(w, s, partner_idx, 1);
            });
        }
    });
}

/// 4. Ship collected bids to the ad server; fires `auctionEnd`.
fn send_to_adserver(w: &mut PageWorld, s: &mut Scheduler<PageWorld>) {
    if w.flow.sent_to_adserver {
        return;
    }
    w.flow.sent_to_adserver = true;
    let now = s.now();
    w.flow.truth.adserver_sent_at = Some(now);
    let site = w.flow.site_handle();
    let auction_id = w.flow.auction_id.clone();

    let payload = Json::obj([
        (params::HB_AUCTION, Json::str(auction_id.clone())),
        ("bidsReceived", Json::num(w.flow.bids.len() as f64)),
        ("timestamp", Json::num(now.as_millis_f64())),
    ]);
    w.browser.fire_event(now, events::AUCTION_END, &payload);
    w.scratch.recycle_json(payload);

    // Bucket prices for targeting.
    let bucketed: Vec<BidPayload> = w
        .flow
        .bids
        .iter()
        .map(|b| BidPayload {
            cpm: b.cpm.bucket(site.wrapper.pb_granularity),
            ..b.clone()
        })
        .collect();

    let mut q = w.scratch.take_params();
    q.append("account", site.account_id.clone());
    q.append(params::HB_AUCTION, auction_id);
    q.append(params::HB_SOURCE, "client");
    for unit in site.ad_units.iter() {
        q.append(params::HB_SLOT, unit.code.clone());
    }
    // Echo the best bid per slot as hb_* targeting key-values (what DFP
    // line items key on, and what the detector sees in the URL).
    for unit in site.ad_units.iter() {
        if let Some(best) = bucketed
            .iter()
            .filter(|b| b.slot == unit.code)
            .max_by(|a, b| a.cpm.partial_cmp(&b.cpm).unwrap())
        {
            q.append(params::HB_BIDDER, best.bidder.clone());
            q.append(params::HB_PB, best.cpm.to_param());
            q.append(params::HB_SIZE, HStr::from_display(best.size));
            q.append(params::HB_ADID, best.ad_id.clone());
        }
    }
    let url = Url::https_pooled(
        site.ad_server_host.clone(),
        HStr::from_static(protocol::paths::AD_SERVER),
        q,
    );
    let id = w.browser.next_request_id();
    let body = protocol::bid_response_body(&w.flow.auction_id, &bucketed);
    let req = Request::post(id, url, Body::Json(body)).from_initiator("prebid.js");
    if w.flow.truth.first_bid_request_at.is_none() {
        // Server-side-like degenerate case: the ad-server call is the first
        // HB-related request.
        w.flow.truth.first_bid_request_at = Some(now);
    }
    send_request(w, s, req, |w, s, out| handle_adserver_response(w, s, out));
}

/// 3b. Server-Side HB: one request to the provider; it runs the auction.
fn start_server_side(w: &mut PageWorld, s: &mut Scheduler<PageWorld>) {
    let site = w.flow.site_handle();
    let now = s.now();
    w.flow.truth.facet = site.facet;
    w.flow.truth.slots_auctioned = site.ad_units.len();
    w.flow.truth.first_bid_request_at = Some(now);
    w.flow.truth.adserver_sent_at = Some(now);
    w.flow.sent_to_adserver = true;

    let mut q = w.scratch.take_params();
    q.append("account", site.account_id.clone());
    q.append(params::HB_AUCTION, w.flow.auction_id.clone());
    q.append(params::HB_SOURCE, "s2s");
    for unit in site.ad_units.iter() {
        q.append(params::HB_SLOT, unit.code.clone());
    }
    let url = Url::https_pooled(
        site.ad_server_host.clone(),
        HStr::from_static(protocol::paths::AD_SERVER),
        q,
    );
    let id = w.browser.next_request_id();
    let req = Request::get(id, url).from_initiator("hb-provider-tag");
    send_request(w, s, req, |w, s, out| handle_adserver_response(w, s, out));
}

/// 5. Ad-server response: fire win events, render slots, notify winners.
fn handle_adserver_response(w: &mut PageWorld, s: &mut Scheduler<PageWorld>, out: NetOutcome) {
    let now = s.now();
    w.flow.truth.adserver_response_at = Some(now);
    let site = w.flow.site_handle();
    if matches!(&out, NetOutcome::Failed(_)) {
        w.flow.truth.bids_dropped += 1;
    }
    let mut winners = match out {
        NetOutcome::Response(rsp) if rsp.status.is_success() => match rsp.body.into_json() {
            Some(body) => {
                let ws = protocol::parse_ad_server_response(&body)
                    .map(|(_, ws)| ws)
                    .unwrap_or_default();
                w.scratch.recycle_json(body);
                ws
            }
            None => Vec::new(),
        },
        _ => Vec::new(),
    };
    if winners.is_empty() && site.robustness.passback && !site.ad_units.is_empty() {
        // Graceful degradation: every demand source (including the ad
        // server itself) failed — fill the slots with a house ad so the
        // page still completes instead of timing out empty.
        w.flow.truth.passback_served = true;
        winners = site
            .ad_units
            .iter()
            .map(|u| WinnerPayload {
                slot: u.code.clone(),
                bidder: HStr::from_static("house"),
                pb: crate::types::Cpm(0.0),
                size: u.primary_size(),
                ad_id: HStr::from_static("passback"),
                channel: FillChannel::Fallback,
            })
            .collect();
        let payload = Json::obj([
            (params::HB_AUCTION, Json::str(w.flow.auction_id.clone())),
            ("slots", Json::num(winners.len() as f64)),
        ]);
        w.browser.fire_event(now, events::PASSBACK, &payload);
        w.scratch.recycle_json(payload);
    }
    w.flow.truth.winners = winners.clone();

    let fires_prebid_events = matches!(
        site.facet,
        Some(HbFacet::ClientSide) | Some(HbFacet::Hybrid)
    );
    for winner in &winners {
        if winner.channel == FillChannel::HeaderBid && fires_prebid_events {
            let payload = Json::obj([
                (params::HB_BIDDER, Json::str(winner.bidder.clone())),
                (params::HB_AUCTION, Json::str(w.flow.auction_id.clone())),
                (params::HB_SLOT, Json::str(winner.slot.clone())),
                (params::HB_PB, Json::str(winner.pb.to_param())),
                (params::HB_SIZE, Json::str(HStr::from_display(winner.size))),
            ]);
            w.browser.fire_event(now, events::BID_WON, &payload);
            w.scratch.recycle_json(payload);
        }
        // Win notification back to client-side partners we know the host of.
        if winner.channel == FillChannel::HeaderBid {
            if let Some(partner) = site
                .client_partners
                .iter()
                .find(|p| p.code == winner.bidder)
            {
                let mut q = w.scratch.take_params();
                q.append(params::HB_PRICE, winner.pb.to_param());
                q.append(params::HB_ADID, winner.ad_id.clone());
                q.append(params::HB_AUCTION, w.flow.auction_id.clone());
                let url = Url::https_pooled(
                    partner.host.clone(),
                    HStr::from_static(protocol::paths::WIN),
                    q,
                );
                let id = w.browser.next_request_id();
                let req = Request::get(id, url).from_initiator("prebid.js");
                send_request(w, s, req, |_, _, _| {});
            }
        }
    }

    // Render each slot after a short creative-injection delay.
    let n = winners.len();
    for (i, winner) in winners.into_iter().enumerate() {
        let delay = SimDuration::from_millis(20 + 15 * i as u64);
        let fail = w.rng.chance(site.render_fail_rate)
            && winner.channel != FillChannel::Unfilled;
        let last = i + 1 == n;
        s.after(delay, move |w: &mut PageWorld, s| {
            let now = s.now();
            if fail {
                let payload =
                    Json::obj([(params::HB_SLOT, Json::str(winner.slot.clone()))]);
                w.browser.fire_event(now, events::AD_RENDER_FAILED, &payload);
                w.scratch.recycle_json(payload);
                w.browser.page.mark_ad_failed();
            } else {
                let payload = Json::obj([
                    (params::HB_SLOT, Json::str(winner.slot.clone())),
                    (params::HB_SIZE, Json::str(HStr::from_display(winner.size))),
                    (
                        "isEmpty",
                        Json::Bool(winner.channel == FillChannel::Unfilled),
                    ),
                    ("channel", Json::str(HStr::from_static(winner.channel.label()))),
                ]);
                w.browser.fire_event(now, events::SLOT_RENDER_ENDED, &payload);
                w.scratch.recycle_json(payload);
                w.browser.page.mark_ad_rendered(now);
            }
            if last {
                w.browser.page.mark_loaded(now);
                w.flow.done = true;
            }
        });
    }
    if n == 0 {
        w.browser.page.mark_loaded(now);
        w.flow.done = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adserver::{AdServerAccount, AdServerEndpoint};
    use crate::partner::{partner_endpoint, PartnerProfile};
    use crate::session::{HostDirectory, Net};
    use crate::types::{AdSize, Cpm};
    use hb_http::{Response, Router, ServerReply};
    use hb_simnet::{FaultInjector, LatencyModel, Rng, Simulation};
    use std::sync::Arc as Rc;

    /// Build a tiny world: one publisher page, a CDN, two partners, and an
    /// ad server with one account.
    fn build_world(facet: Option<HbFacet>, wrapper: WrapperConfig) -> Simulation<PageWorld> {
        build_world_with(facet, wrapper, FaultInjector::none(), RobustnessPolicy::off())
    }

    /// [`build_world`] plus a fault injector and a robustness policy.
    fn build_world_with(
        facet: Option<HbFacet>,
        wrapper: WrapperConfig,
        faults: FaultInjector,
        robustness: RobustnessPolicy,
    ) -> Simulation<PageWorld> {
        let mut router = Router::new();
        router.register("pub1.example", |r: &Request, _: &mut Rng| {
            ServerReply::instant(Response::text(r.id, "<html><head></head></html>"))
        });
        router.register("cdn.example", |r: &Request, _: &mut Rng| {
            ServerReply::instant(Response::text(r.id, "// js"))
        });
        let mut fast = PartnerProfile::test_profile(1, "alpha");
        fast.bid_rate = 1.0;
        fast.host = "alpha.adnet.example".into();
        let mut slow = PartnerProfile::test_profile(2, "beta");
        slow.bid_rate = 1.0;
        slow.host = "beta.adnet.example".into();
        router.register("alpha.adnet.example", partner_endpoint(fast));
        router.register("beta.adnet.example", partner_endpoint(slow));

        let units = vec![
            AdUnit::new("ad-slot-1", AdSize::MEDIUM_RECT, Cpm(0.01)),
            AdUnit::new("ad-slot-2", AdSize::LEADERBOARD, Cpm(0.01)),
        ];
        let mut account = AdServerAccount::test_account("pub-1", units.clone());
        if facet == Some(HbFacet::ServerSide) || facet == Some(HbFacet::Hybrid) {
            let mut s2s = PartnerProfile::test_profile(3, "gamma");
            s2s.bid_rate = 1.0;
            account.s2s_partners = vec![std::sync::Arc::new(s2s)];
        }
        router.register("ads.pub1.example", AdServerEndpoint::new([account.clone()]));
        router.register("dfp-adnet.example", AdServerEndpoint::new([account]));

        let mut latency = HostDirectory::new();
        latency.insert("pub1.example", LatencyModel::constant(30.0));
        latency.insert("cdn.example", LatencyModel::constant(10.0));
        latency.insert("alpha.adnet.example", LatencyModel::constant(100.0));
        latency.insert("beta.adnet.example", LatencyModel::constant(400.0));
        latency.insert("ads.pub1.example", LatencyModel::constant(50.0));
        latency.insert("dfp-adnet.example", LatencyModel::constant(50.0));

        let net = Net::new(Rc::new(router), Rc::new(latency), Rc::new(faults));
        let url = Url::parse("https://pub1.example/").unwrap();
        let mut world = PageWorld::new(url.clone(), net, Rng::new(42));
        world.handler_service_ms = hb_simnet::Dist::Const(2.0);

        let ad_server_host = match facet {
            Some(HbFacet::ClientSide) | None => "ads.pub1.example",
            _ => "dfp-adnet.example",
        };
        let site = SiteRuntime {
            page_url: url,
            rank: 1,
            facet,
            ad_units: vec![
                AdUnit::new("ad-slot-1", AdSize::MEDIUM_RECT, Cpm(0.01)),
                AdUnit::new("ad-slot-2", AdSize::LEADERBOARD, Cpm(0.01)),
            ]
            .into(),
            client_partners: if facet == Some(HbFacet::ServerSide) {
                vec![]
            } else {
                vec![
                    PartnerRef {
                        code: "alpha".into(),
                        name: "Alpha".into(),
                        host: "alpha.adnet.example".into(),
                    },
                    PartnerRef {
                        code: "beta".into(),
                        name: "Beta".into(),
                        host: "beta.adnet.example".into(),
                    },
                ]
            },
            ad_server_host: ad_server_host.into(),
            account_id: "pub-1".into(),
            wrapper,
            waterfall_tiers: vec![],
            cdn_host: "cdn.example".into(),
            render_fail_rate: 0.0,
            net_quality: 1.0,
            robustness,
        };
        let mut sim = Simulation::new(world);
        sim.scheduler().after(SimDuration::ZERO, move |w: &mut PageWorld, s| {
            begin_visit(w, s, site);
        });
        sim
    }

    #[test]
    fn client_side_full_flow() {
        let mut sim = build_world(Some(HbFacet::ClientSide), WrapperConfig::default());
        sim.run_to_idle(10_000);
        let w = sim.world();
        assert!(w.flow.done, "visit completed");
        let truth = &w.flow.truth;
        assert_eq!(truth.slots_auctioned, 2);
        // Both partners bid on both slots.
        assert_eq!(truth.client_bids, 4);
        assert_eq!(truth.late_bids, 0, "no late bids under the 3s timeout");
        assert_eq!(truth.winners.len(), 2);
        assert!(truth
            .winners
            .iter()
            .all(|win| win.channel == FillChannel::HeaderBid));
        // Events fired.
        assert_eq!(w.browser.events.emitted_count(events::AUCTION_INIT), 1);
        assert_eq!(w.browser.events.emitted_count(events::BID_REQUESTED), 2);
        assert_eq!(w.browser.events.emitted_count(events::BID_RESPONSE), 4);
        assert_eq!(w.browser.events.emitted_count(events::AUCTION_END), 1);
        assert_eq!(w.browser.events.emitted_count(events::BID_WON), 2);
        assert_eq!(w.browser.events.emitted_count(events::SLOT_RENDER_ENDED), 2);
        // Latency: slowest partner 400ms dominates; + adserver 50ms + sundry.
        let lat = truth.hb_latency().unwrap();
        assert!(lat >= SimDuration::from_millis(450), "lat {lat}");
        assert!(lat <= SimDuration::from_millis(600), "lat {lat}");
    }

    #[test]
    fn server_side_flow_single_request_no_prebid_events() {
        let mut sim = build_world(Some(HbFacet::ServerSide), WrapperConfig::default());
        sim.run_to_idle(10_000);
        let w = sim.world();
        assert!(w.flow.done);
        let truth = &w.flow.truth;
        assert_eq!(truth.client_bids, 0);
        assert_eq!(truth.winners.len(), 2);
        // The s2s partner always bids, so HB wins.
        assert!(truth
            .winners
            .iter()
            .all(|win| win.channel == FillChannel::HeaderBid && win.bidder == "gamma"));
        assert_eq!(w.browser.events.emitted_count(events::AUCTION_INIT), 0);
        assert_eq!(w.browser.events.emitted_count(events::BID_RESPONSE), 0);
        assert_eq!(w.browser.events.emitted_count(events::BID_WON), 0);
        // gpt-style render events still fire.
        assert_eq!(w.browser.events.emitted_count(events::SLOT_RENDER_ENDED), 2);
        // Latency: single 50ms call + s2s fan-out processing.
        let lat = truth.hb_latency().unwrap();
        assert!(lat < SimDuration::from_millis(400), "lat {lat}");
    }

    #[test]
    fn hybrid_flow_merges_client_and_s2s_bids() {
        let mut sim = build_world(Some(HbFacet::Hybrid), WrapperConfig::default());
        sim.run_to_idle(10_000);
        let w = sim.world();
        assert!(w.flow.done);
        let truth = &w.flow.truth;
        assert_eq!(truth.client_bids, 4, "client partners answered");
        assert_eq!(truth.winners.len(), 2);
        assert!(w.browser.events.emitted_count(events::BID_RESPONSE) > 0);
        // Winner can be a client partner or the s2s partner "gamma" —
        // either way it is an HB fill.
        assert!(truth
            .winners
            .iter()
            .all(|win| win.channel == FillChannel::HeaderBid));
    }

    #[test]
    fn misconfigured_wrapper_loses_all_bids_as_late() {
        let cfg = WrapperConfig {
            send_immediately: true,
            ..WrapperConfig::default()
        };
        let mut sim = build_world(Some(HbFacet::ClientSide), cfg);
        sim.run_to_idle(10_000);
        let w = sim.world();
        let truth = &w.flow.truth;
        assert_eq!(truth.client_bids, 4);
        assert_eq!(truth.late_bids, 4, "every bid arrives after the send");
        // With no usable bids, slots fall back.
        assert!(truth
            .winners
            .iter()
            .all(|win| win.channel == FillChannel::Fallback));
        // HB latency is tiny: just the ad-server round trip.
        let lat = truth.hb_latency().unwrap();
        assert!(lat < SimDuration::from_millis(120), "lat {lat}");
    }

    #[test]
    fn short_timeout_cuts_off_slow_partner() {
        let cfg = WrapperConfig {
            timeout: Some(SimDuration::from_millis(200)),
            ..WrapperConfig::default()
        };
        let mut sim = build_world(Some(HbFacet::ClientSide), cfg);
        sim.run_to_idle(10_000);
        let w = sim.world();
        let truth = &w.flow.truth;
        // alpha (100ms) made it; beta (400ms) is late.
        assert_eq!(truth.client_bids, 4);
        assert_eq!(truth.late_bids, 2);
        let alpha_won = truth
            .winners
            .iter()
            .filter(|win| win.bidder == "alpha")
            .count();
        assert_eq!(alpha_won, 2, "only alpha's bids were usable");
    }

    #[test]
    fn no_timeout_waits_for_everyone() {
        let cfg = WrapperConfig {
            timeout: None,
            ..WrapperConfig::default()
        };
        let mut sim = build_world(Some(HbFacet::ClientSide), cfg);
        sim.run_to_idle(10_000);
        let truth = &sim.world().flow.truth;
        assert_eq!(truth.late_bids, 0);
        assert_eq!(truth.client_bids, 4);
    }

    #[test]
    fn partner_deadline_and_retry_resolve_dead_partner() {
        // alpha is hard-down; without a deadline the no-timeout wrapper
        // would wait the full 30 s browser network timeout. The policy
        // resolves it after one retry and the auction proceeds on beta.
        let cfg = WrapperConfig {
            timeout: None,
            ..WrapperConfig::default()
        };
        let policy = RobustnessPolicy {
            partner_deadline: Some(SimDuration::from_millis(500)),
            retry: true,
            retry_backoff: SimDuration::from_millis(50),
            ..RobustnessPolicy::off()
        };
        let faults = FaultInjector::none().with_outage("alpha.adnet.example");
        let mut sim = build_world_with(Some(HbFacet::ClientSide), cfg, faults, policy);
        sim.run_to_idle(60_000);
        let w = sim.world();
        assert!(w.flow.done, "visit completed despite the dead partner");
        let truth = &w.flow.truth;
        assert_eq!(truth.client_bids, 2, "only beta answered");
        assert_eq!(truth.retries, 1, "one retry against alpha");
        assert_eq!(truth.timed_out_partners, 1);
        assert_eq!(truth.bids_dropped, 2, "both alpha attempts dropped");
        // The auction resolved on the deadline chain (~1.1 s), not the
        // 30 s network timeout.
        let lat = truth.hb_latency().unwrap();
        assert!(lat <= SimDuration::from_millis(2_000), "lat {lat}");
        assert!(truth
            .winners
            .iter()
            .all(|win| win.channel == FillChannel::HeaderBid && win.bidder == "beta"));
        // The retry request is a marked bid request: 2 initial + 1 retry.
        assert_eq!(w.browser.events.emitted_count(events::BID_REQUESTED), 3);
    }

    #[test]
    fn passback_fills_when_every_demand_source_is_down() {
        // Partners AND the ad server are down. Without passback the page
        // gives up with zero winners; with it the slots render house ads
        // and the visit still completes.
        let policy = RobustnessPolicy {
            partner_deadline: Some(SimDuration::from_millis(500)),
            retry: false,
            retry_backoff: SimDuration::ZERO,
            tier_deadline: None,
            passback: true,
            s2s_deadline: None,
        };
        let faults = FaultInjector::none()
            .with_outage("alpha.adnet.example")
            .with_outage("beta.adnet.example")
            .with_outage("ads.pub1.example");
        let mut sim = build_world_with(
            Some(HbFacet::ClientSide),
            WrapperConfig::default(),
            faults,
            policy,
        );
        sim.run_to_idle(60_000);
        let w = sim.world();
        assert!(w.flow.done, "visit completed via passback");
        let truth = &w.flow.truth;
        assert!(truth.passback_served);
        assert_eq!(truth.winners.len(), 2);
        assert!(truth
            .winners
            .iter()
            .all(|win| win.channel == FillChannel::Fallback && win.bidder == "house"));
        assert_eq!(truth.timed_out_partners, 2);
        assert_eq!(truth.retries, 0);
        // Two partner requests + the ad-server call never answered.
        assert_eq!(truth.bids_dropped, 3);
        assert_eq!(w.browser.events.emitted_count(events::PASSBACK), 1);
        assert_eq!(w.browser.events.emitted_count(events::SLOT_RENDER_ENDED), 2);
    }

    #[test]
    fn robustness_policy_defaults_are_off() {
        assert!(RobustnessPolicy::off().is_off());
        assert!(RobustnessPolicy::default().is_off());
        assert!(!RobustnessPolicy::degraded_defaults().is_off());
    }

    #[test]
    fn ground_truth_latency_accounts() {
        let mut sim = build_world(Some(HbFacet::ClientSide), WrapperConfig::default());
        sim.run_to_idle(10_000);
        let truth = &sim.world().flow.truth;
        assert!(truth.first_bid_request_at.unwrap() < truth.adserver_sent_at.unwrap());
        assert!(truth.adserver_sent_at.unwrap() < truth.adserver_response_at.unwrap());
    }
}
