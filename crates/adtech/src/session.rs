//! The page-visit simulation world and its network machinery.
//!
//! [`PageWorld`] is the world type driven by `hb_simnet::Simulation`. It
//! owns the browser, the RNG, the connection to the simulated Internet
//! (router + latency directory + fault injector), and whatever per-visit
//! protocol state the active flow (HB wrapper / waterfall) needs.
//!
//! [`send_request`] is the single door to the network: it samples latency,
//! consults fault injection, notifies webRequest observers, serializes the
//! response handler through the page's single JS thread, and finally calls
//! the caller's continuation.

use hb_dom::{Browser, FailureReason};
use hb_http::{Request, Response, Router, Url, MsgScratch};
use hb_simnet::{
    Dist, FaultDecision, FaultInjector, LatencyModel, Rng, Scheduler, SimDuration, SimTime,
};

use std::sync::Arc;

/// Per-host latency directory with domain-suffix fallback.
#[derive(Default)]
pub struct HostDirectory {
    // Fx-hashed: the suffix walk hashes several host strings per request.
    // `HStr` keys: registering an interned hostname never rebuilds it.
    models: hb_simnet::FxHashMap<hb_http::HStr, LatencyModel>,
    /// On-demand model derivation for lazily generated universes: consulted
    /// with the *original* host after the static map (and its suffix walk)
    /// misses, before the default applies.
    dynamic: Option<LatencyResolver>,
    default: Option<LatencyModel>,
}

/// Callback deriving a host's latency model on demand.
pub type LatencyResolver = Box<dyn Fn(&str) -> Option<LatencyModel> + Send + Sync>;

impl HostDirectory {
    /// Empty directory (uses a 80 ms log-normal default).
    pub fn new() -> HostDirectory {
        HostDirectory::default()
    }

    /// Register a latency model for a host (and all its subdomains).
    pub fn insert(&mut self, host: impl Into<hb_http::HStr>, model: LatencyModel) {
        self.models.insert(host.into().into_lower_ascii(), model);
    }

    /// Set the default model for unknown hosts.
    pub fn set_default(&mut self, model: LatencyModel) {
        self.default = Some(model);
    }

    /// Set the dynamic resolver consulted when the static map misses.
    pub fn set_dynamic(
        &mut self,
        resolver: impl Fn(&str) -> Option<LatencyModel> + Send + Sync + 'static,
    ) {
        self.dynamic = Some(Box::new(resolver));
    }

    /// Look up the model for `host` (suffix walk, then dynamic resolver,
    /// then default).
    pub fn lookup(&self, host: &str) -> LatencyModel {
        let mut rest = host;
        loop {
            if let Some(m) = self.models.get(rest) {
                return m.clone();
            }
            match rest.split_once('.') {
                Some((_, suffix)) if !suffix.is_empty() => rest = suffix,
                _ => break,
            }
        }
        if let Some(m) = self.dynamic.as_ref().and_then(|d| d(host)) {
            return m;
        }
        self.default
            .clone()
            .unwrap_or_else(|| LatencyModel::log_normal(80.0, 0.4))
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no hosts are registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// The simulated Internet a visit talks to.
#[derive(Clone)]
pub struct Net {
    /// Hostname → endpoint routing.
    pub router: Arc<Router>,
    /// Hostname → latency model.
    pub latency: Arc<HostDirectory>,
    /// Ambient fault injection.
    pub faults: Arc<FaultInjector>,
}

impl Net {
    /// Wire up a network.
    pub fn new(router: Arc<Router>, latency: Arc<HostDirectory>, faults: Arc<FaultInjector>) -> Net {
        Net {
            router,
            latency,
            faults,
        }
    }
}

/// How long the browser waits before declaring a dropped request failed.
pub const BROWSER_NET_TIMEOUT: SimDuration = SimDuration(30_000_000);

/// Result of a network exchange, delivered to the continuation.
#[derive(Clone, Debug)]
pub enum NetOutcome {
    /// The response arrived (after JS-thread scheduling).
    Response(Response),
    /// The request could not be delivered or timed out.
    Failed(FailureReason),
}

/// Per-visit world state.
pub struct PageWorld {
    /// The browser instance.
    pub browser: Browser,
    /// The network.
    pub net: Net,
    /// Deterministic randomness for this visit.
    pub rng: Rng,
    /// JS handler service-time distribution (ms per response callback).
    pub handler_service_ms: Dist,
    /// Number of requests currently in flight.
    pub in_flight: u32,
    /// Multiplier applied to all sampled RTTs (site network quality).
    pub rtt_scale: f64,
    /// Auction bookkeeping shared by the flows (wrapper state machine).
    pub flow: crate::wrapper::FlowState,
    /// Per-worker buffer pool: query/header storage recycled between
    /// messages and across visits (see [`MsgScratch`]).
    pub scratch: MsgScratch,
}

/// Default JS handler service-time distribution (ms per response
/// callback) — single source of truth for the cold and pooled paths, so
/// a pooled visit always starts from the same defaults as a fresh world.
const DEFAULT_HANDLER_SERVICE_MS: Dist = Dist::Uniform { lo: 1.0, hi: 6.0 };
/// Default RTT multiplier (neutral until `begin_visit` applies the
/// site's network quality).
const DEFAULT_RTT_SCALE: f64 = 1.0;

impl PageWorld {
    /// Create a world for one visit.
    pub fn new(url: Url, net: Net, rng: Rng) -> PageWorld {
        PageWorld::from_parts(
            Browser::open_untraced(url, SimTime::ZERO),
            net,
            rng,
            MsgScratch::new(),
        )
    }

    /// Create a world around a reused browser and buffer pool — the
    /// pooled crawl path: the worker keeps one browser (with the detector
    /// attached) and one scratch alive across visits and threads them
    /// through here each time.
    pub fn from_parts(browser: Browser, net: Net, rng: Rng, scratch: MsgScratch) -> PageWorld {
        PageWorld {
            browser,
            net,
            rng,
            handler_service_ms: DEFAULT_HANDLER_SERVICE_MS,
            in_flight: 0,
            rtt_scale: DEFAULT_RTT_SCALE,
            flow: crate::wrapper::FlowState::default(),
            scratch,
        }
    }

    /// Re-arm a pooled world for its next visit: per-visit state (RNG,
    /// network handle, flow bookkeeping) returns to the
    /// [`PageWorld::from_parts`] defaults while the browser and the
    /// buffer pools — the expensive parts — stay. The caller resets the
    /// browser separately (it owns the detector taps).
    pub fn reset_for_visit(&mut self, net: Net, rng: Rng) {
        self.net = net;
        self.rng = rng;
        self.handler_service_ms = DEFAULT_HANDLER_SERVICE_MS;
        self.in_flight = 0;
        self.rtt_scale = DEFAULT_RTT_SCALE;
        self.flow.reset_for_visit();
    }

    /// Enable the diagnostic trace (examples / debugging). Toggles the
    /// browser's existing trace in place, so a pooled browser keeps one
    /// ring allocation no matter how often tracing flips on and off.
    pub fn with_trace(mut self) -> PageWorld {
        self.browser.trace.set_capacity(8192);
        self.browser.trace.set_enabled(true);
        self
    }
}

/// Continuation invoked when a request resolves.
///
/// Call sites pass the closure *unboxed*: [`send_request`] is generic
/// over the continuation, which lets the scheduler's type-keyed callback
/// pool recycle each call site's closure (continuation included) instead
/// of paying a fresh `Box<dyn FnOnce>` per request. The boxed form still
/// satisfies the bound for callers that need type erasure.
pub type NetContinuation = Box<dyn FnOnce(&mut PageWorld, &mut Scheduler<PageWorld>, NetOutcome)>;

/// Issue a request on behalf of the page.
///
/// Semantics, in order:
/// 1. webRequest observers see the request leave *now*;
/// 2. unknown hosts fail fast (DNS error) after a 1 ms bounce;
/// 3. the fault injector may drop the exchange — the failure surfaces only
///    when the browser's network timeout fires;
/// 4. otherwise the response arrives after `RTT + server processing`
///    (+ fault slowdown), observers see it at arrival time, and the
///    continuation runs once the single JS thread has a free slot.
pub fn send_request<F>(
    w: &mut PageWorld,
    s: &mut Scheduler<PageWorld>,
    req: Request,
    on_done: F,
) where
    F: FnOnce(&mut PageWorld, &mut Scheduler<PageWorld>, NetOutcome) + 'static,
{
    let now = s.now();
    w.in_flight += 1;
    w.browser.note_request_out(&req, now);

    // DNS: unknown host? One router walk serves both the reachability
    // check and the dispatch below (a cheap Arc clone keeps the borrow
    // checker out of `w`'s fields).
    let router = w.net.router.clone();
    let Some(endpoint) = router.resolve(&req.url.host) else {
        s.after(SimDuration::from_millis(1), move |w: &mut PageWorld, s| {
            w.in_flight -= 1;
            w.browser
                .note_request_failed(&req, FailureReason::NoSuchHost, s.now());
            w.scratch.recycle_request(req);
            on_done(w, s, NetOutcome::Failed(FailureReason::NoSuchHost));
        });
        return;
    };

    // Fault decision.
    let mut extra = SimDuration::ZERO;
    match w.net.faults.decide(&req.url.host, &mut w.rng) {
        FaultDecision::Drop => {
            s.after(BROWSER_NET_TIMEOUT, move |w: &mut PageWorld, s| {
                w.in_flight -= 1;
                w.browser
                    .note_request_failed(&req, FailureReason::NetworkDropped, s.now());
                w.scratch.recycle_request(req);
                on_done(w, s, NetOutcome::Failed(FailureReason::NetworkDropped));
            });
            return;
        }
        FaultDecision::Slow(penalty) => extra = penalty,
        FaultDecision::Deliver => {}
    }

    // Latency + server processing, computed eagerly (deterministic): the
    // endpoint is a pure function of (request, rng).
    let raw_rtt = w.net.latency.lookup(&req.url.host).sample(&mut w.rng);
    let rtt = hb_simnet::SimDuration::from_millis_f64(raw_rtt.as_millis_f64() * w.rtt_scale.max(0.05));
    let reply = endpoint.handle(&req, &mut w.rng);
    let arrival_delay = rtt + reply.processing + extra;
    let response = reply.response;

    s.after(arrival_delay, move |w: &mut PageWorld, s| {
        let arrived = s.now();
        w.in_flight -= 1;
        w.browser.note_response_in(&req, &response, arrived);
        // The request's buffers die here; return them to the worker pool.
        w.scratch.recycle_request(req);
        // Serialize the handler through the JS thread.
        let service = w.handler_service_ms.sample_ms(&mut w.rng);
        let slot = w.browser.js.run_task(arrived, service);
        let run_at = slot.end;
        s.at(run_at, move |w: &mut PageWorld, s| {
            on_done(w, s, NetOutcome::Response(response));
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_http::{RequestId, ServerReply, Status};
    use std::rc::Rc as Rc2;
    use hb_simnet::Simulation;

    fn test_net(drop_all: bool) -> Net {
        let mut router = Router::new();
        router.register("fast.example", |r: &Request, _: &mut Rng| {
            ServerReply::instant(Response::text(r.id, "ok"))
        });
        router.register("slow.example", |r: &Request, _: &mut Rng| {
            ServerReply::after(Response::text(r.id, "slow"), SimDuration::from_millis(500))
        });
        let mut latency = HostDirectory::new();
        latency.insert("fast.example", LatencyModel::constant(10.0));
        latency.insert("slow.example", LatencyModel::constant(10.0));
        let faults = if drop_all {
            FaultInjector::none().with_drop_chance(1.0)
        } else {
            FaultInjector::none()
        };
        Net::new(Arc::new(router), Arc::new(latency), Arc::new(faults))
    }

    fn world(net: Net) -> Simulation<PageWorld> {
        let url = Url::parse("https://pub.example/").unwrap();
        Simulation::new(PageWorld::new(url, net, Rng::new(1)))
    }

    #[test]
    fn response_arrives_after_rtt_and_processing() {
        let mut sim = world(test_net(false));
        let req = {
            let w = sim.world_mut();
            let id = w.browser.next_request_id();
            Request::get(id, Url::parse("https://slow.example/x").unwrap())
        };
        let done: Rc2<std::cell::RefCell<Option<SimTime>>> =
            Rc2::new(std::cell::RefCell::new(None));
        let d2 = done.clone();
        {
            let sched = sim.scheduler();
            sched.after(SimDuration::ZERO, move |w: &mut PageWorld, s| {
                send_request(w, s, req, move |_w, s, out| {
                    assert!(matches!(out, NetOutcome::Response(_)));
                    *d2.borrow_mut() = Some(s.now());
                });
            });
        }
        sim.run_to_idle(100);
        let t = done.borrow().unwrap();
        // 10ms RTT + 500ms processing + 1-6ms JS service.
        assert!(t >= SimTime::from_millis(510), "t = {t}");
        assert!(t <= SimTime::from_millis(520), "t = {t}");
        assert_eq!(sim.world().in_flight, 0);
    }

    #[test]
    fn unknown_host_fails_fast() {
        let mut sim = world(test_net(false));
        let req = {
            let w = sim.world_mut();
            let id = w.browser.next_request_id();
            Request::get(id, Url::parse("https://ghost.example/x").unwrap())
        };
        let failed = Rc2::new(std::cell::RefCell::new(false));
        let f2 = failed.clone();
        sim.scheduler().after(SimDuration::ZERO, move |w: &mut PageWorld, s| {
            send_request(
                w,
                s,
                req,
                move |_w, _s, out| {
                    assert!(matches!(
                        out,
                        NetOutcome::Failed(FailureReason::NoSuchHost)
                    ));
                    *f2.borrow_mut() = true;
                },
            );
        });
        sim.run_to_idle(100);
        assert!(*failed.borrow());
        assert!(sim.now() < SimTime::from_millis(5));
    }

    #[test]
    fn dropped_request_surfaces_at_browser_timeout() {
        let mut sim = world(test_net(true));
        let req = {
            let w = sim.world_mut();
            let id = w.browser.next_request_id();
            Request::get(id, Url::parse("https://fast.example/x").unwrap())
        };
        let failed_at = Rc2::new(std::cell::RefCell::new(None));
        let f2 = failed_at.clone();
        sim.scheduler().after(SimDuration::ZERO, move |w: &mut PageWorld, s| {
            send_request(
                w,
                s,
                req,
                move |_w, s, out| {
                    assert!(matches!(
                        out,
                        NetOutcome::Failed(FailureReason::NetworkDropped)
                    ));
                    *f2.borrow_mut() = Some(s.now());
                },
            );
        });
        sim.run_to_idle(100);
        assert_eq!(failed_at.borrow().unwrap(), SimTime::ZERO + BROWSER_NET_TIMEOUT);
    }

    #[test]
    fn js_thread_serializes_continuations() {
        // Two simultaneous responses: the second continuation must run
        // after the first one's service time.
        let mut sim = world(test_net(false));
        let (r1, r2) = {
            let w = sim.world_mut();
            let a = Request::get(
                w.browser.next_request_id(),
                Url::parse("https://fast.example/1").unwrap(),
            );
            let b = Request::get(
                w.browser.next_request_id(),
                Url::parse("https://fast.example/2").unwrap(),
            );
            (a, b)
        };
        let order: Rc2<std::cell::RefCell<Vec<(u64, SimTime)>>> =
            Rc2::new(std::cell::RefCell::new(Vec::new()));
        let (o1, o2) = (order.clone(), order.clone());
        sim.scheduler().after(SimDuration::ZERO, move |w: &mut PageWorld, s| {
            send_request(
                w,
                s,
                r1,
                move |_w, s, _| o1.borrow_mut().push((1, s.now())),
            );
            send_request(
                w,
                s,
                r2,
                move |_w, s, _| o2.borrow_mut().push((2, s.now())),
            );
        });
        sim.run_to_idle(100);
        let got = order.borrow().clone();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 1);
        assert_eq!(got[1].0, 2);
        assert!(got[1].1 > got[0].1, "second handler queued behind first");
    }

    #[test]
    fn webrequest_observers_see_all_traffic() {
        let mut sim = world(test_net(false));
        let seen = Rc2::new(std::cell::RefCell::new(0u32));
        let s2 = seen.clone();
        sim.world_mut().browser.webrequest.tap(move |_| {
            *s2.borrow_mut() += 1;
        });
        let req = {
            let w = sim.world_mut();
            Request::get(
                w.browser.next_request_id(),
                Url::parse("https://fast.example/y").unwrap(),
            )
        };
        sim.scheduler().after(SimDuration::ZERO, move |w: &mut PageWorld, s| {
            send_request(w, s, req, |_, _, _| {});
        });
        sim.run_to_idle(100);
        assert_eq!(*seen.borrow(), 2, "Before + Completed");
    }

    #[test]
    fn host_directory_suffix_lookup() {
        let mut d = HostDirectory::new();
        d.insert("adnet.example", LatencyModel::constant(42.0));
        let mut rng = Rng::new(1);
        assert_eq!(
            d.lookup("fast.adnet.example").sample(&mut rng),
            SimDuration::from_millis(42)
        );
        // Unknown host gets the default model.
        let dur = d.lookup("unknown.example").sample(&mut rng);
        assert!(dur > SimDuration::ZERO);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn status_helpers() {
        assert!(Status::OK.is_success());
        assert_eq!(RequestId(3), RequestId(3));
    }
}
