//! Demand partner profiles and their bid endpoints.
//!
//! A [`PartnerProfile`] captures everything that drives a partner's
//! observable behaviour: its network latency (client-facing and
//! server-to-server), how often it bids on a clean-profile user, the prices
//! it offers, and the cost of its internal RTB auction per slot. The
//! [`partner_endpoint`] function turns a profile into a simulated server.

use crate::rtb::InternalAuction;
use crate::types::{AdSize, Cpm};
use crate::protocol::{self, params, BidPayload};
use hb_http::{Endpoint, HStr, Json, Request, Response, ServerReply};
use hb_simnet::{Dist, LatencyModel, Rng, SimDuration};

/// Stable partner identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PartnerId(pub u32);

/// What role a partner plays.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PartnerKind {
    /// Ad server + server-side HB provider (DFP-like).
    AdServer,
    /// An ad exchange running internal auctions.
    Exchange,
    /// A demand-side platform.
    Dsp,
    /// A supply-side platform.
    Ssp,
}

/// Full behavioural profile of one demand partner.
#[derive(Clone, Debug)]
pub struct PartnerProfile {
    /// Stable id.
    pub id: PartnerId,
    /// Display name as used in the paper's figures (e.g. `AppNexus`).
    pub display_name: String,
    /// Adapter/bidder code (e.g. `appnexus`).
    pub bidder_code: HStr,
    /// Hostname in the simulated namespace.
    pub host: HStr,
    /// Role.
    pub kind: PartnerKind,
    /// Client-facing round-trip latency.
    pub latency: LatencyModel,
    /// Server-to-server latency (data-center to data-center; faster).
    pub s2s_latency: LatencyModel,
    /// Probability of bidding per slot for a clean-profile (baseline) user.
    pub bid_rate: f64,
    /// CPM distribution for baseline users.
    pub price: Dist,
    /// Internal auction processing cost per slot (ms).
    pub per_slot_processing_ms: f64,
    /// Number of internal seats competing in the partner's own auction.
    pub seats: u32,
    /// Can act as a server-side HB provider.
    pub can_serve_s2s: bool,
}

impl PartnerProfile {
    /// A reasonable mid-tier exchange profile (used by unit tests).
    pub fn test_profile(id: u32, code: &str) -> PartnerProfile {
        PartnerProfile {
            id: PartnerId(id),
            display_name: code.to_string(),
            bidder_code: HStr::new(code),
            host: HStr::from(format!("{code}.adnet.example")),
            kind: PartnerKind::Exchange,
            latency: LatencyModel::log_normal(250.0, 0.45),
            s2s_latency: LatencyModel::log_normal(40.0, 0.3),
            bid_rate: 0.5,
            price: Dist::log_normal_median(0.2, 0.8),
            per_slot_processing_ms: 8.0,
            seats: 4,
            can_serve_s2s: false,
        }
    }

    /// Price multiplier by creative size. Calibrated so the per-size price
    /// ordering of Figure 23 holds (120x600 dearest, 300x50 cheapest,
    /// 300x250 in between).
    pub fn size_price_factor(size: AdSize) -> f64 {
        match (size.w, size.h) {
            (120, 600) => 3.00,
            (970, 250) => 2.20,
            (300, 600) => 1.90,
            (160, 600) => 1.60,
            (336, 280) => 1.35,
            (970, 90) => 1.20,
            (300, 250) => 1.00,
            (728, 90) => 0.80,
            (300, 100) => 0.40,
            (320, 100) => 0.35,
            (468, 60) => 0.30,
            (320, 320) => 0.60,
            (100, 200) => 0.45,
            (120, 240) => 0.40,
            (320, 50) => 0.15,
            (300, 50) => 0.03,
            _ => 0.75,
        }
    }

    /// Draw a bid decision for one slot. `source_factor` discounts
    /// server-side auctions (cookie-match loss depresses s2s CPMs, which is
    /// what makes Client-Side HB draw the highest prices in Figure 22).
    pub fn draw_bid(
        &self,
        size: AdSize,
        source_factor: f64,
        rng: &mut Rng,
    ) -> Option<Cpm> {
        if !rng.chance(self.bid_rate) {
            return None;
        }
        // The partner's internal auction among its seats decides the
        // outgoing price: best seat offer, second-priced. If no seat shows
        // up, the partner's own house demand prices the bid directly, so
        // `bid_rate` remains the true bid probability.
        let auction = InternalAuction::new(self.seats, &self.price);
        let base = auction
            .run(rng)
            .unwrap_or_else(|| Cpm(self.price.sample(rng).max(0.001)));
        let cpm = base.0 * Self::size_price_factor(size) * source_factor;
        if cpm <= 0.0 {
            return None;
        }
        Some(Cpm(cpm))
    }

    /// Server-side internal processing time for `n_slots` slots.
    pub fn processing_time(&self, n_slots: usize) -> SimDuration {
        SimDuration::from_millis_f64(self.per_slot_processing_ms * n_slots.max(1) as f64)
    }
}

/// Build the partner's client-facing bid endpoint (`POST /hb/bid`).
///
/// The endpoint parses the slots from the request body, runs the internal
/// auction per slot, and answers with a bid-response JSON (or 204 when it
/// has nothing to offer). Win notifications (`/hb/win`) are acknowledged.
pub fn partner_endpoint(profile: PartnerProfile) -> impl Endpoint {
    move |req: &Request, rng: &mut Rng| -> ServerReply {
        match req.url.path.as_str() {
            p if p == protocol::paths::BID => handle_bid(&profile, req, rng),
            p if p == protocol::paths::WIN => {
                // Winner notification: bookkeeping only.
                ServerReply::instant(Response::no_content(req.id))
            }
            _ => ServerReply::instant(Response::error(req.id, hb_http::Status::NOT_FOUND)),
        }
    }
}

fn handle_bid(profile: &PartnerProfile, req: &Request, rng: &mut Rng) -> ServerReply {
    let body = match req.body.json() {
        Some(b) => b,
        None => {
            return ServerReply::instant(Response::error(req.id, hb_http::Status::BAD_REQUEST))
        }
    };
    let auction_id = HStr::new(req.url.query.get(params::HB_AUCTION).unwrap_or(""));
    let source_factor = match req.url.query.get(params::HB_SOURCE) {
        Some("s2s") => 0.6,
        _ => 1.0,
    };
    let empty = Vec::new();
    let slots = body
        .get("slots")
        .and_then(|s| s.as_arr())
        .unwrap_or(&empty);
    let mut bids = Vec::new();
    for slot in slots {
        let code = HStr::new(slot.get("code").and_then(|c| c.as_str()).unwrap_or(""));
        let size = slot
            .get("size")
            .and_then(|s| s.as_str())
            .and_then(AdSize::parse)
            .unwrap_or(AdSize::MEDIUM_RECT);
        if let Some(cpm) = profile.draw_bid(size, source_factor, rng) {
            bids.push(BidPayload {
                bidder: profile.bidder_code.clone(),
                slot: code,
                cpm,
                size,
                ad_id: HStr::from_display(format_args!(
                    "cr-{}-{}",
                    profile.bidder_code,
                    rng.below(1_000_000)
                )),
                currency: HStr::from_static("USD"),
            });
        }
    }
    let processing = profile.processing_time(slots.len());
    if bids.is_empty() {
        ServerReply::after(Response::no_content(req.id), processing)
    } else {
        let rsp = Response::json(req.id, protocol::bid_response_body(&auction_id, &bids));
        ServerReply::after(rsp, processing)
    }
}

/// Build the JSON body of a bid request for the given slots (pooled
/// spines throughout; the tree is recycled when the request dies).
pub fn bid_request_body(slots: &[(HStr, AdSize)]) -> Json {
    Json::obj([(
        "slots",
        Json::arr(slots.iter().map(|(code, size)| {
            Json::obj([
                ("code", Json::str(code.clone())),
                ("size", Json::str(HStr::from_display(*size))),
            ])
        })),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_http::{Body, RequestId, Url};

    fn bid_request(profile: &PartnerProfile, n_slots: usize) -> Request {
        let slots: Vec<(HStr, AdSize)> = (0..n_slots)
            .map(|i| (HStr::from(format!("ad-slot-{i}")), AdSize::MEDIUM_RECT))
            .collect();
        let url = Url::https(&profile.host, protocol::paths::BID)
            .with_param(params::HB_AUCTION, "auc-1")
            .with_param(params::HB_BIDDER, profile.bidder_code.clone())
            .with_param(params::HB_SOURCE, "client");
        Request::post(RequestId(1), url, Body::Json(bid_request_body(&slots)))
    }

    #[test]
    fn always_bidding_profile_returns_bids() {
        let mut p = PartnerProfile::test_profile(1, "rubicon");
        p.bid_rate = 1.0;
        let ep = partner_endpoint(p.clone());
        let mut rng = Rng::new(5);
        let reply = ep.handle(&bid_request(&p, 3), &mut rng);
        assert!(reply.response.status.is_success());
        let body = reply.response.body.json().unwrap();
        let (auction, bids) = protocol::parse_bid_response(body).unwrap();
        assert_eq!(auction, "auc-1");
        assert_eq!(bids.len(), 3);
        assert!(bids.iter().all(|b| b.cpm.is_positive()));
        assert!(bids.iter().all(|b| b.bidder == "rubicon"));
    }

    #[test]
    fn never_bidding_profile_returns_no_content() {
        let mut p = PartnerProfile::test_profile(2, "shy");
        p.bid_rate = 0.0;
        let ep = partner_endpoint(p.clone());
        let mut rng = Rng::new(6);
        let reply = ep.handle(&bid_request(&p, 2), &mut rng);
        assert_eq!(reply.response.status, hb_http::Status::NO_CONTENT);
    }

    #[test]
    fn processing_grows_with_slots() {
        let p = PartnerProfile::test_profile(3, "x");
        assert!(p.processing_time(10) > p.processing_time(1));
        assert_eq!(
            p.processing_time(0),
            p.processing_time(1),
            "at least one slot's worth of work"
        );
    }

    #[test]
    fn s2s_source_discounts_prices() {
        let mut p = PartnerProfile::test_profile(4, "ix");
        p.bid_rate = 1.0;
        p.price = Dist::Const(1.0);
        p.seats = 1;
        let mut rng = Rng::new(7);
        let client = p.draw_bid(AdSize::MEDIUM_RECT, 1.0, &mut rng).unwrap();
        let s2s = p.draw_bid(AdSize::MEDIUM_RECT, 0.6, &mut rng).unwrap();
        assert!(s2s.0 < client.0);
    }

    #[test]
    fn size_factors_reproduce_fig23_ordering() {
        let dear = PartnerProfile::size_price_factor(AdSize::new(120, 600));
        let mid = PartnerProfile::size_price_factor(AdSize::MEDIUM_RECT);
        let cheap = PartnerProfile::size_price_factor(AdSize::new(300, 50));
        assert!(dear > mid && mid > cheap);
    }

    #[test]
    fn win_notifications_acknowledged() {
        let p = PartnerProfile::test_profile(5, "w");
        let ep = partner_endpoint(p.clone());
        let url = Url::https(&p.host, protocol::paths::WIN)
            .with_param(params::HB_PRICE, "0.40")
            .with_param(params::HB_ADID, "cr-1");
        let req = Request::get(RequestId(9), url);
        let mut rng = Rng::new(8);
        let reply = ep.handle(&req, &mut rng);
        assert_eq!(reply.response.status, hb_http::Status::NO_CONTENT);
    }

    #[test]
    fn unknown_path_404s() {
        let p = PartnerProfile::test_profile(6, "u");
        let ep = partner_endpoint(p.clone());
        let req = Request::get(RequestId(1), Url::https(&p.host, "/nope"));
        let mut rng = Rng::new(9);
        assert_eq!(
            ep.handle(&req, &mut rng).response.status,
            hb_http::Status::NOT_FOUND
        );
    }

    #[test]
    fn malformed_body_rejected() {
        let p = PartnerProfile::test_profile(7, "m");
        let ep = partner_endpoint(p.clone());
        let req = Request::post(
            RequestId(1),
            Url::https(&p.host, protocol::paths::BID),
            Body::Empty,
        );
        let mut rng = Rng::new(10);
        assert_eq!(
            ep.handle(&req, &mut rng).response.status,
            hb_http::Status::BAD_REQUEST
        );
    }
}
