//! Provider adapters: the demand-side legs of an auction, extracted
//! from the crawl-side wrapper/waterfall flows so a serving-side
//! orchestrator can drive the same endpoints without a browser.
//!
//! The crawl builds its bid/RTB/ad-server requests inline in
//! [`wrapper`](crate::wrapper) and [`waterfall`](crate::waterfall),
//! entangled with `PageWorld` state. This module lifts the provider
//! surface into plain data + pure request builders/response parsers:
//!
//! * [`ProviderSpec`] — one demand leg (code, host, kind) derived
//!   deterministically from a [`SiteRuntime`] by [`providers_for`];
//! * request builders ([`hb_bid_request`], [`mediation_request`],
//!   [`tier_request`]) producing the same wire shapes the crawl-side
//!   endpoints already parse;
//! * response parsers ([`hb_bids_from`], [`mediation_winner`],
//!   [`tier_fill`]) folding raw [`Response`]s into bid data.
//!
//! `hb-serve` composes these with its own deadline/breaker/hedge layer;
//! the adapters themselves know nothing about budgets or retries.

use crate::partner::bid_request_body;
use crate::protocol::{self, params, paths, BidPayload, WinnerPayload};
use crate::types::{AdSize, AdUnit, Cpm};
use crate::wrapper::SiteRuntime;
use hb_http::{Body, QueryParams, Request, RequestId, Response, Status, Url};
use hb_simnet::HStr;

/// How a provider leg is driven by the orchestrator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProviderKind {
    /// Prebid-style client partner: queried in parallel with the other
    /// `ParallelHb` legs, eligible for hedging.
    ParallelHb,
    /// The ad server's server-side mediation: one call that decisions
    /// client bids and fans out to s2s seats internally.
    S2sMediation,
    /// One sequential waterfall tier with its negotiated floor.
    Waterfall {
        /// Floor the tier must beat to fill.
        floor: Cpm,
    },
}

/// One demand leg of an auction.
#[derive(Clone, Debug, PartialEq)]
pub struct ProviderSpec {
    /// Stable provider code (bidder code, account id, or tier code);
    /// used for labels and reporting.
    pub code: HStr,
    /// Host the leg's requests target — also the failure domain a
    /// circuit breaker should key on (waterfall tiers live on the
    /// `rtb.`-prefixed edge of their partner host, so a dead RTB edge
    /// trips separately from the same partner's HB endpoint).
    pub host: HStr,
    /// How the orchestrator drives this leg.
    pub kind: ProviderKind,
}

/// Derive the provider legs of a site, in deterministic drive order:
/// parallel HB partners first (site order), then the ad-server
/// mediation leg for HB sites, then waterfall tiers (tier order) for
/// waterfall sites. Purely a function of the runtime, so identical
/// `(seed, rank)` derivations yield identical legs.
pub fn providers_for(rt: &SiteRuntime) -> Vec<ProviderSpec> {
    let mut out = Vec::with_capacity(rt.client_partners.len() + 1 + rt.waterfall_tiers.len());
    for p in &rt.client_partners {
        out.push(ProviderSpec {
            code: p.code.clone(),
            host: p.host.clone(),
            kind: ProviderKind::ParallelHb,
        });
    }
    if rt.facet.is_some() {
        // Every HB flavor resolves through the ad server; for
        // server-side/hybrid facets the same call also runs the s2s
        // fan-out inside the account.
        out.push(ProviderSpec {
            code: rt.account_id.clone(),
            host: rt.ad_server_host.clone(),
            kind: ProviderKind::S2sMediation,
        });
    }
    for t in &rt.waterfall_tiers {
        out.push(ProviderSpec {
            code: t.partner.code.clone(),
            host: HStr::from_display(format_args!("rtb.{}", t.partner.host)),
            kind: ProviderKind::Waterfall { floor: t.floor },
        });
    }
    out
}

/// Build the parallel-HB bid request for one provider: POST
/// `/hb/bid` with the slot list body and the client-side query
/// parameters the partner endpoint parses. `hedge` marks the backup
/// copy of a hedged pair (carried as `hb_retry`, which the endpoint
/// ignores but the wire log keeps honest).
pub fn hb_bid_request(
    id: RequestId,
    host: &HStr,
    bidder: &HStr,
    auction_id: &str,
    units: &[AdUnit],
    hedge: bool,
) -> Request {
    let slots: Vec<(HStr, AdSize)> = units
        .iter()
        .map(|u| (u.code.clone(), u.primary_size()))
        .collect();
    let mut q = protocol::bid_request_params(auction_id, bidder.as_str(), units.len());
    if hedge {
        q.append(params::HB_RETRY, "1");
    }
    let url = Url::https_pooled(host.clone(), HStr::from_static(paths::BID), q);
    Request::post(id, url, Body::Json(bid_request_body(&slots))).from_initiator("hb-serve")
}

/// Build the mediation request: POST the collected client bids to the
/// site's ad server, which decisions them against direct orders and
/// (for server-side/hybrid accounts) its s2s seats.
pub fn mediation_request(
    id: RequestId,
    ad_server_host: &HStr,
    account_id: &HStr,
    auction_id: &str,
    client_bids: &[BidPayload],
) -> Request {
    let mut q = QueryParams::new();
    q.append("account", account_id.clone());
    q.append(params::HB_AUCTION, auction_id);
    q.append(params::HB_SOURCE, "client");
    let url = Url::https_pooled(
        ad_server_host.clone(),
        HStr::from_static(paths::AD_SERVER),
        q,
    );
    Request::post(
        id,
        url,
        Body::Json(protocol::bid_response_body(auction_id, client_bids)),
    )
    .from_initiator("hb-serve")
}

/// Build a waterfall tier request: GET the partner's RTB edge with the
/// tier floor and creative size (`cb` is the cache-buster the crawl
/// sends too; any deterministic nonce works).
pub fn tier_request(id: RequestId, rtb_host: &HStr, floor: Cpm, size: AdSize, cb: u64) -> Request {
    let mut q = QueryParams::new();
    q.append("floor", floor.to_param());
    q.append("size", HStr::from_display(size));
    q.append("cb", HStr::from_display(cb));
    let url = Url::https_pooled(rtb_host.clone(), HStr::from_static(paths::RTB_AD), q);
    Request::get(id, url).from_initiator("hb-serve")
}

/// Parse an HB bid response into payloads. `None` for no-bid (204),
/// non-OK statuses, or malformed bodies; `Some(vec)` may still be
/// empty when the partner answered with zero bids.
pub fn hb_bids_from(rsp: &Response) -> Option<Vec<BidPayload>> {
    if rsp.status != Status::OK {
        return None;
    }
    let body = rsp.body.json()?;
    protocol::parse_bid_response(body).map(|(_, bids)| bids)
}

/// Parse a mediation response into the best winner: the filled slot
/// with the highest price bucket (first such slot on ties, so the
/// pick is deterministic). `None` when nothing filled.
pub fn mediation_winner(rsp: &Response) -> Option<WinnerPayload> {
    if rsp.status != Status::OK {
        return None;
    }
    let body = rsp.body.json()?;
    let (_, winners) = protocol::parse_ad_server_response(body)?;
    let mut best: Option<WinnerPayload> = None;
    for w in winners {
        if w.channel == protocol::FillChannel::Unfilled {
            continue;
        }
        let better = match &best {
            None => true,
            Some(b) => w.pb.0 > b.pb.0,
        };
        if better {
            best = Some(w);
        }
    }
    best
}

/// Parse a waterfall tier response into a fill price. `None` on
/// passback (204) or malformed bodies.
pub fn tier_fill(rsp: &Response) -> Option<Cpm> {
    if rsp.status != Status::OK {
        return None;
    }
    let body = rsp.body.json()?;
    body.get("price").and_then(|p| p.as_f64()).map(Cpm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_http::Json;
    use crate::protocol::FillChannel;
    use crate::waterfall::WaterfallTier;
    use crate::wrapper::{PartnerRef, RobustnessPolicy, WrapperConfig};
    use crate::HbFacet;
    use std::sync::Arc;

    fn runtime(facet: Option<HbFacet>, partners: usize, tiers: usize) -> SiteRuntime {
        let units: Arc<[AdUnit]> = vec![AdUnit::new(
            "ad-slot-1",
            AdSize::MEDIUM_RECT,
            Cpm(0.1),
        )]
        .into();
        let partner = |i: usize| PartnerRef {
            code: HStr::from_display(format_args!("bidder{i}")),
            name: HStr::from_display(format_args!("Bidder {i}")),
            host: HStr::from_display(format_args!("bidder{i}.example")),
        };
        SiteRuntime {
            page_url: Url::https("pub1.example", "/"),
            rank: 1,
            facet,
            ad_units: units,
            client_partners: (0..partners).map(partner).collect(),
            ad_server_host: "ads.gam.example".into(),
            account_id: "acct-1".into(),
            wrapper: WrapperConfig::default(),
            waterfall_tiers: (0..tiers)
                .map(|i| WaterfallTier {
                    partner: partner(10 + i),
                    floor: Cpm(1.0 + i as f64),
                })
                .collect(),
            cdn_host: "cdn.example".into(),
            render_fail_rate: 0.0,
            net_quality: 1.0,
            robustness: RobustnessPolicy::off(),
        }
    }

    #[test]
    fn providers_follow_site_shape() {
        // Hybrid HB site: partners then mediation, no tiers.
        let specs = providers_for(&runtime(Some(HbFacet::Hybrid), 3, 0));
        assert_eq!(specs.len(), 4);
        assert!(specs[..3]
            .iter()
            .all(|s| s.kind == ProviderKind::ParallelHb));
        assert_eq!(specs[3].kind, ProviderKind::S2sMediation);
        assert_eq!(specs[3].host.as_str(), "ads.gam.example");

        // Waterfall-only site: tiers only, on the rtb edge.
        let specs = providers_for(&runtime(None, 0, 2));
        assert_eq!(specs.len(), 2);
        assert_eq!(
            specs[0].kind,
            ProviderKind::Waterfall { floor: Cpm(1.0) }
        );
        assert_eq!(specs[0].host.as_str(), "rtb.bidder10.example");

        // Server-side site: no client partners, mediation only.
        let specs = providers_for(&runtime(Some(HbFacet::ServerSide), 0, 0));
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].kind, ProviderKind::S2sMediation);
    }

    #[test]
    fn bid_request_matches_partner_wire_shape() {
        let rt = runtime(Some(HbFacet::ClientSide), 1, 0);
        let spec = &providers_for(&rt)[0];
        let req = hb_bid_request(
            RequestId(1),
            &spec.host,
            &spec.code,
            "srv-42",
            &rt.ad_units,
            false,
        );
        assert_eq!(req.url.path.as_str(), paths::BID);
        assert_eq!(req.url.query.get(params::HB_AUCTION), Some("srv-42"));
        assert_eq!(req.url.query.get(params::HB_SOURCE), Some("client"));
        assert!(!req.url.query.contains(params::HB_RETRY));
        let slots = req.body.json().unwrap().get("slots").unwrap();
        assert_eq!(slots.as_arr().unwrap().len(), 1);

        let hedged = hb_bid_request(
            RequestId(2),
            &spec.host,
            &spec.code,
            "srv-42",
            &rt.ad_units,
            true,
        );
        assert_eq!(hedged.url.query.get(params::HB_RETRY), Some("1"));
    }

    #[test]
    fn parsers_roundtrip_protocol_bodies() {
        let bids = vec![BidPayload {
            bidder: "bidder0".into(),
            slot: "ad-slot-1".into(),
            cpm: Cpm(1.25),
            size: AdSize::MEDIUM_RECT,
            ad_id: "cr-1".into(),
            currency: "USD".into(),
        }];
        let rsp = Response::json(RequestId(1), protocol::bid_response_body("srv-1", &bids));
        assert_eq!(hb_bids_from(&rsp).unwrap(), bids);
        assert!(hb_bids_from(&Response::no_content(RequestId(2))).is_none());

        let winners = vec![
            WinnerPayload {
                slot: "ad-slot-1".into(),
                bidder: "bidder0".into(),
                pb: Cpm(1.20),
                size: AdSize::MEDIUM_RECT,
                ad_id: "cr-1".into(),
                channel: FillChannel::HeaderBid,
            },
            WinnerPayload {
                slot: "ad-slot-2".into(),
                bidder: HStr::EMPTY,
                pb: Cpm(2.00),
                size: AdSize::MEDIUM_RECT,
                ad_id: HStr::EMPTY,
                channel: FillChannel::DirectOrder,
            },
        ];
        let rsp = Response::json(
            RequestId(3),
            protocol::ad_server_response_body("srv-1", &winners),
        );
        // Non-HB fills carry no `hb_pb` on the wire (it round-trips as
        // zero), so the HB winner's explicit bucket takes the pick.
        let best = mediation_winner(&rsp).unwrap();
        assert_eq!(best.channel, FillChannel::HeaderBid);
        assert_eq!(best.pb, Cpm(1.20));

        let fill = Response::json(
            RequestId(4),
            Json::obj([("price", Json::num(3.5)), ("size", Json::str("300x250"))]),
        );
        assert_eq!(tier_fill(&fill), Some(Cpm(3.5)));
        assert_eq!(tier_fill(&Response::no_content(RequestId(5))), None);
    }
}
