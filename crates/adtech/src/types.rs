//! Shared ad-tech domain types: ad sizes, CPM prices, facets, ad units.

use hb_http::HStr;
use std::fmt;

/// An ad creative size in pixels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct AdSize {
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl AdSize {
    /// Construct a size.
    pub const fn new(w: u32, h: u32) -> AdSize {
        AdSize { w, h }
    }

    /// Area in square pixels.
    pub fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// Parse from `"300x250"` notation.
    pub fn parse(s: &str) -> Option<AdSize> {
        let (w, h) = s.split_once('x')?;
        Some(AdSize {
            w: w.trim().parse().ok()?,
            h: h.trim().parse().ok()?,
        })
    }

    /// The medium rectangle (side banner) — the web's most common slot.
    pub const MEDIUM_RECT: AdSize = AdSize::new(300, 250);
    /// The leaderboard (top banner).
    pub const LEADERBOARD: AdSize = AdSize::new(728, 90);
    /// Half page.
    pub const HALF_PAGE: AdSize = AdSize::new(300, 600);
    /// Mobile banner.
    pub const MOBILE_BANNER: AdSize = AdSize::new(320, 50);
    /// Billboard.
    pub const BILLBOARD: AdSize = AdSize::new(970, 250);
    /// Wide skyscraper.
    pub const SKYSCRAPER: AdSize = AdSize::new(160, 600);
}

impl fmt::Display for AdSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.w, self.h)
    }
}

/// A price in CPM (cost per thousand impressions, USD).
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Cpm(pub f64);

impl Cpm {
    /// Zero price.
    pub const ZERO: Cpm = Cpm(0.0);

    /// Is this price positive?
    pub fn is_positive(&self) -> bool {
        self.0 > 0.0
    }

    /// Round **down** to a price bucket of the given granularity — the
    /// `hb_pb` key-value prebid sends to the ad server. Buckets are floored
    /// so the publisher is never over-reported. A small epsilon keeps the
    /// operation idempotent under floating-point division (re-bucketing an
    /// already-bucketed price must not drop it a bucket).
    pub fn bucket(&self, granularity: f64) -> Cpm {
        if granularity <= 0.0 {
            return *self;
        }
        Cpm((self.0 / granularity + 1e-9).floor() * granularity)
    }

    /// Render as the ad-server string form (2 decimals). Stays on the
    /// stack: the rendered form is at most a few bytes.
    pub fn to_param(&self) -> HStr {
        HStr::from_display(format_args!("{:.2}", self.0))
    }

    /// Parse from a parameter string.
    pub fn parse(s: &str) -> Option<Cpm> {
        let v: f64 = s.trim().parse().ok()?;
        if v.is_finite() && v >= 0.0 {
            Some(Cpm(v))
        } else {
            None
        }
    }
}

impl fmt::Display for Cpm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.4} CPM", self.0)
    }
}

/// The three deployment facets of header bidding identified by the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HbFacet {
    /// The auction runs entirely in the browser (Fig. 5).
    ClientSide,
    /// A single provider runs the auction server-side (Fig. 6).
    ServerSide,
    /// Client fan-out plus a server-side auction at the ad server (Fig. 7).
    Hybrid,
}

impl HbFacet {
    /// Stable label used in records and tables.
    pub fn label(&self) -> &'static str {
        match self {
            HbFacet::ClientSide => "client-side",
            HbFacet::ServerSide => "server-side",
            HbFacet::Hybrid => "hybrid",
        }
    }

    /// All facets, in the paper's market-share order.
    pub fn all() -> [HbFacet; 3] {
        [HbFacet::ServerSide, HbFacet::Hybrid, HbFacet::ClientSide]
    }
}

impl fmt::Display for HbFacet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accepted creative sizes of one ad unit, stored inline. Real-world
/// units accept a handful of sizes (the generator assigns one); the
/// former one-element `Vec<AdSize>` per unit was the dominant cold-
/// derivation allocation for unit-heavy sites, so the list lives on the
/// stack — `AdUnit` is now allocation-free apart from its (usually
/// inline) slot code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeList {
    len: u8,
    sizes: [AdSize; 4],
}

impl Default for SizeList {
    fn default() -> SizeList {
        SizeList::empty()
    }
}

impl SizeList {
    /// No sizes.
    pub const fn empty() -> SizeList {
        SizeList {
            len: 0,
            sizes: [AdSize { w: 0, h: 0 }; 4],
        }
    }

    /// A single-size list.
    pub fn one(size: AdSize) -> SizeList {
        let mut l = SizeList::empty();
        l.push(size);
        l
    }

    /// Append a size; silently ignores overflow past the inline capacity
    /// (four sizes — beyond anything the generator or paper describe).
    pub fn push(&mut self, size: AdSize) {
        if (self.len as usize) < self.sizes.len() {
            self.sizes[self.len as usize] = size;
            self.len += 1;
        }
    }

    /// First (primary) size, if any.
    pub fn first(&self) -> Option<AdSize> {
        (self.len > 0).then(|| self.sizes[0])
    }

    /// Number of sizes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no sizes are listed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the sizes.
    pub fn iter(&self) -> impl Iterator<Item = AdSize> + '_ {
        self.sizes[..self.len as usize].iter().copied()
    }
}

impl From<AdSize> for SizeList {
    fn from(size: AdSize) -> SizeList {
        SizeList::one(size)
    }
}

/// An ad slot a publisher puts up for auction.
#[derive(Clone, Debug, PartialEq)]
pub struct AdUnit {
    /// Slot code (matches the page's `div` id).
    pub code: HStr,
    /// Accepted creative sizes (first is primary).
    pub sizes: SizeList,
    /// Floor price agreed with the publisher.
    pub floor: Cpm,
}

impl AdUnit {
    /// Construct an ad unit with one size.
    pub fn new(code: impl Into<HStr>, size: AdSize, floor: Cpm) -> AdUnit {
        AdUnit {
            code: code.into(),
            sizes: SizeList::one(size),
            floor,
        }
    }

    /// Primary size.
    pub fn primary_size(&self) -> AdSize {
        self.sizes.first().unwrap_or(AdSize::MEDIUM_RECT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adsize_parse_display_roundtrip() {
        let s = AdSize::parse("300x250").unwrap();
        assert_eq!(s, AdSize::MEDIUM_RECT);
        assert_eq!(format!("{s}"), "300x250");
        assert_eq!(AdSize::parse("x"), None);
        assert_eq!(AdSize::parse("300"), None);
        assert_eq!(AdSize::parse(" 728 x 90 ").unwrap(), AdSize::LEADERBOARD);
    }

    #[test]
    fn adsize_area() {
        assert_eq!(AdSize::MEDIUM_RECT.area(), 75_000);
        assert_eq!(AdSize::new(0, 10).area(), 0);
    }

    #[test]
    fn cpm_bucketing_floors() {
        assert_eq!(Cpm(0.57).bucket(0.10).0, 0.5);
        assert_eq!(Cpm(0.57).bucket(0.05).0, 0.55);
        let exact = Cpm(1.0).bucket(0.5);
        assert!((exact.0 - 1.0).abs() < 1e-12);
        // Degenerate granularity leaves the price untouched.
        assert_eq!(Cpm(0.37).bucket(0.0).0, 0.37);
    }

    #[test]
    fn cpm_param_roundtrip() {
        let c = Cpm(0.5);
        assert_eq!(c.to_param(), "0.50");
        assert_eq!(Cpm::parse("0.50"), Some(Cpm(0.5)));
        assert_eq!(Cpm::parse("-1"), None);
        assert_eq!(Cpm::parse("nan"), None);
        assert_eq!(Cpm::parse("abc"), None);
    }

    #[test]
    fn facet_labels() {
        assert_eq!(HbFacet::ClientSide.label(), "client-side");
        assert_eq!(HbFacet::all().len(), 3);
        assert_eq!(HbFacet::all()[0], HbFacet::ServerSide);
    }

    #[test]
    fn ad_unit_primary_size() {
        let u = AdUnit::new("ad-slot-1", AdSize::LEADERBOARD, Cpm(0.05));
        assert_eq!(u.primary_size(), AdSize::LEADERBOARD);
        let empty = AdUnit {
            code: "x".into(),
            sizes: SizeList::empty(),
            floor: Cpm::ZERO,
        };
        assert_eq!(empty.primary_size(), AdSize::MEDIUM_RECT);
    }
}
