//! DFP-like ad server: line items, floor prices, decisioning, and the
//! server-side auction it can run on behalf of publishers.
//!
//! The ad server is the winner-selection phase of Figure 2: it receives the
//! wrapper's collected header bids as `hb_*` targeting, compares them with
//! direct orders and the floor, optionally augments them with its own
//! server-to-server auction (Server-Side and Hybrid HB), and returns the
//! winning impression per slot.

use crate::partner::PartnerProfile;
use crate::protocol::{self, params, FillChannel, WinnerPayload};
use crate::rtb::first_price_winner;
use crate::types::{AdSize, AdUnit, Cpm};
use hb_http::{Endpoint, HStr, Request, Response, ServerReply};
use hb_simnet::{Rng, SimDuration};
use hb_simnet::FxHashMap;
use std::sync::Arc;

/// A direct-order (sponsorship) line item.
#[derive(Clone, Debug)]
pub struct DirectOrder {
    /// Effective CPM the advertiser pays.
    pub cpm: Cpm,
    /// Probability the order still has impressions to serve when a request
    /// arrives (quota modelling).
    pub fill_rate: f64,
    /// Sizes it can fill (empty = any).
    pub sizes: Vec<AdSize>,
}

/// Per-publisher account configuration at the ad server.
#[derive(Clone, Debug)]
pub struct AdServerAccount {
    /// Account id (`pub-<rank>`, compact/inline).
    pub account_id: HStr,
    /// Direct orders available to this publisher.
    pub direct_orders: Vec<DirectOrder>,
    /// Fallback/house eCPM (AdSense-like remnant); `None` = unfilled slots
    /// stay unfilled.
    pub fallback_cpm: Option<Cpm>,
    /// Floor price applied to HB bids.
    pub floor: Cpm,
    /// Partners this account's server-side auctions fan out to
    /// (Server-Side and Hybrid HB only). `Arc`-shared with the catalog's
    /// profile table — deriving an account never deep-clones a profile.
    pub s2s_partners: Vec<Arc<PartnerProfile>>,
    /// The ad units this account serves (authoritative slot list;
    /// `Arc`-shared with the site profile and runtime).
    pub ad_units: Arc<[AdUnit]>,
    /// Per-partner deadline of the server-side mediator: a partner whose
    /// fan-out call exceeds it is retried once (after
    /// [`Self::s2s_retry_backoff`]) and then dropped from the auction.
    /// `None` (the default) waits for every partner — the baseline
    /// semantics, with an unchanged RNG draw sequence.
    pub s2s_deadline: Option<SimDuration>,
    /// Backoff before the mediator's one retry of an over-deadline partner.
    pub s2s_retry_backoff: SimDuration,
}

impl AdServerAccount {
    /// Minimal account for tests.
    pub fn test_account(id: &str, units: Vec<AdUnit>) -> AdServerAccount {
        AdServerAccount {
            account_id: HStr::new(id),
            direct_orders: Vec::new(),
            fallback_cpm: Some(Cpm(0.05)),
            floor: Cpm(0.01),
            s2s_partners: Vec::new(),
            ad_units: units.into(),
            s2s_deadline: None,
            s2s_retry_backoff: SimDuration::ZERO,
        }
    }
}

/// A candidate in slot decisioning.
#[derive(Clone, Debug)]
enum Candidate {
    Hb { bidder: HStr, ad_id: HStr, size: AdSize },
    Direct,
}

/// Decision outcome for one slot (exposed for unit testing the logic).
#[derive(Clone, Debug, PartialEq)]
pub struct SlotDecision {
    /// Slot code.
    pub slot: HStr,
    /// Filled channel.
    pub channel: FillChannel,
    /// Winning bidder (HB only).
    pub bidder: HStr,
    /// Clearing price bucket.
    pub price: Cpm,
    /// Size served.
    pub size: AdSize,
    /// Creative id.
    pub ad_id: HStr,
}

/// One header bid presented to the decisioner.
#[derive(Clone, Debug, PartialEq)]
pub struct PresentedBid {
    /// Slot code the bid targets.
    pub slot: HStr,
    /// Bidder code.
    pub bidder: HStr,
    /// Price (already bucketed by the wrapper).
    pub cpm: Cpm,
    /// Creative size.
    pub size: AdSize,
    /// Creative id.
    pub ad_id: HStr,
}

/// Core decisioning: pick the best channel per slot.
///
/// Order of comparison follows the paper's Step 3: header bids are accepted
/// when they beat the floor; direct orders compete at their eCPM; fallback
/// fills what remains.
pub fn decide_slot(
    account: &AdServerAccount,
    unit: &AdUnit,
    hb_bids: &[PresentedBid],
    rng: &mut Rng,
) -> SlotDecision {
    let mut candidates: Vec<(Candidate, Cpm)> = Vec::new();
    for bid in hb_bids.iter().filter(|b| b.slot == unit.code) {
        if bid.cpm.0 >= account.floor.0.max(unit.floor.0) {
            candidates.push((
                Candidate::Hb {
                    bidder: bid.bidder.clone(),
                    ad_id: bid.ad_id.clone(),
                    size: bid.size,
                },
                bid.cpm,
            ));
        }
    }
    for order in &account.direct_orders {
        let size_ok = order.sizes.is_empty() || order.sizes.contains(&unit.primary_size());
        if size_ok && rng.chance(order.fill_rate) {
            candidates.push((Candidate::Direct, order.cpm));
        }
    }
    match first_price_winner(&candidates) {
        Some((Candidate::Hb { bidder, ad_id, size }, price)) => SlotDecision {
            slot: unit.code.clone(),
            channel: FillChannel::HeaderBid,
            bidder,
            price,
            size,
            ad_id,
        },
        Some((Candidate::Direct, price)) => SlotDecision {
            slot: unit.code.clone(),
            channel: FillChannel::DirectOrder,
            bidder: HStr::EMPTY,
            price,
            size: unit.primary_size(),
            ad_id: HStr::EMPTY,
        },
        None => match account.fallback_cpm {
            Some(cpm) => SlotDecision {
                slot: unit.code.clone(),
                channel: FillChannel::Fallback,
                bidder: HStr::EMPTY,
                price: cpm,
                size: unit.primary_size(),
                ad_id: HStr::EMPTY,
            },
            None => SlotDecision {
                slot: unit.code.clone(),
                channel: FillChannel::Unfilled,
                bidder: HStr::EMPTY,
                price: Cpm::ZERO,
                size: unit.primary_size(),
                ad_id: HStr::EMPTY,
            },
        },
    }
}

/// Run the ad server's own server-to-server auction for the account's
/// slots. Returns the s2s bids and the simulated wall-clock the fan-out
/// took (max over parallel partner calls, as a real gateway would see).
///
/// Takes the units as a re-iterable borrow (slice, `&Vec`, or a filtered
/// iterator) so the endpoint can fan out over a slot-restricted view
/// without materializing a cloned `Vec<AdUnit>` per request.
pub fn run_s2s_auction<'a, I>(
    account: &AdServerAccount,
    units: I,
    rng: &mut Rng,
) -> (Vec<PresentedBid>, SimDuration)
where
    I: IntoIterator<Item = &'a AdUnit>,
    I::IntoIter: Clone,
{
    let units = units.into_iter();
    let n_units = units.clone().count();
    let mut bids = Vec::new();
    let mut slowest = SimDuration::ZERO;
    for partner in &account.s2s_partners {
        // Parallel fan-out: total time is the max over partners.
        let mut rtt = partner.s2s_latency.sample(rng) + partner.processing_time(n_units);
        if let Some(deadline) = account.s2s_deadline {
            if rtt > deadline {
                // Over-deadline: the mediator abandons the call at the
                // deadline and retries once after the backoff. A second
                // miss drops the partner from this auction entirely.
                let retry_rtt =
                    partner.s2s_latency.sample(rng) + partner.processing_time(n_units);
                if retry_rtt > deadline {
                    slowest = slowest.max(deadline + account.s2s_retry_backoff + deadline);
                    continue;
                }
                rtt = deadline + account.s2s_retry_backoff + retry_rtt;
            }
        }
        slowest = slowest.max(rtt);
        for unit in units.clone() {
            if let Some(cpm) = partner.draw_bid(unit.primary_size(), 0.6, rng) {
                bids.push(PresentedBid {
                    slot: unit.code.clone(),
                    bidder: partner.bidder_code.clone(),
                    cpm,
                    size: unit.primary_size(),
                    ad_id: HStr::from_display(format_args!(
                        "s2s-{}-{}",
                        partner.bidder_code,
                        rng.below(1_000_000)
                    )),
                });
            }
        }
    }
    (bids, slowest)
}

/// The ad server endpoint: serves `/gampad/ads` for registered accounts.
///
/// Request conventions:
/// * `account` query param selects the [`AdServerAccount`];
/// * `hb_source=client` bodies carry client-collected bids (`bids` array);
/// * accounts with `s2s_partners` additionally run a server-side auction
///   (this is what makes the same endpoint serve pure Server-Side HB — no
///   client bids — and Hybrid HB — both).
pub struct AdServerEndpoint {
    accounts: FxHashMap<HStr, Arc<AdServerAccount>>,
    /// On-demand account derivation for lazily generated universes: when
    /// the static `accounts` map misses, the resolver gets a chance to
    /// produce the account from the id alone (`None` = genuinely unknown).
    resolver: Option<AccountResolver>,
    /// Base decision-engine latency (ms) added to every request.
    pub decision_overhead_ms: f64,
}

/// Callback deriving an [`AdServerAccount`] from its id on demand.
pub type AccountResolver = Box<dyn Fn(&str) -> Option<Arc<AdServerAccount>> + Send + Sync>;

impl AdServerEndpoint {
    /// Build with a set of accounts.
    pub fn new(accounts: impl IntoIterator<Item = AdServerAccount>) -> AdServerEndpoint {
        AdServerEndpoint {
            accounts: accounts
                .into_iter()
                .map(|a| (a.account_id.clone(), Arc::new(a)))
                .collect(),
            resolver: None,
            decision_overhead_ms: 15.0,
        }
    }

    /// Build with an on-demand account resolver instead of a materialized
    /// account map. Decisioning is a pure function of `(account, request,
    /// rng)`, so a resolver that derives the same account the eager map
    /// would have held yields byte-identical replies.
    pub fn with_resolver(
        resolver: impl Fn(&str) -> Option<Arc<AdServerAccount>> + Send + Sync + 'static,
    ) -> AdServerEndpoint {
        AdServerEndpoint {
            accounts: FxHashMap::default(),
            resolver: Some(Box::new(resolver)),
            decision_overhead_ms: 15.0,
        }
    }

    /// Number of accounts registered (resolver-backed accounts excluded).
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Look up an account, falling back to the resolver.
    fn account(&self, id: &str) -> Option<Arc<AdServerAccount>> {
        if let Some(a) = self.accounts.get(id) {
            return Some(a.clone());
        }
        self.resolver.as_ref().and_then(|r| r(id))
    }

    fn handle_ads(&self, req: &Request, rng: &mut Rng) -> ServerReply {
        let account_id = req.url.query.get("account").unwrap_or("");
        let account = match self.account(account_id) {
            Some(a) => a,
            None => {
                return ServerReply::instant(Response::error(
                    req.id,
                    hb_http::Status::NOT_FOUND,
                ))
            }
        };
        let auction_id = HStr::new(req.url.query.get(params::HB_AUCTION).unwrap_or(""));
        // Client-presented bids, if any.
        let mut bids: Vec<PresentedBid> = Vec::new();
        if let Some(body) = req.body.json() {
            if let Some((_, parsed)) = protocol::parse_bid_response(body) {
                for b in parsed {
                    bids.push(PresentedBid {
                        slot: b.slot,
                        bidder: b.bidder,
                        cpm: b.cpm,
                        size: b.size,
                        ad_id: b.ad_id,
                    });
                }
            }
        }
        // Which units to decision: the request may restrict slots. The
        // query is scanned once per unit to fill a selection bitmask; the
        // restricted view stays a borrowed filter over the account's
        // units (no cloned Vec<AdUnit> per request). Iteration order is
        // the account order either way, so the RNG draw sequence — and
        // with it every figure byte — is unchanged. (u128 covers any
        // realistic slot count; a >128-unit account would simply treat
        // the overflow units as selected, matching the unrestricted
        // common case.)
        let restricted = req.url.query.get_all(params::HB_SLOT).next().is_some();
        let mut mask: u128 = !0;
        if restricted {
            debug_assert!(account.ad_units.len() <= 128, "selection mask overflow");
            mask = 0;
            for (i, u) in account.ad_units.iter().enumerate().take(128) {
                if req.url.query.get_all(params::HB_SLOT).any(|r| u.code == r) {
                    mask |= 1 << i;
                }
            }
        }
        let all_units = &account.ad_units;
        let selected = move || {
            all_units
                .iter()
                .enumerate()
                .filter(move |(i, _)| *i >= 128 || mask >> *i & 1 == 1)
                .map(|(_, u)| u)
        };
        // Server-side augmentation. Decisioning cost grows with the number
        // of slots to fill (drives Fig. 20's latency-vs-slots slope).
        let mut processing = SimDuration::from_millis_f64(
            self.decision_overhead_ms + 9.0 * selected().count() as f64,
        );
        if !account.s2s_partners.is_empty() {
            let (s2s_bids, fanout_time) = run_s2s_auction(&account, selected(), rng);
            bids.extend(s2s_bids);
            processing += fanout_time;
        }
        let winners: Vec<WinnerPayload> = selected()
            .map(|unit| {
                let d = decide_slot(&account, unit, &bids, rng);
                WinnerPayload {
                    slot: d.slot,
                    bidder: d.bidder,
                    pb: d.price.bucket(protocol::DEFAULT_PB_GRANULARITY),
                    size: d.size,
                    ad_id: d.ad_id,
                    channel: d.channel,
                }
            })
            .collect();
        let body = protocol::ad_server_response_body(&auction_id, &winners);
        ServerReply::after(Response::json(req.id, body), processing)
    }
}

impl Endpoint for AdServerEndpoint {
    fn handle(&self, req: &Request, rng: &mut Rng) -> ServerReply {
        match req.url.path.as_str() {
            p if p == protocol::paths::AD_SERVER => self.handle_ads(req, rng),
            _ => ServerReply::instant(Response::error(req.id, hb_http::Status::NOT_FOUND)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_http::{Body, RequestId, Url};

    fn unit(code: &str) -> AdUnit {
        AdUnit::new(code, AdSize::MEDIUM_RECT, Cpm(0.01))
    }

    fn hb_bid(slot: &str, bidder: &str, cpm: f64) -> PresentedBid {
        PresentedBid {
            slot: slot.into(),
            bidder: bidder.into(),
            cpm: Cpm(cpm),
            size: AdSize::MEDIUM_RECT,
            ad_id: HStr::from(format!("cr-{bidder}")),
        }
    }

    #[test]
    fn highest_hb_bid_wins_over_floor() {
        let account = AdServerAccount::test_account("pub-1", vec![unit("s1")]);
        let mut rng = Rng::new(1);
        let d = decide_slot(
            &account,
            &account.ad_units[0],
            &[hb_bid("s1", "a", 0.2), hb_bid("s1", "b", 0.5)],
            &mut rng,
        );
        assert_eq!(d.channel, FillChannel::HeaderBid);
        assert_eq!(d.bidder, "b");
        assert_eq!(d.price, Cpm(0.5));
    }

    #[test]
    fn floor_rejects_low_bids_falls_back() {
        let mut account = AdServerAccount::test_account("pub-1", vec![unit("s1")]);
        account.floor = Cpm(1.0);
        let mut rng = Rng::new(2);
        let d = decide_slot(
            &account,
            &account.ad_units[0],
            &[hb_bid("s1", "a", 0.2)],
            &mut rng,
        );
        assert_eq!(d.channel, FillChannel::Fallback);
        assert_eq!(d.price, Cpm(0.05));
    }

    #[test]
    fn direct_order_beats_lower_hb_bid() {
        let mut account = AdServerAccount::test_account("pub-1", vec![unit("s1")]);
        account.direct_orders.push(DirectOrder {
            cpm: Cpm(1.5),
            fill_rate: 1.0,
            sizes: vec![],
        });
        let mut rng = Rng::new(3);
        let d = decide_slot(
            &account,
            &account.ad_units[0],
            &[hb_bid("s1", "a", 0.9)],
            &mut rng,
        );
        assert_eq!(d.channel, FillChannel::DirectOrder);
        assert_eq!(d.price, Cpm(1.5));
    }

    #[test]
    fn hb_beats_direct_when_higher() {
        let mut account = AdServerAccount::test_account("pub-1", vec![unit("s1")]);
        account.direct_orders.push(DirectOrder {
            cpm: Cpm(0.4),
            fill_rate: 1.0,
            sizes: vec![],
        });
        let mut rng = Rng::new(4);
        let d = decide_slot(
            &account,
            &account.ad_units[0],
            &[hb_bid("s1", "big", 1.9)],
            &mut rng,
        );
        assert_eq!(d.channel, FillChannel::HeaderBid);
        assert_eq!(d.bidder, "big");
    }

    #[test]
    fn unfilled_without_fallback() {
        let mut account = AdServerAccount::test_account("pub-1", vec![unit("s1")]);
        account.fallback_cpm = None;
        let mut rng = Rng::new(5);
        let d = decide_slot(&account, &account.ad_units[0], &[], &mut rng);
        assert_eq!(d.channel, FillChannel::Unfilled);
        assert_eq!(d.price, Cpm::ZERO);
    }

    #[test]
    fn bids_for_other_slots_ignored() {
        let account = AdServerAccount::test_account("pub-1", vec![unit("s1")]);
        let mut rng = Rng::new(6);
        let d = decide_slot(
            &account,
            &account.ad_units[0],
            &[hb_bid("other", "a", 5.0)],
            &mut rng,
        );
        assert_ne!(d.channel, FillChannel::HeaderBid);
    }

    #[test]
    fn endpoint_decisions_all_units() {
        let account = AdServerAccount::test_account("pub-9", vec![unit("s1"), unit("s2")]);
        let ep = AdServerEndpoint::new([account]);
        assert_eq!(ep.account_count(), 1);
        let bids_body = protocol::bid_response_body(
            "auc-7",
            &[crate::protocol::BidPayload {
                bidder: "appnexus".into(),
                slot: "s1".into(),
                cpm: Cpm(0.7),
                size: AdSize::MEDIUM_RECT,
                ad_id: "cr-1".into(),
                currency: "USD".into(),
            }],
        );
        let url = Url::https("adserver.example", protocol::paths::AD_SERVER)
            .with_param("account", "pub-9")
            .with_param(params::HB_AUCTION, "auc-7")
            .with_param(params::HB_SOURCE, "client");
        let req = Request::post(RequestId(2), url, Body::Json(bids_body));
        let mut rng = Rng::new(7);
        let reply = ep.handle(&req, &mut rng);
        let (auction, winners) =
            protocol::parse_ad_server_response(reply.response.body.json().unwrap()).unwrap();
        assert_eq!(auction, "auc-7");
        assert_eq!(winners.len(), 2);
        let w1 = winners.iter().find(|w| w.slot == "s1").unwrap();
        assert_eq!(w1.channel, FillChannel::HeaderBid);
        assert_eq!(w1.bidder, "appnexus");
        let w2 = winners.iter().find(|w| w.slot == "s2").unwrap();
        assert_eq!(w2.channel, FillChannel::Fallback);
    }

    #[test]
    fn s2s_accounts_produce_bids_and_latency() {
        let mut p = PartnerProfile::test_profile(1, "ix");
        p.bid_rate = 1.0;
        let mut account = AdServerAccount::test_account("pub-2", vec![unit("s1")]);
        account.s2s_partners = vec![Arc::new(p)];
        let mut rng = Rng::new(8);
        let units = account.ad_units.clone();
        let (bids, dur) = run_s2s_auction(&account, &units[..], &mut rng);
        assert_eq!(bids.len(), 1);
        assert_eq!(bids[0].bidder, "ix");
        assert!(dur > SimDuration::ZERO);
    }

    #[test]
    fn s2s_deadline_drops_slow_partner_after_one_retry() {
        use hb_simnet::LatencyModel;
        let mut fast = PartnerProfile::test_profile(1, "fast");
        fast.bid_rate = 1.0;
        fast.s2s_latency = LatencyModel::constant(20.0);
        fast.per_slot_processing_ms = 10.0;
        let mut slow = PartnerProfile::test_profile(2, "slow");
        slow.bid_rate = 1.0;
        slow.s2s_latency = LatencyModel::constant(500.0);
        slow.per_slot_processing_ms = 10.0;

        let mut account = AdServerAccount::test_account("pub-4", vec![unit("s1")]);
        account.s2s_partners = vec![Arc::new(fast.clone()), Arc::new(slow.clone())];
        let units = account.ad_units.clone();

        // Baseline (no deadline): both partners bid, latency = slowest.
        let mut rng = Rng::new(11);
        let (bids, dur) = run_s2s_auction(&account, &units[..], &mut rng);
        assert_eq!(bids.len(), 2);
        assert!(dur >= SimDuration::from_millis(510), "dur {dur}");

        // Deadline 100 ms: the slow partner misses twice and is dropped;
        // the mediator gives up at deadline + backoff + deadline.
        account.s2s_deadline = Some(SimDuration::from_millis(100));
        account.s2s_retry_backoff = SimDuration::from_millis(25);
        let mut rng = Rng::new(11);
        let (bids, dur) = run_s2s_auction(&account, &units[..], &mut rng);
        assert_eq!(bids.len(), 1, "slow partner dropped");
        assert_eq!(bids[0].bidder, "fast");
        assert_eq!(dur, SimDuration::from_millis(225), "100 + 25 + 100");
    }

    #[test]
    fn unknown_account_404() {
        let ep = AdServerEndpoint::new([]);
        let url = Url::https("adserver.example", protocol::paths::AD_SERVER)
            .with_param("account", "ghost");
        let req = Request::get(RequestId(1), url);
        let mut rng = Rng::new(9);
        assert_eq!(
            ep.handle(&req, &mut rng).response.status,
            hb_http::Status::NOT_FOUND
        );
    }

    #[test]
    fn slot_restriction_respected() {
        let account =
            AdServerAccount::test_account("pub-3", vec![unit("s1"), unit("s2"), unit("s3")]);
        let ep = AdServerEndpoint::new([account]);
        let url = Url::https("adserver.example", protocol::paths::AD_SERVER)
            .with_param("account", "pub-3")
            .with_param(params::HB_SLOT, "s2");
        let req = Request::get(RequestId(3), url);
        let mut rng = Rng::new(10);
        let reply = ep.handle(&req, &mut rng);
        let (_, winners) =
            protocol::parse_ad_server_response(reply.response.body.json().unwrap()).unwrap();
        assert_eq!(winners.len(), 1);
        assert_eq!(winners[0].slot, "s2");
    }
}
