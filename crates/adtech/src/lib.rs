//! # hb-adtech
//!
//! The simulated ad-tech ecosystem of the header bidding reproduction:
//! demand partners running internal OpenRTB-lite auctions, a DFP-like ad
//! server with line items/floors/price buckets and an optional
//! server-to-server auction, the prebid-like header bidding wrapper with
//! its DOM event surface, and the waterfall baseline the paper compares
//! against.
//!
//! This crate *produces* the phenomena the detector (hb-core) measures;
//! hb-core never depends on it, mirroring the measurement boundary of the
//! original Chrome-extension tool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adserver;
pub mod partner;
pub mod protocol;
pub mod provider;
pub mod rtb;
pub mod session;
pub mod types;
pub mod waterfall;
pub mod wrapper;

pub use adserver::{AdServerAccount, AdServerEndpoint, DirectOrder, PresentedBid, SlotDecision};
pub use partner::{partner_endpoint, PartnerId, PartnerKind, PartnerProfile};
pub use protocol::{BidPayload, FillChannel, WinnerPayload};
pub use provider::{
    hb_bid_request, hb_bids_from, mediation_request, mediation_winner, providers_for,
    tier_fill, tier_request, ProviderKind, ProviderSpec,
};
pub use rtb::{first_price_winner, AuctionOutcome, InternalAuction, SeatBid};
pub use session::{send_request, HostDirectory, Net, NetOutcome, PageWorld};
pub use types::{AdSize, AdUnit, Cpm, HbFacet, SizeList};
pub use waterfall::{rtb_price_param, start_waterfall, waterfall_endpoint, WaterfallTier};
pub use wrapper::{
    begin_visit, FlowState, PartnerRef, RobustnessPolicy, SiteRuntime, VisitGroundTruth,
    WrapperConfig,
};
