//! Property tests for the ad-tech protocol layer.

use hb_adtech::{
    first_price_winner, AdSize, BidPayload, Cpm, FillChannel, InternalAuction, WinnerPayload,
};
use hb_adtech::protocol::{bid_response_body, parse_bid_response};
use hb_simnet::{Dist, Rng};
use proptest::prelude::*;

fn arb_size() -> impl Strategy<Value = AdSize> {
    (1u32..2000, 1u32..2000).prop_map(|(w, h)| AdSize::new(w, h))
}

fn arb_cpm() -> impl Strategy<Value = Cpm> {
    (0.0f64..50.0).prop_map(|v| Cpm((v * 10_000.0).round() / 10_000.0))
}

fn arb_code() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z][a-z0-9_]{1,14}").unwrap()
}

fn arb_bid() -> impl Strategy<Value = BidPayload> {
    (arb_code(), arb_code(), arb_cpm(), arb_size()).prop_map(|(bidder, slot, cpm, size)| {
        BidPayload {
            bidder: bidder.into(),
            slot: slot.into(),
            cpm,
            size,
            ad_id: "cr-1".into(),
            currency: "USD".into(),
        }
    })
}

proptest! {
    /// AdSize string form always parses back.
    #[test]
    fn adsize_roundtrip(size in arb_size()) {
        prop_assert_eq!(AdSize::parse(&size.to_string()), Some(size));
    }

    /// Price buckets never exceed the raw price and are idempotent.
    #[test]
    fn bucket_is_monotone_floor(v in 0.0f64..100.0, g in 0.001f64..1.0) {
        let c = Cpm(v);
        let b = c.bucket(g);
        prop_assert!(b.0 <= c.0 + 1e-12);
        prop_assert!(c.0 - b.0 < g + 1e-9);
        let bb = b.bucket(g);
        prop_assert!((bb.0 - b.0).abs() < 1e-9, "idempotent: {} vs {}", bb.0, b.0);
    }

    /// Bid payloads round-trip through JSON.
    #[test]
    fn bid_payload_roundtrip(bid in arb_bid()) {
        let back = BidPayload::from_json(&bid.to_json()).unwrap();
        prop_assert_eq!(back.bidder, bid.bidder);
        prop_assert_eq!(back.slot, bid.slot);
        prop_assert!((back.cpm.0 - bid.cpm.0).abs() < 1e-9);
        prop_assert_eq!(back.size, bid.size);
    }

    /// Bid-response bodies round-trip with arbitrary bid lists.
    #[test]
    fn bid_response_roundtrip(bids in proptest::collection::vec(arb_bid(), 0..8)) {
        let body = bid_response_body("auc-x", &bids);
        let (auction, back) = parse_bid_response(&body).unwrap();
        prop_assert_eq!(auction, "auc-x");
        prop_assert_eq!(back.len(), bids.len());
    }

    /// Winner payloads round-trip for every channel.
    #[test]
    fn winner_roundtrip(
        channel_idx in 0usize..4,
        size in arb_size(),
        pb in arb_cpm(),
        bidder in arb_code(),
    ) {
        let channel = [
            FillChannel::HeaderBid,
            FillChannel::DirectOrder,
            FillChannel::Fallback,
            FillChannel::Unfilled,
        ][channel_idx];
        let w = WinnerPayload {
            slot: "s1".into(),
            bidder: if channel == FillChannel::HeaderBid { bidder.into() } else { hb_http::HStr::EMPTY },
            pb: if channel == FillChannel::HeaderBid { Cpm((pb.0 * 100.0).round() / 100.0) } else { Cpm::ZERO },
            size,
            ad_id: if channel == FillChannel::HeaderBid { "a".into() } else { hb_http::HStr::EMPTY },
            channel,
        };
        let back = WinnerPayload::from_json(&w.to_json()).unwrap();
        prop_assert_eq!(back.channel, w.channel);
        prop_assert_eq!(back.slot, w.slot);
        prop_assert_eq!(back.size, w.size);
        if channel == FillChannel::HeaderBid {
            prop_assert_eq!(back.bidder, w.bidder);
        }
    }

    /// Second-price auctions never charge above the winning bid, and the
    /// clearing price equals one of the submitted bids.
    #[test]
    fn second_price_invariants(seed in any::<u64>(), seats in 1u32..12, price_mid in 0.01f64..2.0) {
        let d = Dist::LogNormal { mu: price_mid.ln(), sigma: 0.7 };
        let a = InternalAuction::new(seats, &d);
        let mut rng = Rng::new(seed);
        if let Some(out) = a.run_detailed(&mut rng) {
            prop_assert!(out.clearing_price.0 <= out.winner.price.0 + 1e-12);
            prop_assert!(out.n_bids >= 1);
            prop_assert!(out.clearing_price.0 > 0.0);
        }
    }

    /// First-price winner selection returns the maximum.
    #[test]
    fn first_price_max(prices in proptest::collection::vec(0.0f64..10.0, 1..12)) {
        let candidates: Vec<(usize, Cpm)> =
            prices.iter().enumerate().map(|(i, &p)| (i, Cpm(p))).collect();
        let (_, won) = first_price_winner(&candidates).unwrap();
        let max = prices.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!((won.0 - max).abs() < 1e-12);
    }

    /// Cpm::parse accepts what to_param produces.
    #[test]
    fn cpm_param_roundtrip(c in arb_cpm()) {
        let parsed = Cpm::parse(&c.to_param()).unwrap();
        prop_assert!((parsed.0 - c.0).abs() < 0.005 + 1e-9);
    }
}
