//! Single-threaded JavaScript main-thread model.
//!
//! The paper stresses (§7.2) that even well-optimized asynchronous HB calls
//! queue on the single JS thread, inflating both HB completion time and
//! page load time. [`JsThread`] models that contention: every task has an
//! arrival time and a service time; a task cannot start before the thread
//! is free, and the thread is busy until the task finishes.

use hb_simnet::{SimDuration, SimTime};

/// The page's single JavaScript execution thread.
#[derive(Debug, Clone)]
pub struct JsThread {
    busy_until: SimTime,
    total_busy: SimDuration,
    tasks_run: u64,
    max_queue_delay: SimDuration,
}

/// Scheduling result for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSlot {
    /// When the task actually starts executing.
    pub start: SimTime,
    /// When the task finishes (thread becomes free).
    pub end: SimTime,
    /// Time the task waited behind earlier tasks.
    pub queued_for: SimDuration,
}

impl Default for JsThread {
    fn default() -> Self {
        Self::new()
    }
}

impl JsThread {
    /// A fresh, idle thread.
    pub fn new() -> Self {
        JsThread {
            busy_until: SimTime::ZERO,
            total_busy: SimDuration::ZERO,
            tasks_run: 0,
            max_queue_delay: SimDuration::ZERO,
        }
    }

    /// Reserve the thread for a task arriving at `arrival` needing
    /// `service` CPU time. Returns when it will start and end.
    pub fn run_task(&mut self, arrival: SimTime, service: SimDuration) -> TaskSlot {
        let start = arrival.max(self.busy_until);
        let end = start + service;
        let queued_for = start.saturating_since(arrival);
        self.busy_until = end;
        self.total_busy += service;
        self.tasks_run += 1;
        self.max_queue_delay = self.max_queue_delay.max(queued_for);
        TaskSlot {
            start,
            end,
            queued_for,
        }
    }

    /// When the thread next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total CPU time consumed so far.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Number of tasks executed.
    pub fn tasks_run(&self) -> u64 {
        self.tasks_run
    }

    /// The worst queueing delay any task experienced.
    pub fn max_queue_delay(&self) -> SimDuration {
        self.max_queue_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_thread_starts_immediately() {
        let mut t = JsThread::new();
        let slot = t.run_task(SimTime::from_millis(5), SimDuration::from_millis(2));
        assert_eq!(slot.start, SimTime::from_millis(5));
        assert_eq!(slot.end, SimTime::from_millis(7));
        assert_eq!(slot.queued_for, SimDuration::ZERO);
    }

    #[test]
    fn overlapping_tasks_serialize() {
        let mut t = JsThread::new();
        t.run_task(SimTime::from_millis(0), SimDuration::from_millis(10));
        let slot = t.run_task(SimTime::from_millis(3), SimDuration::from_millis(4));
        assert_eq!(slot.start, SimTime::from_millis(10));
        assert_eq!(slot.end, SimTime::from_millis(14));
        assert_eq!(slot.queued_for, SimDuration::from_millis(7));
        assert_eq!(t.max_queue_delay(), SimDuration::from_millis(7));
    }

    #[test]
    fn gaps_leave_thread_idle() {
        let mut t = JsThread::new();
        t.run_task(SimTime::from_millis(0), SimDuration::from_millis(1));
        let slot = t.run_task(SimTime::from_millis(100), SimDuration::from_millis(1));
        assert_eq!(slot.start, SimTime::from_millis(100));
        assert_eq!(t.tasks_run(), 2);
        assert_eq!(t.total_busy(), SimDuration::from_millis(2));
    }

    #[test]
    fn burst_queueing_accumulates() {
        // Ten responses all arriving at once: the last one waits 9 service times.
        let mut t = JsThread::new();
        let arrival = SimTime::from_millis(50);
        let mut last = TaskSlot {
            start: arrival,
            end: arrival,
            queued_for: SimDuration::ZERO,
        };
        for _ in 0..10 {
            last = t.run_task(arrival, SimDuration::from_millis(5));
        }
        assert_eq!(last.queued_for, SimDuration::from_millis(45));
        assert_eq!(last.end, SimTime::from_millis(100));
    }
}
