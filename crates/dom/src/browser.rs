//! The browser: glue object owning the page, DOM event bus, webRequest bus,
//! JS thread, cookie jar and trace.
//!
//! The browser is *passive* with respect to the simulation driver: the
//! orchestration layer (hb-adtech) owns request dispatch and scheduling,
//! and calls into the browser to record what happened. Extensions (the
//! detector) attach through [`Browser::events`] and [`Browser::webrequest`],
//! exactly like a content script plus a webRequest listener.

use crate::event::EventBus;
use crate::event_loop::JsThread;
use crate::page::Page;
use crate::webrequest::WebRequestBus;
use hb_http::{CookieJar, Request, RequestId, Url};
use hb_simnet::{SimTime, Trace, TraceKind};

/// A simulated browser instance (one per page visit — the crawler uses a
/// clean slate for every site).
pub struct Browser {
    /// The page being visited.
    pub page: Page,
    /// DOM event target.
    pub events: EventBus,
    /// Network observation bus.
    pub webrequest: WebRequestBus,
    /// The single JS execution thread.
    pub js: JsThread,
    /// Session cookies (empty in clean-slate crawling).
    pub cookies: CookieJar,
    /// Diagnostic trace.
    pub trace: Trace,
    next_request_id: u64,
}

impl Browser {
    /// Open a fresh browser navigating to `url` at `now`.
    pub fn open(url: Url, now: SimTime) -> Browser {
        Browser {
            page: Page::navigate(url, now),
            events: EventBus::new(),
            webrequest: WebRequestBus::new(),
            js: JsThread::new(),
            cookies: CookieJar::new(),
            trace: Trace::new(4096),
            next_request_id: 1,
        }
    }

    /// Open with tracing disabled (large campaigns).
    pub fn open_untraced(url: Url, now: SimTime) -> Browser {
        let mut b = Browser::open(url, now);
        b.trace = Trace::disabled();
        b
    }

    /// Re-arm this browser for a fresh clean-slate visit, keeping the
    /// registered taps (detector observers) and all bus storage. The
    /// pooled crawl path calls this instead of building a new browser per
    /// visit; semantics are identical to a fresh [`Browser::open_untraced`]
    /// apart from the retained registrations.
    pub fn reset_for_visit(&mut self, url: Url, now: SimTime) {
        self.page = Page::navigate(url, now);
        self.events.reset_counters();
        self.webrequest.reset_counter();
        self.js = JsThread::new();
        self.cookies = CookieJar::new();
        self.trace.clear();
        self.next_request_id = 1;
    }

    /// Allocate the next request id.
    pub fn next_request_id(&mut self) -> RequestId {
        let id = RequestId(self.next_request_id);
        self.next_request_id += 1;
        id
    }

    /// Record an outgoing request (notifies webRequest observers). The
    /// trace detail is only rendered when tracing is enabled — campaigns
    /// run untraced and skip the formatting entirely.
    pub fn note_request_out(&mut self, req: &Request, now: SimTime) {
        if self.trace.is_enabled() {
            self.trace.push(
                now,
                TraceKind::RequestOut,
                format!("{} {}", req.method, req.url),
            );
        }
        self.webrequest
            .notify(&crate::webrequest::WebRequestEvent::Before { request: req, at: now });
    }

    /// Record a completed response (notifies webRequest observers).
    pub fn note_response_in(
        &mut self,
        req: &Request,
        rsp: &hb_http::Response,
        now: SimTime,
    ) {
        if self.trace.is_enabled() {
            self.trace.push(
                now,
                TraceKind::ResponseIn,
                format!("{} {} <- {}", rsp.status.0, req.url.host, req.url.path),
            );
        }
        self.webrequest
            .notify(&crate::webrequest::WebRequestEvent::Completed {
                request: req,
                response: rsp,
                at: now,
            });
    }

    /// Record a failed request (notifies webRequest observers).
    pub fn note_request_failed(
        &mut self,
        req: &Request,
        reason: crate::webrequest::FailureReason,
        now: SimTime,
    ) {
        if self.trace.is_enabled() {
            self.trace.push(
                now,
                TraceKind::Dropped,
                format!("{} {} ({reason:?})", req.method, req.url.host),
            );
        }
        self.webrequest
            .notify(&crate::webrequest::WebRequestEvent::Failed {
                request: req,
                reason,
                at: now,
            });
    }

    /// Fire a DOM event (notifies DOM listeners).
    pub fn fire_event(&mut self, now: SimTime, name: &str, payload: &hb_http::Json) {
        if self.trace.is_enabled() {
            self.trace.push(now, TraceKind::DomEvent, name);
        }
        self.events.emit(now, name, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_http::{Json, Response};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn browser() -> Browser {
        Browser::open(
            Url::parse("https://pub.example/").unwrap(),
            SimTime::ZERO,
        )
    }

    #[test]
    fn request_ids_are_sequential() {
        let mut b = browser();
        assert_eq!(b.next_request_id(), RequestId(1));
        assert_eq!(b.next_request_id(), RequestId(2));
    }

    #[test]
    fn request_notifications_reach_observers_and_trace() {
        let mut b = browser();
        let count = Rc::new(RefCell::new(0u32));
        let c2 = count.clone();
        b.webrequest.tap(move |_| *c2.borrow_mut() += 1);
        let id = b.next_request_id();
        let req = Request::get(id, Url::parse("https://dsp.example/bid").unwrap());
        b.note_request_out(&req, SimTime::from_millis(1));
        b.note_response_in(&req, &Response::no_content(id), SimTime::from_millis(9));
        assert_eq!(*count.borrow(), 2);
        assert_eq!(b.trace.len(), 2);
    }

    #[test]
    fn dom_events_traced() {
        let mut b = browser();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s2 = seen.clone();
        b.events.tap(move |e| s2.borrow_mut().push(e.name.to_string()));
        b.fire_event(SimTime::from_millis(2), "auctionInit", &Json::Null);
        assert_eq!(&*seen.borrow(), &["auctionInit".to_string()]);
        assert!(b.trace.dump().contains("auctionInit"));
    }

    #[test]
    fn untraced_browser_records_nothing() {
        let mut b = Browser::open_untraced(
            Url::parse("https://pub.example/").unwrap(),
            SimTime::ZERO,
        );
        b.fire_event(SimTime::ZERO, "x", &Json::Null);
        assert!(b.trace.is_empty());
    }

    #[test]
    fn clean_slate_cookies() {
        let b = browser();
        assert!(b.cookies.is_empty(), "crawler sessions start stateless");
    }
}
