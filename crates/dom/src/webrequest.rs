//! The webRequest observation bus.
//!
//! Chrome extensions observe network traffic through the `webRequest` API:
//! callbacks fire before a request leaves and when a response completes or
//! fails. [`WebRequestBus`] reproduces that read-only vantage point: the
//! browser notifies the bus, and observers (the detector) record what they
//! see without being able to alter traffic — matching the paper's note that
//! HBDetector inspects requests "without altering them".

use hb_http::{Request, RequestId, Response};
use hb_simnet::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Why a request failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureReason {
    /// The host could not be resolved.
    NoSuchHost,
    /// The request was dropped by the network (fault injection / outage).
    NetworkDropped,
    /// The page was torn down before the response arrived.
    Aborted,
}

/// A webRequest lifecycle notification.
///
/// Borrows the in-flight message instead of cloning it: observers get the
/// same read-only vantage point, and the browser no longer deep-copies
/// every request/response (URL, query multimap, JSON body) just to
/// announce it — that copy used to dominate the per-request cost.
#[derive(Clone, Debug, PartialEq)]
pub enum WebRequestEvent<'a> {
    /// A request is about to leave the browser.
    Before {
        /// The outgoing request.
        request: &'a Request,
        /// When it left.
        at: SimTime,
    },
    /// A response arrived.
    Completed {
        /// The original request.
        request: &'a Request,
        /// The response.
        response: &'a Response,
        /// When it arrived.
        at: SimTime,
    },
    /// The request will never complete.
    Failed {
        /// The original request.
        request: &'a Request,
        /// Why it failed.
        reason: FailureReason,
        /// When the failure was determined.
        at: SimTime,
    },
}

impl WebRequestEvent<'_> {
    /// The request id this notification concerns.
    pub fn request_id(&self) -> RequestId {
        match self {
            WebRequestEvent::Before { request, .. }
            | WebRequestEvent::Completed { request, .. }
            | WebRequestEvent::Failed { request, .. } => request.id,
        }
    }

    /// The timestamp of this notification.
    pub fn at(&self) -> SimTime {
        match self {
            WebRequestEvent::Before { at, .. }
            | WebRequestEvent::Completed { at, .. }
            | WebRequestEvent::Failed { at, .. } => *at,
        }
    }
}

/// An observer callback.
pub type WebRequestObserver = Rc<RefCell<dyn FnMut(&WebRequestEvent<'_>)>>;

/// Read-only network observation bus.
#[derive(Default)]
pub struct WebRequestBus {
    observers: Vec<WebRequestObserver>,
    notified: u64,
}

impl WebRequestBus {
    /// Create an empty bus.
    pub fn new() -> Self {
        WebRequestBus::default()
    }

    /// Register an observer.
    pub fn observe(&mut self, o: WebRequestObserver) {
        self.observers.push(o);
    }

    /// Convenience: register a closure observer.
    pub fn tap<F: FnMut(&WebRequestEvent<'_>) + 'static>(&mut self, f: F) {
        self.observe(Rc::new(RefCell::new(f)));
    }

    /// Reset the notification counter for a new visit (observers stay
    /// registered — the pooled-visit path reuses the bus).
    pub fn reset_counter(&mut self) {
        self.notified = 0;
    }

    /// Notify all observers.
    pub fn notify(&mut self, ev: &WebRequestEvent<'_>) {
        self.notified += 1;
        for o in &self.observers {
            (o.borrow_mut())(ev);
        }
    }

    /// Number of notifications delivered.
    pub fn notified_count(&self) -> u64 {
        self.notified
    }

    /// Number of registered observers.
    pub fn observer_count(&self) -> usize {
        self.observers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_http::{Method, Url};

    fn mk_request(id: u64) -> Request {
        Request::get(RequestId(id), Url::parse("https://x.example/a").unwrap())
    }

    #[test]
    fn observers_receive_all_phases() {
        let mut bus = WebRequestBus::new();
        let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let l2 = log.clone();
        bus.tap(move |ev| {
            let tag = match ev {
                WebRequestEvent::Before { .. } => "before",
                WebRequestEvent::Completed { .. } => "done",
                WebRequestEvent::Failed { .. } => "fail",
            };
            l2.borrow_mut().push(format!("{}:{}", tag, ev.request_id().0));
        });
        let req = mk_request(7);
        bus.notify(&WebRequestEvent::Before {
            request: &req,
            at: SimTime::ZERO,
        });
        let rsp = Response::no_content(req.id);
        bus.notify(&WebRequestEvent::Completed {
            request: &req,
            response: &rsp,
            at: SimTime::from_millis(10),
        });
        bus.notify(&WebRequestEvent::Failed {
            request: &req,
            reason: FailureReason::NetworkDropped,
            at: SimTime::from_millis(20),
        });
        assert_eq!(
            &*log.borrow(),
            &["before:7".to_string(), "done:7".to_string(), "fail:7".to_string()]
        );
        assert_eq!(bus.notified_count(), 3);
    }

    #[test]
    fn event_accessors() {
        let req = mk_request(3);
        assert_eq!(req.method, Method::Get);
        let ev = WebRequestEvent::Before {
            request: &req,
            at: SimTime::from_millis(4),
        };
        assert_eq!(ev.request_id(), RequestId(3));
        assert_eq!(ev.at(), SimTime::from_millis(4));
    }

    #[test]
    fn multiple_observers_all_notified() {
        let mut bus = WebRequestBus::new();
        let a = Rc::new(RefCell::new(0u32));
        let b = Rc::new(RefCell::new(0u32));
        let (a2, b2) = (a.clone(), b.clone());
        bus.tap(move |_| *a2.borrow_mut() += 1);
        bus.tap(move |_| *b2.borrow_mut() += 1);
        assert_eq!(bus.observer_count(), 2);
        let req = mk_request(1);
        bus.notify(&WebRequestEvent::Before {
            request: &req,
            at: SimTime::ZERO,
        });
        assert_eq!(*a.borrow(), 1);
        assert_eq!(*b.borrow(), 1);
    }
}
