//! Simplified HTML documents and a tiny tag scanner.
//!
//! Publisher pages in the simulation are real text documents containing
//! `<script>` tags and ad-slot `<div>`s. The browser "parses" them with the
//! scanner below, and the detector's *static analysis* path (used for the
//! Wayback adoption study, Figure 4) scans the same text for known HB
//! library signatures — complete with the false-positive/negative modes the
//! paper describes.

/// A `<script>` tag found in a document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScriptTag {
    /// `src` attribute (empty for inline scripts).
    pub src: String,
    /// Inline body (empty for external scripts).
    pub inline: String,
    /// Whether the tag appeared inside `<head>`.
    pub in_head: bool,
}

/// An ad-slot `<div>` found in a document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdSlotDiv {
    /// The `id` attribute.
    pub id: String,
}

/// A parsed-enough HTML document.
#[derive(Clone, Debug, Default)]
pub struct HtmlDoc {
    /// Original source text.
    pub source: String,
    /// Script tags in document order.
    pub scripts: Vec<ScriptTag>,
    /// Ad slot divs (divs whose id starts with `ad-slot`).
    pub ad_divs: Vec<AdSlotDiv>,
    /// Document title, if present.
    pub title: Option<String>,
}

impl HtmlDoc {
    /// Scan an HTML string.
    pub fn scan(source: &str) -> HtmlDoc {
        let mut doc = HtmlDoc {
            source: source.to_string(),
            ..HtmlDoc::default()
        };
        let head_end = find_ci(source, "</head>").unwrap_or(source.len());
        let mut pos = 0;
        while let Some(rel) = find_ci(&source[pos..], "<script") {
            let start = pos + rel;
            let tag_end = match source[start..].find('>') {
                Some(e) => start + e + 1,
                None => break,
            };
            let tag = &source[start..tag_end];
            let src = attr_value(tag, "src").unwrap_or_default();
            // Inline body runs until </script>.
            let (inline, next) = match find_ci(&source[tag_end..], "</script>") {
                Some(close) => (
                    source[tag_end..tag_end + close].trim().to_string(),
                    tag_end + close + "</script>".len(),
                ),
                None => (String::new(), tag_end),
            };
            doc.scripts.push(ScriptTag {
                src,
                inline,
                in_head: start < head_end,
            });
            pos = next;
        }
        // Ad slot divs.
        let mut dpos = 0;
        while let Some(rel) = find_ci(&source[dpos..], "<div") {
            let start = dpos + rel;
            let tag_end = match source[start..].find('>') {
                Some(e) => start + e + 1,
                None => break,
            };
            let tag = &source[start..tag_end];
            if let Some(id) = attr_value(tag, "id") {
                if id.starts_with("ad-slot") {
                    doc.ad_divs.push(AdSlotDiv { id });
                }
            }
            dpos = tag_end;
        }
        // Title.
        if let Some(t0) = find_ci(source, "<title>") {
            if let Some(t1) = find_ci(&source[t0..], "</title>") {
                doc.title = Some(source[t0 + 7..t0 + t1].trim().to_string());
            }
        }
        doc
    }

    /// All external script URLs, in order.
    pub fn script_srcs(&self) -> impl Iterator<Item = &str> {
        self.scripts
            .iter()
            .filter(|s| !s.src.is_empty())
            .map(|s| s.src.as_str())
    }

    /// Scripts located in the `<head>` (where HB wrappers live).
    pub fn head_scripts(&self) -> impl Iterator<Item = &ScriptTag> {
        self.scripts.iter().filter(|s| s.in_head)
    }

    /// Case-insensitive source search (used by static analysis).
    pub fn source_contains_ci(&self, needle: &str) -> bool {
        find_ci(&self.source, needle).is_some()
    }
}

/// Case-insensitive substring search returning the byte offset.
pub fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    if needle.is_empty() {
        return Some(0);
    }
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    if n.len() > h.len() {
        return None;
    }
    'outer: for i in 0..=(h.len() - n.len()) {
        for j in 0..n.len() {
            if !h[i + j].eq_ignore_ascii_case(&n[j]) {
                continue 'outer;
            }
        }
        return Some(i);
    }
    None
}

/// Extract a double- or single-quoted attribute value from a tag string.
fn attr_value(tag: &str, name: &str) -> Option<String> {
    let pat = format!("{name}=");
    let idx = find_ci(tag, &pat)?;
    let rest = &tag[idx + pat.len()..];
    let mut chars = rest.chars();
    match chars.next() {
        Some(q @ ('"' | '\'')) => {
            let body: String = chars.take_while(|&c| c != q).collect();
            Some(body)
        }
        Some(_) => {
            // Unquoted attribute: read until whitespace or '>'.
            let body: String = rest
                .chars()
                .take_while(|&c| !c.is_whitespace() && c != '>')
                .collect();
            Some(body)
        }
        None => None,
    }
}

/// Builder producing publisher page HTML.
#[derive(Debug, Default)]
pub struct HtmlBuilder {
    title: String,
    head_scripts: Vec<String>,
    head_inline: Vec<String>,
    body_scripts: Vec<String>,
    ad_slot_ids: Vec<String>,
}

impl HtmlBuilder {
    /// Start a page with a title.
    pub fn new(title: impl Into<String>) -> Self {
        HtmlBuilder {
            title: title.into(),
            ..HtmlBuilder::default()
        }
    }

    /// Add an external script to the `<head>`.
    pub fn head_script(mut self, src: impl Into<String>) -> Self {
        self.head_scripts.push(src.into());
        self
    }

    /// Add an inline script to the `<head>`.
    pub fn head_inline(mut self, body: impl Into<String>) -> Self {
        self.head_inline.push(body.into());
        self
    }

    /// Add an external script to the `<body>`.
    pub fn body_script(mut self, src: impl Into<String>) -> Self {
        self.body_scripts.push(src.into());
        self
    }

    /// Add an ad-slot div with the given id suffix.
    pub fn ad_slot(mut self, id: impl Into<String>) -> Self {
        self.ad_slot_ids.push(id.into());
        self
    }

    /// Render the document (streamed into one buffer; no per-line
    /// temporary strings or `fmt` machinery — pages are re-rendered on
    /// the crawl hot path).
    pub fn build(self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("<!DOCTYPE html>\n<html>\n<head>\n");
        out.push_str("<title>");
        out.push_str(&self.title);
        out.push_str("</title>\n");
        for s in &self.head_scripts {
            out.push_str("<script src=\"");
            out.push_str(s);
            out.push_str("\"></script>\n");
        }
        for body in &self.head_inline {
            out.push_str("<script>");
            out.push_str(body);
            out.push_str("</script>\n");
        }
        out.push_str("</head>\n<body>\n");
        for id in &self.ad_slot_ids {
            out.push_str("<div id=\"");
            out.push_str(id);
            out.push_str("\" class=\"ad-unit\"></div>\n");
        }
        for s in &self.body_scripts {
            out.push_str("<script src=\"");
            out.push_str(s);
            out.push_str("\"></script>\n");
        }
        out.push_str("</body>\n</html>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_scanner_roundtrip() {
        let html = HtmlBuilder::new("news site")
            .head_script("https://cdn.prebid.org/prebid.js")
            .head_inline("var pbjs = pbjs || {};")
            .ad_slot("ad-slot-1")
            .ad_slot("ad-slot-2")
            .body_script("https://static.example/app.js")
            .build();
        let doc = HtmlDoc::scan(&html);
        assert_eq!(doc.title.as_deref(), Some("news site"));
        assert_eq!(doc.scripts.len(), 3);
        assert_eq!(doc.ad_divs.len(), 2);
        let srcs: Vec<&str> = doc.script_srcs().collect();
        assert_eq!(
            srcs,
            vec![
                "https://cdn.prebid.org/prebid.js",
                "https://static.example/app.js"
            ]
        );
        assert_eq!(doc.head_scripts().count(), 2);
    }

    #[test]
    fn inline_bodies_are_captured() {
        let doc = HtmlDoc::scan("<head><script>pbjs.requestBids();</script></head>");
        assert_eq!(doc.scripts.len(), 1);
        assert_eq!(doc.scripts[0].inline, "pbjs.requestBids();");
        assert!(doc.scripts[0].in_head);
    }

    #[test]
    fn body_scripts_not_marked_head() {
        let doc =
            HtmlDoc::scan("<head></head><body><script src=\"x.js\"></script></body>");
        assert_eq!(doc.scripts.len(), 1);
        assert!(!doc.scripts[0].in_head);
    }

    #[test]
    fn non_ad_divs_ignored() {
        let doc = HtmlDoc::scan(
            "<div id=\"nav\"></div><div id=\"ad-slot-xyz\"></div><div class=\"x\"></div>",
        );
        assert_eq!(doc.ad_divs.len(), 1);
        assert_eq!(doc.ad_divs[0].id, "ad-slot-xyz");
    }

    #[test]
    fn case_insensitive_scanning() {
        let doc = HtmlDoc::scan("<SCRIPT SRC=\"https://a/B.JS\"></SCRIPT>");
        assert_eq!(doc.scripts.len(), 1);
        assert_eq!(doc.scripts[0].src, "https://a/B.JS");
        assert!(doc.source_contains_ci("b.js"));
    }

    #[test]
    fn unquoted_attr_and_malformed_tolerated() {
        // The truncated trailing tag (no '>') is dropped rather than panicking.
        let doc = HtmlDoc::scan("<script src=https://a/x.js></script><script src=");
        assert_eq!(doc.scripts.len(), 1);
        assert_eq!(doc.scripts[0].src, "https://a/x.js");
    }

    #[test]
    fn find_ci_edges() {
        assert_eq!(find_ci("abc", ""), Some(0));
        assert_eq!(find_ci("abc", "ABCD"), None);
        assert_eq!(find_ci("xAbCy", "abc"), Some(1));
    }
}
