//! Page lifecycle and timing.
//!
//! Tracks the navigation timeline the crawler and detector care about:
//! navigation start, header parsed (when HB wrappers begin), DOM content
//! loaded, full load, and ad render milestones. The crawler's "wait for
//! full load + 5 s settle, abort at 60 s" policy reads these marks.

use hb_http::Url;
use hb_simnet::{SimDuration, SimTime};

/// Page lifecycle states, in order.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum PageState {
    /// Navigation issued, HTML not yet received.
    Navigating,
    /// HTML received; header scripts executing.
    HeaderParsing,
    /// DOM constructed; subresources may still be loading.
    DomReady,
    /// Load event fired.
    Loaded,
    /// Page was torn down (timeout or crawler moved on).
    Closed,
}

/// The page and its timing marks.
#[derive(Clone, Debug)]
pub struct Page {
    /// The page URL.
    pub url: Url,
    /// Current lifecycle state.
    pub state: PageState,
    /// Navigation start.
    pub nav_start: SimTime,
    /// When the HTML header had been parsed (HB start point).
    pub header_parsed: Option<SimTime>,
    /// When the DOM was ready.
    pub dom_ready: Option<SimTime>,
    /// When the load event fired.
    pub loaded: Option<SimTime>,
    /// When the first ad finished rendering.
    pub first_ad_rendered: Option<SimTime>,
    /// When the last ad finished rendering.
    pub last_ad_rendered: Option<SimTime>,
    /// Number of ads rendered.
    pub ads_rendered: u32,
    /// Number of ads that failed to render.
    pub ads_failed: u32,
}

impl Page {
    /// Begin navigating to `url` at time `now`.
    pub fn navigate(url: Url, now: SimTime) -> Page {
        Page {
            url,
            state: PageState::Navigating,
            nav_start: now,
            header_parsed: None,
            dom_ready: None,
            loaded: None,
            first_ad_rendered: None,
            last_ad_rendered: None,
            ads_rendered: 0,
            ads_failed: 0,
        }
    }

    /// Mark the header as parsed.
    pub fn mark_header_parsed(&mut self, now: SimTime) {
        debug_assert!(self.state <= PageState::HeaderParsing);
        self.state = PageState::HeaderParsing;
        self.header_parsed.get_or_insert(now);
    }

    /// Mark DOM ready.
    pub fn mark_dom_ready(&mut self, now: SimTime) {
        if self.state < PageState::DomReady {
            self.state = PageState::DomReady;
        }
        self.dom_ready.get_or_insert(now);
    }

    /// Mark the load event.
    pub fn mark_loaded(&mut self, now: SimTime) {
        if self.state < PageState::Loaded {
            self.state = PageState::Loaded;
        }
        self.loaded.get_or_insert(now);
    }

    /// Record an ad render completion.
    pub fn mark_ad_rendered(&mut self, now: SimTime) {
        self.ads_rendered += 1;
        self.first_ad_rendered.get_or_insert(now);
        self.last_ad_rendered = Some(now);
    }

    /// Record an ad render failure.
    pub fn mark_ad_failed(&mut self) {
        self.ads_failed += 1;
    }

    /// Tear the page down.
    pub fn close(&mut self) {
        self.state = PageState::Closed;
    }

    /// Page load time, when the load event fired.
    pub fn page_load_time(&self) -> Option<SimDuration> {
        self.loaded.map(|t| t.saturating_since(self.nav_start))
    }

    /// Time from navigation to first rendered ad.
    pub fn time_to_first_ad(&self) -> Option<SimDuration> {
        self.first_ad_rendered
            .map(|t| t.saturating_since(self.nav_start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Page {
        Page::navigate(
            Url::parse("https://pub1.example/index.html").unwrap(),
            SimTime::from_millis(100),
        )
    }

    #[test]
    fn lifecycle_progression() {
        let mut p = page();
        assert_eq!(p.state, PageState::Navigating);
        p.mark_header_parsed(SimTime::from_millis(150));
        assert_eq!(p.state, PageState::HeaderParsing);
        p.mark_dom_ready(SimTime::from_millis(300));
        p.mark_loaded(SimTime::from_millis(900));
        assert_eq!(p.state, PageState::Loaded);
        assert_eq!(p.page_load_time(), Some(SimDuration::from_millis(800)));
    }

    #[test]
    fn first_timestamps_are_sticky() {
        let mut p = page();
        p.mark_header_parsed(SimTime::from_millis(150));
        p.mark_header_parsed(SimTime::from_millis(250));
        assert_eq!(p.header_parsed, Some(SimTime::from_millis(150)));
    }

    #[test]
    fn ad_render_tracking() {
        let mut p = page();
        p.mark_ad_rendered(SimTime::from_millis(500));
        p.mark_ad_rendered(SimTime::from_millis(700));
        p.mark_ad_failed();
        assert_eq!(p.ads_rendered, 2);
        assert_eq!(p.ads_failed, 1);
        assert_eq!(p.time_to_first_ad(), Some(SimDuration::from_millis(400)));
        assert_eq!(p.last_ad_rendered, Some(SimTime::from_millis(700)));
    }

    #[test]
    fn close_is_terminal() {
        let mut p = page();
        p.close();
        assert_eq!(p.state, PageState::Closed);
        assert_eq!(p.page_load_time(), None);
    }
}
