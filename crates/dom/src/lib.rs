//! # hb-dom
//!
//! Browser substrate for the header bidding reproduction: the DOM event
//! target, a tiny HTML scanner, the single-threaded JS event loop model,
//! page lifecycle timing, the `webRequest` observation bus, and the
//! [`Browser`] glue object.
//!
//! The crate is deliberately *passive*: it records and notifies, while the
//! ad-tech orchestration layer (hb-adtech) drives the simulation. Extension
//! tooling (the detector in hb-core) attaches via [`EventBus`] and
//! [`WebRequestBus`], reproducing the Chrome extension vantage point of the
//! paper's HBDetector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod browser;
pub mod event;
pub mod event_loop;
pub mod html;
pub mod page;
pub mod webrequest;

pub use browser::Browser;
pub use event::{DomEvent, EventBus, Listener};
pub use event_loop::{JsThread, TaskSlot};
pub use html::{find_ci, AdSlotDiv, HtmlBuilder, HtmlDoc, ScriptTag};
pub use page::{Page, PageState};
pub use webrequest::{FailureReason, WebRequestBus, WebRequestEvent, WebRequestObserver};
