//! DOM events and the event bus.
//!
//! HB wrapper libraries signal auction progress by firing DOM-level events
//! (`auctionInit`, `bidResponse`, `bidWon`, …). The paper's detector taps
//! these events via `addEventListener`; here, [`EventBus`] plays the role of
//! the DOM event target and observers play the role of content-script
//! listeners. Observers are passive (they cannot reschedule simulation
//! work), which mirrors the extension's read-only vantage point.

use hb_http::{HStr, Json};
use hb_simnet::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// A DOM event as seen by a listener.
///
/// Borrows the name and payload from the emitter: listeners copy what they
/// need (the detector extracts a handful of fields), and firing an event
/// costs no allocation beyond the payload the library built anyway.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DomEvent<'a> {
    /// Event name (e.g. `auctionEnd`).
    pub name: &'a str,
    /// Structured payload attached by the emitting library.
    pub payload: &'a Json,
    /// When the event fired.
    pub at: SimTime,
}

/// A listener callback. Wrapped in `Rc<RefCell<…>>` so external tools (the
/// detector) can keep a handle to their own accumulated state.
pub type Listener = Rc<RefCell<dyn FnMut(&DomEvent<'_>)>>;

/// The DOM event target for a page.
#[derive(Default)]
pub struct EventBus {
    /// Listeners for specific event names: `(name, listener)`.
    named: Vec<(String, Listener)>,
    /// Listeners receiving every event (the detector's tap).
    wildcard: Vec<Listener>,
    /// Count of events emitted, by name, for diagnostics. Names are
    /// `HStr` (event names fit inline), so counting a fresh name on the
    /// pooled-visit hot path does not allocate.
    emitted: Vec<(HStr, u64)>,
}

impl EventBus {
    /// Create an empty bus.
    pub fn new() -> Self {
        EventBus::default()
    }

    /// Register a listener for a specific event name.
    pub fn add_listener(&mut self, name: impl Into<String>, l: Listener) {
        self.named.push((name.into(), l));
    }

    /// Register a listener receiving **all** events.
    pub fn add_wildcard_listener(&mut self, l: Listener) {
        self.wildcard.push(l);
    }

    /// Convenience: register a closure as a wildcard listener.
    pub fn tap<F: FnMut(&DomEvent<'_>) + 'static>(&mut self, f: F) {
        self.add_wildcard_listener(Rc::new(RefCell::new(f)));
    }

    /// Clear the per-visit emission counters (listeners stay registered —
    /// the pooled-visit path reuses the bus).
    pub fn reset_counters(&mut self) {
        self.emitted.clear();
    }

    /// Fire an event to all matching listeners.
    pub fn emit(&mut self, at: SimTime, name: &str, payload: &Json) {
        let ev = DomEvent { name, payload, at };
        match self.emitted.iter_mut().find(|(n, _)| n == name) {
            Some((_, c)) => *c += 1,
            None => self.emitted.push((HStr::new(name), 1)),
        }
        for (n, l) in &self.named {
            if n == name {
                (l.borrow_mut())(&ev);
            }
        }
        for l in &self.wildcard {
            (l.borrow_mut())(&ev);
        }
    }

    /// Total events emitted with `name`.
    pub fn emitted_count(&self, name: &str) -> u64 {
        self.emitted
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Total events emitted overall.
    pub fn total_emitted(&self) -> u64 {
        self.emitted.iter().map(|(_, c)| *c).sum()
    }

    /// Number of registered listeners (named + wildcard).
    pub fn listener_count(&self) -> usize {
        self.named.len() + self.wildcard.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_listener_receives_only_its_event() {
        let mut bus = EventBus::new();
        let seen: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        bus.add_listener(
            "auctionEnd",
            Rc::new(RefCell::new(move |e: &DomEvent| {
                seen2.borrow_mut().push(e.name.to_string());
            })),
        );
        bus.emit(SimTime::ZERO, "auctionInit", &Json::Null);
        bus.emit(SimTime::ZERO, "auctionEnd", &Json::Null);
        assert_eq!(&*seen.borrow(), &["auctionEnd".to_string()]);
    }

    #[test]
    fn wildcard_sees_everything() {
        let mut bus = EventBus::new();
        let count = Rc::new(RefCell::new(0u32));
        let c2 = count.clone();
        bus.tap(move |_| *c2.borrow_mut() += 1);
        bus.emit(SimTime::ZERO, "a", &Json::Null);
        bus.emit(SimTime::ZERO, "b", &Json::Null);
        bus.emit(SimTime::ZERO, "c", &Json::Null);
        assert_eq!(*count.borrow(), 3);
        assert_eq!(bus.total_emitted(), 3);
    }

    #[test]
    fn payload_and_time_delivered() {
        let mut bus = EventBus::new();
        let got: Rc<RefCell<Option<(String, Json, SimTime)>>> = Rc::new(RefCell::new(None));
        let g2 = got.clone();
        bus.tap(move |e| {
            *g2.borrow_mut() = Some((e.name.to_string(), e.payload.clone(), e.at))
        });
        let payload = Json::obj([("cpm", Json::num(0.4))]);
        bus.emit(SimTime::from_millis(33), "bidResponse", &payload);
        let (name, got_payload, at) = got.borrow().clone().unwrap();
        assert_eq!(at, SimTime::from_millis(33));
        assert_eq!(got_payload, payload);
        assert_eq!(name, "bidResponse");
    }

    #[test]
    fn emitted_counters() {
        let mut bus = EventBus::new();
        bus.emit(SimTime::ZERO, "x", &Json::Null);
        bus.emit(SimTime::ZERO, "x", &Json::Null);
        bus.emit(SimTime::ZERO, "y", &Json::Null);
        assert_eq!(bus.emitted_count("x"), 2);
        assert_eq!(bus.emitted_count("y"), 1);
        assert_eq!(bus.emitted_count("z"), 0);
    }

    #[test]
    fn listener_count_tracks_registration() {
        let mut bus = EventBus::new();
        assert_eq!(bus.listener_count(), 0);
        bus.tap(|_| {});
        bus.add_listener("e", Rc::new(RefCell::new(|_: &DomEvent<'_>| {})));
        assert_eq!(bus.listener_count(), 2);
    }
}
