//! Model-checking the slab-backed [`EventQueue`] against a naive
//! reference implementation.
//!
//! The reference model keeps every pending event in a `Vec` and re-sorts
//! on demand — obviously correct, hopelessly slow. Random interleavings
//! of `schedule` / `cancel` / `pop` must observe identical behaviour on
//! both: the same pop order (including `(time, seq)` tie-breaks), the
//! same cancel outcomes (true iff the event is still pending), and the
//! same live-event counts. This pins the determinism contract the figure
//! pipeline relies on while the production queue plays slab/free-list
//! tricks underneath.

use hb_simnet::{EventQueue, SimTime};
use proptest::prelude::*;

/// One step of a random interleaving.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Schedule a payload at the given time (millis).
    Schedule(u64),
    /// Cancel the n-th id ever issued (may already be spent).
    Cancel(usize),
    /// Pop the next live event.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..50).prop_map(Op::Schedule),
        (0usize..64).prop_map(Op::Cancel),
        Just(Op::Pop),
    ]
}

/// The naive reference: pending events in insertion order, popped by a
/// full scan for the `(time, seq)` minimum.
#[derive(Default)]
struct NaiveQueue {
    pending: Vec<(SimTime, u64, u64)>, // (at, seq, payload)
    next_seq: u64,
}

impl NaiveQueue {
    fn schedule(&mut self, at: SimTime, payload: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push((at, seq, payload));
        seq
    }

    /// Cancel by issue order; true iff the event was still pending.
    fn cancel(&mut self, seq: u64) -> bool {
        match self.pending.iter().position(|(_, s, _)| *s == seq) {
            Some(i) => {
                self.pending.remove(i);
                true
            }
            None => false,
        }
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        let i = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, (at, seq, _))| (*at, *seq))
            .map(|(i, _)| i)?;
        let (at, _, payload) = self.pending.remove(i);
        Some((at, payload))
    }
}

proptest! {
    /// Slab queue ≡ naive model over random schedule/cancel/pop
    /// interleavings, in one continuous session.
    #[test]
    fn slab_queue_matches_naive_model(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        let mut slab: EventQueue<u64> = EventQueue::new();
        let mut naive = NaiveQueue::default();
        let mut slab_ids = Vec::new();
        let mut naive_seqs = Vec::new();
        let mut payload = 0u64;

        for op in ops {
            match op {
                Op::Schedule(ms) => {
                    payload += 1;
                    let at = SimTime::from_millis(ms);
                    slab_ids.push(slab.schedule(at, payload));
                    naive_seqs.push(naive.schedule(at, payload));
                }
                Op::Cancel(nth) => {
                    // Cancel the nth id ever issued — possibly already
                    // popped, cancelled, or never issued at all.
                    let slab_hit = slab_ids.get(nth).map(|id| slab.cancel(*id));
                    let naive_hit = naive_seqs.get(nth).map(|seq| naive.cancel(*seq));
                    prop_assert_eq!(slab_hit, naive_hit);
                }
                Op::Pop => {
                    let got = slab.pop().map(|(at, _, p)| (at, p));
                    prop_assert_eq!(got, naive.pop());
                }
            }
            prop_assert_eq!(slab.len(), naive.pending.len());
            prop_assert_eq!(slab.is_empty(), naive.pending.is_empty());
        }

        // Drain both: the full remaining pop order must agree.
        loop {
            let got = slab.pop().map(|(at, _, p)| (at, p));
            let want = naive.pop();
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }

    /// Clearing mid-session resets the queue to fresh-queue behaviour
    /// (sequence tie-breaks restart), matching a brand-new naive model.
    #[test]
    fn cleared_queue_matches_fresh_model(
        before in proptest::collection::vec((0u64..20, Just(())), 0..16),
        after in proptest::collection::vec(0u64..20, 0..16),
    ) {
        let mut slab: EventQueue<u64> = EventQueue::new();
        let mut old_ids = Vec::new();
        for (i, (ms, _)) in before.iter().enumerate() {
            old_ids.push(slab.schedule(SimTime::from_millis(*ms), i as u64));
        }
        // Pop half, keep the rest pending, then clear.
        for _ in 0..before.len() / 2 {
            slab.pop();
        }
        slab.clear();

        let mut naive = NaiveQueue::default();
        for (i, ms) in after.iter().enumerate() {
            let p = 1000 + i as u64;
            slab.schedule(SimTime::from_millis(*ms), p);
            naive.schedule(SimTime::from_millis(*ms), p);
        }
        // Every pre-clear id — popped, pending-at-clear, whatever — is
        // stale: cancelling it must not touch the post-clear events.
        for id in old_ids {
            prop_assert!(!slab.cancel(id));
        }
        prop_assert_eq!(slab.len(), naive.pending.len());
        loop {
            let got = slab.pop().map(|(at, _, p)| (at, p));
            let want = naive.pop();
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}
