//! Property-based tests for the simulation engine invariants.

use hb_simnet::{Dist, EventQueue, Rng, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Popping the queue always yields non-decreasing timestamps.
    #[test]
    fn queue_pops_monotonically(times in proptest::collection::vec(0u64..10_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(*t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0usize;
        while let Some((t, _, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Equal-time events preserve insertion order (FIFO among ties).
    #[test]
    fn queue_ties_are_fifo(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_millis(7), i);
        }
        let mut expected = 0usize;
        while let Some((_, _, p)) = q.pop() {
            prop_assert_eq!(p, expected);
            expected += 1;
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn queue_cancellation_exact(
        times in proptest::collection::vec(0u64..1_000_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (i, q.schedule(SimTime::from_micros(*t), i)))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in &ids {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                prop_assert!(q.cancel(*id));
            } else {
                kept.push(*i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, _, p)) = q.pop() {
            popped.push(p);
        }
        popped.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(popped, kept);
    }

    /// Rng streams are reproducible: same seed, same sequence.
    #[test]
    fn rng_reproducible(seed in any::<u64>()) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Derivation is independent of how much parent state was consumed.
    #[test]
    fn rng_derive_position_independent(seed in any::<u64>(), burn in 0usize..64, label in any::<u64>()) {
        let fresh = Rng::new(seed);
        let mut consumed = Rng::new(seed);
        for _ in 0..burn {
            consumed.next_u64();
        }
        let mut d1 = fresh.derive(label);
        let mut d2 = consumed.derive(label);
        for _ in 0..8 {
            prop_assert_eq!(d1.next_u64(), d2.next_u64());
        }
    }

    /// below(n) is always < n.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut r = Rng::new(seed);
        for _ in 0..16 {
            prop_assert!(r.below(n) < n);
        }
    }

    /// Clamped distributions always respect their bounds.
    #[test]
    fn dist_clamp_respected(seed in any::<u64>(), lo in -100.0f64..0.0, width in 0.0f64..100.0) {
        let hi = lo + width;
        let d = Dist::Normal { mean: 0.0, std_dev: 50.0 }.clamped(lo, hi);
        let mut r = Rng::new(seed);
        for _ in 0..64 {
            let x = d.sample(&mut r);
            prop_assert!(x >= lo && x <= hi, "{x} outside [{lo}, {hi}]");
        }
    }

    /// Zipf samples stay within [1, n].
    #[test]
    fn zipf_in_range(seed in any::<u64>(), n in 1u64..5_000, s in 0.2f64..3.0) {
        let mut r = Rng::new(seed);
        for _ in 0..32 {
            let k = r.zipf(n, s);
            prop_assert!((1..=n).contains(&k));
        }
    }

    /// SimTime/SimDuration arithmetic round-trips.
    #[test]
    fn time_arithmetic_roundtrip(t in 0u64..1 << 40, d in 0u64..1 << 40) {
        let time = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((time + dur) - dur, time);
        prop_assert_eq!((time + dur) - time, dur);
        prop_assert_eq!((time + dur).saturating_since(time), dur);
    }

    /// Sampled indices are distinct and within bounds.
    #[test]
    fn sample_indices_invariant(seed in any::<u64>(), n in 0usize..200, k in 0usize..250) {
        let mut r = Rng::new(seed);
        let s = r.sample_indices(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        prop_assert_eq!(d.len(), s.len());
        prop_assert!(s.iter().all(|&i| i < n));
    }
}
