//! A fast, deterministic hasher for simulation-internal maps.
//!
//! The workspace's hot maps (string interner, request tracker, host
//! directory, router) are keyed by values the simulation itself
//! generates, so SipHash's DoS resistance buys nothing — but its per-key
//! setup and byte-at-a-time mixing cost real time on paths hit dozens of
//! times per visit. [`FxHasher`] implements the rustc-hash ("Fx") word-
//! at-a-time multiply-rotate scheme: ~5x faster on the short strings and
//! integer ids these maps use, and fully deterministic across runs and
//! platforms of the same pointer width.
//!
//! Determinism note: none of the maps using this hasher iterate in hash
//! order for any output the figures consume — ordering always comes from
//! explicit `Vec`s — so swapping hashers cannot change observable
//! behaviour, only speed.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Firefox/rustc Fx hash.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-hash style hasher (word-at-a-time multiply-rotate).
#[derive(Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `std::collections::HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `std::collections::HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |s: &str| {
            let mut h = FxHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(hash("appnexus-adnet.example"), hash("appnexus-adnet.example"));
        assert_ne!(hash("a"), hash("b"));
        // Length must matter even when padded bytes collide.
        assert_ne!(hash("ab"), hash("ab\0"));
    }

    #[test]
    fn map_works_with_string_and_int_keys() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("hb_bidder".into(), 1);
        m.insert("hb_pb".into(), 2);
        assert_eq!(m.get("hb_bidder"), Some(&1));
        let mut ids: FxHashMap<u64, &str> = FxHashMap::default();
        ids.insert(7, "x");
        assert_eq!(ids.get(&7), Some(&"x"));
    }
}
