//! Compact strings for the HTTP hot path.
//!
//! Nearly every string flowing through the simulated HTTP layer is short:
//! hostnames (`pub1234.example`), parameter keys (`hb_bidder`), bidder
//! codes, slot codes, size strings, auction ids. Storing them as owned
//! `String`s makes every `Url` construction and every JSON payload a
//! chain of small heap allocations — the dominant cost of a simulated
//! visit once the detector itself is allocation-free.
//!
//! The type lives in `hb-simnet` (the workspace root crate) so that the
//! engine's own host-keyed structures — most importantly
//! [`FaultInjector`](crate::FaultInjector) outage sets — can share the
//! compact representation; `hb-http` re-exports it unchanged.
//!
//! [`HStr`] replaces `String` in those positions with a three-way
//! representation, all 24 bytes (the size of a `String`):
//!
//! * `Static` — a `&'static str` (parameter keys, paths, labels): zero
//!   allocation, zero copy;
//! * `Inline` — up to 22 bytes stored in place: zero allocation (covers
//!   hostnames, codes, auction ids, size strings);
//! * `Shared` — an `Arc<str>` for the long tail: one allocation on first
//!   creation, two atomic ops per clone afterwards.
//!
//! Equality, ordering and hashing delegate to the underlying `str`, so an
//! `HStr` behaves exactly like its text regardless of representation —
//! sorted containers keyed by `HStr` (e.g. `hb-http`'s sorted-vec
//! `JsonObj`) iterate in the same order as their `String`-keyed
//! equivalents, which is what keeps figure output byte-identical.

use std::borrow::{Borrow, Cow};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Maximum byte length stored inline.
pub const INLINE_CAP: usize = 22;

/// A compact immutable string: static, inline, or shared.
#[derive(Clone)]
pub struct HStr(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static str),
    Inline { len: u8, buf: [u8; INLINE_CAP] },
    Shared(Arc<str>),
}

impl HStr {
    /// The empty string (no allocation).
    pub const EMPTY: HStr = HStr(Repr::Static(""));

    /// Wrap a `&'static str` without copying.
    pub const fn from_static(s: &'static str) -> HStr {
        HStr(Repr::Static(s))
    }

    /// Copy an arbitrary string, storing it inline when it fits.
    pub fn new(s: &str) -> HStr {
        if s.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            HStr(Repr::Inline {
                len: s.len() as u8,
                buf,
            })
        } else {
            HStr(Repr::Shared(Arc::from(s)))
        }
    }

    /// Build from a `Display` value through a stack buffer: short renders
    /// (auction ids, creative ids, prices) never touch the heap.
    pub fn from_display(value: impl fmt::Display) -> HStr {
        struct StackWriter {
            buf: [u8; 64],
            len: usize,
            spill: Option<String>,
        }
        impl fmt::Write for StackWriter {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                if let Some(sp) = &mut self.spill {
                    sp.push_str(s);
                    return Ok(());
                }
                if self.len + s.len() <= self.buf.len() {
                    self.buf[self.len..self.len + s.len()].copy_from_slice(s.as_bytes());
                    self.len += s.len();
                } else {
                    let mut sp = String::with_capacity(self.len + s.len());
                    // Safety not needed: the buffer only ever holds bytes
                    // copied from valid `&str` fragments at char breaks.
                    sp.push_str(std::str::from_utf8(&self.buf[..self.len]).unwrap_or(""));
                    sp.push_str(s);
                    self.spill = Some(sp);
                }
                Ok(())
            }
        }
        let mut w = StackWriter {
            buf: [0u8; 64],
            len: 0,
            spill: None,
        };
        use fmt::Write as _;
        let _ = write!(w, "{value}");
        match w.spill {
            Some(s) => HStr::from(s),
            None => HStr::new(std::str::from_utf8(&w.buf[..w.len]).unwrap_or("")),
        }
    }

    /// View as `&str`.
    #[inline]
    pub fn as_str(&self) -> &str {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Inline { len, buf } => {
                let bytes = &buf[..*len as usize];
                debug_assert!(std::str::from_utf8(bytes).is_ok());
                // SAFETY: `Repr::Inline` is only ever constructed in
                // [`HStr::new`], which copies exactly `len` bytes from a
                // valid `&str`; the buffer is never mutated afterwards, so
                // `bytes` is always valid UTF-8. Skipping re-validation
                // here keeps `as_str` O(1) on the detector hot path.
                #[allow(unsafe_code)]
                unsafe {
                    std::str::from_utf8_unchecked(bytes)
                }
            }
            Repr::Shared(s) => s,
        }
    }

    /// Byte length.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_str().len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_str().is_empty()
    }
}

/// Lower-case an ASCII-ish component without allocating when it already
/// is lower-case (hostnames, schemes, header names — the common case).
pub fn lower_ascii(s: &str) -> HStr {
    if s.bytes().any(|b| b.is_ascii_uppercase()) {
        HStr::from(s.to_ascii_lowercase())
    } else {
        HStr::new(s)
    }
}

impl HStr {
    /// Lower-case in the by-value form: an already-lowercase string is
    /// returned *as the same handle* — no copy, no fresh `Arc` for long
    /// shared strings — so registering an interned hostname under a
    /// lowercased key is a true handle clone.
    pub fn into_lower_ascii(self) -> HStr {
        if self.bytes().any(|b| b.is_ascii_uppercase()) {
            HStr::from(self.as_str().to_ascii_lowercase())
        } else {
            self
        }
    }
}

impl Default for HStr {
    fn default() -> HStr {
        HStr::EMPTY
    }
}

impl Deref for HStr {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for HStr {
    #[inline]
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for HStr {
    #[inline]
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for HStr {
    #[inline]
    fn from(s: &str) -> HStr {
        HStr::new(s)
    }
}

impl From<String> for HStr {
    fn from(s: String) -> HStr {
        if s.len() <= INLINE_CAP {
            HStr::new(&s)
        } else {
            HStr(Repr::Shared(Arc::from(s)))
        }
    }
}

impl From<&String> for HStr {
    fn from(s: &String) -> HStr {
        HStr::new(s)
    }
}

impl From<Cow<'_, str>> for HStr {
    fn from(s: Cow<'_, str>) -> HStr {
        match s {
            Cow::Borrowed(b) => HStr::new(b),
            Cow::Owned(o) => HStr::from(o),
        }
    }
}

impl From<HStr> for String {
    fn from(s: HStr) -> String {
        s.as_str().to_string()
    }
}

impl PartialEq for HStr {
    #[inline]
    fn eq(&self, other: &HStr) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for HStr {}

impl PartialEq<str> for HStr {
    #[inline]
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for HStr {
    #[inline]
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<HStr> for str {
    #[inline]
    fn eq(&self, other: &HStr) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<HStr> for &str {
    #[inline]
    fn eq(&self, other: &HStr) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<String> for HStr {
    #[inline]
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<HStr> for String {
    #[inline]
    fn eq(&self, other: &HStr) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialOrd for HStr {
    #[inline]
    fn partial_cmp(&self, other: &HStr) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HStr {
    #[inline]
    fn cmp(&self, other: &HStr) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl Hash for HStr {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl fmt::Display for HStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for HStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representations_compare_equal_by_content() {
        let a = HStr::from_static("hb_bidder");
        let b = HStr::new("hb_bidder");
        assert_eq!(a, b);
        assert_eq!(a, "hb_bidder");
        assert_eq!("hb_bidder", b);
        let long = "x".repeat(40);
        let c = HStr::new(&long);
        assert_eq!(c.as_str(), long);
        assert_eq!(c, HStr::from(long.clone()));
    }

    #[test]
    fn inline_boundary() {
        let at = "a".repeat(INLINE_CAP);
        let over = "a".repeat(INLINE_CAP + 1);
        assert_eq!(HStr::new(&at).as_str(), at);
        assert_eq!(HStr::new(&over).as_str(), over);
    }

    #[test]
    fn ordering_matches_str() {
        let mut v = [HStr::new("b"), HStr::from_static("a"), HStr::new("c")];
        v.sort();
        let texts: Vec<&str> = v.iter().map(|s| s.as_str()).collect();
        assert_eq!(texts, vec!["a", "b", "c"]);
    }

    #[test]
    fn from_display_stays_on_stack_for_short_values() {
        let s = HStr::from_display(format_args!("auc-{}-{}", 1_000_000, 999_999_999));
        assert_eq!(s, "auc-1000000-999999999");
        let long = HStr::from_display(format_args!("{}", "y".repeat(100)));
        assert_eq!(long.len(), 100);
    }

    #[test]
    fn same_size_as_string() {
        assert_eq!(
            std::mem::size_of::<HStr>(),
            std::mem::size_of::<String>()
        );
    }

    #[test]
    fn map_lookup_by_str_key() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<HStr, u32> = BTreeMap::new();
        m.insert(HStr::from_static("hb_pb"), 1);
        m.insert(HStr::new("channel"), 2);
        assert_eq!(m.get("hb_pb"), Some(&1));
        assert_eq!(m.get("channel"), Some(&2));
        assert_eq!(m.get("missing"), None);
    }
}
