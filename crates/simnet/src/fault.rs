//! Fault injection for the simulated network.
//!
//! Mirrors the knobs real network test harnesses expose: random request
//! drops (server never answers), random slowdowns (an extra latency penalty),
//! and hard outages of specific endpoints. All decisions are drawn from the
//! caller's RNG so runs stay reproducible.
//!
//! Two levels of ambient policy compose:
//!
//! * the injector-wide `drop_chance`/`slow_chance` apply to every host;
//! * a per-host [`HostFaultProfile`] overrides them for specific endpoints
//!   (how a campaign scenario gives one partner *tier* a worse loss
//!   profile than the rest of the network).
//!
//! Hosts are keyed by [`HStr`], so outage registration and the per-request
//! `decide` lookup are allocation-free: short hostnames stay inline and
//! the set/map are queried straight from the request's `&str` host.

use crate::dist::Dist;
use crate::hash::{FxHashMap, FxHashSet};
use crate::hstr::HStr;
use crate::rng::Rng;
use crate::time::SimDuration;

/// What the fault injector decided for one request.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Deliver, but add this much extra latency.
    Slow(SimDuration),
    /// Drop: the response never arrives.
    Drop,
}

/// Ambient fault overrides for one host (one partner tier's loss profile).
#[derive(Clone, Debug)]
pub struct HostFaultProfile {
    /// Probability a request to this host is silently dropped.
    pub drop_chance: f64,
    /// Probability a request to this host is slowed.
    pub slow_chance: f64,
    /// Extra latency distribution for slowed requests (milliseconds).
    pub slow_penalty_ms: Dist,
}

/// Configurable fault injection policy.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    /// Probability a request is silently dropped.
    pub drop_chance: f64,
    /// Probability a request is slowed.
    pub slow_chance: f64,
    /// Extra latency distribution for slowed requests (milliseconds).
    pub slow_penalty_ms: Dist,
    /// Hosts that are hard-down: every request to them is dropped.
    outages: FxHashSet<HStr>,
    /// Per-host ambient overrides (take precedence over the injector-wide
    /// chances, but never over an outage).
    host_profiles: FxHashMap<HStr, HostFaultProfile>,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::none()
    }
}

impl FaultInjector {
    /// No faults at all.
    pub fn none() -> Self {
        FaultInjector {
            drop_chance: 0.0,
            slow_chance: 0.0,
            slow_penalty_ms: Dist::Const(0.0),
            outages: FxHashSet::default(),
            host_profiles: FxHashMap::default(),
        }
    }

    /// A light ambient-loss profile: occasional drops and slowdowns, the
    /// kind of background noise a real crawl sees.
    pub fn ambient() -> Self {
        FaultInjector {
            drop_chance: 0.01,
            slow_chance: 0.05,
            slow_penalty_ms: Dist::log_normal_median(400.0, 0.8).clamped(50.0, 15_000.0),
            outages: FxHashSet::default(),
            host_profiles: FxHashMap::default(),
        }
    }

    /// Builder: set the drop probability.
    pub fn with_drop_chance(mut self, p: f64) -> Self {
        self.drop_chance = p;
        self
    }

    /// Builder: set the slowdown probability and penalty distribution.
    pub fn with_slowdown(mut self, p: f64, penalty_ms: Dist) -> Self {
        self.slow_chance = p;
        self.slow_penalty_ms = penalty_ms;
        self
    }

    /// Builder: mark a host as hard-down.
    pub fn with_outage(mut self, host: impl Into<HStr>) -> Self {
        self.add_outage(host);
        self
    }

    /// Mark a host as hard-down. Passing an [`HStr`] handle (or any
    /// hostname short enough to stay inline) performs no allocation.
    pub fn add_outage(&mut self, host: impl Into<HStr>) {
        self.outages.insert(host.into());
    }

    /// Clear an outage.
    pub fn clear_outage(&mut self, host: &str) -> bool {
        self.outages.remove(host)
    }

    /// Is this host currently in outage?
    pub fn is_down(&self, host: &str) -> bool {
        self.outages.contains(host)
    }

    /// True when no outage is registered.
    pub fn outage_free(&self) -> bool {
        self.outages.is_empty()
    }

    /// Builder: override the ambient profile for one host.
    pub fn with_host_profile(mut self, host: impl Into<HStr>, profile: HostFaultProfile) -> Self {
        self.set_host_profile(host, profile);
        self
    }

    /// Override the ambient profile for one host.
    pub fn set_host_profile(&mut self, host: impl Into<HStr>, profile: HostFaultProfile) {
        self.host_profiles.insert(host.into(), profile);
    }

    /// The ambient override for a host, if any.
    pub fn host_profile(&self, host: &str) -> Option<&HostFaultProfile> {
        self.host_profiles.get(host)
    }

    /// Decide the fate of a request to `host`. Allocation-free: the host
    /// is looked up as a borrowed `str` against the interned keys.
    pub fn decide(&self, host: &str, rng: &mut Rng) -> FaultDecision {
        if !self.outages.is_empty() && self.outages.contains(host) {
            return FaultDecision::Drop;
        }
        if !self.host_profiles.is_empty() {
            if let Some(p) = self.host_profiles.get(host) {
                if rng.chance(p.drop_chance) {
                    return FaultDecision::Drop;
                }
                if rng.chance(p.slow_chance) {
                    return FaultDecision::Slow(p.slow_penalty_ms.sample_ms(rng));
                }
                return FaultDecision::Deliver;
            }
        }
        if rng.chance(self.drop_chance) {
            return FaultDecision::Drop;
        }
        if rng.chance(self.slow_chance) {
            return FaultDecision::Slow(self.slow_penalty_ms.sample_ms(rng));
        }
        FaultDecision::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_always_delivers() {
        let inj = FaultInjector::none();
        let mut rng = Rng::new(1);
        for _ in 0..1_000 {
            assert_eq!(inj.decide("x.com", &mut rng), FaultDecision::Deliver);
        }
    }

    #[test]
    fn outage_always_drops() {
        let mut inj = FaultInjector::none();
        inj.add_outage("down.example");
        let mut rng = Rng::new(2);
        assert!(inj.is_down("down.example"));
        assert_eq!(inj.decide("down.example", &mut rng), FaultDecision::Drop);
        assert_eq!(inj.decide("up.example", &mut rng), FaultDecision::Deliver);
        assert!(inj.clear_outage("down.example"));
        assert!(!inj.clear_outage("down.example"));
        assert_eq!(inj.decide("down.example", &mut rng), FaultDecision::Deliver);
    }

    #[test]
    fn outage_accepts_hstr_handles() {
        let host = HStr::from_static("partner-adnet.example");
        let inj = FaultInjector::none().with_outage(host.clone());
        assert!(inj.is_down(&host));
        assert!(!inj.outage_free());
        assert!(FaultInjector::none().outage_free());
    }

    #[test]
    fn drop_rate_statistics() {
        let inj = FaultInjector {
            drop_chance: 0.25,
            ..FaultInjector::none()
        };
        let mut rng = Rng::new(3);
        let n = 20_000;
        let drops = (0..n)
            .filter(|_| inj.decide("h", &mut rng) == FaultDecision::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn slow_adds_positive_penalty() {
        let inj = FaultInjector {
            slow_chance: 1.0,
            slow_penalty_ms: Dist::Const(120.0),
            ..FaultInjector::none()
        };
        let mut rng = Rng::new(4);
        match inj.decide("h", &mut rng) {
            FaultDecision::Slow(d) => assert_eq!(d, SimDuration::from_millis(120)),
            other => panic!("expected Slow, got {other:?}"),
        }
    }

    #[test]
    fn host_profile_overrides_ambient() {
        // Injector-wide: never drops. The overridden host: always drops.
        let inj = FaultInjector::none().with_host_profile(
            "lossy.example",
            HostFaultProfile {
                drop_chance: 1.0,
                slow_chance: 0.0,
                slow_penalty_ms: Dist::Const(0.0),
            },
        );
        let mut rng = Rng::new(5);
        assert_eq!(inj.decide("lossy.example", &mut rng), FaultDecision::Drop);
        assert_eq!(inj.decide("clean.example", &mut rng), FaultDecision::Deliver);
        assert!(inj.host_profile("lossy.example").is_some());
        assert!(inj.host_profile("clean.example").is_none());
    }

    #[test]
    fn host_profile_slowdown_uses_its_own_penalty() {
        let inj = FaultInjector::none()
            .with_slowdown(1.0, Dist::Const(50.0))
            .with_host_profile(
                "slow.example",
                HostFaultProfile {
                    drop_chance: 0.0,
                    slow_chance: 1.0,
                    slow_penalty_ms: Dist::Const(900.0),
                },
            );
        let mut rng = Rng::new(6);
        match inj.decide("slow.example", &mut rng) {
            FaultDecision::Slow(d) => assert_eq!(d, SimDuration::from_millis(900)),
            other => panic!("expected Slow, got {other:?}"),
        }
        match inj.decide("other.example", &mut rng) {
            FaultDecision::Slow(d) => assert_eq!(d, SimDuration::from_millis(50)),
            other => panic!("expected Slow, got {other:?}"),
        }
    }

    #[test]
    fn outage_beats_host_profile() {
        let inj = FaultInjector::none()
            .with_host_profile(
                "h.example",
                HostFaultProfile {
                    drop_chance: 0.0,
                    slow_chance: 0.0,
                    slow_penalty_ms: Dist::Const(0.0),
                },
            )
            .with_outage("h.example");
        let mut rng = Rng::new(7);
        assert_eq!(inj.decide("h.example", &mut rng), FaultDecision::Drop);
    }
}
