//! Fault injection for the simulated network.
//!
//! Mirrors the knobs real network test harnesses expose: random request
//! drops (server never answers), random slowdowns (an extra latency penalty),
//! and hard outages of specific endpoints. All decisions are drawn from the
//! caller's RNG so runs stay reproducible.

use crate::dist::Dist;
use crate::rng::Rng;
use crate::time::SimDuration;
use std::collections::HashSet;

/// What the fault injector decided for one request.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Deliver, but add this much extra latency.
    Slow(SimDuration),
    /// Drop: the response never arrives.
    Drop,
}

/// Configurable fault injection policy.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    /// Probability a request is silently dropped.
    pub drop_chance: f64,
    /// Probability a request is slowed.
    pub slow_chance: f64,
    /// Extra latency distribution for slowed requests (milliseconds).
    pub slow_penalty_ms: Dist,
    /// Hosts that are hard-down: every request to them is dropped.
    outages: HashSet<String>,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::none()
    }
}

impl FaultInjector {
    /// No faults at all.
    pub fn none() -> Self {
        FaultInjector {
            drop_chance: 0.0,
            slow_chance: 0.0,
            slow_penalty_ms: Dist::Const(0.0),
            outages: HashSet::new(),
        }
    }

    /// A light ambient-loss profile: occasional drops and slowdowns, the
    /// kind of background noise a real crawl sees.
    pub fn ambient() -> Self {
        FaultInjector {
            drop_chance: 0.01,
            slow_chance: 0.05,
            slow_penalty_ms: Dist::log_normal_median(400.0, 0.8).clamped(50.0, 15_000.0),
            outages: HashSet::new(),
        }
    }

    /// Builder: set the drop probability.
    pub fn with_drop_chance(mut self, p: f64) -> Self {
        self.drop_chance = p;
        self
    }

    /// Builder: set the slowdown probability and penalty distribution.
    pub fn with_slowdown(mut self, p: f64, penalty_ms: Dist) -> Self {
        self.slow_chance = p;
        self.slow_penalty_ms = penalty_ms;
        self
    }

    /// Mark a host as hard-down.
    pub fn add_outage(&mut self, host: impl Into<String>) {
        self.outages.insert(host.into());
    }

    /// Clear an outage.
    pub fn clear_outage(&mut self, host: &str) -> bool {
        self.outages.remove(host)
    }

    /// Is this host currently in outage?
    pub fn is_down(&self, host: &str) -> bool {
        self.outages.contains(host)
    }

    /// Decide the fate of a request to `host`.
    pub fn decide(&self, host: &str, rng: &mut Rng) -> FaultDecision {
        if self.outages.contains(host) {
            return FaultDecision::Drop;
        }
        if rng.chance(self.drop_chance) {
            return FaultDecision::Drop;
        }
        if rng.chance(self.slow_chance) {
            return FaultDecision::Slow(self.slow_penalty_ms.sample_ms(rng));
        }
        FaultDecision::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_always_delivers() {
        let inj = FaultInjector::none();
        let mut rng = Rng::new(1);
        for _ in 0..1_000 {
            assert_eq!(inj.decide("x.com", &mut rng), FaultDecision::Deliver);
        }
    }

    #[test]
    fn outage_always_drops() {
        let mut inj = FaultInjector::none();
        inj.add_outage("down.example");
        let mut rng = Rng::new(2);
        assert!(inj.is_down("down.example"));
        assert_eq!(inj.decide("down.example", &mut rng), FaultDecision::Drop);
        assert_eq!(inj.decide("up.example", &mut rng), FaultDecision::Deliver);
        assert!(inj.clear_outage("down.example"));
        assert!(!inj.clear_outage("down.example"));
        assert_eq!(inj.decide("down.example", &mut rng), FaultDecision::Deliver);
    }

    #[test]
    fn drop_rate_statistics() {
        let inj = FaultInjector {
            drop_chance: 0.25,
            ..FaultInjector::none()
        };
        let mut rng = Rng::new(3);
        let n = 20_000;
        let drops = (0..n)
            .filter(|_| inj.decide("h", &mut rng) == FaultDecision::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn slow_adds_positive_penalty() {
        let inj = FaultInjector {
            slow_chance: 1.0,
            slow_penalty_ms: Dist::Const(120.0),
            ..FaultInjector::none()
        };
        let mut rng = Rng::new(4);
        match inj.decide("h", &mut rng) {
            FaultDecision::Slow(d) => assert_eq!(d, SimDuration::from_millis(120)),
            other => panic!("expected Slow, got {other:?}"),
        }
    }
}
