//! The simulator: a clock plus the future-event list, executing boxed
//! closures against a user-supplied world state.
//!
//! The design follows the event-driven style of embedded TCP/IP stacks:
//! a single-threaded loop, no hidden global state, and explicit time. The
//! world type `W` is owned by the caller and handed to every callback, so
//! callbacks can freely schedule further events through the [`Scheduler`]
//! handle they receive.

use crate::event::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// A scheduled callback: receives the world and a scheduler handle.
pub type Callback<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

/// Handle exposed to callbacks for scheduling more work.
///
/// Separating the handle from [`Simulation`] lets callbacks mutate the event
/// queue while the simulation loop holds the world mutably.
pub struct Scheduler<W> {
    now: SimTime,
    queue: EventQueue<Callback<W>>,
    executed: u64,
}

impl<W> Scheduler<W> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            executed: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of callbacks executed so far.
    #[inline]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule a callback at an absolute time. Times in the past are
    /// clamped to "now" (they run next, in insertion order).
    pub fn at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        let at = at.max(self.now);
        self.queue.schedule(at, Box::new(f))
    }

    /// Schedule a callback after a relative delay.
    pub fn after<F>(&mut self, delay: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        let at = self.now.saturating_add(delay);
        self.queue.schedule(at, Box::new(f))
    }

    /// Cancel a pending event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }
}

/// A deterministic discrete-event simulation over a world `W`.
pub struct Simulation<W> {
    world: W,
    sched: Scheduler<W>,
}

/// Why [`Simulation::run_until`] returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The event queue drained before the deadline.
    Idle,
    /// The deadline was reached with events still pending.
    Deadline,
    /// The event budget was exhausted (runaway protection).
    EventBudget,
}

impl<W> Simulation<W> {
    /// Create a simulation owning `world`, with the clock at zero.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// The scheduler handle (for seeding initial events).
    pub fn scheduler(&mut self) -> &mut Scheduler<W> {
        &mut self.sched
    }

    /// Execute a single event if one is pending. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        match self.sched.queue.pop() {
            Some((at, _, cb)) => {
                debug_assert!(at >= self.sched.now, "time went backwards");
                self.sched.now = at;
                self.sched.executed += 1;
                cb(&mut self.world, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains, `deadline` passes, or `max_events`
    /// callbacks have executed. The clock never advances past `deadline`.
    pub fn run_until(&mut self, deadline: SimTime, max_events: u64) -> StopReason {
        let mut budget = max_events;
        loop {
            if budget == 0 {
                return StopReason::EventBudget;
            }
            match self.sched.queue.peek_time() {
                None => return StopReason::Idle,
                Some(t) if t > deadline => {
                    self.sched.now = deadline;
                    return StopReason::Deadline;
                }
                Some(_) => {
                    self.step();
                    budget -= 1;
                }
            }
        }
    }

    /// Run to quiescence with an event budget (default deadline: forever).
    pub fn run_to_idle(&mut self, max_events: u64) -> StopReason {
        self.run_until(SimTime::MAX, max_events)
    }

    /// Consume the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_run_in_order_and_advance_clock() {
        let mut sim = Simulation::new(World::default());
        sim.scheduler().after(SimDuration::from_millis(20), |w: &mut World, s| {
            w.log.push((s.now().as_micros(), "b"));
        });
        sim.scheduler().after(SimDuration::from_millis(10), |w: &mut World, s| {
            w.log.push((s.now().as_micros(), "a"));
        });
        let reason = sim.run_to_idle(100);
        assert_eq!(reason, StopReason::Idle);
        assert_eq!(
            sim.world().log,
            vec![(10_000, "a"), (20_000, "b")]
        );
        assert_eq!(sim.now(), SimTime::from_millis(20));
    }

    #[test]
    fn callbacks_can_chain() {
        let mut sim = Simulation::new(World::default());
        sim.scheduler().after(SimDuration::from_millis(1), |_, s| {
            s.after(SimDuration::from_millis(2), |w: &mut World, s| {
                w.log.push((s.now().as_micros(), "chained"));
            });
        });
        sim.run_to_idle(10);
        assert_eq!(sim.world().log, vec![(3_000, "chained")]);
    }

    #[test]
    fn deadline_stops_and_clamps_clock() {
        let mut sim = Simulation::new(World::default());
        sim.scheduler().after(SimDuration::from_secs(10), |w: &mut World, _| {
            w.log.push((0, "too late"));
        });
        let reason = sim.run_until(SimTime::from_secs(1), 100);
        assert_eq!(reason, StopReason::Deadline);
        assert!(sim.world().log.is_empty());
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn event_budget_guards_runaway() {
        struct Loopy;
        fn respawn(_: &mut Loopy, s: &mut Scheduler<Loopy>) {
            s.after(SimDuration::from_micros(1), respawn);
        }
        let mut sim = Simulation::new(Loopy);
        sim.scheduler().after(SimDuration::ZERO, respawn);
        let reason = sim.run_to_idle(1_000);
        assert_eq!(reason, StopReason::EventBudget);
    }

    #[test]
    fn cancellation_prevents_execution() {
        let mut sim = Simulation::new(World::default());
        let id = sim
            .scheduler()
            .after(SimDuration::from_millis(5), |w: &mut World, _| {
                w.log.push((0, "cancelled"));
            });
        sim.scheduler().cancel(id);
        sim.run_to_idle(10);
        assert!(sim.world().log.is_empty());
    }

    #[test]
    fn past_times_clamp_to_now() {
        let mut sim = Simulation::new(World::default());
        sim.scheduler().after(SimDuration::from_millis(10), |_, s| {
            // Scheduling "at zero" from t=10ms must not rewind the clock.
            s.at(SimTime::ZERO, |w: &mut World, s| {
                w.log.push((s.now().as_micros(), "late"));
            });
        });
        sim.run_to_idle(10);
        assert_eq!(sim.world().log, vec![(10_000, "late")]);
    }
}
