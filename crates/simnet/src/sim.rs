//! The simulator: a clock plus the future-event list, executing boxed
//! closures against a user-supplied world state.
//!
//! The design follows the event-driven style of embedded TCP/IP stacks:
//! a single-threaded loop, no hidden global state, and explicit time. The
//! world type `W` is owned by the caller and handed to every callback, so
//! callbacks can freely schedule further events through the [`Scheduler`]
//! handle they receive.
//!
//! ## Callback recycling
//!
//! Scheduling boxes the callback, and on a visit-simulation hot path that
//! box used to be an allocation per `schedule` call. The scheduler now
//! recycles callback boxes through a **type-keyed box pool**
//! ([`CbPool`]): each pool class holds spent boxes of one concrete
//! closure type, so a recycled box always matches the layout of the
//! closure it is asked to hold next — exact-fit size classes without any
//! `unsafe`. A steady-state simulation (same call sites firing visit
//! after visit) reaches a fixed point where `at`/`after` never touch the
//! allocator. Captured state is dropped the moment a callback fires or is
//! cancelled; only the empty box is pooled.
//!
//! ## Pooled lifecycle
//!
//! [`Simulation::reset`] (swap in a new world) and
//! [`Simulation::reset_in_place`] (re-arm the existing world) return the
//! simulation to the state of a fresh [`Simulation::new`] while keeping
//! every piece of backing storage: the event slab, the POD heap, and the
//! callback pool. One pooled simulation per worker replaces the
//! construct-per-visit pattern.

use crate::event::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};
use std::any::{Any, TypeId};

/// A scheduled callback as the queue stores it: a reusable box holding a
/// concrete closure (see module docs on recycling).
pub type Callback<W> = Box<dyn QueuedCb<W>>;

/// One pooled callback cell: the closure, taken out when fired.
struct CbCell<F> {
    f: Option<F>,
}

/// Object-safe face of a boxed, poolable callback. Implemented for every
/// [`CbCell`] closure type; not meant to be implemented outside this
/// module (construct callbacks through [`Scheduler::at`] /
/// [`Scheduler::after`]).
pub trait QueuedCb<W> {
    /// Run the callback (at most once; later calls are no-ops).
    fn invoke(&mut self, w: &mut W, s: &mut Scheduler<W>);
    /// The concrete cell type, keying the pool class.
    fn cell_type_id(&self) -> TypeId;
    /// Drop any captured state and surrender the empty box for pooling.
    fn into_empty_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<W, F> QueuedCb<W> for CbCell<F>
where
    F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
{
    fn invoke(&mut self, w: &mut W, s: &mut Scheduler<W>) {
        if let Some(f) = self.f.take() {
            f(w, s);
        }
    }

    fn cell_type_id(&self) -> TypeId {
        TypeId::of::<CbCell<F>>()
    }

    fn into_empty_any(mut self: Box<Self>) -> Box<dyn Any> {
        self.f = None;
        self
    }
}

/// Most closure types a simulation schedules (bounded by its call sites).
const POOL_MAX_CLASSES: usize = 64;
/// Most spent boxes kept per closure type.
const POOL_CLASS_CAP: usize = 32;

/// Type-keyed pool of spent callback boxes. A linear scan over the class
/// list suffices: a simulation has a small, fixed set of scheduling call
/// sites, hence a small set of closure types.
#[derive(Default)]
struct CbPool {
    classes: Vec<(TypeId, Vec<Box<dyn Any>>)>,
}

impl CbPool {
    /// Position of `tid`'s class, promoting it one step toward the front
    /// so a visit's hot call sites settle at the head of the scan.
    fn class_pos(&mut self, tid: TypeId) -> Option<usize> {
        let i = self.classes.iter().position(|(t, _)| *t == tid)?;
        if i > 0 {
            self.classes.swap(i, i - 1);
            Some(i - 1)
        } else {
            Some(i)
        }
    }

    /// Take a spent box able to hold a closure of type `F`.
    fn take<F: 'static>(&mut self) -> Option<Box<CbCell<F>>> {
        let i = self.class_pos(TypeId::of::<CbCell<F>>())?;
        let b = self.classes[i].1.pop()?;
        Some(b.downcast::<CbCell<F>>().expect("pool class holds its own type"))
    }

    /// Return a spent box to its class (bounded; overflow goes back to
    /// the allocator).
    fn put(&mut self, tid: TypeId, b: Box<dyn Any>) {
        match self.class_pos(tid) {
            Some(i) => {
                let boxes = &mut self.classes[i].1;
                if boxes.len() < POOL_CLASS_CAP {
                    boxes.push(b);
                }
            }
            None => {
                if self.classes.len() < POOL_MAX_CLASSES {
                    self.classes.push((tid, vec![b]));
                }
            }
        }
    }

    /// Number of boxes currently pooled (diagnostics).
    fn len(&self) -> usize {
        self.classes.iter().map(|(_, b)| b.len()).sum()
    }
}

/// Handle exposed to callbacks for scheduling more work.
///
/// Separating the handle from [`Simulation`] lets callbacks mutate the event
/// queue while the simulation loop holds the world mutably.
pub struct Scheduler<W> {
    now: SimTime,
    queue: EventQueue<Callback<W>>,
    executed: u64,
    pool: CbPool,
}

impl<W> Scheduler<W> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            executed: 0,
            pool: CbPool::default(),
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of callbacks executed so far.
    #[inline]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of callback boxes waiting in the recycling pool
    /// (diagnostics for the pooled-visit tests).
    pub fn pooled_callbacks(&self) -> usize {
        self.pool.len()
    }

    /// Box `f`, reusing a pooled box of the same closure type when one is
    /// available.
    fn make_cb<F>(&mut self, f: F) -> Callback<W>
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        match self.pool.take::<F>() {
            Some(mut cell) => {
                cell.f = Some(f);
                cell
            }
            None => Box::new(CbCell { f: Some(f) }),
        }
    }

    /// Recycle a spent callback box.
    fn recycle(&mut self, cb: Callback<W>) {
        let tid = cb.cell_type_id();
        self.pool.put(tid, cb.into_empty_any());
    }

    /// Schedule a callback at an absolute time. Times in the past are
    /// clamped to "now" (they run next, in insertion order).
    pub fn at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        let at = at.max(self.now);
        let cb = self.make_cb(f);
        self.queue.schedule(at, cb)
    }

    /// Schedule a callback after a relative delay.
    pub fn after<F>(&mut self, delay: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    {
        let at = self.now.saturating_add(delay);
        let cb = self.make_cb(f);
        self.queue.schedule(at, cb)
    }

    /// Cancel a pending event. Its captured state is dropped immediately;
    /// the callback box returns to the pool.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.queue.cancel_take(id) {
            Some(cb) => {
                self.recycle(cb);
                true
            }
            None => false,
        }
    }

    /// Return to the fresh-scheduler state (clock at zero, queue empty)
    /// while keeping the event slab, heap, and callback pool storage.
    fn reset(&mut self) {
        self.now = SimTime::ZERO;
        self.executed = 0;
        let Scheduler { queue, pool, .. } = self;
        queue.clear_with(|cb| {
            let tid = cb.cell_type_id();
            pool.put(tid, cb.into_empty_any());
        });
    }
}

/// A deterministic discrete-event simulation over a world `W`.
pub struct Simulation<W> {
    world: W,
    sched: Scheduler<W>,
}

/// Why [`Simulation::run_until`] returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The event queue drained before the deadline.
    Idle,
    /// The deadline was reached with events still pending.
    Deadline,
    /// The event budget was exhausted (runaway protection).
    EventBudget,
}

impl<W> Simulation<W> {
    /// Create a simulation owning `world`, with the clock at zero.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// The scheduler handle (for seeding initial events).
    pub fn scheduler(&mut self) -> &mut Scheduler<W> {
        &mut self.sched
    }

    /// Re-arm this simulation for a fresh run over `world`, returning the
    /// previous world. Pending events are dropped (their boxes recycled),
    /// the clock returns to zero, and all queue/pool storage is kept —
    /// behaviourally identical to `Simulation::new(world)`, minus the
    /// allocations.
    pub fn reset(&mut self, world: W) -> W {
        self.sched.reset();
        std::mem::replace(&mut self.world, world)
    }

    /// Like [`Simulation::reset`], but keeps the current world and hands
    /// it back mutably for in-place re-arming — the pooled crawl path
    /// resets the browser/flow state it already owns instead of building
    /// a new world each visit.
    pub fn reset_in_place(&mut self) -> &mut W {
        self.sched.reset();
        &mut self.world
    }

    /// Execute a single event if one is pending. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        match self.sched.queue.pop() {
            Some((at, _, mut cb)) => {
                debug_assert!(at >= self.sched.now, "time went backwards");
                self.sched.now = at;
                self.sched.executed += 1;
                cb.invoke(&mut self.world, &mut self.sched);
                self.sched.recycle(cb);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains, `deadline` passes, or `max_events`
    /// callbacks have executed. The clock never advances past `deadline`.
    pub fn run_until(&mut self, deadline: SimTime, max_events: u64) -> StopReason {
        let mut budget = max_events;
        loop {
            if budget == 0 {
                return StopReason::EventBudget;
            }
            match self.sched.queue.peek_time() {
                None => return StopReason::Idle,
                Some(t) if t > deadline => {
                    self.sched.now = deadline;
                    return StopReason::Deadline;
                }
                Some(_) => {
                    self.step();
                    budget -= 1;
                }
            }
        }
    }

    /// Run to quiescence with an event budget (default deadline: forever).
    pub fn run_to_idle(&mut self, max_events: u64) -> StopReason {
        self.run_until(SimTime::MAX, max_events)
    }

    /// Consume the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_run_in_order_and_advance_clock() {
        let mut sim = Simulation::new(World::default());
        sim.scheduler().after(SimDuration::from_millis(20), |w: &mut World, s| {
            w.log.push((s.now().as_micros(), "b"));
        });
        sim.scheduler().after(SimDuration::from_millis(10), |w: &mut World, s| {
            w.log.push((s.now().as_micros(), "a"));
        });
        let reason = sim.run_to_idle(100);
        assert_eq!(reason, StopReason::Idle);
        assert_eq!(
            sim.world().log,
            vec![(10_000, "a"), (20_000, "b")]
        );
        assert_eq!(sim.now(), SimTime::from_millis(20));
    }

    #[test]
    fn callbacks_can_chain() {
        let mut sim = Simulation::new(World::default());
        sim.scheduler().after(SimDuration::from_millis(1), |_, s| {
            s.after(SimDuration::from_millis(2), |w: &mut World, s| {
                w.log.push((s.now().as_micros(), "chained"));
            });
        });
        sim.run_to_idle(10);
        assert_eq!(sim.world().log, vec![(3_000, "chained")]);
    }

    #[test]
    fn deadline_stops_and_clamps_clock() {
        let mut sim = Simulation::new(World::default());
        sim.scheduler().after(SimDuration::from_secs(10), |w: &mut World, _| {
            w.log.push((0, "too late"));
        });
        let reason = sim.run_until(SimTime::from_secs(1), 100);
        assert_eq!(reason, StopReason::Deadline);
        assert!(sim.world().log.is_empty());
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn event_budget_guards_runaway() {
        struct Loopy;
        fn respawn(_: &mut Loopy, s: &mut Scheduler<Loopy>) {
            s.after(SimDuration::from_micros(1), respawn);
        }
        let mut sim = Simulation::new(Loopy);
        sim.scheduler().after(SimDuration::ZERO, respawn);
        let reason = sim.run_to_idle(1_000);
        assert_eq!(reason, StopReason::EventBudget);
    }

    #[test]
    fn cancellation_prevents_execution() {
        let mut sim = Simulation::new(World::default());
        let id = sim
            .scheduler()
            .after(SimDuration::from_millis(5), |w: &mut World, _| {
                w.log.push((0, "cancelled"));
            });
        sim.scheduler().cancel(id);
        sim.run_to_idle(10);
        assert!(sim.world().log.is_empty());
    }

    #[test]
    fn past_times_clamp_to_now() {
        let mut sim = Simulation::new(World::default());
        sim.scheduler().after(SimDuration::from_millis(10), |_, s| {
            // Scheduling "at zero" from t=10ms must not rewind the clock.
            s.at(SimTime::ZERO, |w: &mut World, s| {
                w.log.push((s.now().as_micros(), "late"));
            });
        });
        sim.run_to_idle(10);
        assert_eq!(sim.world().log, vec![(10_000, "late")]);
    }

    #[test]
    fn spent_callback_boxes_are_pooled_and_reused() {
        // Pool classes are keyed by closure type, i.e. by call site: the
        // same site scheduling visit after visit reuses its own box.
        let mut sim = Simulation::new(World::default());
        let mut schedule_one = |sim: &mut Simulation<World>, tag: &'static str| {
            sim.scheduler()
                .after(SimDuration::from_millis(1), move |w: &mut World, s| {
                    w.log.push((s.now().as_micros(), tag));
                });
        };
        schedule_one(&mut sim, "first");
        sim.run_to_idle(10);
        assert_eq!(sim.scheduler().pooled_callbacks(), 1);
        schedule_one(&mut sim, "second");
        assert_eq!(sim.scheduler().pooled_callbacks(), 0, "box was reused");
        sim.run_to_idle(10);
        assert_eq!(sim.world().log.len(), 2);
    }

    #[test]
    fn reset_swaps_world_and_rewinds_clock() {
        let mut sim = Simulation::new(World::default());
        sim.scheduler().after(SimDuration::from_millis(4), |w: &mut World, _| {
            w.log.push((0, "old"));
        });
        sim.run_to_idle(10);
        assert_eq!(sim.now(), SimTime::from_millis(4));

        let old = sim.reset(World::default());
        assert_eq!(old.log.len(), 1);
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.scheduler().pending(), 0);
        assert_eq!(sim.scheduler().executed(), 0);

        // The reset simulation behaves exactly like a fresh one.
        sim.scheduler().after(SimDuration::from_millis(2), |w: &mut World, s| {
            w.log.push((s.now().as_micros(), "new"));
        });
        sim.run_to_idle(10);
        assert_eq!(sim.world().log, vec![(2_000, "new")]);
    }

    #[test]
    fn reset_recycles_pending_callbacks() {
        let mut sim = Simulation::new(World::default());
        sim.scheduler().after(SimDuration::from_secs(1), |w: &mut World, _| {
            w.log.push((0, "never runs"));
        });
        sim.reset_in_place().log.clear();
        assert_eq!(sim.scheduler().pending(), 0);
        assert_eq!(
            sim.scheduler().pooled_callbacks(),
            1,
            "pending callback box was pooled, not leaked to the allocator"
        );
        sim.run_to_idle(10);
        assert!(sim.world().log.is_empty());
    }

    #[test]
    fn dropped_world_state_released_on_reset() {
        use std::rc::Rc;
        let marker = Rc::new(());
        let probe = marker.clone();
        let mut sim = Simulation::new(World::default());
        sim.scheduler().after(SimDuration::from_secs(5), move |_: &mut World, _| {
            let _keep = probe;
        });
        assert_eq!(Rc::strong_count(&marker), 2);
        sim.reset_in_place();
        // Captured state is dropped when the pending callback is recycled.
        assert_eq!(Rc::strong_count(&marker), 1);
    }
}
