//! Composable scalar distributions.
//!
//! Ecosystem generation and the latency models are described declaratively
//! with [`Dist`] values (constant, uniform, log-normal, Pareto, mixtures,
//! shifted/clamped transforms). A `Dist` is sampled with an explicit
//! [`Rng`] so every draw stays deterministic.

use crate::rng::Rng;

/// A scalar probability distribution, sampled in `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Dist {
    /// Always `value`.
    Const(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Normal with `mean` and `std_dev`.
    Normal {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Log-normal: `exp(N(mu, sigma))`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Exponential with rate `lambda`.
    Exponential {
        /// Rate parameter (events per unit).
        lambda: f64,
    },
    /// Pareto with scale `x_min` and shape `alpha`.
    Pareto {
        /// Scale (minimum value).
        x_min: f64,
        /// Shape (tail exponent).
        alpha: f64,
    },
    /// `inner` shifted by a constant `offset`.
    Shifted {
        /// Constant added to each sample.
        offset: f64,
        /// The underlying distribution.
        inner: Box<Dist>,
    },
    /// `inner` scaled by a constant `factor`.
    Scaled {
        /// Constant multiplying each sample.
        factor: f64,
        /// The underlying distribution.
        inner: Box<Dist>,
    },
    /// `inner` clamped to `[lo, hi]`.
    Clamped {
        /// Lower clamp bound.
        lo: f64,
        /// Upper clamp bound.
        hi: f64,
        /// The underlying distribution.
        inner: Box<Dist>,
    },
    /// Mixture of weighted components.
    Mix(Vec<(f64, Dist)>),
}

impl Dist {
    /// Convenience constructor: a log-normal parameterized by its **median**
    /// (in the same unit as the samples) and the `sigma` of the underlying
    /// normal. `exp(mu)` is the median of a log-normal, which makes latency
    /// calibration against the paper's reported medians direct.
    pub fn log_normal_median(median: f64, sigma: f64) -> Dist {
        assert!(median > 0.0, "log-normal median must be positive");
        Dist::LogNormal {
            mu: median.ln(),
            sigma,
        }
    }

    /// Shift this distribution by `offset`.
    pub fn shifted(self, offset: f64) -> Dist {
        Dist::Shifted {
            offset,
            inner: Box::new(self),
        }
    }

    /// Scale this distribution by `factor`.
    pub fn scaled(self, factor: f64) -> Dist {
        Dist::Scaled {
            factor,
            inner: Box::new(self),
        }
    }

    /// Clamp samples to `[lo, hi]`.
    pub fn clamped(self, lo: f64, hi: f64) -> Dist {
        assert!(lo <= hi, "invalid clamp range");
        Dist::Clamped {
            lo,
            hi,
            inner: Box::new(self),
        }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        match self {
            Dist::Const(v) => *v,
            Dist::Uniform { lo, hi } => rng.f64_range(*lo, *hi),
            Dist::Normal { mean, std_dev } => rng.normal(*mean, *std_dev),
            Dist::LogNormal { mu, sigma } => rng.log_normal(*mu, *sigma),
            Dist::Exponential { lambda } => rng.exponential(*lambda),
            Dist::Pareto { x_min, alpha } => rng.pareto(*x_min, *alpha),
            Dist::Shifted { offset, inner } => offset + inner.sample(rng),
            Dist::Scaled { factor, inner } => factor * inner.sample(rng),
            Dist::Clamped { lo, hi, inner } => inner.sample(rng).clamp(*lo, *hi),
            Dist::Mix(parts) => {
                let weights: Vec<f64> = parts.iter().map(|(w, _)| *w).collect();
                match rng.weighted_index(&weights) {
                    Some(i) => parts[i].1.sample(rng),
                    None => 0.0,
                }
            }
        }
    }

    /// Draw a sample and interpret it as milliseconds, returning a
    /// non-negative duration.
    pub fn sample_ms(&self, rng: &mut Rng) -> crate::time::SimDuration {
        crate::time::SimDuration::from_millis_f64(self.sample(rng).max(0.0))
    }

    /// Analytic mean where tractable; `None` for mixtures of unknown parts.
    pub fn mean(&self) -> Option<f64> {
        match self {
            Dist::Const(v) => Some(*v),
            Dist::Uniform { lo, hi } => Some((lo + hi) / 2.0),
            Dist::Normal { mean, .. } => Some(*mean),
            Dist::LogNormal { mu, sigma } => Some((mu + sigma * sigma / 2.0).exp()),
            Dist::Exponential { lambda } => Some(1.0 / lambda),
            Dist::Pareto { x_min, alpha } => {
                if *alpha > 1.0 {
                    Some(alpha * x_min / (alpha - 1.0))
                } else {
                    None
                }
            }
            Dist::Shifted { offset, inner } => inner.mean().map(|m| m + offset),
            Dist::Scaled { factor, inner } => inner.mean().map(|m| m * factor),
            Dist::Clamped { .. } => None,
            Dist::Mix(parts) => {
                let total: f64 = parts.iter().map(|(w, _)| *w).sum();
                if total <= 0.0 {
                    return None;
                }
                let mut acc = 0.0;
                for (w, d) in parts {
                    acc += w / total * d.mean()?;
                }
                Some(acc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_median(d: &Dist, seed: u64, n: usize) -> f64 {
        let mut rng = Rng::new(seed);
        let mut v: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    }

    #[test]
    fn const_is_constant() {
        let mut rng = Rng::new(1);
        let d = Dist::Const(7.5);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 7.5);
        }
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = Rng::new(2);
        let d = Dist::Uniform { lo: 3.0, hi: 9.0 };
        for _ in 0..1_000 {
            let x = d.sample(&mut rng);
            assert!((3.0..9.0).contains(&x));
        }
    }

    #[test]
    fn log_normal_median_calibration() {
        let d = Dist::log_normal_median(250.0, 0.6);
        let m = empirical_median(&d, 3, 20_001);
        assert!((m - 250.0).abs() / 250.0 < 0.05, "median {m}");
    }

    #[test]
    fn shifted_scaled_clamped() {
        let mut rng = Rng::new(4);
        let d = Dist::Const(10.0).scaled(3.0).shifted(5.0);
        assert_eq!(d.sample(&mut rng), 35.0);
        let c = Dist::Const(100.0).clamped(0.0, 50.0);
        assert_eq!(c.sample(&mut rng), 50.0);
    }

    #[test]
    fn mixture_uses_weights() {
        let mut rng = Rng::new(5);
        let d = Dist::Mix(vec![(9.0, Dist::Const(1.0)), (1.0, Dist::Const(2.0))]);
        let n = 10_000;
        let ones = (0..n)
            .filter(|_| (d.sample(&mut rng) - 1.0).abs() < 1e-12)
            .count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn empty_mixture_is_zero() {
        let mut rng = Rng::new(6);
        assert_eq!(Dist::Mix(vec![]).sample(&mut rng), 0.0);
    }

    #[test]
    fn analytic_means() {
        assert_eq!(Dist::Const(4.0).mean(), Some(4.0));
        assert_eq!(Dist::Uniform { lo: 0.0, hi: 2.0 }.mean(), Some(1.0));
        assert_eq!(Dist::Exponential { lambda: 2.0 }.mean(), Some(0.5));
        let m = Dist::Mix(vec![(1.0, Dist::Const(2.0)), (1.0, Dist::Const(4.0))])
            .mean()
            .unwrap();
        assert!((m - 3.0).abs() < 1e-12);
        assert_eq!(
            Dist::Pareto {
                x_min: 1.0,
                alpha: 0.5
            }
            .mean(),
            None
        );
    }

    #[test]
    fn sample_ms_never_negative() {
        let mut rng = Rng::new(7);
        let d = Dist::Normal {
            mean: 0.0,
            std_dev: 10.0,
        };
        for _ in 0..1_000 {
            let dur = d.sample_ms(&mut rng);
            assert!(dur.as_micros() < 1_000_000_000);
        }
    }
}
