//! The discrete-event scheduler.
//!
//! A binary heap of `(time, sequence)`-ordered entries. Ties on time are
//! broken by insertion sequence, so the execution order is fully
//! deterministic. Events can be cancelled cheaply: cancellation marks the
//! id in a set and the pop loop skips tombstones.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle identifying a scheduled event; usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at absolute time `at`; returns a cancellation handle.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(Entry {
            at,
            seq,
            id,
            payload,
        });
        id
    }

    /// Cancel a previously scheduled event. Returns `true` if the event had
    /// not yet fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_tombstones();
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next live event as `(time, id, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        self.skip_tombstones();
        self.heap.pop().map(|e| (e.at, e.id, e.payload))
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len().min(self.heap.len())
    }

    /// True when no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.skip_tombstones();
        self.heap.is_empty()
    }

    fn skip_tombstones(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(t, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        let (_, _, p) = q.pop().unwrap();
        assert_eq!(p, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        let id = q.schedule(SimTime::ZERO, ());
        q.pop();
        // The id was consumed; a fresh queue rejects ids it never issued.
        let mut q2: EventQueue<()> = EventQueue::new();
        assert!(!q2.cancel(id));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        let (t, _, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(7));
        assert_eq!(q.peek_time(), None);
    }
}
