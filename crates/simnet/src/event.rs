//! The discrete-event scheduler's future-event list.
//!
//! A slab of generation-stamped payload slots under a small POD
//! `(time, seq, slot)` binary min-heap. Ties on time are broken by
//! insertion sequence, so execution order is fully deterministic.
//!
//! ## Design
//!
//! * **Slab + free list**: payloads live in `slots`, a `Vec` reused
//!   through an intrusive free list. `schedule` pops a vacant slot (or
//!   grows the slab), so steady-state scheduling never allocates once the
//!   high-water mark is reached.
//! * **Generation stamps**: each slot carries a generation counter bumped
//!   every time the slot is vacated. An [`EventId`] is `(slot, gen)`;
//!   cancelling a stale id (already fired, already cancelled, or from a
//!   previous [`EventQueue::clear`] epoch within the same generation
//!   numbering) fails the `gen` check. Cancel is O(1) — no hashing, no
//!   tombstone set.
//! * **Lazy heap deletion**: cancellation vacates the slot but leaves the
//!   heap entry in place; `pop`/`peek_time` discard entries whose `seq`
//!   no longer matches the slot's current occupant. This is the classic
//!   pairing of O(1) cancel with amortized-O(log n) pop.
//! * **Storage persistence**: [`EventQueue::clear`] drops pending
//!   payloads but keeps the slab and heap `Vec` capacity, so a pooled
//!   simulation reuses the same backing storage across visits.

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event; usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// Sentinel for "no slot" in the free list.
const NIL: u32 = u32::MAX;

/// One POD heap entry; the payload stays in the slab.
#[derive(Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

struct Slot<E> {
    /// Generation of the current (or next, once reused) occupant.
    gen: u32,
    /// Insertion sequence of the current occupant; a heap entry whose
    /// `seq` differs is stale and is discarded on pop.
    seq: u64,
    /// The payload; `None` while the slot sits on the free list.
    payload: Option<E>,
    /// Free-list link (meaningful only while vacant).
    next_free: u32,
}

/// A deterministic future-event list (see module docs for the design).
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    free_head: u32,
    heap: Vec<HeapEntry>,
    next_seq: u64,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free_head: NIL,
            heap: Vec::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Schedule `payload` at absolute time `at`; returns a cancellation handle.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = if self.free_head != NIL {
            let s = self.free_head;
            let entry = &mut self.slots[s as usize];
            self.free_head = entry.next_free;
            entry.seq = seq;
            entry.payload = Some(payload);
            s
        } else {
            let s = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                seq,
                payload: Some(payload),
                next_free: NIL,
            });
            s
        };
        let gen = self.slots[slot as usize].gen;
        self.heap.push(HeapEntry { at, seq, slot });
        self.sift_up(self.heap.len() - 1);
        self.live += 1;
        EventId { slot, gen }
    }

    /// Cancel a previously scheduled event. Returns `true` when the event
    /// was still pending (not yet fired or cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.cancel_take(id).is_some()
    }

    /// Cancel a pending event, returning its payload for reuse. O(1):
    /// vacates the slot; the stale heap entry is discarded lazily by the
    /// next pop that reaches it.
    pub fn cancel_take(&mut self, id: EventId) -> Option<E> {
        let slot = self.slots.get_mut(id.slot as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        let payload = slot.payload.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        slot.next_free = self.free_head;
        self.free_head = id.slot;
        self.live -= 1;
        Some(payload)
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_stale();
        self.heap.first().map(|e| e.at)
    }

    /// Pop the next live event as `(time, id, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        self.skip_stale();
        let entry = *self.heap.first()?;
        self.pop_root();
        let slot = &mut self.slots[entry.slot as usize];
        let gen = slot.gen;
        let payload = slot.payload.take().expect("skip_stale left a live root");
        slot.gen = gen.wrapping_add(1);
        slot.next_free = self.free_head;
        self.free_head = entry.slot;
        self.live -= 1;
        Some((entry.at, EventId { slot: entry.slot, gen }, payload))
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Drop every pending event, handing each payload to `f` (for pooled
    /// reuse), while keeping the slab and heap storage for the next run.
    /// The sequence counter restarts, so a cleared queue schedules and
    /// pops exactly like a freshly constructed one — but the slots keep
    /// their generation stamps (bumped for every vacated occupant), so an
    /// [`EventId`] issued before the clear can never cancel an event
    /// scheduled after it.
    pub fn clear_with(&mut self, mut f: impl FnMut(E)) {
        self.free_head = NIL;
        // Rebuild the free list back-to-front so post-clear scheduling
        // fills slots from index 0, like a fresh queue would.
        for (i, slot) in self.slots.iter_mut().enumerate().rev() {
            if let Some(p) = slot.payload.take() {
                f(p);
                slot.gen = slot.gen.wrapping_add(1);
            }
            slot.next_free = self.free_head;
            self.free_head = i as u32;
        }
        self.heap.clear();
        self.next_seq = 0;
        self.live = 0;
    }

    /// [`EventQueue::clear_with`] dropping the payloads.
    pub fn clear(&mut self) {
        self.clear_with(drop);
    }

    /// Discard stale heap entries (cancelled or superseded slots) at the
    /// root until a live entry — or nothing — remains.
    fn skip_stale(&mut self) {
        while let Some(entry) = self.heap.first() {
            let slot = &self.slots[entry.slot as usize];
            if slot.payload.is_some() && slot.seq == entry.seq {
                break;
            }
            self.pop_root();
        }
    }

    /// Remove the heap root, restoring the heap property.
    fn pop_root(&mut self) {
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].key() < self.heap[parent].key() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < n && self.heap[l].key() < self.heap[best].key() {
                best = l;
            }
            if r < n && self.heap[r].key() < self.heap[best].key() {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap.swap(i, best);
            i = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(t, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        let (_, _, p) = q.pop().unwrap();
        assert_eq!(p, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        let id = q.schedule(SimTime::ZERO, ());
        q.pop();
        // The id was consumed; cancelling a fired event reports false.
        assert!(!q.cancel(id));
        // A fresh queue rejects ids it never issued.
        let mut q2: EventQueue<()> = EventQueue::new();
        assert!(!q2.cancel(id));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        let (t, _, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(7));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancel_take_returns_payload() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_millis(3), String::from("x"));
        assert_eq!(q.cancel_take(id).as_deref(), Some("x"));
        assert_eq!(q.cancel_take(id), None);
    }

    #[test]
    fn slots_are_reused_after_pop_and_cancel() {
        let mut q = EventQueue::new();
        for round in 0..5u64 {
            let a = q.schedule(SimTime::from_millis(round), round);
            let b = q.schedule(SimTime::from_millis(round + 1), round + 1);
            assert!(q.cancel(a));
            assert_eq!(q.pop().map(|(_, _, p)| p), Some(round + 1));
            assert!(!q.cancel(b), "popped event can no longer be cancelled");
        }
        // Two logical slots served all five rounds.
        assert!(q.slots.len() <= 2, "slab grew to {}", q.slots.len());
    }

    #[test]
    fn stale_id_from_reused_slot_does_not_cancel_new_event() {
        let mut q = EventQueue::new();
        let old = q.schedule(SimTime::from_millis(1), "old");
        q.pop();
        // The new event reuses the slot; the old id must not touch it.
        let new = q.schedule(SimTime::from_millis(2), "new");
        assert!(!q.cancel(old));
        assert_eq!(q.len(), 1);
        assert!(q.cancel(new));
    }

    #[test]
    fn pre_clear_ids_cannot_cancel_post_clear_events() {
        let mut q = EventQueue::new();
        let popped = q.schedule(SimTime::from_millis(1), "popped");
        let stale = q.schedule(SimTime::from_millis(2), "old");
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("popped"));
        q.clear();
        // The new event reuses slot storage; every pre-clear id is stale.
        let fresh = q.schedule(SimTime::from_millis(3), "new");
        assert!(!q.cancel(stale), "pending-at-clear id must go stale");
        assert!(!q.cancel(popped), "popped-before-clear id must stay stale");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(fresh));
    }

    #[test]
    fn clear_keeps_storage_but_restarts_sequence() {
        let mut q = EventQueue::new();
        for i in 0..8u64 {
            q.schedule(SimTime::from_millis(i), i);
        }
        let heap_cap = q.heap.capacity();
        let slab_cap = q.slots.capacity();
        let mut drained = Vec::new();
        q.clear_with(|p| drained.push(p));
        assert_eq!(drained.len(), 8);
        assert!(q.is_empty());
        assert_eq!(q.heap.capacity(), heap_cap);
        assert_eq!(q.slots.capacity(), slab_cap);
        // Post-clear behaviour matches a fresh queue (ties by insertion).
        let t = SimTime::from_millis(1);
        q.schedule(t, 100);
        q.schedule(t, 200);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec![100, 200]);
    }
}
