//! Deterministic pseudo-random number generation.
//!
//! The simulator carries its own small RNG (xoshiro256++ seeded through
//! SplitMix64) instead of depending on an external crate so that results are
//! bit-for-bit reproducible across library versions and platforms. The crawl
//! campaign derives an independent stream per (site, day) with
//! [`Rng::derive`], which makes parallel crawling order-independent.

/// SplitMix64 step; used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ pseudo-random generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Immutable identity of this stream; derivation keys off this, never
    /// off the mutable state, so `derive` is position-independent.
    stream_id: u64,
    /// Cached second normal variate from the last Box-Muller draw.
    spare_gauss: Option<f64>,
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            stream_id: seed,
            spare_gauss: None,
        }
    }

    /// Derive an independent child stream keyed by `label`.
    ///
    /// Deriving consumes no state from `self` and does not depend on how
    /// many values the parent has already produced; the same
    /// `(seed, labels...)` path always yields the same stream, which is
    /// what makes the parallel crawler deterministic.
    pub fn derive(&self, label: u64) -> Rng {
        let mut sm = self.stream_id ^ label.wrapping_mul(0x9E3779B97F4A7C15);
        let child_id = splitmix64(&mut sm);
        let mut out = Rng::new(child_id);
        out.stream_id = child_id;
        out
    }

    /// Derive an independent child stream keyed by a string label.
    pub fn derive_str(&self, label: &str) -> Rng {
        self.derive(fnv1a(label.as_bytes()))
    }

    /// Next raw 64-bit value (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Returns `lo` when the range is empty.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        // Lemire's nearly-divisionless method with rejection for exactness.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng::range_inclusive: lo > hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` index in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Standard normal variate (Box-Muller, with spare caching).
    pub fn gauss(&mut self) -> f64 {
        if let Some(z) = self.spare_gauss.take() {
            return z;
        }
        // Rejection-free polar-less Box-Muller; u1 in (0,1].
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_gauss = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gauss()
    }

    /// Log-normal variate with the given parameters of the underlying normal.
    #[inline]
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.gauss()).exp()
    }

    /// Exponential variate with the given rate `lambda` (> 0).
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        -(1.0 - self.f64()).ln() / lambda
    }

    /// Pareto variate with scale `x_min` (> 0) and shape `alpha` (> 0).
    #[inline]
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0);
        x_min / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Sample an index from a non-negative weight slice.
    ///
    /// Returns `None` when the slice is empty or the total weight is zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if !(w.is_finite() && w > 0.0) {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point leftovers: return the last positive weight.
        weights
            .iter()
            .rposition(|w| w.is_finite() && *w > 0.0)
    }

    /// Zipf-distributed rank in `[1, n]` with exponent `s` (> 0), via
    /// inversion over precomputed cumulative weights would be O(n); this
    /// uses rejection-inversion (Hörmann) which is O(1) per sample.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n >= 1);
        if n == 1 {
            return 1;
        }
        // Straightforward inversion on the harmonic CDF approximation.
        // H(x) ~ (x^(1-s) - 1)/(1-s) for s != 1, ln(x) for s == 1.
        let h = |x: f64| -> f64 {
            if (s - 1.0).abs() < 1e-9 {
                x.ln()
            } else {
                (x.powf(1.0 - s) - 1.0) / (1.0 - s)
            }
        };
        let h_inv = |y: f64| -> f64 {
            if (s - 1.0).abs() < 1e-9 {
                y.exp()
            } else {
                (1.0 + y * (1.0 - s)).powf(1.0 / (1.0 - s))
            }
        };
        let hn = h(n as f64 + 0.5);
        let h1 = h(0.5);
        loop {
            let u = self.f64();
            let x = h_inv(h1 + u * (hn - h1));
            let k = x.round().clamp(1.0, n as f64);
            // The envelope gives bin [k-0.5, k+0.5] mass equal to the integral
            // of x^-s over it; the true (unnormalized) mass is k^-s. Since
            // x^-s is convex the integral dominates the midpoint value, so
            // accepting with probability k^-s / integral is a valid thinning.
            let bin_mass = (h(k + 0.5) - h(k - 0.5)).max(1e-300);
            if self.f64() * bin_mass <= k.powf(-s) {
                return k as u64;
            }
        }
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k clamped to n), in
    /// selection order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        // Partial Fisher-Yates over an index vector.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Pick a uniformly random element reference.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }
}

/// FNV-1a hash of a byte string; used for stable string-keyed derivation.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_is_stateless_and_stable() {
        let root = Rng::new(7);
        let mut c1 = root.derive(123);
        let mut c2 = root.derive(123);
        let mut c3 = root.derive(124);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_bounds_and_coverage() {
        let mut r = Rng::new(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn gauss_moments_plausible() {
        let mut r = Rng::new(11);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let z = r.gauss();
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_median_is_exp_mu() {
        let mut r = Rng::new(13);
        let mut v: Vec<f64> = (0..20_001).map(|_| r.log_normal(1.0, 0.5)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        let expect = 1.0_f64.exp();
        assert!(
            (median - expect).abs() / expect < 0.05,
            "median {median} vs {expect}"
        );
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(17);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn pareto_min_respected() {
        let mut r = Rng::new(19);
        for _ in 0..5_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = Rng::new(23);
        let w = [0.0, 10.0, 0.0, 1.0];
        let mut counts = [0u32; 4];
        for _ in 0..11_000 {
            counts[r.weighted_index(&w).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        assert!(counts[1] > counts[3] * 5);
    }

    #[test]
    fn weighted_index_empty_or_zero() {
        let mut r = Rng::new(29);
        assert_eq!(r.weighted_index(&[]), None);
        assert_eq!(r.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(r.weighted_index(&[0.0, f64::NAN, 3.0]), Some(2));
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let mut r = Rng::new(31);
        let n = 20_000;
        let mut ones = 0;
        for _ in 0..n {
            let k = r.zipf(100, 1.2);
            assert!((1..=100).contains(&k));
            if k == 1 {
                ones += 1;
            }
        }
        // Rank 1 should dominate (>20% of mass for s=1.2, n=100).
        assert!(ones as f64 / n as f64 > 0.15, "ones {ones}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(37);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = Rng::new(41);
        for _ in 0..100 {
            let s = r.sample_indices(20, 8);
            assert_eq!(s.len(), 8);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 8);
            assert!(s.iter().all(|&i| i < 20));
        }
        assert_eq!(r.sample_indices(3, 10).len(), 3);
        assert!(r.sample_indices(0, 5).is_empty());
    }

    #[test]
    fn fnv1a_stable() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
