//! A lightweight simulation trace, in the spirit of a pcap: a bounded ring
//! of timestamped records that tools and tests can inspect after a run.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// Category of a trace record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// A request left the browser.
    RequestOut,
    /// A response arrived.
    ResponseIn,
    /// A request was dropped by fault injection.
    Dropped,
    /// A DOM event fired.
    DomEvent,
    /// A page lifecycle transition.
    Lifecycle,
    /// Anything else.
    Note,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::RequestOut => "req>",
            TraceKind::ResponseIn => "<rsp",
            TraceKind::Dropped => "drop",
            TraceKind::DomEvent => "dom ",
            TraceKind::Lifecycle => "life",
            TraceKind::Note => "note",
        };
        f.write_str(s)
    }
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// When it happened.
    pub at: SimTime,
    /// What kind of record.
    pub kind: TraceKind,
    /// Human-readable detail.
    pub detail: String,
}

/// Bounded ring buffer of trace records.
///
/// The ring grows lazily (first pushes allocate, up to `capacity`) and its
/// storage is **reused across pooled visits**: [`Trace::clear`] drops the
/// records but keeps the `VecDeque` allocation, and toggling recording via
/// [`Trace::set_enabled`] / [`Trace::set_capacity`] never discards the
/// ring — so a worker that flips tracing on and off between visits pays
/// the ring allocation once, not per toggle.
#[derive(Debug)]
pub struct Trace {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Trace {
    /// Create a trace holding at most `capacity` records. No storage is
    /// allocated until records are pushed.
    pub fn new(capacity: usize) -> Self {
        Trace {
            records: VecDeque::new(),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// A disabled trace: `push` is a no-op. Useful for large campaigns.
    pub fn disabled() -> Self {
        let mut t = Trace::new(0);
        t.enabled = false;
        t
    }

    /// Is recording enabled?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Toggle recording in place. Disabling keeps the retained records
    /// and the ring storage (re-enabling continues into the same
    /// allocation); callers wanting a clean window pair this with
    /// [`Trace::clear`].
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Change the record cap in place, keeping the ring storage. Shrinking
    /// below the retained count evicts the oldest records.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.records.len() > capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&mut self, at: SimTime, kind: TraceKind, detail: impl Into<String>) {
        if !self.enabled || self.capacity == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            at,
            kind,
            detail: detail.into(),
        });
    }

    /// Drop every retained record (capacity and enabled state are kept) —
    /// the pooled-browser path clears the ring between visits.
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// How many records were evicted due to capacity.
    pub fn evicted(&self) -> u64 {
        self.dropped
    }

    /// Render the trace as a text dump (one line per record).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!(
                "[{:>12}] {} {}\n",
                format!("{}", r.at),
                r.kind,
                r.detail
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut t = Trace::new(10);
        t.push(SimTime::from_millis(1), TraceKind::RequestOut, "GET /a");
        t.push(SimTime::from_millis(2), TraceKind::ResponseIn, "200 /a");
        assert_eq!(t.len(), 2);
        let kinds: Vec<TraceKind> = t.records().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![TraceKind::RequestOut, TraceKind::ResponseIn]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5u64 {
            t.push(SimTime::from_millis(i), TraceKind::Note, format!("{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.evicted(), 2);
        let details: Vec<&str> = t.records().map(|r| r.detail.as_str()).collect();
        assert_eq!(details, vec!["2", "3", "4"]);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(SimTime::ZERO, TraceKind::Note, "x");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn toggling_reuses_ring_storage() {
        let mut t = Trace::new(16);
        for i in 0..8u64 {
            t.push(SimTime::from_millis(i), TraceKind::Note, format!("{i}"));
        }
        let cap = t.records.capacity();
        assert!(cap >= 8);
        // Disable, clear, re-enable: the ring allocation survives.
        t.set_enabled(false);
        t.clear();
        t.push(SimTime::ZERO, TraceKind::Note, "ignored");
        assert!(t.is_empty());
        t.set_enabled(true);
        t.push(SimTime::ZERO, TraceKind::Note, "kept");
        assert_eq!(t.len(), 1);
        assert_eq!(t.records.capacity(), cap, "toggle must not reallocate");
    }

    #[test]
    fn capacity_shrink_evicts_oldest() {
        let mut t = Trace::new(8);
        for i in 0..6u64 {
            t.push(SimTime::from_millis(i), TraceKind::Note, format!("{i}"));
        }
        t.set_capacity(2);
        let details: Vec<&str> = t.records().map(|r| r.detail.as_str()).collect();
        assert_eq!(details, vec!["4", "5"]);
        assert_eq!(t.evicted(), 4);
        // And the cap keeps applying to new pushes.
        t.push(SimTime::from_millis(9), TraceKind::Note, "6");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn dump_contains_detail() {
        let mut t = Trace::new(4);
        t.push(SimTime::from_millis(5), TraceKind::DomEvent, "auctionEnd");
        let d = t.dump();
        assert!(d.contains("auctionEnd"));
        assert!(d.contains("dom"));
    }
}
