//! Simulated time primitives.
//!
//! All simulation time is expressed in integer **microseconds** since the
//! start of the simulation. Using integers (rather than `f64` seconds) keeps
//! event ordering exact and the simulation bit-for-bit reproducible across
//! platforms, which the crawl campaign relies on for per-(site, day) seeding.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Time as whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, saturating at `SimTime::MAX`.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// microsecond and clamping negatives to zero.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ms * 1_000.0).round() as u64)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond and clamping negatives to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    /// Duration as whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us == u64::MAX {
            write!(f, "inf")
        } else if us >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if us >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{us}us")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(500);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(10));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn from_f64_clamps_negative_and_nan() {
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis_f64(1.5),
            SimDuration::from_micros(1_500)
        );
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn duration_min_max() {
        let a = SimDuration::from_millis(5);
        let b = SimDuration::from_millis(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
