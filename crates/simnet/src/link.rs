//! Per-endpoint latency models.
//!
//! A [`LatencyModel`] describes the round-trip behaviour of one remote host:
//! a base distribution (typically log-normal, calibrated by median) plus an
//! optional heavy Pareto tail mixed in with small probability. The tail is
//! what produces the paper's 10-20 second stragglers (Figure 12).

use crate::dist::Dist;
use crate::rng::Rng;
use crate::time::SimDuration;

/// Round-trip latency model for one endpoint.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    /// Main body of the distribution, in milliseconds.
    pub body_ms: Dist,
    /// Probability that a request instead hits the heavy tail.
    pub tail_chance: f64,
    /// Heavy-tail distribution, in milliseconds.
    pub tail_ms: Dist,
    /// Hard floor applied to every sample (network is never literally 0).
    pub floor_ms: f64,
}

impl LatencyModel {
    /// A log-normal body calibrated by its median (ms) and spread `sigma`.
    pub fn log_normal(median_ms: f64, sigma: f64) -> Self {
        LatencyModel {
            body_ms: Dist::log_normal_median(median_ms, sigma),
            tail_chance: 0.0,
            tail_ms: Dist::Const(0.0),
            floor_ms: 1.0,
        }
    }

    /// Constant latency (useful in unit tests).
    pub fn constant(ms: f64) -> Self {
        LatencyModel {
            body_ms: Dist::Const(ms),
            tail_chance: 0.0,
            tail_ms: Dist::Const(0.0),
            floor_ms: 0.0,
        }
    }

    /// Attach a Pareto straggler tail: with probability `chance` the sample
    /// comes from `Pareto(x_min_ms, alpha)` instead of the body.
    pub fn with_tail(mut self, chance: f64, x_min_ms: f64, alpha: f64) -> Self {
        self.tail_chance = chance;
        self.tail_ms = Dist::Pareto {
            x_min: x_min_ms,
            alpha,
        };
        self
    }

    /// Override the floor.
    pub fn with_floor(mut self, floor_ms: f64) -> Self {
        self.floor_ms = floor_ms;
        self
    }

    /// Draw one round-trip time.
    pub fn sample(&self, rng: &mut Rng) -> SimDuration {
        let ms = if rng.chance(self.tail_chance) {
            self.tail_ms.sample(rng)
        } else {
            self.body_ms.sample(rng)
        };
        SimDuration::from_millis_f64(ms.max(self.floor_ms))
    }

    /// The median of the body in milliseconds, where analytically known.
    pub fn body_median_ms(&self) -> Option<f64> {
        match &self.body_ms {
            Dist::Const(v) => Some(*v),
            Dist::LogNormal { mu, .. } => Some(mu.exp()),
            Dist::Uniform { lo, hi } => Some((lo + hi) / 2.0),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_is_exact() {
        let m = LatencyModel::constant(42.0);
        let mut rng = Rng::new(1);
        assert_eq!(m.sample(&mut rng), SimDuration::from_millis(42));
    }

    #[test]
    fn floor_is_enforced() {
        let m = LatencyModel {
            body_ms: Dist::Const(0.0),
            tail_chance: 0.0,
            tail_ms: Dist::Const(0.0),
            floor_ms: 5.0,
        };
        let mut rng = Rng::new(2);
        assert_eq!(m.sample(&mut rng), SimDuration::from_millis(5));
    }

    #[test]
    fn log_normal_median_roughly_calibrated() {
        let m = LatencyModel::log_normal(300.0, 0.5);
        let mut rng = Rng::new(3);
        let mut v: Vec<u64> = (0..10_001).map(|_| m.sample(&mut rng).as_micros()).collect();
        v.sort_unstable();
        let median_ms = v[v.len() / 2] as f64 / 1000.0;
        assert!(
            (median_ms - 300.0).abs() / 300.0 < 0.07,
            "median {median_ms}"
        );
        let analytic = m.body_median_ms().unwrap();
        assert!((analytic - 300.0).abs() < 1e-9, "analytic {analytic}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        // Scenario byte-determinism rests on this: the same RNG stream
        // pulled through the same (possibly degraded) model yields the
        // same sequence, sample for sample.
        let m = LatencyModel::log_normal(250.0, 0.6).with_tail(0.1, 2_000.0, 1.4);
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..1_000 {
            assert_eq!(m.sample(&mut a), m.sample(&mut b));
        }
    }

    #[test]
    fn degraded_override_shifts_every_sample() {
        // A degraded-link override (what ScenarioConfig installs for one
        // host) dominates the healthy model at every draw.
        let healthy = LatencyModel::log_normal(80.0, 0.3).with_floor(8.0);
        let degraded = LatencyModel::constant(1_500.0);
        let mut rng = Rng::new(9);
        for _ in 0..200 {
            let h = healthy.sample(&mut rng);
            assert!(h < SimDuration::from_millis(1_500), "healthy sample {h}");
        }
        let mut rng = Rng::new(9);
        for _ in 0..200 {
            assert_eq!(degraded.sample(&mut rng), SimDuration::from_millis(1_500));
        }
    }

    #[test]
    fn floor_applies_to_tail_samples_too() {
        let m = LatencyModel {
            body_ms: Dist::Const(0.0),
            tail_chance: 1.0,
            tail_ms: Dist::Const(2.0),
            floor_ms: 25.0,
        };
        let mut rng = Rng::new(11);
        assert_eq!(m.sample(&mut rng), SimDuration::from_millis(25));
    }

    #[test]
    fn tail_produces_stragglers() {
        let m = LatencyModel::constant(10.0).with_tail(0.5, 5_000.0, 1.5);
        let mut rng = Rng::new(4);
        let n = 4_000;
        let slow = (0..n)
            .filter(|_| m.sample(&mut rng) >= SimDuration::from_millis(5_000))
            .count();
        let frac = slow as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "tail frac {frac}");
    }
}
