//! # hb-simnet
//!
//! Deterministic discrete-event simulation engine underpinning the header
//! bidding reproduction. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond simulated time;
//! * [`Rng`] — a self-contained xoshiro256++ generator with stream
//!   derivation (so parallel crawls are order-independent);
//! * [`Dist`] — declarative scalar distributions used by the ecosystem
//!   generators and latency models;
//! * [`EventQueue`] / [`Simulation`] — the future-event list and driver:
//!   a slab of generation-stamped payload slots under a POD
//!   `(time, seq, slot)` heap (O(1) cancel, storage persisting across
//!   [`Simulation::reset`]) with a type-keyed recycling pool for callback
//!   boxes — a steady-state simulation schedules without allocating;
//! * [`LatencyModel`] — per-endpoint round-trip models with heavy tails;
//! * [`FaultInjector`] — drops, slowdowns and outages (keyed on [`HStr`]);
//! * [`HStr`] — the 24-byte compact string shared by the whole stack
//!   (re-exported by `hb-http`, which historically owned it);
//! * [`Trace`] — a pcap-style bounded record of what happened.
//!
//! The engine is intentionally single-threaded and allocation-light; the
//! crawler achieves parallelism by running many independent simulations.

// `deny` rather than `forbid`: the single audited exception is
// `hstr::HStr::as_str`, which skips per-access UTF-8 re-validation of the
// inline small-string buffer (see the invariant documented there). All
// other modules remain unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod event;
pub mod fault;
pub mod hash;
pub mod hstr;
pub mod link;
pub mod rng;
pub mod sim;
pub mod time;
pub mod trace;

pub use dist::Dist;
pub use event::{EventId, EventQueue};
pub use fault::{FaultDecision, FaultInjector, HostFaultProfile};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use hstr::HStr;
pub use link::LatencyModel;
pub use rng::{fnv1a, Rng};
pub use sim::{Callback, QueuedCb, Scheduler, Simulation, StopReason};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceKind, TraceRecord};
