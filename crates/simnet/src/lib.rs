//! # hb-simnet
//!
//! Deterministic discrete-event simulation engine underpinning the header
//! bidding reproduction. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond simulated time;
//! * [`Rng`] — a self-contained xoshiro256++ generator with stream
//!   derivation (so parallel crawls are order-independent);
//! * [`Dist`] — declarative scalar distributions used by the ecosystem
//!   generators and latency models;
//! * [`EventQueue`] / [`Simulation`] — the future-event list and driver:
//!   a slab of generation-stamped payload slots under a POD
//!   `(time, seq, slot)` heap (O(1) cancel, storage persisting across
//!   [`Simulation::reset`]) with a type-keyed recycling pool for callback
//!   boxes — a steady-state simulation schedules without allocating;
//! * [`LatencyModel`] — per-endpoint round-trip models with heavy tails;
//! * [`FaultInjector`] — drops, slowdowns and outages;
//! * [`Trace`] — a pcap-style bounded record of what happened.
//!
//! The engine is intentionally single-threaded and allocation-light; the
//! crawler achieves parallelism by running many independent simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod event;
pub mod fault;
pub mod hash;
pub mod link;
pub mod rng;
pub mod sim;
pub mod time;
pub mod trace;

pub use dist::Dist;
pub use event::{EventId, EventQueue};
pub use fault::{FaultDecision, FaultInjector};
pub use hash::{FxBuildHasher, FxHashMap, FxHasher};
pub use link::LatencyModel;
pub use rng::{fnv1a, Rng};
pub use sim::{Callback, QueuedCb, Scheduler, Simulation, StopReason};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceKind, TraceRecord};
