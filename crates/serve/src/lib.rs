//! Live auction serving for the header-bidding ecosystem.
//!
//! Where the crawler crates *measure* the ecosystem from the browser
//! side, `hb-serve` runs the publisher/exchange side: an
//! [`AuctionOrchestrator`](orchestrator) that accepts OpenRTB-shaped
//! [`AdRequest`]s from a synthetic user population and mediates each one
//! across the site's demand — parallel header bidding, server-side
//! mediation, and the sequential waterfall — inside a robustness
//! envelope of deadline budgets, per-provider circuit breakers, hedged
//! requests, and admission control. See `docs/serving.md` for the
//! request flow and determinism invariants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod loadgen;
pub mod orchestrator;
pub mod request;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use loadgen::LoadGenConfig;
pub use orchestrator::{
    serve_load, serve_load_with, serve_requests, start_auction, ServeConfig, ServeReport,
    ServeStats, ServeWorld, ShardReport,
};
pub use request::{AdRequest, AuctionOutcome, Channel, Decision};
