//! Serving-plane request/outcome types and the canonical outcome digest.
//!
//! An [`AdRequest`] is the OpenRTB-shaped unit of work the orchestrator
//! admits; an [`AuctionOutcome`] is what it must always produce by the
//! deadline budget — a winner, a passback, or an explicit shed. The
//! outcome carries every degradation decision (hedges, breaker skips)
//! so the determinism tests can pin the *whole* robustness envelope,
//! not just prices. [`AuctionOutcome::fold_digest`] chains outcomes
//! into one order-sensitive 64-bit digest; per-shard digests compared
//! across worker counts are the byte-identity check.

use hb_simnet::{fnv1a, HStr, SimDuration, SimTime};

/// An OpenRTB-shaped ad request from the synthetic user population.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdRequest {
    /// Global request number (unique, dense from 0).
    pub id: u64,
    /// Site rank whose inventory is up for auction (1-based, zipf-hot).
    pub rank: u32,
    /// Simulated user id.
    pub user: u64,
    /// Arrival time at the orchestrator.
    pub arrival: SimTime,
}

/// Which demand channel produced the winning fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Channel {
    /// A parallel header-bidding partner's bid won (possibly decided
    /// by the ad server's mediation).
    Hb,
    /// A server-side seat surfaced by the mediation leg won.
    S2s,
    /// A sequential waterfall tier filled.
    Waterfall,
    /// A direct order (sponsorship line item) filled.
    Direct,
    /// The ad server's house/fallback line filled.
    House,
}

impl Channel {
    fn tag(self) -> u64 {
        match self {
            Channel::Hb => 1,
            Channel::S2s => 2,
            Channel::Waterfall => 3,
            Channel::Direct => 4,
            Channel::House => 5,
        }
    }
}

/// What the orchestrator answered with — always one of these, always
/// by the budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// A fill: winning provider, price in milli-CPM (exact integer so
    /// outcomes compare bytewise), and the channel that produced it.
    Won {
        /// Winning provider/bidder code.
        bidder: HStr,
        /// Clearing price in thousandths of a CPM dollar.
        price_milli: u64,
        /// Demand channel of the fill.
        channel: Channel,
    },
    /// No demand answered in budget: the passback/house creative.
    Passback,
    /// Admission control refused the auction (overload).
    Shed,
}

/// The resolved outcome of one admitted (or shed) auction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuctionOutcome {
    /// The request's global number.
    pub request: u64,
    /// Site rank the auction ran for.
    pub rank: u32,
    /// The decision produced by the budget deadline at the latest.
    pub decision: Decision,
    /// Arrival-to-decision latency (zero for sheds).
    pub latency: SimDuration,
    /// Hedge requests fired during this auction.
    pub hedges_fired: u32,
    /// Hedge requests that beat their primary.
    pub hedge_wins: u32,
    /// Provider legs skipped because their circuit breaker was open.
    pub breaker_skips: u32,
}

/// One SplitMix64-style avalanche fold step.
#[inline]
fn mix64(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl AuctionOutcome {
    /// Fold this outcome into a running digest. Order-sensitive by
    /// design: a shard's digest pins both every outcome *and* the
    /// resolution order, so any scheduling drift between worker counts
    /// shows up as a digest mismatch.
    pub fn fold_digest(&self, h: u64) -> u64 {
        let mut h = mix64(h, self.request);
        h = mix64(h, self.rank as u64);
        h = match &self.decision {
            Decision::Won {
                bidder,
                price_milli,
                channel,
            } => {
                let hh = mix64(h, 1);
                let hh = mix64(hh, fnv1a(bidder.as_str().as_bytes()));
                let hh = mix64(hh, *price_milli);
                mix64(hh, channel.tag())
            }
            Decision::Passback => mix64(h, 2),
            Decision::Shed => mix64(h, 3),
        };
        h = mix64(h, self.latency.as_micros());
        h = mix64(h, self.hedges_fired as u64);
        h = mix64(h, self.hedge_wins as u64);
        mix64(h, self.breaker_skips as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(request: u64, price: u64) -> AuctionOutcome {
        AuctionOutcome {
            request,
            rank: 3,
            decision: Decision::Won {
                bidder: "bidder0".into(),
                price_milli: price,
                channel: Channel::Hb,
            },
            latency: SimDuration::from_millis(120),
            hedges_fired: 1,
            hedge_wins: 0,
            breaker_skips: 2,
        }
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let a = outcome(1, 1250);
        let h1 = a.fold_digest(0);
        assert_eq!(h1, a.fold_digest(0), "pure function");
        assert_ne!(h1, outcome(2, 1250).fold_digest(0), "request id matters");
        assert_ne!(h1, outcome(1, 1251).fold_digest(0), "price matters");
        let mut hedged = outcome(1, 1250);
        hedged.hedge_wins = 1;
        assert_ne!(h1, hedged.fold_digest(0), "hedge accounting matters");
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = outcome(1, 1000);
        let b = outcome(2, 2000);
        assert_ne!(
            b.fold_digest(a.fold_digest(0)),
            a.fold_digest(b.fold_digest(0))
        );
    }
}
