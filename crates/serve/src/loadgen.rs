//! Synthetic user traffic: a deterministic, random-access load model.
//!
//! `LoadGen` describes millions of simulated users whose site choice is
//! zipf-distributed over the ecosystem's site ranks (the same head-heavy
//! preference the crawl's popularity model uses). The model is *pure*:
//! [`LoadGenConfig::request`] maps a request number straight to its
//! [`AdRequest`] with no sequential state, so serving shards can each
//! walk their own arithmetic slice (`shard, shard + shards, …`) of the
//! stream and the full request set never has to exist in memory.

use hb_simnet::{Rng, SimDuration, SimTime};

use crate::request::AdRequest;

/// The synthetic traffic model.
#[derive(Clone, Copy, Debug)]
pub struct LoadGenConfig {
    /// Seed of the traffic stream (independent of the serving seed).
    pub seed: u64,
    /// Total requests in the stream.
    pub n_requests: u64,
    /// Simulated user population size.
    pub n_users: u64,
    /// Site ranks available (1..=n_sites; callers pass the ecosystem's
    /// site count).
    pub n_sites: u64,
    /// Zipf skew of site preference (1.0 = classic web popularity).
    pub zipf_s: f64,
    /// Mean inter-arrival gap of the whole stream. Each request lands
    /// at `n * gap + jitter` with `jitter < gap`, so arrivals are
    /// strictly monotone along any shard's slice.
    pub mean_gap: SimDuration,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            seed: 0x10AD,
            n_requests: 10_000,
            n_users: 2_000_000,
            n_sites: 200,
            zipf_s: 1.0,
            mean_gap: SimDuration::from_micros(500),
        }
    }
}

impl LoadGenConfig {
    /// The `n`-th request of the stream. Pure in `(config, n)`: any
    /// shard, worker, or replay computes the identical request.
    pub fn request(&self, n: u64) -> AdRequest {
        let mut rng = Rng::new(self.seed).derive_str("loadgen").derive(n);
        let rank = rng.zipf(self.n_sites.max(1), self.zipf_s) as u32;
        let user = rng.below(self.n_users.max(1));
        let gap = self.mean_gap.as_micros().max(1);
        let jitter = rng.below(gap);
        AdRequest {
            id: n,
            rank,
            user,
            arrival: SimTime::from_micros(n * gap + jitter),
        }
    }

    /// Span from the first arrival to the last, plus one budget —
    /// a bound on how long the serving run can take.
    pub fn horizon(&self, budget: SimDuration) -> SimTime {
        let gap = self.mean_gap.as_micros().max(1);
        SimTime::from_micros(self.n_requests.saturating_mul(gap))
            .saturating_add(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_pure_and_distinct() {
        let cfg = LoadGenConfig::default();
        let a = cfg.request(7);
        assert_eq!(a, cfg.request(7), "pure in (config, n)");
        assert_ne!(a.user, cfg.request(8).user);
        assert!(a.rank >= 1 && a.rank as u64 <= cfg.n_sites);
    }

    #[test]
    fn arrivals_are_strictly_monotone() {
        let cfg = LoadGenConfig::default();
        let mut prev = SimTime::ZERO;
        for n in 0..2_000 {
            let at = cfg.request(n).arrival;
            if n > 0 {
                assert!(at > prev, "request {n} arrives after its predecessor");
            }
            prev = at;
        }
    }

    #[test]
    fn site_preference_is_head_heavy() {
        let cfg = LoadGenConfig {
            n_requests: 20_000,
            ..LoadGenConfig::default()
        };
        let mut head = 0u64;
        for n in 0..cfg.n_requests {
            if cfg.request(n).rank as u64 <= cfg.n_sites / 10 {
                head += 1;
            }
        }
        // Zipf s=1 over 200 sites puts well over half the mass on the
        // top decile; require a conservative margin.
        assert!(
            head * 2 > cfg.n_requests,
            "top 10% of sites got {head}/{} requests",
            cfg.n_requests
        );
    }
}
