//! Per-provider circuit breakers: a deterministic closed/open/half-open
//! state machine keyed on a rolling window of outcomes.
//!
//! The breaker exists so a dead bidder stops costing its full timeout
//! on every auction. It is driven entirely by the simulation clock and
//! the outcome sequence — no wall clock, no randomness — so a replay of
//! the same `(seed, request stream)` reproduces every trip and probe
//! byte-for-byte (proptested against a naive reference model in
//! `tests/breaker_proptest.rs`).
//!
//! State machine:
//!
//! * **Closed** — all traffic allowed. The last [`BreakerConfig::window`]
//!   outcomes live in a bitmask; when the window holds
//!   [`BreakerConfig::trip_failures`] failures the breaker opens (one
//!   *trip*) and the window clears.
//! * **Open** — no traffic until [`BreakerConfig::cooldown`] elapses;
//!   the first `allow` at/after the reopen time moves to half-open.
//!   Late results from before the trip are ignored.
//! * **Half-open** — exactly [`BreakerConfig::probes`] requests are
//!   allowed through. Every probe must succeed to close; the first
//!   probe failure re-opens (another trip) and restarts the cooldown.

use hb_simnet::{SimDuration, SimTime};

/// Breaker tuning. The window is a `u64` bitmask, so `window <= 64`.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Rolling outcomes tracked while closed (1..=64).
    pub window: u32,
    /// Failures within the window that trip the breaker.
    pub trip_failures: u32,
    /// How long an open breaker rejects before probing.
    pub cooldown: SimDuration,
    /// Probe requests allowed in half-open; all must succeed to close.
    pub probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            trip_failures: 8,
            cooldown: SimDuration::from_millis(2_000),
            probes: 2,
        }
    }
}

impl BreakerConfig {
    fn window_bits(&self) -> u32 {
        self.window.clamp(1, 64)
    }
}

/// Observable breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; outcomes fill the rolling window.
    Closed,
    /// Rejecting until the cooldown elapses.
    Open,
    /// Letting a bounded probe budget through.
    HalfOpen,
}

/// One provider's circuit breaker.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Rolling outcome bits while closed (bit 0 = newest, 1 = failure).
    bits: u64,
    /// Outcomes currently tracked (≤ window).
    filled: u32,
    /// Failures among tracked outcomes.
    fails: u32,
    /// When an open breaker may move to half-open.
    reopen_at: SimTime,
    /// Probe permits left in half-open.
    probes_left: u32,
    /// Probe successes collected in half-open.
    probe_successes: u32,
    /// Closed→open transitions (including half-open re-trips).
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            bits: 0,
            filled: 0,
            fails: 0,
            reopen_at: SimTime::ZERO,
            probes_left: 0,
            probe_successes: 0,
            trips: 0,
        }
    }

    /// Current state (after any cooldown that elapsed by `now`, the
    /// state reported to callers is still the stored one — transitions
    /// happen in `allow`, keeping the machine single-stepped).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total times the breaker tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// May a request go out now? In half-open, a `true` answer consumes
    /// one probe permit, so callers must send the request they asked
    /// about.
    pub fn allow(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now < self.reopen_at {
                    return false;
                }
                self.state = BreakerState::HalfOpen;
                self.probes_left = self.cfg.probes.max(1);
                self.probe_successes = 0;
                self.probes_left -= 1;
                true
            }
            BreakerState::HalfOpen => {
                if self.probes_left == 0 {
                    return false;
                }
                self.probes_left -= 1;
                true
            }
        }
    }

    /// Record a provider answer (any response, including no-bid).
    pub fn record_success(&mut self, _now: SimTime) {
        match self.state {
            BreakerState::Closed => self.push(false),
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.cfg.probes.max(1) {
                    self.state = BreakerState::Closed;
                    self.bits = 0;
                    self.filled = 0;
                    self.fails = 0;
                }
            }
            // A straggler from before the trip: ignore.
            BreakerState::Open => {}
        }
    }

    /// Record a timeout/failure.
    pub fn record_failure(&mut self, now: SimTime) {
        match self.state {
            BreakerState::Closed => {
                self.push(true);
                if self.fails >= self.cfg.trip_failures.max(1) {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.reopen_at = now.saturating_add(self.cfg.cooldown);
        self.trips += 1;
        self.bits = 0;
        self.filled = 0;
        self.fails = 0;
        self.probes_left = 0;
        self.probe_successes = 0;
    }

    fn push(&mut self, fail: bool) {
        let window = self.cfg.window_bits();
        if self.filled == window {
            let oldest = (self.bits >> (window - 1)) & 1;
            self.fails -= oldest as u32;
        } else {
            self.filled += 1;
        }
        self.bits = (self.bits << 1) | fail as u64;
        if window < 64 {
            self.bits &= (1u64 << window) - 1;
        }
        self.fails += fail as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            trip_failures: 3,
            cooldown: SimDuration::from_millis(100),
            probes: 2,
        }
    }

    #[test]
    fn trips_on_windowed_failures() {
        let mut b = CircuitBreaker::new(cfg());
        let t = SimTime::from_millis(1);
        b.record_failure(t);
        b.record_failure(t);
        assert_eq!(b.state(), BreakerState::Closed);
        // A success pushes one failure toward the edge of the window.
        b.record_success(t);
        b.record_failure(t);
        // Window now [F,S,F,F] = 3 failures → trip.
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.allow(SimTime::from_millis(50)), "cooldown rejects");
    }

    #[test]
    fn window_forgets_old_failures() {
        let mut b = CircuitBreaker::new(cfg());
        let t = SimTime::from_millis(1);
        // Two failures, then a run of successes that evicts them.
        b.record_failure(t);
        b.record_failure(t);
        for _ in 0..4 {
            b.record_success(t);
        }
        b.record_failure(t);
        b.record_failure(t);
        // Only two failures in the window: still closed.
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probes_then_close_or_reopen() {
        let mut b = CircuitBreaker::new(cfg());
        let t = SimTime::from_millis(1);
        for _ in 0..3 {
            b.record_failure(t);
        }
        assert_eq!(b.state(), BreakerState::Open);
        let after = SimTime::from_millis(101);
        // Exactly `probes` permits.
        assert!(b.allow(after));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow(after));
        assert!(!b.allow(after), "probe budget spent");
        // Both probes succeed → closed, window fresh.
        b.record_success(after);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success(after);
        assert_eq!(b.state(), BreakerState::Closed);

        // Trip again; a probe failure re-opens with a fresh cooldown.
        for _ in 0..3 {
            b.record_failure(after);
        }
        let probe_at = after.saturating_add(SimDuration::from_millis(100));
        assert!(b.allow(probe_at));
        b.record_failure(probe_at);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 3);
        assert!(!b.allow(probe_at.saturating_add(SimDuration::from_millis(99))));
        assert!(b.allow(probe_at.saturating_add(SimDuration::from_millis(100))));
    }

    #[test]
    fn late_results_while_open_are_ignored() {
        let mut b = CircuitBreaker::new(cfg());
        let t = SimTime::from_millis(1);
        for _ in 0..3 {
            b.record_failure(t);
        }
        let trips = b.trips();
        b.record_success(t);
        b.record_failure(t);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), trips, "stragglers don't re-trip");
    }
}
