//! The auction orchestrator: serving-side mediation with a robustness
//! envelope.
//!
//! One [`ServeWorld`] per serving shard runs admitted [`AdRequest`]s
//! through the site's provider legs ([`hb_adtech::providers_for`]):
//! parallel header bidding, ad-server/S2S mediation, then the
//! sequential waterfall — all under one per-request **deadline budget**
//! that every leg inherits (a leg's timeout is clamped to the remaining
//! budget) and that a backstop event enforces: by `arrival + budget`
//! the auction has resolved to a winner, a passback, or a shed, and
//! every event it ever scheduled is cancelled, so no orchestrator
//! future outlives its request.
//!
//! Degradations are first-class and deterministic in `(seed, request)`:
//!
//! * **circuit breakers** ([`CircuitBreaker`]) per provider *host*
//!   (the failure domain) skip legs whose breaker is open;
//! * **hedged requests**: an HB leg that outruns the provider's
//!   observed latency quantile fires one backup request; first answer
//!   wins, the loser's arrival is cancelled;
//! * **admission control**: at most [`ServeConfig::max_in_flight`]
//!   auctions run concurrently; overload resolves immediately to an
//!   explicit [`Decision::Shed`].
//!
//! Every auction draws from its own derived rng stream
//! (`seed → "serve" → request id`), so concurrency never reorders
//! randomness; shard worlds are single-threaded simulations, and the
//! shard partition is fixed by config — worker threads only decide
//! *who* runs a shard, never *what* it computes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use hb_adtech::{
    hb_bid_request, hb_bids_from, mediation_request, mediation_winner, providers_for,
    tier_fill, tier_request, BidPayload, FillChannel, Net, ProviderKind, ProviderSpec,
    SiteRuntime, WinnerPayload,
};
use hb_ecosystem::{SiteFactory, SiteGen};
use hb_http::{RequestId, Response};
use hb_simnet::{
    EventId, FaultDecision, HStr, Rng, Scheduler, SimDuration, SimTime, Simulation, StopReason,
};
use hb_stats::LogHistogram;

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::loadgen::LoadGenConfig;
use crate::request::{AdRequest, AuctionOutcome, Channel, Decision};

/// Orchestrator tuning. Defaults give a 1s budget over 300/400/250ms
/// leg timeouts, p90 hedging, and 64 concurrent auctions per shard.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Root seed of the serving plane (rng streams derive from it).
    pub seed: u64,
    /// Per-request deadline budget; the orchestrator always answers by
    /// `arrival + budget`.
    pub budget: SimDuration,
    /// Concurrent auctions admitted per shard; beyond this, requests
    /// shed explicitly.
    pub max_in_flight: u32,
    /// Parallel HB leg timeout (clamped to remaining budget).
    pub hb_timeout: SimDuration,
    /// Ad-server mediation leg timeout (clamped to remaining budget).
    pub mediation_timeout: SimDuration,
    /// Per-tier waterfall timeout (clamped to remaining budget).
    pub tier_timeout: SimDuration,
    /// Hedge trigger before a provider has latency history.
    pub hedge_after: SimDuration,
    /// Latency quantile that triggers a hedge once history exists.
    pub hedge_quantile: f64,
    /// Provider responses required before the quantile estimator is
    /// trusted over [`ServeConfig::hedge_after`].
    pub hedge_min_samples: u64,
    /// Waterfall early-abort: when the remaining budget drops below
    /// this, stop descending tiers and pass back (the Ting & Grislain
    /// abort decision — a tier that can't finish isn't worth starting).
    pub abort_margin: SimDuration,
    /// Circuit breaker tuning (shared by all providers).
    pub breaker: BreakerConfig,
    /// Fixed serving shard count. Part of the workload definition, NOT
    /// the worker count: results are byte-identical for any number of
    /// worker threads executing these shards.
    pub shards: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 0xAD_5EED,
            budget: SimDuration::from_millis(1_000),
            max_in_flight: 64,
            hb_timeout: SimDuration::from_millis(300),
            mediation_timeout: SimDuration::from_millis(400),
            tier_timeout: SimDuration::from_millis(250),
            hedge_after: SimDuration::from_millis(150),
            hedge_quantile: 0.9,
            hedge_min_samples: 32,
            abort_margin: SimDuration::from_millis(100),
            breaker: BreakerConfig::default(),
            shards: 8,
        }
    }
}

/// Counters of everything the serving plane did. All integers, so
/// cross-shard merges and cross-run comparisons are exact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests that reached the orchestrator.
    pub auctions: u64,
    /// Requests admitted past the in-flight gate.
    pub admitted: u64,
    /// Requests shed by admission control.
    pub sheds: u64,
    /// Fills won by parallel-HB bids.
    pub wins_hb: u64,
    /// Fills won by server-side seats via mediation.
    pub wins_s2s: u64,
    /// Fills won by waterfall tiers.
    pub wins_waterfall: u64,
    /// Fills won by direct orders.
    pub wins_direct: u64,
    /// Fills by the ad server's house line.
    pub wins_house: u64,
    /// Auctions that resolved with no fill at all.
    pub passbacks: u64,
    /// Fills resolved from held client bids after the mediation leg
    /// failed or was breaker-skipped (the degraded answer).
    pub degraded_fills: u64,
    /// Provider legs that hit their timeout.
    pub provider_timeouts: u64,
    /// Hedge requests fired.
    pub hedges_fired: u64,
    /// Hedges that beat their primary.
    pub hedge_wins: u64,
    /// Legs skipped because a breaker was open.
    pub breaker_skips: u64,
    /// Circuit breaker trips across all providers.
    pub breaker_trips: u64,
    /// Waterfall descents cut short by the abort margin.
    pub wf_aborts: u64,
    /// Auctions resolved by the budget backstop event.
    pub budget_exhausted: u64,
}

impl ServeStats {
    /// Fold another shard's counters in (plain addition).
    pub fn merge(&mut self, o: &ServeStats) {
        self.auctions += o.auctions;
        self.admitted += o.admitted;
        self.sheds += o.sheds;
        self.wins_hb += o.wins_hb;
        self.wins_s2s += o.wins_s2s;
        self.wins_waterfall += o.wins_waterfall;
        self.wins_direct += o.wins_direct;
        self.wins_house += o.wins_house;
        self.passbacks += o.passbacks;
        self.degraded_fills += o.degraded_fills;
        self.provider_timeouts += o.provider_timeouts;
        self.hedges_fired += o.hedges_fired;
        self.hedge_wins += o.hedge_wins;
        self.breaker_skips += o.breaker_skips;
        self.breaker_trips += o.breaker_trips;
        self.wf_aborts += o.wf_aborts;
        self.budget_exhausted += o.budget_exhausted;
    }

    /// Total fills (any channel).
    pub fn fills(&self) -> u64 {
        self.wins_hb
            + self.wins_s2s
            + self.wins_waterfall
            + self.wins_direct
            + self.wins_house
    }
}

/// Per-provider health: the breaker plus the latency history feeding
/// the hedge trigger.
struct ProviderHealth {
    breaker: CircuitBreaker,
    latency: LogHistogram,
}

/// Auction phase; legs advance strictly forward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Hb,
    Mediation,
    Waterfall,
}

/// One in-flight parallel-HB leg.
struct Leg {
    provider: usize,
    done: bool,
    sent_at: SimTime,
    hedge_sent_at: SimTime,
    timeout_at: SimTime,
    arrival: Option<EventId>,
    timeout: EventId,
    hedge_fire: Option<EventId>,
    hedge_arrival: Option<EventId>,
}

/// One admitted auction's live state.
struct Auction {
    req: AdRequest,
    started: SimTime,
    deadline: SimTime,
    rng: Rng,
    site: Arc<SiteRuntime>,
    providers: Vec<ProviderSpec>,
    label: HStr,
    budget_ev: EventId,
    phase: Phase,
    hb_open: u32,
    legs: Vec<Leg>,
    bids: Vec<BidPayload>,
    best_hb: Option<(u64, HStr)>,
    med_arrival: Option<EventId>,
    med_timeout: Option<EventId>,
    wf_idx: usize,
    wf_arrival: Option<EventId>,
    wf_timeout: Option<EventId>,
    hedges_fired: u32,
    hedge_wins: u32,
    breaker_skips: u32,
}

/// Slot with a generation stamp: every event closure captures
/// `(slot, gen)` and no-ops when the generation moved on, so late
/// events from a resolved auction can never touch its successor.
struct Slot {
    gen: u32,
    auction: Option<Auction>,
}

/// Where a shard's requests come from.
enum Source {
    /// Explicit request list (tests).
    List(Vec<AdRequest>),
    /// Generated on demand from the load model; the shard runs request
    /// numbers `shard, shard + shards, shard + 2*shards, …`.
    Gen(LoadGenConfig),
}

/// The per-shard serving world driven by a [`Simulation`].
pub struct ServeWorld {
    cfg: ServeConfig,
    net: Net,
    gen: Arc<SiteGen>,
    source: Source,
    root_rng: Rng,
    next_req_id: u64,
    auctions: Vec<Slot>,
    free: Vec<usize>,
    in_flight: u32,
    health: HashMap<HStr, ProviderHealth>,
    hist: LogHistogram,
    stats: ServeStats,
    digest: u64,
    outcomes: Option<Vec<AuctionOutcome>>,
    last_resolve: SimTime,
}

impl ServeWorld {
    fn new(
        cfg: ServeConfig,
        net: Net,
        gen: Arc<SiteGen>,
        source: Source,
        shard: u32,
        collect: bool,
    ) -> ServeWorld {
        ServeWorld {
            root_rng: Rng::new(cfg.seed).derive_str("serve").derive(shard as u64),
            cfg,
            net,
            gen,
            source,
            next_req_id: 0,
            auctions: Vec::new(),
            free: Vec::new(),
            in_flight: 0,
            health: HashMap::new(),
            hist: LogHistogram::new(),
            stats: ServeStats::default(),
            digest: 0,
            outcomes: collect.then(Vec::new),
            last_resolve: SimTime::ZERO,
        }
    }

    fn health_mut(&mut self, host: &HStr) -> &mut ProviderHealth {
        let breaker = self.cfg.breaker;
        self.health
            .entry(host.clone())
            .or_insert_with(|| ProviderHealth {
                breaker: CircuitBreaker::new(breaker),
                latency: LogHistogram::new(),
            })
    }

    /// Hedge trigger for a provider: its observed latency quantile once
    /// enough history exists, the static `hedge_after` before that.
    fn hedge_delay(&self, host: &HStr) -> SimDuration {
        match self.health.get(host) {
            Some(h) if h.latency.count() >= self.cfg.hedge_min_samples => {
                SimDuration(h.latency.value_at_quantile(self.cfg.hedge_quantile))
            }
            _ => self.cfg.hedge_after,
        }
    }

    fn next_request_id(&mut self) -> RequestId {
        self.next_req_id += 1;
        RequestId(self.next_req_id)
    }
}

/// Eagerly run one network exchange the way the crawl's `send_request`
/// does (fault decision, latency sample, endpoint handling — all at
/// dispatch), returning the arrival delay and response, or `None` when
/// the request is dropped/unroutable. The caller's leg timeout is the
/// only thing that fires for a `None` — the serving plane never
/// schedules a 30s browser-style timeout, which is what keeps "every
/// provider down" runs idle by the budget.
fn exchange(
    net: &Net,
    rng: &mut Rng,
    req: &hb_http::Request,
) -> Option<(SimDuration, Response)> {
    let host = req.url.host.clone();
    let Some(ep) = net.router.resolve(&host) else {
        return None;
    };
    let extra = match net.faults.decide(&host, rng) {
        FaultDecision::Drop => return None,
        FaultDecision::Slow(penalty) => penalty,
        FaultDecision::Deliver => SimDuration::ZERO,
    };
    let rtt = net.latency.lookup(&host).sample(rng);
    let reply = ep.handle(req, rng);
    Some((
        rtt.saturating_add(reply.processing).saturating_add(extra),
        reply.response,
    ))
}

/// Look up the live auction in `slot` iff its generation still matches.
macro_rules! live_auction {
    ($w:expr, $slot:expr, $gen:expr) => {{
        let s = &mut $w.auctions[$slot];
        if s.gen != $gen {
            return;
        }
        match s.auction.as_mut() {
            Some(a) => a,
            None => return,
        }
    }};
}

/// Admit (or shed) one request and start its auction.
pub fn start_auction(w: &mut ServeWorld, s: &mut Scheduler<ServeWorld>, req: AdRequest) {
    w.stats.auctions += 1;
    if w.in_flight >= w.cfg.max_in_flight {
        w.stats.sheds += 1;
        finish_outcome(
            w,
            s.now(),
            AuctionOutcome {
                request: req.id,
                rank: req.rank,
                decision: Decision::Shed,
                latency: SimDuration::ZERO,
                hedges_fired: 0,
                hedge_wins: 0,
                breaker_skips: 0,
            },
        );
        return;
    }
    w.in_flight += 1;
    w.stats.admitted += 1;

    let site = w.gen.runtime_shared(req.rank);
    let providers = providers_for(&site);
    let rng = w.root_rng.derive(req.id);
    let label = HStr::from_display(format_args!("srv-{}", req.id));
    let now = s.now();

    let slot = match w.free.pop() {
        Some(i) => i,
        None => {
            w.auctions.push(Slot {
                gen: 0,
                auction: None,
            });
            w.auctions.len() - 1
        }
    };
    let gen = w.auctions[slot].gen;
    // The budget backstop: scheduled before any leg event at the same
    // instant, so at the deadline it resolves first and cancels them.
    let budget_ev = s.after(w.cfg.budget, move |w, s| on_budget(w, s, slot, gen));
    w.auctions[slot].auction = Some(Auction {
        started: now,
        deadline: now.saturating_add(w.cfg.budget),
        rng,
        site,
        providers,
        label,
        budget_ev,
        phase: Phase::Hb,
        hb_open: 0,
        legs: Vec::new(),
        bids: Vec::new(),
        best_hb: None,
        med_arrival: None,
        med_timeout: None,
        wf_idx: 0,
        wf_arrival: None,
        wf_timeout: None,
        hedges_fired: 0,
        hedge_wins: 0,
        breaker_skips: 0,
        req,
    });
    begin_hb(w, s, slot, gen);
}

/// Fan out the parallel-HB legs (breaker permitting); advance straight
/// on when the site has none to send.
fn begin_hb(w: &mut ServeWorld, s: &mut Scheduler<ServeWorld>, slot: usize, gen: u32) {
    let now = s.now();
    let a = live_auction!(w, slot, gen);
    let hb_providers: Vec<usize> = a
        .providers
        .iter()
        .enumerate()
        .filter(|(_, p)| p.kind == ProviderKind::ParallelHb)
        .map(|(i, _)| i)
        .collect();
    for pi in hb_providers {
        let host = w.auctions[slot].auction.as_ref().unwrap().providers[pi]
            .host
            .clone();
        let allowed = w.health_mut(&host).breaker.allow(now);
        if !allowed {
            let a = w.auctions[slot].auction.as_mut().unwrap();
            a.breaker_skips += 1;
            w.stats.breaker_skips += 1;
            continue;
        }
        dispatch_hb_leg(w, s, slot, gen, pi);
    }
    let a = w.auctions[slot].auction.as_mut().unwrap();
    if a.hb_open == 0 {
        after_hb(w, s, slot, gen);
    }
}

/// Send one HB leg's primary request and arm its timeout + hedge.
fn dispatch_hb_leg(
    w: &mut ServeWorld,
    s: &mut Scheduler<ServeWorld>,
    slot: usize,
    gen: u32,
    provider: usize,
) {
    let now = s.now();
    let id = w.next_request_id();
    let a = w.auctions[slot].auction.as_mut().unwrap();
    let spec = a.providers[provider].clone();
    let timeout_at = now
        .saturating_add(w.cfg.hb_timeout)
        .min(a.deadline);
    let request = hb_bid_request(
        id,
        &spec.host,
        &spec.code,
        a.label.as_str(),
        &a.site.ad_units,
        false,
    );
    let outcome = exchange(&w.net, &mut a.rng, &request);
    let leg_idx = a.legs.len();
    a.hb_open += 1;
    let timeout = s.at(timeout_at, move |w, s| {
        on_leg_timeout(w, s, slot, gen, leg_idx)
    });
    let mut leg = Leg {
        provider,
        done: false,
        sent_at: now,
        hedge_sent_at: SimTime::ZERO,
        timeout_at,
        arrival: None,
        timeout,
        hedge_fire: None,
        hedge_arrival: None,
    };
    if let Some((delay, rsp)) = outcome {
        let at = now.saturating_add(delay);
        if at <= timeout_at {
            let bids = hb_bids_from(&rsp);
            leg.arrival = Some(s.at(at, move |w, s| {
                on_leg_arrival(w, s, slot, gen, leg_idx, false, bids)
            }));
        }
    }
    // Arm the hedge only if it would fire before the leg's timeout —
    // a hedge with no time to answer is pure cost.
    let hedge_at = now.saturating_add(w.hedge_delay(&spec.host));
    if hedge_at < timeout_at {
        leg.hedge_fire = Some(s.at(hedge_at, move |w, s| {
            on_hedge_fire(w, s, slot, gen, leg_idx)
        }));
    }
    let a = w.auctions[slot].auction.as_mut().unwrap();
    a.legs.push(leg);
}

/// The primary outran the provider's latency quantile: fire the backup.
fn on_hedge_fire(w: &mut ServeWorld, s: &mut Scheduler<ServeWorld>, slot: usize, gen: u32, leg: usize) {
    let now = s.now();
    let id = w.next_request_id();
    let a = live_auction!(w, slot, gen);
    if a.legs[leg].done {
        return;
    }
    a.legs[leg].hedge_fire = None;
    a.legs[leg].hedge_sent_at = now;
    let provider = a.legs[leg].provider;
    let spec = a.providers[provider].clone();
    let request = hb_bid_request(
        id,
        &spec.host,
        &spec.code,
        a.label.as_str(),
        &a.site.ad_units,
        true,
    );
    let outcome = exchange(&w.net, &mut a.rng, &request);
    a.hedges_fired += 1;
    w.stats.hedges_fired += 1;
    let timeout_at = a.legs[leg].timeout_at;
    if let Some((delay, rsp)) = outcome {
        let at = now.saturating_add(delay);
        if at <= timeout_at {
            let bids = hb_bids_from(&rsp);
            let a = w.auctions[slot].auction.as_mut().unwrap();
            a.legs[leg].hedge_arrival = Some(s.at(at, move |w, s| {
                on_leg_arrival(w, s, slot, gen, leg, true, bids)
            }));
        }
    }
}

/// An HB response landed (primary or hedge — first one wins the leg).
fn on_leg_arrival(
    w: &mut ServeWorld,
    s: &mut Scheduler<ServeWorld>,
    slot: usize,
    gen: u32,
    leg: usize,
    hedge: bool,
    bids: Option<Vec<BidPayload>>,
) {
    let now = s.now();
    let a = live_auction!(w, slot, gen);
    if a.legs[leg].done {
        return;
    }
    a.legs[leg].done = true;
    let l = &mut a.legs[leg];
    s.cancel(l.timeout);
    if let Some(e) = l.hedge_fire.take() {
        s.cancel(e);
    }
    let loser = if hedge { l.arrival.take() } else { l.hedge_arrival.take() };
    if let Some(e) = loser {
        s.cancel(e);
    }
    let sent = if hedge { l.hedge_sent_at } else { l.sent_at };
    let provider = l.provider;
    if hedge {
        a.hedge_wins += 1;
        w.stats.hedge_wins += 1;
    }
    let host = a.providers[provider].host.clone();
    let a = w.auctions[slot].auction.as_mut().unwrap();
    if let Some(bids) = bids {
        for b in bids {
            let milli = (b.cpm.0 * 1000.0).round() as u64;
            let better = match &a.best_hb {
                None => true,
                Some((best, _)) => milli > *best,
            };
            if better {
                a.best_hb = Some((milli, b.bidder.clone()));
            }
            a.bids.push(b);
        }
    }
    a.hb_open -= 1;
    let advance = a.hb_open == 0;
    let h = w.health_mut(&host);
    h.breaker.record_success(now);
    h.latency.record(now.saturating_since(sent).as_micros());
    if advance {
        after_hb(w, s, slot, gen);
    }
}

/// An HB leg (primary and any hedge) went unanswered in time.
fn on_leg_timeout(w: &mut ServeWorld, s: &mut Scheduler<ServeWorld>, slot: usize, gen: u32, leg: usize) {
    let now = s.now();
    let a = live_auction!(w, slot, gen);
    if a.legs[leg].done {
        return;
    }
    a.legs[leg].done = true;
    let l = &mut a.legs[leg];
    for e in [l.arrival.take(), l.hedge_fire.take(), l.hedge_arrival.take()]
        .into_iter()
        .flatten()
    {
        s.cancel(e);
    }
    let host = a.providers[l.provider].host.clone();
    a.hb_open -= 1;
    let advance = a.hb_open == 0;
    w.stats.provider_timeouts += 1;
    w.health_mut(&host).breaker.record_failure(now);
    if advance {
        after_hb(w, s, slot, gen);
    }
}

/// HB fan-out complete (or empty): mediate for HB sites, descend the
/// waterfall for waterfall sites.
fn after_hb(w: &mut ServeWorld, s: &mut Scheduler<ServeWorld>, slot: usize, gen: u32) {
    let a = live_auction!(w, slot, gen);
    if a.site.facet.is_some() {
        begin_mediation(w, s, slot, gen);
    } else {
        a.phase = Phase::Waterfall;
        wf_next(w, s, slot, gen);
    }
}

/// Send the ad-server mediation leg carrying the collected client bids.
fn begin_mediation(w: &mut ServeWorld, s: &mut Scheduler<ServeWorld>, slot: usize, gen: u32) {
    let now = s.now();
    let id = w.next_request_id();
    let a = live_auction!(w, slot, gen);
    a.phase = Phase::Mediation;
    let Some(spec) = a
        .providers
        .iter()
        .find(|p| p.kind == ProviderKind::S2sMediation)
        .cloned()
    else {
        resolve_degraded(w, s, slot, gen);
        return;
    };
    let allowed = w.health_mut(&spec.host).breaker.allow(now);
    if !allowed {
        let a = w.auctions[slot].auction.as_mut().unwrap();
        a.breaker_skips += 1;
        w.stats.breaker_skips += 1;
        resolve_degraded(w, s, slot, gen);
        return;
    }
    let a = w.auctions[slot].auction.as_mut().unwrap();
    let timeout_at = now
        .saturating_add(w.cfg.mediation_timeout)
        .min(a.deadline);
    let request = mediation_request(id, &spec.host, &spec.code, a.label.as_str(), &a.bids);
    let outcome = exchange(&w.net, &mut a.rng, &request);
    a.med_timeout = Some(s.at(timeout_at, move |w, s| {
        on_mediation_timeout(w, s, slot, gen)
    }));
    if let Some((delay, rsp)) = outcome {
        let at = now.saturating_add(delay);
        if at <= timeout_at {
            let winner = mediation_winner(&rsp);
            let a = w.auctions[slot].auction.as_mut().unwrap();
            a.med_arrival = Some(s.at(at, move |w, s| {
                on_mediation_arrival(w, s, slot, gen, winner)
            }));
        }
    }
}

/// Mediation answered: the ad server's pick resolves the auction.
fn on_mediation_arrival(
    w: &mut ServeWorld,
    s: &mut Scheduler<ServeWorld>,
    slot: usize,
    gen: u32,
    winner: Option<WinnerPayload>,
) {
    let now = s.now();
    let a = live_auction!(w, slot, gen);
    if let Some(e) = a.med_timeout.take() {
        s.cancel(e);
    }
    a.med_arrival = None;
    let sent_host = a
        .providers
        .iter()
        .find(|p| p.kind == ProviderKind::S2sMediation)
        .map(|p| p.host.clone());
    let med_sent = a.started; // mediation starts after HB; latency below uses leg time
    let _ = med_sent;
    if let Some(host) = sent_host {
        let h = w.health_mut(&host);
        h.breaker.record_success(now);
    }
    let a = w.auctions[slot].auction.as_mut().unwrap();
    let decision = match winner {
        Some(win) => {
            let channel = match win.channel {
                FillChannel::HeaderBid => {
                    if a.bids.iter().any(|b| b.bidder == win.bidder) {
                        Channel::Hb
                    } else {
                        Channel::S2s
                    }
                }
                FillChannel::DirectOrder => Channel::Direct,
                FillChannel::Fallback => Channel::House,
                FillChannel::Unfilled => unreachable!("mediation_winner filters unfilled"),
            };
            let bidder = if win.bidder.as_str().is_empty() {
                HStr::from_static(match channel {
                    Channel::Direct => "direct-order",
                    _ => "house",
                })
            } else {
                win.bidder.clone()
            };
            Decision::Won {
                bidder,
                price_milli: (win.pb.0 * 1000.0).round() as u64,
                channel,
            }
        }
        None => Decision::Passback,
    };
    resolve(w, s, slot, decision);
}

/// Mediation timed out: degrade to the best held client bid.
fn on_mediation_timeout(w: &mut ServeWorld, s: &mut Scheduler<ServeWorld>, slot: usize, gen: u32) {
    let now = s.now();
    let a = live_auction!(w, slot, gen);
    if let Some(e) = a.med_arrival.take() {
        s.cancel(e);
    }
    a.med_timeout = None;
    let host = a
        .providers
        .iter()
        .find(|p| p.kind == ProviderKind::S2sMediation)
        .map(|p| p.host.clone());
    w.stats.provider_timeouts += 1;
    if let Some(host) = host {
        w.health_mut(&host).breaker.record_failure(now);
    }
    resolve_degraded(w, s, slot, gen);
}

/// The mediation leg is unavailable (timed out, breaker-open, or
/// absent): answer with the best client bid if any bid is held,
/// otherwise pass back. This is the robustness envelope's degraded
/// fill — a worse answer beats no answer.
fn resolve_degraded(w: &mut ServeWorld, s: &mut Scheduler<ServeWorld>, slot: usize, gen: u32) {
    let a = live_auction!(w, slot, gen);
    match a.best_hb.clone() {
        Some((milli, bidder)) => {
            w.stats.degraded_fills += 1;
            resolve(
                w,
                s,
                slot,
                Decision::Won {
                    bidder,
                    price_milli: milli,
                    channel: Channel::Hb,
                },
            );
        }
        None => resolve(w, s, slot, Decision::Passback),
    }
}

/// Descend to the next eligible waterfall tier, abort when the
/// remaining budget can't cover another attempt, pass back when the
/// chain is exhausted.
fn wf_next(w: &mut ServeWorld, s: &mut Scheduler<ServeWorld>, slot: usize, gen: u32) {
    let now = s.now();
    loop {
        let a = live_auction!(w, slot, gen);
        let n = a.providers.len();
        // Find the next waterfall tier at/after wf_idx.
        let mut idx = a.wf_idx;
        let tier = loop {
            if idx >= n {
                break None;
            }
            if let ProviderKind::Waterfall { floor } = a.providers[idx].kind {
                break Some((idx, floor));
            }
            idx += 1;
        };
        let Some((idx, floor)) = tier else {
            resolve(w, s, slot, Decision::Passback);
            return;
        };
        let remaining = a.deadline.saturating_since(now);
        if remaining < w.cfg.abort_margin {
            // Ting & Grislain abort: a tier with no time to answer is
            // not worth starting; take the passback now.
            w.stats.wf_aborts += 1;
            resolve(w, s, slot, Decision::Passback);
            return;
        }
        a.wf_idx = idx + 1;
        let host = a.providers[idx].host.clone();
        let allowed = w.health_mut(&host).breaker.allow(now);
        if !allowed {
            let a = w.auctions[slot].auction.as_mut().unwrap();
            a.breaker_skips += 1;
            w.stats.breaker_skips += 1;
            continue; // skip the dead tier without paying its timeout
        }
        let id = w.next_request_id();
        let a = w.auctions[slot].auction.as_mut().unwrap();
        let size = a
            .site
            .ad_units
            .first()
            .map(|u| u.primary_size())
            .unwrap_or(hb_adtech::AdSize::MEDIUM_RECT);
        let cb = a.rng.below(1_000_000_000);
        let request = tier_request(id, &host, floor, size, cb);
        let timeout_at = now.saturating_add(w.cfg.tier_timeout).min(a.deadline);
        let outcome = exchange(&w.net, &mut a.rng, &request);
        a.wf_timeout = Some(s.at(timeout_at, move |w, s| {
            on_tier_timeout(w, s, slot, gen, idx)
        }));
        if let Some((delay, rsp)) = outcome {
            let at = now.saturating_add(delay);
            if at <= timeout_at {
                let fill = tier_fill(&rsp);
                let a = w.auctions[slot].auction.as_mut().unwrap();
                a.wf_arrival = Some(s.at(at, move |w, s| {
                    on_tier_arrival(w, s, slot, gen, idx, fill)
                }));
            }
        }
        return;
    }
}

/// A tier answered: fill resolves, passback descends.
fn on_tier_arrival(
    w: &mut ServeWorld,
    s: &mut Scheduler<ServeWorld>,
    slot: usize,
    gen: u32,
    idx: usize,
    fill: Option<hb_adtech::Cpm>,
) {
    let now = s.now();
    let a = live_auction!(w, slot, gen);
    if let Some(e) = a.wf_timeout.take() {
        s.cancel(e);
    }
    a.wf_arrival = None;
    let host = a.providers[idx].host.clone();
    let code = a.providers[idx].code.clone();
    w.health_mut(&host).breaker.record_success(now);
    match fill {
        Some(price) => resolve(
            w,
            s,
            slot,
            Decision::Won {
                bidder: code,
                price_milli: (price.0 * 1000.0).round() as u64,
                channel: Channel::Waterfall,
            },
        ),
        None => wf_next(w, s, slot, gen),
    }
}

/// A tier went unanswered: record the failure and descend.
fn on_tier_timeout(
    w: &mut ServeWorld,
    s: &mut Scheduler<ServeWorld>,
    slot: usize,
    gen: u32,
    idx: usize,
) {
    let now = s.now();
    let a = live_auction!(w, slot, gen);
    if let Some(e) = a.wf_arrival.take() {
        s.cancel(e);
    }
    a.wf_timeout = None;
    let host = a.providers[idx].host.clone();
    w.stats.provider_timeouts += 1;
    w.health_mut(&host).breaker.record_failure(now);
    wf_next(w, s, slot, gen);
}

/// The budget backstop fired: answer with whatever is held, now.
fn on_budget(w: &mut ServeWorld, s: &mut Scheduler<ServeWorld>, slot: usize, gen: u32) {
    {
        let a = live_auction!(w, slot, gen);
        let _ = a;
    }
    w.stats.budget_exhausted += 1;
    resolve_degraded(w, s, slot, gen);
}

/// Resolve an admitted auction: cancel every outstanding event it owns,
/// record latency, account the decision, free the slot.
fn resolve(w: &mut ServeWorld, s: &mut Scheduler<ServeWorld>, slot: usize, decision: Decision) {
    let now = s.now();
    let Some(a) = w.auctions[slot].auction.take() else {
        return;
    };
    w.auctions[slot].gen = w.auctions[slot].gen.wrapping_add(1);
    s.cancel(a.budget_ev);
    for l in &a.legs {
        s.cancel(l.timeout);
        for e in [l.arrival, l.hedge_fire, l.hedge_arrival].into_iter().flatten() {
            s.cancel(e);
        }
    }
    for e in [a.med_arrival, a.med_timeout, a.wf_arrival, a.wf_timeout]
        .into_iter()
        .flatten()
    {
        s.cancel(e);
    }
    let latency = now.saturating_since(a.started);
    w.hist.record(latency.as_micros());
    w.in_flight -= 1;
    w.free.push(slot);
    finish_outcome(
        w,
        now,
        AuctionOutcome {
            request: a.req.id,
            rank: a.req.rank,
            decision,
            latency,
            hedges_fired: a.hedges_fired,
            hedge_wins: a.hedge_wins,
            breaker_skips: a.breaker_skips,
        },
    );
}

/// Account one finished outcome (fill channel counters, digest,
/// optional collection).
fn finish_outcome(w: &mut ServeWorld, now: SimTime, outcome: AuctionOutcome) {
    match &outcome.decision {
        Decision::Won { channel, .. } => match channel {
            Channel::Hb => w.stats.wins_hb += 1,
            Channel::S2s => w.stats.wins_s2s += 1,
            Channel::Waterfall => w.stats.wins_waterfall += 1,
            Channel::Direct => w.stats.wins_direct += 1,
            Channel::House => w.stats.wins_house += 1,
        },
        Decision::Passback => w.stats.passbacks += 1,
        Decision::Shed => {}
    }
    w.digest = outcome.fold_digest(w.digest);
    w.last_resolve = w.last_resolve.max(now);
    if let Some(out) = &mut w.outcomes {
        out.push(outcome);
    }
}

/// One shard's finished run.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Which shard this is.
    pub shard: u32,
    /// Order-sensitive digest over every outcome (see
    /// [`AuctionOutcome::fold_digest`]).
    pub digest: u64,
    /// The shard's counters (breaker trips folded in).
    pub stats: ServeStats,
    /// Admitted-auction latency histogram (microseconds).
    pub hist: LogHistogram,
    /// Collected outcomes (empty unless `collect` was requested).
    pub outcomes: Vec<AuctionOutcome>,
    /// Simulation time when the shard went idle — with the deadline
    /// invariant holding, at most `last arrival + budget`.
    pub end: SimTime,
    /// Requests the shard processed.
    pub requests: u64,
}

/// A full serving run: per-shard reports in shard order plus the
/// deterministic merge.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-shard reports, indexed by shard.
    pub shards: Vec<ShardReport>,
    /// Counters merged across shards.
    pub stats: ServeStats,
    /// Latency histogram merged across shards (commutative merge, so
    /// identical for any worker count).
    pub hist: LogHistogram,
}

impl ServeReport {
    /// Digest of the whole run: shard digests folded in shard order.
    pub fn digest(&self) -> u64 {
        let mut h = 0u64;
        for sh in &self.shards {
            h = h ^ sh.digest.rotate_left((sh.shard % 63) + 1);
        }
        h
    }

    /// p50/p99/p999 admitted-auction latency in milliseconds.
    pub fn latency_ms(&self) -> (f64, f64, f64) {
        let (p50, p99, p999) = self.hist.p50_p99_p999();
        (
            p50 as f64 / 1_000.0,
            p99 as f64 / 1_000.0,
            p999 as f64 / 1_000.0,
        )
    }
}

/// Run one serving shard to completion on the current thread.
fn run_shard(
    gen: &Arc<SiteGen>,
    net: &Net,
    cfg: &ServeConfig,
    source: Source,
    shard: u32,
    collect: bool,
) -> ShardReport {
    let world = ServeWorld::new(*cfg, net.clone(), gen.clone(), source, shard, collect);
    let mut sim = Simulation::new(world);
    let shards = cfg.shards.max(1) as u64;
    match &sim.world().source {
        Source::List(reqs) => {
            let reqs = reqs.clone();
            let s = sim.scheduler();
            for req in reqs {
                s.at(req.arrival, move |w, s| start_auction(w, s, req.clone()));
            }
        }
        Source::Gen(load) => {
            let load = *load;
            let first = shard as u64;
            if first < load.n_requests {
                let req = load.request(first);
                sim.scheduler().at(req.arrival, move |w, s| {
                    on_generated_arrival(w, s, first, shards)
                });
            }
        }
    }
    let stop = sim.run_to_idle(u64::MAX);
    debug_assert!(matches!(stop, StopReason::Idle));
    let end = sim.now();
    let mut world = sim.into_world();
    let trips: u64 = world.health.values().map(|h| h.breaker.trips()).sum();
    world.stats.breaker_trips = trips;
    ShardReport {
        shard,
        digest: world.digest,
        stats: world.stats,
        hist: world.hist,
        outcomes: world.outcomes.take().unwrap_or_default(),
        end,
        requests: world.stats.auctions,
    }
}

/// A generated request arrives: start its auction and lazily schedule
/// the shard's next arrival, so the event queue stays O(in-flight).
fn on_generated_arrival(w: &mut ServeWorld, s: &mut Scheduler<ServeWorld>, n: u64, shards: u64) {
    let Source::Gen(load) = &w.source else {
        return;
    };
    let load = *load;
    let req = load.request(n);
    let next = n + shards;
    if next < load.n_requests {
        let at = load.request(next).arrival;
        s.at(at, move |w, s| on_generated_arrival(w, s, next, shards));
    }
    start_auction(w, s, req);
}

/// Serve a generated load across `workers` threads. The shard set and
/// every shard's computation are fixed by `(cfg, load)`; workers only
/// claim shards, so any worker count produces byte-identical reports.
pub fn serve_load(
    factory: &SiteFactory,
    cfg: &ServeConfig,
    load: &LoadGenConfig,
    workers: usize,
    collect: bool,
) -> ServeReport {
    serve_load_with(factory.gen(), &factory.net(), cfg, load, workers, collect)
}

/// [`serve_load`] with an explicit network handle (scenario-degraded
/// fault injectors, custom latency directories).
pub fn serve_load_with(
    gen: &Arc<SiteGen>,
    net: &Net,
    cfg: &ServeConfig,
    load: &LoadGenConfig,
    workers: usize,
    collect: bool,
) -> ServeReport {
    let shards = cfg.shards.max(1);
    let next = AtomicU32::new(0);
    let mut slots: Vec<Option<ShardReport>> = (0..shards).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.max(1))
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let sh = next.fetch_add(1, Ordering::Relaxed);
                        if sh >= shards {
                            break;
                        }
                        done.push(run_shard(gen, net, cfg, Source::Gen(*load), sh, collect));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for r in h.join().expect("serving worker") {
                let idx = r.shard as usize;
                slots[idx] = Some(r);
            }
        }
    });
    merge_reports(slots.into_iter().map(|r| r.expect("every shard ran")))
}

/// Run an explicit request list through a single shard (test entry:
/// precise arrival control, collected outcomes).
pub fn serve_requests(
    gen: &Arc<SiteGen>,
    net: &Net,
    cfg: &ServeConfig,
    requests: Vec<AdRequest>,
) -> ShardReport {
    run_shard(gen, net, cfg, Source::List(requests), 0, true)
}

fn merge_reports(reports: impl Iterator<Item = ShardReport>) -> ServeReport {
    let mut shards = Vec::new();
    let mut stats = ServeStats::default();
    let mut hist = LogHistogram::new();
    for r in reports {
        stats.merge(&r.stats);
        hist.merge(&r.hist);
        shards.push(r);
    }
    ServeReport {
        shards,
        stats,
        hist,
    }
}
