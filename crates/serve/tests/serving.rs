//! Acceptance tests for the serving plane's robustness envelope:
//! the deadline invariant, byte-identical determinism across worker
//! counts, and explicit load shedding under overload.

use std::sync::Arc;

use hb_ecosystem::{Ecosystem, EcosystemConfig, ScenarioConfig, SiteFactory};
use hb_serve::{
    serve_load_with, serve_requests, AdRequest, Decision, LoadGenConfig, ServeConfig,
};
use hb_simnet::{Dist, FaultInjector, HostFaultProfile, SimDuration, SimTime};

fn universe() -> Ecosystem {
    Ecosystem::generate(EcosystemConfig::tiny_scale().with_seed(0x5EE_D10))
}

/// A Net whose fault injector is replaced by the scenario's day-0 view.
fn degraded_net(factory: &SiteFactory, scenario: &ScenarioConfig) -> hb_adtech::Net {
    let inj = scenario.injector_for_day(&factory.faults(), 0);
    hb_adtech::Net::new(factory.router(), factory.latency(), Arc::new(inj))
}

/// The first `n` partner hosts of the ecosystem catalog — a
/// deterministic provider slice to degrade.
fn partner_slice(factory: &SiteFactory, n: usize) -> Vec<String> {
    factory
        .gen()
        .specs
        .iter()
        .filter(|s| !s.is_ad_server)
        .take(n)
        .map(|s| s.host())
        .collect()
}

/// Deadline invariant: with EVERY provider unreachable (100% drop on
/// all hosts), every auction still resolves by `arrival + budget`, and
/// the shard simulation goes idle immediately after — no orchestrator
/// future outlives its request.
#[test]
fn deadline_invariant_under_total_outage() {
    let eco = universe();
    let f = eco.factory();
    let dead = FaultInjector::none().with_drop_chance(1.0);
    let net = hb_adtech::Net::new(f.router(), f.latency(), Arc::new(dead));
    let cfg = ServeConfig::default();

    let gap = SimDuration::from_millis(5);
    let n = 40u64;
    let requests: Vec<AdRequest> = (0..n)
        .map(|i| AdRequest {
            id: i,
            rank: (i % 30 + 1) as u32,
            user: i * 17,
            arrival: SimTime::ZERO.saturating_add(gap * i),
        })
        .collect();
    let last_arrival = requests.last().unwrap().arrival;

    let report = serve_requests(f.gen(), &net, &cfg, requests);

    assert_eq!(report.outcomes.len() as u64, n, "every request resolved");
    for o in &report.outcomes {
        assert!(
            o.latency <= cfg.budget,
            "request {} overran its budget: {}",
            o.request,
            o.latency
        );
        assert_eq!(
            o.decision,
            Decision::Passback,
            "no reachable demand can produce a fill"
        );
    }
    // The shard went idle by the last request's deadline: nothing the
    // orchestrator scheduled survived its auction.
    assert!(
        report.end <= last_arrival.saturating_add(cfg.budget),
        "simulation idled at {:?}, after the last deadline",
        report.end
    );
    assert!(report.stats.provider_timeouts > 0, "legs timed out");
    assert_eq!(report.stats.fills() + report.stats.passbacks, n);
}

/// Determinism: identical `(seed, request stream)` served by 1 worker
/// and by 8 workers produces byte-identical outcomes — including every
/// breaker trip, hedge, and shed — because the shard partition, not the
/// worker pool, defines the computation.
#[test]
fn determinism_across_worker_counts() {
    let eco = universe();
    let f = eco.factory();
    // Degrade a provider slice so the robustness envelope is exercised:
    // drops trip breakers, slowdowns outrun the hedge trigger.
    let lossy = HostFaultProfile {
        drop_chance: 0.45,
        slow_chance: 0.35,
        slow_penalty_ms: Dist::Const(220.0),
    };
    let scenario = ScenarioConfig::healthy().with_provider_slice(partner_slice(&f, 4), lossy);
    let net = degraded_net(&f, &scenario);

    let cfg = ServeConfig {
        shards: 8,
        ..ServeConfig::default()
    };
    let load = LoadGenConfig {
        n_requests: 1_600,
        n_sites: f.config().n_sites as u64,
        mean_gap: SimDuration::from_micros(400),
        ..LoadGenConfig::default()
    };

    let solo = serve_load_with(f.gen(), &net, &cfg, &load, 1, true);
    let pooled = serve_load_with(f.gen(), &net, &cfg, &load, 8, true);
    let replay = serve_load_with(f.gen(), &net, &cfg, &load, 3, true);

    assert_eq!(solo.digest(), pooled.digest(), "run digest");
    assert_eq!(solo.digest(), replay.digest(), "replay digest");
    assert_eq!(solo.stats, pooled.stats, "merged counters");
    for (a, b) in solo.shards.iter().zip(pooled.shards.iter()) {
        assert_eq!(a.shard, b.shard);
        assert_eq!(a.digest, b.digest, "shard {} digest", a.shard);
        assert_eq!(a.stats, b.stats, "shard {} stats", a.shard);
        assert_eq!(a.outcomes, b.outcomes, "shard {} outcomes", a.shard);
        assert_eq!(a.end, b.end, "shard {} end time", a.shard);
    }
    assert_eq!(
        solo.hist.p50_p99_p999(),
        pooled.hist.p50_p99_p999(),
        "merged latency distribution"
    );

    // The degraded slice actually pushed the envelope into action —
    // the determinism claim covers the interesting paths, not a
    // fault-free fast path.
    assert!(solo.stats.breaker_trips > 0, "breakers tripped");
    assert!(solo.stats.breaker_skips > 0, "open breakers skipped legs");
    assert!(solo.stats.hedges_fired > 0, "hedges fired");
    assert!(solo.stats.provider_timeouts > 0, "legs timed out");
    assert!(solo.stats.fills() > 0, "healthy demand still filled");
}

/// Overload: arrivals at ~2x the admission capacity shed explicitly,
/// never hang, and the p99 of *admitted* auctions stays within the
/// healthy budget.
#[test]
fn overload_sheds_instead_of_hanging() {
    let eco = universe();
    let f = eco.factory();
    let net = f.net();
    let cfg = ServeConfig {
        shards: 1,
        max_in_flight: 8,
        ..ServeConfig::default()
    };
    // Arrivals every 120us against a capacity of 8 in-flight auctions
    // that each hold their slot for hundreds of milliseconds: far past
    // 2x capacity, so admission control must act.
    let load = LoadGenConfig {
        n_requests: 1_200,
        n_sites: f.config().n_sites as u64,
        mean_gap: SimDuration::from_micros(120),
        ..LoadGenConfig::default()
    };

    let report = serve_load_with(f.gen(), &net, &cfg, &load, 1, true);
    let stats = &report.stats;

    assert_eq!(stats.auctions, load.n_requests, "every request answered");
    assert_eq!(stats.admitted + stats.sheds, stats.auctions);
    assert!(stats.sheds > 0, "overload must shed explicitly");
    assert!(stats.admitted > 0, "capacity still serves");
    let sheds_in_outcomes = report.shards[0]
        .outcomes
        .iter()
        .filter(|o| o.decision == Decision::Shed)
        .count() as u64;
    assert_eq!(sheds_in_outcomes, stats.sheds, "sheds are explicit outcomes");

    // Admitted auctions kept their latency promise despite overload.
    assert_eq!(report.hist.count(), stats.admitted);
    let (_, p99, p999) = report.hist.p50_p99_p999();
    assert!(
        p99 <= cfg.budget.as_micros(),
        "admitted p99 {}us within the {:?} budget",
        p99,
        cfg.budget
    );
    assert!(p999 <= cfg.budget.as_micros());

    // No hangs: the run ends within one budget of the last arrival.
    let horizon = load.horizon(cfg.budget);
    for sh in &report.shards {
        assert!(sh.end <= horizon, "shard {} idled late: {:?}", sh.shard, sh.end);
    }
}

/// Healthy traffic on an undisturbed network: fills dominate, nothing
/// sheds, nothing trips, and the three demand paths all serve.
#[test]
fn healthy_serving_fills_across_channels() {
    let eco = universe();
    let f = eco.factory();
    let cfg = ServeConfig {
        shards: 4,
        ..ServeConfig::default()
    };
    let load = LoadGenConfig {
        n_requests: 800,
        n_sites: f.config().n_sites as u64,
        mean_gap: SimDuration::from_micros(2_500),
        ..LoadGenConfig::default()
    };
    let report = serve_load_with(f.gen(), &f.net(), &cfg, &load, 4, false);
    let stats = &report.stats;

    assert_eq!(stats.auctions, load.n_requests);
    assert_eq!(stats.sheds, 0, "healthy load fits capacity");
    // Late-prone catalog partners legitimately trip on tail latency
    // even without injected faults; the envelope just must not be in
    // constant-degradation mode.
    assert!(
        stats.breaker_trips < 10,
        "healthy network trips stay rare: {}",
        stats.breaker_trips
    );
    assert!(
        stats.fills() * 2 > stats.auctions,
        "fills dominate: {} of {}",
        stats.fills(),
        stats.auctions
    );
    assert!(stats.wins_hb + stats.wins_s2s > 0, "header bidding serves");
    assert!(stats.wins_waterfall > 0, "waterfall sites serve");
}
