//! Property tests pinning the circuit breaker's bitmask state machine
//! against a naive reference model.
//!
//! The production breaker packs its rolling outcome window into a `u64`
//! bitmask for an allocation-free record path; the reference model here
//! keeps a plain `Vec<bool>` and follows the documented semantics as
//! literally as possible. Any divergence — state, permit decisions, or
//! trip counts — under arbitrary operation sequences is a bug in one of
//! them. A second property pins deterministic replay: the machine is a
//! pure fold over `(config, operation sequence)`.

use hb_serve::{BreakerConfig, BreakerState, CircuitBreaker};
use hb_simnet::{SimDuration, SimTime};
use proptest::prelude::*;

/// The naive reference: a Vec-backed window and explicit transitions.
struct ModelBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    window: Vec<bool>, // true = failure, newest last
    reopen_at: SimTime,
    probes_left: u32,
    probe_successes: u32,
    trips: u64,
}

impl ModelBreaker {
    fn new(cfg: BreakerConfig) -> ModelBreaker {
        ModelBreaker {
            cfg,
            state: BreakerState::Closed,
            window: Vec::new(),
            reopen_at: SimTime::ZERO,
            probes_left: 0,
            probe_successes: 0,
            trips: 0,
        }
    }

    fn window_len(&self) -> usize {
        self.cfg.window.clamp(1, 64) as usize
    }

    fn probes(&self) -> u32 {
        self.cfg.probes.max(1)
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.reopen_at = now.saturating_add(self.cfg.cooldown);
        self.trips += 1;
        self.window.clear();
        self.probes_left = 0;
        self.probe_successes = 0;
    }

    fn allow(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now < self.reopen_at {
                    false
                } else {
                    self.state = BreakerState::HalfOpen;
                    self.probes_left = self.probes() - 1;
                    self.probe_successes = 0;
                    true
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_left == 0 {
                    false
                } else {
                    self.probes_left -= 1;
                    true
                }
            }
        }
    }

    fn record(&mut self, now: SimTime, fail: bool) {
        match self.state {
            BreakerState::Closed => {
                self.window.push(fail);
                if self.window.len() > self.window_len() {
                    self.window.remove(0);
                }
                let fails = self.window.iter().filter(|f| **f).count() as u32;
                if fail && fails >= self.cfg.trip_failures.max(1) {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => {
                if fail {
                    self.trip(now);
                } else {
                    self.probe_successes += 1;
                    if self.probe_successes >= self.probes() {
                        self.state = BreakerState::Closed;
                        self.window.clear();
                    }
                }
            }
            BreakerState::Open => {} // straggler from before the trip
        }
    }
}

/// One step of a driven sequence: advance time, then apply an op.
#[derive(Clone, Copy, Debug)]
enum Op {
    Allow,
    Success,
    Failure,
}

fn arb_cfg() -> impl Strategy<Value = BreakerConfig> {
    (1u32..=20, 1u32..=10, 1u64..5_000, 1u32..=4).prop_map(
        |(window, trip_failures, cooldown_ms, probes)| BreakerConfig {
            window,
            trip_failures,
            cooldown: SimDuration::from_millis(cooldown_ms),
            probes,
        },
    )
}

fn arb_ops() -> impl Strategy<Value = Vec<(Op, u64)>> {
    proptest::collection::vec(
        (
            prop_oneof![Just(Op::Allow), Just(Op::Success), Just(Op::Failure)],
            0u64..400_000,
        ),
        1..250,
    )
}

proptest! {
    #[test]
    fn breaker_matches_naive_reference_model(
        cfg in arb_cfg(),
        ops in arb_ops(),
    ) {
        let mut real = CircuitBreaker::new(cfg);
        let mut model = ModelBreaker::new(cfg);
        let mut now = SimTime::ZERO;
        for (step, (op, dt)) in ops.iter().enumerate() {
            now = now.saturating_add(SimDuration::from_micros(*dt));
            match op {
                Op::Allow => {
                    let a = real.allow(now);
                    let b = model.allow(now);
                    prop_assert_eq!(a, b, "allow diverged at step {}", step);
                }
                Op::Success => {
                    real.record_success(now);
                    model.record(now, false);
                }
                Op::Failure => {
                    real.record_failure(now);
                    model.record(now, true);
                }
            }
            prop_assert_eq!(
                real.state(), model.state,
                "state diverged at step {} ({:?})", step, op
            );
            prop_assert_eq!(
                real.trips(), model.trips,
                "trip count diverged at step {}", step
            );
        }
    }

    #[test]
    fn breaker_replay_is_deterministic(
        cfg in arb_cfg(),
        ops in arb_ops(),
    ) {
        // The machine is a pure fold over (config, sequence): replaying
        // the identical sequence reproduces every decision bytewise.
        let run = |ops: &[(Op, u64)]| {
            let mut b = CircuitBreaker::new(cfg);
            let mut now = SimTime::ZERO;
            let mut decisions = Vec::new();
            for (op, dt) in ops {
                now = now.saturating_add(SimDuration::from_micros(*dt));
                match op {
                    Op::Allow => decisions.push(b.allow(now)),
                    Op::Success => b.record_success(now),
                    Op::Failure => b.record_failure(now),
                }
            }
            (decisions, b.state(), b.trips())
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }
}
