//! Crawl worker binary.
//!
//! Connects to a coordinator, crawls leased blocks until the campaign is
//! done, then prints a parseable `WORKER` stats line. Exit codes: 0 on a
//! completed campaign, 2 on a malformed command line, 3 when the
//! coordinator was lost (clean shutdown after the retry budget), 1 on
//! anything else.
//!
//! ```text
//! distd-worker --connect 127.0.0.1:45123 --scale tiny --shards 2 \
//!     --chunk-visits 64 --heartbeat-ms 500 --visit-delay-us 2000
//! ```

use hb_distd::cli::{flag_parse, flag_value, EXIT_USAGE};
use hb_distd::{run_worker, DistdError, WorkerConfig};
use hb_ecosystem::EcosystemConfig;
use std::time::Duration;

const USAGE: &str = "usage: distd-worker --connect ADDR [--scale tiny|test|paper] [--seed N] \
[--shards N] [--chunk-visits N] [--heartbeat-ms N] [--visit-delay-us N] \
[--io-timeout-ms N] [--hb-deadline-ms N] [--connect-attempts N] \
[--backoff-ms N] [--reconnect-budget-ms N] [--instance N]";

fn die(msg: String) -> ! {
    eprintln!("distd-worker: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(EXIT_USAGE);
}

fn scale_config(scale: &str) -> EcosystemConfig {
    match scale {
        "tiny" => EcosystemConfig::tiny_scale(),
        "test" => EcosystemConfig::test_scale(),
        "paper" => EcosystemConfig::paper_scale(),
        other => die(format!("--scale: expected tiny|test|paper, got {other:?}")),
    }
}

fn main() {
    let mut connect: Option<String> = None;
    let mut scale = "tiny".to_string();
    let mut seed: Option<u64> = None;
    let mut shards: u32 = 1;
    let mut chunk_visits: usize = 64;
    let mut heartbeat = Duration::from_secs(2);
    let mut visit_delay = Duration::ZERO;
    let mut io_timeout = Duration::from_secs(10);
    let mut hb_deadline = Duration::from_secs(1);
    let mut connect_attempts: u32 = 5;
    let mut backoff_base = Duration::from_millis(100);
    let mut reconnect_budget = Duration::from_secs(10);
    let mut instance: u64 = 0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let flag = arg.as_str();
        let r = match flag {
            "--connect" => flag_value(&mut args, flag).map(|v| connect = Some(v)),
            "--scale" => flag_value(&mut args, flag).map(|v| scale = v),
            "--seed" => flag_parse(&mut args, flag).map(|v| seed = Some(v)),
            "--shards" => flag_parse(&mut args, flag).map(|v| shards = v),
            "--chunk-visits" => flag_parse(&mut args, flag).map(|v| chunk_visits = v),
            "--heartbeat-ms" => {
                flag_parse(&mut args, flag).map(|v: u64| heartbeat = Duration::from_millis(v))
            }
            "--visit-delay-us" => {
                flag_parse(&mut args, flag).map(|v: u64| visit_delay = Duration::from_micros(v))
            }
            "--io-timeout-ms" => {
                flag_parse(&mut args, flag).map(|v: u64| io_timeout = Duration::from_millis(v))
            }
            "--hb-deadline-ms" => {
                flag_parse(&mut args, flag).map(|v: u64| hb_deadline = Duration::from_millis(v))
            }
            "--connect-attempts" => flag_parse(&mut args, flag).map(|v| connect_attempts = v),
            "--backoff-ms" => {
                flag_parse(&mut args, flag).map(|v: u64| backoff_base = Duration::from_millis(v))
            }
            "--reconnect-budget-ms" => flag_parse(&mut args, flag)
                .map(|v: u64| reconnect_budget = Duration::from_millis(v)),
            "--instance" => flag_parse(&mut args, flag).map(|v| instance = v),
            other => Err(format!("unrecognized argument {other:?}")),
        };
        if let Err(e) = r {
            die(e);
        }
    }
    let Some(addr) = connect else {
        die("missing required --connect ADDR".to_string())
    };

    let mut eco = scale_config(&scale);
    if let Some(s) = seed {
        eco = eco.with_seed(s);
    }
    let cfg = WorkerConfig {
        shards,
        chunk_visits,
        heartbeat_every: heartbeat,
        visit_delay,
        io_timeout,
        hb_deadline,
        connect_attempts,
        backoff_base,
        reconnect_budget,
        instance,
        ..WorkerConfig::new(addr, eco)
    };

    match run_worker(&cfg) {
        Ok(stats) => {
            println!(
                "WORKER id={} blocks_completed={} visits={} leases_expired={} \
                 duplicates={} reconnects={} conn_breaks={} connect_failures={} \
                 wire_rejected={} leases_abandoned={}",
                stats.worker_id,
                stats.blocks_completed,
                stats.visits,
                stats.leases_expired,
                stats.duplicates,
                stats.reconnects,
                stats.conn_breaks,
                stats.connect_failures,
                stats.wire_rejected,
                stats.leases_abandoned,
            );
        }
        Err(DistdError::CoordinatorLost) => {
            eprintln!("distd-worker: coordinator lost; exiting");
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("distd-worker: {e}");
            std::process::exit(1);
        }
    }
}
