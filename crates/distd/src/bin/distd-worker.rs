//! Crawl worker binary.
//!
//! Connects to a coordinator, crawls leased blocks until the campaign is
//! done, then prints a parseable `WORKER` stats line. Exit codes: 0 on a
//! completed campaign, 2 when the coordinator was lost (clean shutdown
//! after the retry budget), 1 on anything else.
//!
//! ```text
//! distd-worker --connect 127.0.0.1:45123 --scale tiny --shards 2 \
//!     --chunk-visits 64 --heartbeat-ms 500 --visit-delay-us 2000
//! ```

use hb_distd::{run_worker, DistdError, WorkerConfig};
use hb_ecosystem::EcosystemConfig;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: distd-worker --connect ADDR [--scale tiny|test|paper] [--seed N] \
         [--shards N] [--chunk-visits N] [--heartbeat-ms N] [--visit-delay-us N] \
         [--io-timeout-ms N] [--connect-attempts N]"
    );
    std::process::exit(64);
}

fn scale_config(scale: &str) -> EcosystemConfig {
    match scale {
        "tiny" => EcosystemConfig::tiny_scale(),
        "test" => EcosystemConfig::test_scale(),
        "paper" => EcosystemConfig::paper_scale(),
        _ => usage(),
    }
}

fn main() {
    let mut connect: Option<String> = None;
    let mut scale = "tiny".to_string();
    let mut seed: Option<u64> = None;
    let mut shards: u32 = 1;
    let mut chunk_visits: usize = 64;
    let mut heartbeat = Duration::from_secs(2);
    let mut visit_delay = Duration::ZERO;
    let mut io_timeout = Duration::from_secs(10);
    let mut connect_attempts: u32 = 5;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--connect" => connect = Some(val(&mut args)),
            "--scale" => scale = val(&mut args),
            "--seed" => seed = Some(val(&mut args).parse().unwrap_or_else(|_| usage())),
            "--shards" => shards = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--chunk-visits" => chunk_visits = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--heartbeat-ms" => {
                heartbeat = Duration::from_millis(val(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--visit-delay-us" => {
                visit_delay =
                    Duration::from_micros(val(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--io-timeout-ms" => {
                io_timeout =
                    Duration::from_millis(val(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--connect-attempts" => {
                connect_attempts = val(&mut args).parse().unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }
    let Some(addr) = connect else { usage() };

    let mut eco = scale_config(&scale);
    if let Some(s) = seed {
        eco = eco.with_seed(s);
    }
    let cfg = WorkerConfig {
        shards,
        chunk_visits,
        heartbeat_every: heartbeat,
        visit_delay,
        io_timeout,
        connect_attempts,
        ..WorkerConfig::new(addr, eco)
    };

    match run_worker(&cfg) {
        Ok(stats) => {
            println!(
                "WORKER id={} blocks_completed={} visits={} leases_expired={} \
                 duplicates={} reconnects={}",
                stats.worker_id,
                stats.blocks_completed,
                stats.visits,
                stats.leases_expired,
                stats.duplicates,
                stats.reconnects,
            );
        }
        Err(DistdError::CoordinatorLost) => {
            eprintln!("distd-worker: coordinator lost; exiting");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("distd-worker: {e}");
            std::process::exit(1);
        }
    }
}
