//! Campaign coordinator binary.
//!
//! Binds the lease endpoint, prints `LISTENING <addr>` (machine-readable
//! — tests and launchers parse it to find an ephemeral port), serves
//! workers until the campaign completes, folds every chunk through the
//! incremental figure index, and finally writes one CSV per figure plus a
//! parseable `STATS` line with the fabric counters.
//!
//! Exit codes: 0 on success, 1 on runtime failure, 2 on a malformed
//! command line.
//!
//! ```text
//! distd-coord --listen 127.0.0.1:0 --scale tiny --shards 2 \
//!     --chunk-visits 64 --lease-timeout-ms 2000 --lease-blocks 4 \
//!     --spool /tmp/spool --compact-every 64 --out /tmp/figures
//! ```

use hb_analysis::{indexed_reports, DatasetIndexBuilder};
use hb_distd::cli::{flag_parse, flag_value, EXIT_USAGE};
use hb_distd::{CoordConfig, Coordinator};
use hb_ecosystem::EcosystemConfig;
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: distd-coord [--listen ADDR] [--scale tiny|test|paper] [--seed N] \
[--shards N] [--chunk-visits N] [--lease-timeout-ms N] [--lease-blocks N] \
[--reorder-window N] [--spool DIR] [--compact-every N] [--out DIR]";

fn die(msg: String) -> ! {
    eprintln!("distd-coord: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(EXIT_USAGE);
}

fn scale_config(scale: &str) -> EcosystemConfig {
    match scale {
        "tiny" => EcosystemConfig::tiny_scale(),
        "test" => EcosystemConfig::test_scale(),
        "paper" => EcosystemConfig::paper_scale(),
        other => die(format!("--scale: expected tiny|test|paper, got {other:?}")),
    }
}

fn main() {
    let mut listen = "127.0.0.1:0".to_string();
    let mut scale = "tiny".to_string();
    let mut seed: Option<u64> = None;
    let mut shards: u32 = 1;
    let mut chunk_visits: usize = 64;
    let mut lease_timeout = Duration::from_secs(10);
    let mut lease_blocks: usize = 4;
    let mut reorder_window: usize = 16;
    let mut spool_dir: Option<PathBuf> = None;
    let mut compact_every: usize = 0;
    let mut out_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let flag = arg.as_str();
        let r = match flag {
            "--listen" => flag_value(&mut args, flag).map(|v| listen = v),
            "--scale" => flag_value(&mut args, flag).map(|v| scale = v),
            "--seed" => flag_parse(&mut args, flag).map(|v| seed = Some(v)),
            "--shards" => flag_parse(&mut args, flag).map(|v| shards = v),
            "--chunk-visits" => flag_parse(&mut args, flag).map(|v| chunk_visits = v),
            "--lease-timeout-ms" => {
                flag_parse(&mut args, flag).map(|v: u64| lease_timeout = Duration::from_millis(v))
            }
            "--lease-blocks" => flag_parse(&mut args, flag).map(|v| lease_blocks = v),
            "--reorder-window" => flag_parse(&mut args, flag).map(|v| reorder_window = v),
            "--spool" => flag_value(&mut args, flag).map(|v| spool_dir = Some(PathBuf::from(v))),
            "--compact-every" => flag_parse(&mut args, flag).map(|v| compact_every = v),
            "--out" => flag_value(&mut args, flag).map(|v| out_dir = Some(PathBuf::from(v))),
            other => Err(format!("unrecognized argument {other:?}")),
        };
        if let Err(e) = r {
            die(e);
        }
    }

    let mut eco = scale_config(&scale);
    if let Some(s) = seed {
        eco = eco.with_seed(s);
    }
    let n_sites = eco.n_sites;
    let n_days = eco.crawl_days;
    let cfg = CoordConfig {
        shards,
        chunk_visits,
        lease_timeout,
        lease_blocks,
        reorder_window,
        spool_dir,
        compact_every,
        ..CoordConfig::new(eco)
    };

    let coordinator = match Coordinator::bind(&listen, cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("distd-coord: bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    let addr = coordinator.local_addr().expect("bound socket has an addr");
    println!("LISTENING {addr}");
    std::io::stdout().flush().expect("stdout");

    let mut builder = DatasetIndexBuilder::new(n_sites, n_days);
    let stats = match coordinator.run(&mut |chunk| builder.push_chunk(&chunk)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("distd-coord: {e}");
            std::process::exit(1);
        }
    };
    let index = builder.finish();

    if let Some(out) = out_dir {
        if let Err(e) = std::fs::create_dir_all(&out) {
            eprintln!("distd-coord: create {}: {e}", out.display());
            std::process::exit(1);
        }
        for report in indexed_reports(&index) {
            let path = out.join(format!("{}.csv", report.id));
            if let Err(e) = std::fs::write(&path, report.render()) {
                eprintln!("distd-coord: write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    println!(
        "STATS blocks_total={} chunks_folded={} chunks_replayed={} leases_issued={} \
         leases_reissued={} chunks_duplicate_dropped={} frames_rejected={} workers_seen={} \
         segments_written={} chunks_compacted={}",
        stats.blocks_total,
        stats.chunks_folded,
        stats.chunks_replayed,
        stats.leases_issued,
        stats.leases_reissued,
        stats.chunks_duplicate_dropped,
        stats.frames_rejected,
        stats.workers_seen,
        stats.segments_written,
        stats.chunks_compacted,
    );
}
