//! Campaign coordinator binary.
//!
//! Binds the lease endpoint, prints `LISTENING <addr>` (machine-readable
//! — tests and launchers parse it to find an ephemeral port), serves
//! workers until the campaign completes, folds every chunk through the
//! incremental figure index, and finally writes one CSV per figure plus a
//! parseable `STATS` line with the fabric counters.
//!
//! ```text
//! distd-coord --listen 127.0.0.1:0 --scale tiny --shards 2 \
//!     --chunk-visits 64 --lease-timeout-ms 2000 --spool /tmp/spool \
//!     --out /tmp/figures
//! ```

use hb_analysis::{indexed_reports, DatasetIndexBuilder};
use hb_distd::{CoordConfig, Coordinator};
use hb_ecosystem::EcosystemConfig;
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: distd-coord [--listen ADDR] [--scale tiny|test|paper] [--seed N] \
         [--shards N] [--chunk-visits N] [--lease-timeout-ms N] \
         [--reorder-window N] [--spool DIR] [--out DIR]"
    );
    std::process::exit(64);
}

fn scale_config(scale: &str) -> EcosystemConfig {
    match scale {
        "tiny" => EcosystemConfig::tiny_scale(),
        "test" => EcosystemConfig::test_scale(),
        "paper" => EcosystemConfig::paper_scale(),
        _ => usage(),
    }
}

fn main() {
    let mut listen = "127.0.0.1:0".to_string();
    let mut scale = "tiny".to_string();
    let mut seed: Option<u64> = None;
    let mut shards: u32 = 1;
    let mut chunk_visits: usize = 64;
    let mut lease_timeout = Duration::from_secs(10);
    let mut reorder_window: usize = 16;
    let mut spool_dir: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--listen" => listen = val(&mut args),
            "--scale" => scale = val(&mut args),
            "--seed" => seed = Some(val(&mut args).parse().unwrap_or_else(|_| usage())),
            "--shards" => shards = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--chunk-visits" => chunk_visits = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--lease-timeout-ms" => {
                lease_timeout =
                    Duration::from_millis(val(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--reorder-window" => {
                reorder_window = val(&mut args).parse().unwrap_or_else(|_| usage())
            }
            "--spool" => spool_dir = Some(PathBuf::from(val(&mut args))),
            "--out" => out_dir = Some(PathBuf::from(val(&mut args))),
            _ => usage(),
        }
    }

    let mut eco = scale_config(&scale);
    if let Some(s) = seed {
        eco = eco.with_seed(s);
    }
    let n_sites = eco.n_sites;
    let n_days = eco.crawl_days;
    let cfg = CoordConfig {
        shards,
        chunk_visits,
        lease_timeout,
        reorder_window,
        spool_dir,
        ..CoordConfig::new(eco)
    };

    let coordinator = match Coordinator::bind(&listen, cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("distd-coord: bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    let addr = coordinator.local_addr().expect("bound socket has an addr");
    println!("LISTENING {addr}");
    std::io::stdout().flush().expect("stdout");

    let mut builder = DatasetIndexBuilder::new(n_sites, n_days);
    let stats = match coordinator.run(&mut |chunk| builder.push_chunk(&chunk)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("distd-coord: {e}");
            std::process::exit(1);
        }
    };
    let index = builder.finish();

    if let Some(out) = out_dir {
        if let Err(e) = std::fs::create_dir_all(&out) {
            eprintln!("distd-coord: create {}: {e}", out.display());
            std::process::exit(1);
        }
        for report in indexed_reports(&index) {
            let path = out.join(format!("{}.csv", report.id));
            if let Err(e) = std::fs::write(&path, report.render()) {
                eprintln!("distd-coord: write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    println!(
        "STATS blocks_total={} chunks_folded={} chunks_replayed={} leases_issued={} \
         leases_reissued={} chunks_duplicate_dropped={} frames_rejected={} workers_seen={}",
        stats.blocks_total,
        stats.chunks_folded,
        stats.chunks_replayed,
        stats.leases_issued,
        stats.leases_reissued,
        stats.chunks_duplicate_dropped,
        stats.frames_rejected,
        stats.workers_seen,
    );
}
