//! The crash-safe crawl worker: lease, crawl, heartbeat, submit.
//!
//! A worker owns no schedule state. It derives its universe from the same
//! `EcosystemConfig` the coordinator holds (the handshake fingerprint
//! proves it), asks for one block lease at a time, crawls it with the
//! exact in-process machinery (`hb_crawler::crawl_block_into` — same
//! block-local interner, same direct-to-column sessions, same pooled
//! scratch), and ships the sealed chunk back. Because visits are pure
//! functions of `(seed, rank, day)`, a worker can be SIGKILLed at any
//! instant and the re-issued lease produces a byte-identical chunk on
//! another worker.
//!
//! Failure posture mirrors the ad-stack's `RobustnessPolicy`: every
//! remote interaction has a deadline, failures are retried a bounded,
//! deterministic number of times with doubling backoff, and when the
//! budget is spent the worker exits cleanly with
//! [`DistdError::CoordinatorLost`] rather than hanging.

use crate::proto::{config_fingerprint, read_msg, write_msg, DistdError, Msg};
use hb_crawler::{crawl_block_into, SessionConfig, VisitScratch};
use hb_ecosystem::{Ecosystem, EcosystemConfig};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Worker tuning.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub addr: String,
    /// The campaign universe — must match the coordinator's (checked by
    /// fingerprint at handshake).
    pub eco: EcosystemConfig,
    /// Shard count (fingerprint input).
    pub shards: u32,
    /// Block size (fingerprint input).
    pub chunk_visits: usize,
    /// Session policy used for every visit.
    pub session: SessionConfig,
    /// Lease renewal cadence; keep well under the coordinator's
    /// `lease_timeout`.
    pub heartbeat_every: Duration,
    /// Artificial per-visit delay — fault-injection aid so tests can
    /// reliably SIGKILL a worker mid-lease. Zero in production.
    pub visit_delay: Duration,
    /// Connection attempts before declaring the coordinator lost.
    pub connect_attempts: u32,
    /// First retry backoff; doubles per attempt (deterministic, like the
    /// wrapper's retry policy).
    pub backoff_base: Duration,
    /// Per-read socket deadline; a coordinator silent this long counts as
    /// a broken connection.
    pub io_timeout: Duration,
}

impl WorkerConfig {
    /// Sensible defaults for a worker of `addr`'s fabric.
    pub fn new(addr: String, eco: EcosystemConfig) -> WorkerConfig {
        WorkerConfig {
            addr,
            eco,
            shards: 1,
            chunk_visits: 256,
            session: SessionConfig::default(),
            heartbeat_every: Duration::from_secs(2),
            visit_delay: Duration::ZERO,
            connect_attempts: 5,
            backoff_base: Duration::from_millis(100),
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// What one worker accomplished.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    /// Last worker id the coordinator assigned (changes on reconnect).
    pub worker_id: u32,
    /// Blocks crawled, submitted and acked as fresh.
    pub blocks_completed: u64,
    /// Visits crawled (including blocks later dropped as duplicates).
    pub visits: u64,
    /// Leases the coordinator declared expired under this worker.
    pub leases_expired: u64,
    /// Submissions acked as duplicates of an already-complete block.
    pub duplicates: u64,
    /// Times the connection was re-established mid-campaign.
    pub reconnects: u64,
}

/// Connect + handshake, with deterministic doubling backoff.
fn connect(cfg: &WorkerConfig, fingerprint: u64) -> Result<(TcpStream, u32), DistdError> {
    let mut backoff = cfg.backoff_base;
    let attempts = cfg.connect_attempts.max(1);
    for attempt in 0..attempts {
        match try_connect(cfg, fingerprint) {
            Ok(ok) => return Ok(ok),
            Err(DistdError::Rejected(reason)) => return Err(DistdError::Rejected(reason)),
            Err(_) if attempt + 1 < attempts => {
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            Err(_) => break,
        }
    }
    Err(DistdError::CoordinatorLost)
}

fn try_connect(cfg: &WorkerConfig, fingerprint: u64) -> Result<(TcpStream, u32), DistdError> {
    let mut stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.io_timeout))?;
    write_msg(&mut stream, &Msg::Hello { fingerprint })?;
    match read_msg(&mut stream)? {
        Msg::Welcome { worker_id } => Ok((stream, worker_id)),
        Msg::Reject { reason } => Err(DistdError::Rejected(reason)),
        _ => Err(DistdError::Protocol("expected Welcome or Reject")),
    }
}

/// Send one heartbeat; `Ok(true)` = renewed, `Ok(false)` = expired.
fn heartbeat(stream: &mut TcpStream, worker_id: u32, lease_id: u64) -> Result<bool, DistdError> {
    write_msg(
        stream,
        &Msg::Heartbeat {
            worker_id,
            lease_id,
        },
    )?;
    match read_msg(stream)? {
        Msg::HeartbeatAck => Ok(true),
        Msg::Expired => Ok(false),
        _ => Err(DistdError::Protocol("expected HeartbeatAck or Expired")),
    }
}

/// Run one worker until the coordinator reports the campaign done.
///
/// Crash-safety contract: the worker never holds campaign state the
/// coordinator cannot reconstruct — killing it at any point costs at most
/// one lease timeout. Coordinator loss (connection refused/broken through
/// the whole retry budget) returns [`DistdError::CoordinatorLost`].
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerStats, DistdError> {
    let eco = Ecosystem::generate(cfg.eco.clone());
    let factory = eco.factory();
    let fingerprint = config_fingerprint(
        &cfg.eco,
        cfg.shards.max(1),
        cfg.chunk_visits,
        &cfg.session,
    );
    let mut scratch = VisitScratch::new(factory.partner_list());
    let mut stats = WorkerStats::default();
    let (mut stream, mut worker_id) = connect(cfg, fingerprint)?;
    stats.worker_id = worker_id;

    // One bounded reconnect cycle; campaign-level retries are the
    // connect() budget, applied afresh per incident.
    macro_rules! reconnect {
        () => {{
            let (s, id) = connect(cfg, fingerprint)?;
            stream = s;
            worker_id = id;
            stats.worker_id = id;
            stats.reconnects += 1;
        }};
    }

    loop {
        if write_msg(&mut stream, &Msg::RequestLease { worker_id }).is_err() {
            reconnect!();
            continue;
        }
        let reply = match read_msg(&mut stream) {
            Ok(m) => m,
            Err(_) => {
                reconnect!();
                continue;
            }
        };
        match reply {
            Msg::Done => return Ok(stats),
            Msg::Wait { millis } => {
                std::thread::sleep(Duration::from_millis(u64::from(millis).max(1)));
            }
            Msg::Lease {
                lease_id,
                day,
                shard,
                seq,
                ranks,
            } => {
                let net = factory.net_for_day(day);
                let mut expired = false;
                let mut broken = false;
                let mut last_hb = Instant::now();
                let chunk = crawl_block_into(
                    &factory,
                    &ranks,
                    day,
                    shard,
                    seq,
                    &cfg.session,
                    &mut scratch,
                    &net,
                    &mut |_| {
                        if !cfg.visit_delay.is_zero() {
                            std::thread::sleep(cfg.visit_delay);
                        }
                        if !expired && !broken && last_hb.elapsed() >= cfg.heartbeat_every {
                            match heartbeat(&mut stream, worker_id, lease_id) {
                                Ok(true) => {}
                                Ok(false) => expired = true,
                                Err(_) => broken = true,
                            }
                            last_hb = Instant::now();
                        }
                    },
                );
                stats.visits += chunk.len() as u64;
                if broken {
                    reconnect!();
                }
                if expired {
                    // The block was re-issued to someone else; drop the
                    // chunk (submitting would only be dropped as a
                    // duplicate anyway) and move on.
                    stats.leases_expired += 1;
                    continue;
                }
                let frame = chunk.encode();
                // One deterministic re-send on a rejected ack (a frame
                // corrupted in flight); a second rejection abandons the
                // block to the lease-expiry path.
                'submit: for attempt in 0..2 {
                    let sent = write_msg(
                        &mut stream,
                        &Msg::SubmitChunk {
                            lease_id,
                            frame: frame.clone(),
                        },
                    )
                    .and_then(|()| read_msg(&mut stream));
                    match sent {
                        Ok(Msg::SubmitAck {
                            accepted: true,
                            duplicate,
                        }) => {
                            if duplicate {
                                stats.duplicates += 1;
                            } else {
                                stats.blocks_completed += 1;
                            }
                            break 'submit;
                        }
                        Ok(Msg::SubmitAck {
                            accepted: false, ..
                        }) if attempt == 0 => continue,
                        Ok(_) => break 'submit,
                        Err(_) => {
                            reconnect!();
                            // The ack was lost with the connection; the
                            // re-send is idempotent (duplicate-dropped if
                            // the first submit landed).
                            if attempt == 0 {
                                continue;
                            }
                            break 'submit;
                        }
                    }
                }
            }
            _ => return Err(DistdError::Protocol("unexpected lease reply")),
        }
    }
}
