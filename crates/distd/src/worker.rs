//! The crash-safe crawl worker: lease, crawl, heartbeat, submit.
//!
//! A worker owns no schedule state. It derives its universe from the same
//! `EcosystemConfig` the coordinator holds (the handshake fingerprint
//! proves it), asks for a lease — up to `lease_blocks` blocks per
//! round-trip — crawls each block with the exact in-process machinery
//! (`hb_crawler::crawl_block_until` — same block-local interner, same
//! direct-to-column sessions, same pooled scratch), and ships each sealed
//! chunk back. Because visits are pure functions of `(seed, rank, day)`,
//! a worker can be SIGKILLed at any instant and the re-issued lease
//! produces a byte-identical chunk on another worker.
//!
//! Failure posture mirrors the ad-stack's `RobustnessPolicy`: every
//! remote interaction has a deadline, heartbeat replies get a *tighter*
//! deadline (`hb_deadline`) so a half-open connection is detected as a
//! stall and the wedged lease abandoned mid-block instead of heartbeated
//! forever; reconnects back off with deterministic jitter (pure in
//! `(session, attempt)` — see [`reconnect_backoff`]) under a total time
//! budget, and when the budget is spent the worker exits cleanly with
//! [`DistdError::CoordinatorLost`] rather than hanging.

use crate::proto::{config_fingerprint, recv_msg, send_msg, DistdError, Msg};
use crate::transport::{Connector, TcpConnector, Transport};
use hb_crawler::{crawl_block_until, SessionConfig, VisitScratch};
use hb_ecosystem::{Ecosystem, EcosystemConfig};
use std::time::{Duration, Instant};

/// Worker tuning.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub addr: String,
    /// The campaign universe — must match the coordinator's (checked by
    /// fingerprint at handshake).
    pub eco: EcosystemConfig,
    /// Shard count (fingerprint input).
    pub shards: u32,
    /// Block size (fingerprint input).
    pub chunk_visits: usize,
    /// Session policy used for every visit.
    pub session: SessionConfig,
    /// Lease renewal cadence; keep well under the coordinator's
    /// `lease_timeout`.
    pub heartbeat_every: Duration,
    /// Artificial per-visit delay — fault-injection aid so tests can
    /// reliably SIGKILL a worker mid-lease. Zero in production.
    pub visit_delay: Duration,
    /// Connection attempts before declaring the coordinator lost.
    pub connect_attempts: u32,
    /// First retry backoff; doubles per attempt with deterministic
    /// jitter (see [`reconnect_backoff`]).
    pub backoff_base: Duration,
    /// Per-read socket deadline; a coordinator silent this long counts as
    /// a broken connection.
    pub io_timeout: Duration,
    /// Tighter deadline for heartbeat replies: a renewal slower than
    /// this marks the connection half-open and the lease is abandoned
    /// mid-block (stall detection).
    pub hb_deadline: Duration,
    /// Hard cap on the total time one reconnect incident may spend
    /// backing off before the worker exits with `CoordinatorLost`.
    pub reconnect_budget: Duration,
    /// Instance discriminator for the jitter schedule — respawns of a
    /// crashed worker should use distinct instances so their backoff
    /// never marches in lockstep.
    pub instance: u64,
}

impl WorkerConfig {
    /// Sensible defaults for a worker of `addr`'s fabric.
    pub fn new(addr: String, eco: EcosystemConfig) -> WorkerConfig {
        WorkerConfig {
            addr,
            eco,
            shards: 1,
            chunk_visits: 256,
            session: SessionConfig::default(),
            heartbeat_every: Duration::from_secs(2),
            visit_delay: Duration::ZERO,
            connect_attempts: 5,
            backoff_base: Duration::from_millis(100),
            io_timeout: Duration::from_secs(10),
            hb_deadline: Duration::from_secs(1),
            reconnect_budget: Duration::from_secs(10),
            instance: 0,
        }
    }
}

/// What one worker accomplished.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    /// Last worker id the coordinator assigned (changes on reconnect).
    pub worker_id: u32,
    /// Blocks crawled, submitted and acked as fresh.
    pub blocks_completed: u64,
    /// Visits crawled (including blocks later dropped as duplicates and
    /// blocks abandoned mid-crawl).
    pub visits: u64,
    /// Leases the coordinator declared expired under this worker.
    pub leases_expired: u64,
    /// Submissions acked as duplicates of an already-complete block.
    pub duplicates: u64,
    /// Times the connection was re-established mid-campaign.
    pub reconnects: u64,
    /// Established connections that broke (reset, timeout, stall,
    /// rejected frame) before the campaign ended.
    pub conn_breaks: u64,
    /// Dial attempts that failed (refused, unreachable, handshake i/o).
    pub connect_failures: u64,
    /// Inbound frames that failed integrity/structural validation.
    pub wire_rejected: u64,
    /// Leases walked away from (wedged connection or unackable submit).
    pub leases_abandoned: u64,
}

/// The reconnect backoff schedule: pure in `(session, attempt)`.
/// Exponential (doubling, capped at 64×) plus a deterministic jitter in
/// `[0, base)` drawn by hashing the coordinates — two workers that died
/// together (same crash, same attempt counter) still dial back at
/// different instants, without any RNG state to make the schedule
/// unreproducible.
pub fn reconnect_backoff(base: Duration, session: u64, attempt: u32) -> Duration {
    let base = base.max(Duration::from_millis(1));
    let exp = base.saturating_mul(1u32 << attempt.min(6));
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&session.to_le_bytes());
    bytes[8..].copy_from_slice(&u64::from(attempt).to_le_bytes());
    let jitter_ns = hb_core::xxh64(&bytes) % (base.as_nanos() as u64).max(1);
    exp + Duration::from_nanos(jitter_ns)
}

/// Connect + handshake, with jittered deterministic backoff under a
/// total time budget.
fn connect(
    cfg: &WorkerConfig,
    connector: &dyn Connector,
    fingerprint: u64,
    session_id: u64,
    stats: &mut WorkerStats,
) -> Result<(Box<dyn Transport>, u32), DistdError> {
    let attempts = cfg.connect_attempts.max(1);
    let started = Instant::now();
    for attempt in 0..attempts {
        match try_connect(cfg, connector, fingerprint) {
            Ok(ok) => return Ok(ok),
            Err(DistdError::Rejected(reason)) => return Err(DistdError::Rejected(reason)),
            Err(_) => {
                stats.connect_failures += 1;
                if attempt + 1 >= attempts {
                    break;
                }
                let backoff = reconnect_backoff(cfg.backoff_base, session_id, attempt);
                if started.elapsed() + backoff > cfg.reconnect_budget {
                    // The budget would be blown sleeping; give up now,
                    // cleanly, rather than half-sleep and give up later.
                    break;
                }
                std::thread::sleep(backoff);
            }
        }
    }
    Err(DistdError::CoordinatorLost)
}

fn try_connect(
    cfg: &WorkerConfig,
    connector: &dyn Connector,
    fingerprint: u64,
) -> Result<(Box<dyn Transport>, u32), DistdError> {
    let mut t = connector.connect()?;
    t.set_recv_deadline(Some(cfg.io_timeout))?;
    send_msg(&mut *t, &Msg::Hello { fingerprint })?;
    match recv_msg(&mut *t)? {
        Msg::Welcome { worker_id } => Ok((t, worker_id)),
        Msg::Reject { reason } => Err(DistdError::Rejected(reason)),
        _ => Err(DistdError::Protocol("expected Welcome or Reject")),
    }
}

/// Send one heartbeat; `Ok(true)` = renewed, `Ok(false)` = expired. The
/// reply is awaited under the tight `hb_deadline` — a coordinator that
/// cannot renew a lease within it is treated as a wedged connection.
fn heartbeat(
    t: &mut dyn Transport,
    cfg: &WorkerConfig,
    worker_id: u32,
    lease_id: u64,
) -> Result<bool, DistdError> {
    send_msg(
        t,
        &Msg::Heartbeat {
            worker_id,
            lease_id,
        },
    )?;
    t.set_recv_deadline(Some(cfg.hb_deadline))?;
    let reply = recv_msg(t);
    let _ = t.set_recv_deadline(Some(cfg.io_timeout));
    match reply? {
        Msg::HeartbeatAck => Ok(true),
        Msg::Expired => Ok(false),
        _ => Err(DistdError::Protocol("expected HeartbeatAck or Expired")),
    }
}

/// Run one worker over plain TCP until the coordinator reports the
/// campaign done.
///
/// Crash-safety contract: the worker never holds campaign state the
/// coordinator cannot reconstruct — killing it at any point costs at most
/// one lease timeout. Coordinator loss (connection refused/broken through
/// the whole retry budget) returns [`DistdError::CoordinatorLost`].
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerStats, DistdError> {
    let connector = TcpConnector::new(cfg.addr.clone());
    let mut stats = WorkerStats::default();
    run_worker_session(cfg, &connector, &mut stats)?;
    Ok(stats)
}

/// [`run_worker`] over an explicit [`Connector`] (the chaos soak dials
/// through a fault schedule) and caller-owned stats — the counters
/// survive an error exit, so a harness respawning crashed workers can
/// still account for everything this session saw.
pub fn run_worker_session(
    cfg: &WorkerConfig,
    connector: &dyn Connector,
    stats: &mut WorkerStats,
) -> Result<(), DistdError> {
    let eco = Ecosystem::generate(cfg.eco.clone());
    let factory = eco.factory();
    let fingerprint = config_fingerprint(
        &cfg.eco,
        cfg.shards.max(1),
        cfg.chunk_visits,
        &cfg.session,
    );
    // The jitter session: the campaign identity plus this instance, so
    // respawns never share a backoff schedule.
    let session_id = fingerprint ^ cfg.instance.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut scratch = VisitScratch::new(factory.partner_list());
    let (mut t, mut worker_id) = connect(cfg, connector, fingerprint, session_id, stats)?;
    stats.worker_id = worker_id;

    // One bounded reconnect cycle; campaign-level retries are the
    // connect() budget, applied afresh per incident.
    macro_rules! reconnect {
        () => {{
            let (nt, id) = connect(cfg, connector, fingerprint, session_id, stats)?;
            t = nt;
            worker_id = id;
            stats.worker_id = id;
            stats.reconnects += 1;
        }};
    }

    loop {
        if send_msg(&mut *t, &Msg::RequestLease { worker_id }).is_err() {
            stats.conn_breaks += 1;
            reconnect!();
            continue;
        }
        let reply = match recv_msg(&mut *t) {
            Ok(m) => m,
            Err(e) => {
                if matches!(e, DistdError::Wire(_)) {
                    stats.wire_rejected += 1;
                }
                stats.conn_breaks += 1;
                reconnect!();
                continue;
            }
        };
        match reply {
            Msg::Done => return Ok(()),
            Msg::Wait { millis } => {
                std::thread::sleep(Duration::from_millis(u64::from(millis).max(1)));
            }
            Msg::Lease { lease_id, blocks } => {
                // The whole batch rides one lease: a heartbeat renews
                // every remaining block, each submit retires one, and
                // expiry/wedging abandons whatever is left.
                let mut lease_dead = false;
                for block in blocks {
                    if lease_dead {
                        break;
                    }
                    let net = factory.net_for_day(block.day);
                    let mut expired = false;
                    let mut wedged = false;
                    let mut crawled = 0u64;
                    let mut last_hb = Instant::now();
                    let chunk = crawl_block_until(
                        &factory,
                        &block.ranks,
                        block.day,
                        block.shard,
                        block.seq,
                        &cfg.session,
                        &mut scratch,
                        &net,
                        &mut |i| {
                            crawled = i as u64;
                            if !cfg.visit_delay.is_zero() {
                                std::thread::sleep(cfg.visit_delay);
                            }
                            if last_hb.elapsed() >= cfg.heartbeat_every {
                                match heartbeat(&mut *t, cfg, worker_id, lease_id) {
                                    Ok(true) => {}
                                    Ok(false) => expired = true,
                                    Err(_) => wedged = true,
                                }
                                last_hb = Instant::now();
                            }
                            // Abandon mid-block the moment the lease is
                            // gone or the connection wedges — the block
                            // will be re-crawled elsewhere, identically.
                            !expired && !wedged
                        },
                    );
                    stats.visits += crawled;
                    if expired {
                        // The batch was re-issued to someone else; drop
                        // everything (submitting would only be dropped
                        // as duplicates anyway) and move on.
                        stats.leases_expired += 1;
                        lease_dead = true;
                        continue;
                    }
                    if wedged {
                        // Half-open connection: no renewals are landing,
                        // so the lease is as good as lapsed. Walk away
                        // and start clean instead of heartbeating a
                        // black hole.
                        stats.leases_abandoned += 1;
                        stats.conn_breaks += 1;
                        lease_dead = true;
                        reconnect!();
                        continue;
                    }
                    let chunk = chunk.expect("not abandoned");
                    let frame = chunk.encode();
                    // One deterministic re-send on a rejected ack or a
                    // lost connection; a second failure abandons the
                    // batch to the lease-expiry path.
                    let mut settled = false;
                    'submit: for attempt in 0..2 {
                        let sent = send_msg(
                            &mut *t,
                            &Msg::SubmitChunk {
                                lease_id,
                                frame: frame.clone(),
                            },
                        )
                        .and_then(|()| recv_msg(&mut *t));
                        match sent {
                            Ok(Msg::SubmitAck {
                                accepted: true,
                                duplicate,
                                done,
                            }) => {
                                if duplicate {
                                    stats.duplicates += 1;
                                } else {
                                    stats.blocks_completed += 1;
                                }
                                settled = true;
                                if done {
                                    // Completion piggybacked on the ack:
                                    // no final request round-trip.
                                    return Ok(());
                                }
                                break 'submit;
                            }
                            Ok(Msg::SubmitAck {
                                accepted: false, ..
                            }) if attempt == 0 => continue,
                            Ok(_) => break 'submit,
                            Err(e) => {
                                if matches!(e, DistdError::Wire(_)) {
                                    stats.wire_rejected += 1;
                                }
                                stats.conn_breaks += 1;
                                reconnect!();
                                // The ack was lost with the connection;
                                // the re-send is idempotent (duplicate-
                                // dropped if the first submit landed).
                                if attempt == 0 {
                                    continue;
                                }
                                break 'submit;
                            }
                        }
                    }
                    if !settled {
                        stats.leases_abandoned += 1;
                        lease_dead = true;
                    }
                }
            }
            _ => return Err(DistdError::Protocol("unexpected lease reply")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_in_session_and_attempt() {
        let base = Duration::from_millis(100);
        for session in [0u64, 7, u64::MAX] {
            for attempt in 0..10 {
                assert_eq!(
                    reconnect_backoff(base, session, attempt),
                    reconnect_backoff(base, session, attempt),
                    "same coordinates, same backoff"
                );
            }
        }
    }

    #[test]
    fn backoff_doubles_then_caps_with_bounded_jitter() {
        let base = Duration::from_millis(100);
        let session = 42u64;
        for attempt in 0..12u32 {
            let d = reconnect_backoff(base, session, attempt);
            let exp = base * (1 << attempt.min(6));
            assert!(d >= exp, "attempt {attempt}: jitter only adds");
            assert!(
                d < exp + base,
                "attempt {attempt}: jitter stays under one base"
            );
        }
        // The exponential part stops growing at the cap.
        let capped = reconnect_backoff(base, session, 6);
        let beyond = reconnect_backoff(base, session, 11);
        assert!(beyond < capped + 2 * base, "cap holds past attempt 6");
    }

    #[test]
    fn backoff_jitter_separates_sessions() {
        let base = Duration::from_millis(100);
        let differs = (0..8u32).any(|attempt| {
            reconnect_backoff(base, 1, attempt) != reconnect_backoff(base, 2, attempt)
        });
        assert!(differs, "two sessions must not march in lockstep");
    }
}
