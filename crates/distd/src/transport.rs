//! Frame transport: the byte-stream seam between protocol and socket.
//!
//! Everything above this layer speaks whole sealed frames; everything
//! below it is an ordered byte stream. [`Transport`] is the trait that
//! seam is cut along — [`TcpTransport`] is the production impl over a
//! `TcpStream`, and the chaos layer ([`crate::chaos::ChaosTransport`])
//! wraps any transport to inject a deterministic fault schedule without
//! either side of the protocol knowing.
//!
//! The receive path distinguishes three stream endings that the protocol
//! treats very differently:
//!
//! * **Clean close** ([`DistdError::Closed`]): EOF *between* frames — a
//!   peer that hung up at a message boundary (worker done, SIGKILL
//!   while idle). Not a wire fault; not counted in `frames_rejected`.
//! * **Truncation** (`Wire(Truncated)`): EOF *inside* a frame — the peer
//!   died mid-send or the stream was cut. A wire fault.
//! * **Timeout** (`Io` with `WouldBlock`/`TimedOut`): the configured
//!   receive deadline passed with no bytes. The caller decides whether
//!   that is idle (coordinator) or a wedged peer (worker stall
//!   detection).
//!
//! The header is validated (magic, version, length bound) before the
//! payload is buffered, so a garbage peer cannot force a huge
//! allocation; the checksum is verified by the frame consumer
//! ([`crate::proto::Msg::decode`]) before any parsing.

use crate::proto::{DistdError, MAX_PAYLOAD};
use hb_core::{frame_payload_len, WireError, FRAME_HEADER};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One ordered, reliable frame stream between a worker and the
/// coordinator. Implementations must deliver frames whole and in order
/// (or error) — the protocol above is strict request/reply.
pub trait Transport: Send {
    /// Send one sealed frame, completely.
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), DistdError>;
    /// Receive one whole sealed frame (header-validated, not yet
    /// checksum-verified).
    fn recv_frame(&mut self) -> Result<Vec<u8>, DistdError>;
    /// Set the deadline for subsequent `recv_frame` calls (`None` blocks
    /// forever). A deadline that passes surfaces as an `Io` error with
    /// kind `WouldBlock` or `TimedOut`.
    fn set_recv_deadline(&mut self, deadline: Option<Duration>) -> Result<(), DistdError>;
}

/// True when `e` is the receive deadline expiring, not a broken stream.
pub fn is_timeout(e: &DistdError) -> bool {
    matches!(
        e,
        DistdError::Io(io)
            if io.kind() == std::io::ErrorKind::WouldBlock
                || io.kind() == std::io::ErrorKind::TimedOut
    )
}

/// Read one whole frame off any byte stream, distinguishing clean close
/// (EOF at a frame boundary) from truncation (EOF inside a frame).
pub(crate) fn read_frame(stream: &mut impl Read) -> Result<Vec<u8>, DistdError> {
    let mut head = [0u8; FRAME_HEADER];
    // The first byte is read alone: EOF here is a peer hanging up
    // between messages, which is a normal protocol ending.
    match stream.read(&mut head[..1]) {
        Ok(0) => return Err(DistdError::Closed),
        Ok(_) => {}
        Err(e) => return Err(DistdError::Io(e)),
    }
    read_exact_or_truncated(stream, &mut head[1..])?;
    let len = frame_payload_len(&head)?;
    if len > MAX_PAYLOAD {
        return Err(DistdError::Wire(WireError::Corrupt("oversized frame")));
    }
    let mut frame = vec![0u8; FRAME_HEADER + len + 8]; // header + payload + checksum
    frame[..FRAME_HEADER].copy_from_slice(&head);
    read_exact_or_truncated(stream, &mut frame[FRAME_HEADER..])?;
    Ok(frame)
}

/// `read_exact`, but EOF mid-frame is a wire truncation, not plain io.
fn read_exact_or_truncated(stream: &mut impl Read, buf: &mut [u8]) -> Result<(), DistdError> {
    match stream.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Err(DistdError::Wire(WireError::Truncated))
        }
        Err(e) => Err(DistdError::Io(e)),
    }
}

/// The production transport: one `TcpStream`, nodelay, frame-at-a-time.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wrap an established stream (sets `TCP_NODELAY`; the protocol is
    /// request/reply so Nagle only adds latency).
    pub fn new(stream: TcpStream) -> std::io::Result<TcpTransport> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport { stream })
    }

    /// The underlying stream (chaos needs `shutdown` for resets).
    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

impl Transport for TcpTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), DistdError> {
        self.stream.write_all(frame)?;
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, DistdError> {
        read_frame(&mut self.stream)
    }

    fn set_recv_deadline(&mut self, deadline: Option<Duration>) -> Result<(), DistdError> {
        self.stream.set_read_timeout(deadline)?;
        Ok(())
    }
}

/// How a worker reaches the coordinator — the dial-side seam the chaos
/// layer cuts along to inject handshake-time partitions and to wrap
/// every new connection in a fresh fault schedule.
pub trait Connector: Send + Sync {
    /// Establish one transport to the coordinator.
    fn connect(&self) -> Result<Box<dyn Transport>, DistdError>;
}

/// Production connector: plain TCP dial to a fixed address.
pub struct TcpConnector {
    addr: String,
}

impl TcpConnector {
    /// Connector dialing `addr` (`host:port`).
    pub fn new(addr: String) -> TcpConnector {
        TcpConnector { addr }
    }
}

impl Connector for TcpConnector {
    fn connect(&self) -> Result<Box<dyn Transport>, DistdError> {
        let stream = TcpStream::connect(&self.addr)?;
        Ok(Box::new(TcpTransport::new(stream)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::seal_frame;

    #[test]
    fn read_frame_distinguishes_close_from_truncation() {
        let frame = seal_frame(b"payload");
        // Whole frame, then EOF: one good frame, then a clean close.
        let mut whole = std::io::Cursor::new(frame.clone());
        assert_eq!(read_frame(&mut whole).expect("frame"), frame);
        assert!(matches!(read_frame(&mut whole), Err(DistdError::Closed)));
        // EOF inside the frame: truncation, never a clean close.
        for cut in 1..frame.len() {
            let mut part = std::io::Cursor::new(frame[..cut].to_vec());
            assert!(
                matches!(
                    read_frame(&mut part),
                    Err(DistdError::Wire(WireError::Truncated))
                ),
                "cut at {cut} must read as truncation"
            );
        }
    }

    #[test]
    fn read_frame_refuses_hostile_lengths_before_allocating() {
        let mut frame = seal_frame(b"x");
        // Corrupt the length field to something absurd.
        frame[5..13].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        let mut cur = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cur),
            Err(DistdError::Wire(WireError::Corrupt("oversized frame")))
        ));
        // And a bad magic is refused before the length is even trusted.
        let mut junk = std::io::Cursor::new(b"JUNKJUNKJUNKJUNK".to_vec());
        assert!(matches!(
            read_frame(&mut junk),
            Err(DistdError::Wire(WireError::BadMagic))
        ));
    }
}
