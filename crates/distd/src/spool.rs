//! Crash-safe chunk spool: the coordinator's durability layer.
//!
//! Every accepted chunk frame is written to the spool directory *before*
//! the submitting worker is acked, one file per `(day, shard, seq)` key,
//! via the classic tmp-write + rename dance so a crash mid-write never
//! leaves a half-frame under a final name. On restart the coordinator
//! replays the spool: each file is checksum-verified end to end (the
//! sealed frame carries its own XXH64), corrupt or truncated files are
//! counted and skipped — never trusted — and only the blocks without a
//! replayed chunk are leased out again.

use crate::proto::MAX_PAYLOAD;
use hb_core::FRAME_OVERHEAD;
use hb_crawler::VisitChunk;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name for a chunk key — fixed-width so directory order is key
/// order within a day/shard.
pub fn spool_file_name(day: u32, shard: u32, seq: u32) -> String {
    format!("chunk-d{day:05}-s{shard:05}-q{seq:06}.hbwf")
}

/// Durably write one sealed chunk frame under its key. The temp file is
/// flushed and synced before the rename, so after this returns the frame
/// survives a coordinator crash.
pub fn spool_write(dir: &Path, key: (u32, u32, u32), frame: &[u8]) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let final_path = dir.join(spool_file_name(key.0, key.1, key.2));
    let tmp_path = dir.join(format!(
        ".tmp-{}",
        spool_file_name(key.0, key.1, key.2)
    ));
    let mut f = fs::File::create(&tmp_path)?;
    f.write_all(frame)?;
    f.sync_all()?;
    fs::rename(&tmp_path, &final_path)?;
    Ok(())
}

/// Replay outcome of one spool directory.
pub struct SpoolReplay {
    /// Decoded chunks, sorted by `(day, shard, seq)` key.
    pub chunks: Vec<VisitChunk>,
    /// Files that failed integrity or structural validation and were
    /// skipped (feeds the coordinator's `frames_rejected` counter).
    pub rejected: usize,
}

/// Load every chunk frame in `dir`, verifying each. A missing directory
/// replays as empty — a fresh campaign with a spool configured starts
/// with nothing to recover.
pub fn spool_load(dir: &Path) -> std::io::Result<SpoolReplay> {
    let mut chunks = Vec::new();
    let mut rejected = 0usize;
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            return Ok(SpoolReplay {
                chunks,
                rejected,
            })
        }
        Err(err) => return Err(err),
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("chunk-") || !name.ends_with(".hbwf") {
            // Leftover temp files from a crash mid-write, or foreign
            // files; ignore (temp files are re-written by the new run).
            continue;
        }
        if entry.metadata()?.len() as usize > MAX_PAYLOAD + FRAME_OVERHEAD {
            rejected += 1;
            continue;
        }
        let bytes = fs::read(&path)?;
        match VisitChunk::decode(&bytes) {
            Ok(chunk) => chunks.push(chunk),
            Err(_) => rejected += 1,
        }
    }
    chunks.sort_by_key(VisitChunk::key);
    Ok(SpoolReplay { chunks, rejected })
}

/// The spool path a key lands at (tests and tooling).
pub fn spool_path(dir: &Path, key: (u32, u32, u32)) -> PathBuf {
    dir.join(spool_file_name(key.0, key.1, key.2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_crawler::{crawl_shard, CampaignConfig};
    use hb_ecosystem::{Ecosystem, EcosystemConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hb-distd-spool-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spool_round_trips_and_rejects_corruption() {
        let dir = tmp_dir("rt");
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let cfg = CampaignConfig {
            chunk_visits: 64,
            ..CampaignConfig::default()
        };
        let chunks = crawl_shard(eco.factory(), &cfg, 0);
        assert!(chunks.len() >= 2);
        for c in &chunks {
            spool_write(&dir, c.key(), &c.encode()).expect("spool write");
        }
        // Corrupt one file in place: flip a byte in the middle.
        let victim = spool_path(&dir, chunks[1].key());
        let mut bytes = fs::read(&victim).expect("read victim");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        fs::write(&victim, &bytes).expect("re-write victim");
        // And drop a stray temp file, which must be ignored.
        fs::write(dir.join(".tmp-chunk-d00000-s00000-q000009.hbwf"), b"junk").unwrap();

        let replay = spool_load(&dir).expect("replay");
        assert_eq!(replay.rejected, 1, "the corrupt file is rejected");
        assert_eq!(replay.chunks.len(), chunks.len() - 1);
        let keys: Vec<_> = replay.chunks.iter().map(VisitChunk::key).collect();
        let mut want: Vec<_> = chunks
            .iter()
            .map(VisitChunk::key)
            .filter(|&k| k != chunks[1].key())
            .collect();
        want.sort_unstable();
        assert_eq!(keys, want, "replay is sorted and complete minus the corrupt file");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_spool_dir_replays_empty() {
        let dir = tmp_dir("missing");
        let replay = spool_load(&dir).expect("missing dir is fine");
        assert!(replay.chunks.is_empty());
        assert_eq!(replay.rejected, 0);
    }
}
