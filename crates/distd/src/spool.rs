//! Crash-safe chunk spool: the coordinator's durability layer.
//!
//! Every accepted chunk frame is written to the spool directory *before*
//! the submitting worker is acked, one file per `(day, shard, seq)` key,
//! via the classic tmp-write + rename dance so a crash mid-write never
//! leaves a half-frame under a final name. On restart the coordinator
//! replays the spool: everything is checksum-verified end to end (each
//! sealed frame carries its own XXH64), corrupt or truncated entries are
//! counted and skipped — never trusted — and only the blocks without a
//! replayed chunk are leased out again.
//!
//! ## Segments
//!
//! A long campaign accumulates one loose `chunk-*.hbwf` file per block,
//! so a million-rank restart would pay one open/read/verify per chunk.
//! [`compact_spool`] folds loose files into *segment* files
//! (`seg-*.hbseg`): a sealed manifest frame listing every member key and
//! frame length, followed by the member chunk frames back-to-back. A
//! restart then replays O(segments) files; the manifest's lengths let
//! the reader walk members without scanning, and a corrupt member
//! rejects only itself (a corrupt manifest rejects its whole segment —
//! lengths from an unverified manifest are never trusted).
//!
//! Compaction is crash-safe the same way writes are: the segment is
//! fsynced under a temp name, renamed, and only then are its members
//! deleted. A crash between rename and deletes leaves chunks present
//! both loose and in the segment; replay dedupes by key.

use crate::proto::MAX_PAYLOAD;
use hb_core::{
    frame_payload_len, open_frame, seal_frame, WireError, WireReader, WireWriter, FRAME_HEADER,
    FRAME_OVERHEAD,
};
use hb_crawler::VisitChunk;
use std::collections::HashSet;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File name for a chunk key — fixed-width so directory order is key
/// order within a day/shard.
pub fn spool_file_name(day: u32, shard: u32, seq: u32) -> String {
    format!("chunk-d{day:05}-s{shard:05}-q{seq:06}.hbwf")
}

/// File name for segment `n`.
pub fn segment_file_name(n: u64) -> String {
    format!("seg-{n:06}.hbseg")
}

/// Distinguishes concurrent tmp writers (two handlers may race the same
/// key after a lease re-issue; their frames are byte-identical but their
/// tmp files must not collide mid-write).
static TMP_SALT: AtomicU64 = AtomicU64::new(0);

fn write_durably(dir: &Path, final_name: &str, bytes: &[u8]) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let salt = TMP_SALT.fetch_add(1, Ordering::Relaxed);
    let tmp_path = dir.join(format!(".tmp-{}-{salt}-{final_name}", std::process::id()));
    let mut f = fs::File::create(&tmp_path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    fs::rename(&tmp_path, dir.join(final_name))?;
    Ok(())
}

/// Durably write one sealed chunk frame under its key. The temp file is
/// flushed and synced before the rename, so after this returns the frame
/// survives a coordinator crash.
pub fn spool_write(dir: &Path, key: (u32, u32, u32), frame: &[u8]) -> std::io::Result<()> {
    write_durably(dir, &spool_file_name(key.0, key.1, key.2), frame)
}

/// One member entry of a segment manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentRecord {
    /// Crawl day of the member chunk.
    pub day: u32,
    /// Shard of the member chunk.
    pub shard: u32,
    /// Sequence of the member chunk.
    pub seq: u32,
    /// Byte length of the member's sealed frame.
    pub frame_len: u64,
}

/// The manifest frame at the head of a segment file: every member key
/// and frame length, in storage order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SegmentManifest {
    /// Member entries, in the order their frames follow the manifest.
    pub records: Vec<SegmentRecord>,
}

/// Smallest on-wire footprint of one manifest record.
const RECORD_MIN: usize = 4 + 4 + 4 + 8;

impl SegmentManifest {
    /// Encode as a sealed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.len(self.records.len());
        for r in &self.records {
            w.u32(r.day);
            w.u32(r.shard);
            w.u32(r.seq);
            w.u64(r.frame_len);
        }
        seal_frame(&w.into_bytes())
    }

    /// Decode one sealed manifest frame (integrity first, structure
    /// second; member frame lengths are bounded so a corrupt-but-sealed
    /// manifest cannot steer the segment walker into huge reads).
    pub fn decode(frame: &[u8]) -> Result<SegmentManifest, WireError> {
        let payload = open_frame(frame)?;
        let mut r = WireReader::new(payload);
        let n = r.bounded_len(RECORD_MIN)?;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let rec = SegmentRecord {
                day: r.u32()?,
                shard: r.u32()?,
                seq: r.u32()?,
                frame_len: r.u64()?,
            };
            if rec.frame_len as usize > MAX_PAYLOAD + FRAME_OVERHEAD {
                return Err(WireError::Corrupt("oversized segment member"));
            }
            records.push(rec);
        }
        r.finish()?;
        Ok(SegmentManifest { records })
    }
}

/// What one compaction pass accomplished.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompactReport {
    /// Segment files written.
    pub segments_written: u64,
    /// Loose chunk files folded into segments (and deleted).
    pub chunks_compacted: u64,
}

/// Fold the directory's loose chunk files into segment files of at most
/// `max_per_segment` members each. Loose files that fail verification
/// are left in place (replay keeps counting them as rejected); a crash
/// at any point loses nothing (see the module docs).
pub fn compact_spool(dir: &Path, max_per_segment: usize) -> std::io::Result<CompactReport> {
    let mut report = CompactReport::default();
    let mut loose: Vec<PathBuf> = Vec::new();
    let mut next_seg = 0u64;
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(err) => return Err(err),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if name.starts_with("chunk-") && name.ends_with(".hbwf") {
            loose.push(entry.path());
        } else if let Some(n) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".hbseg"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            next_seg = next_seg.max(n + 1);
        }
    }
    // Name order is key order (fixed-width key encoding), so segments
    // store chunks in replay order.
    loose.sort();
    for batch in loose.chunks(max_per_segment.max(1)) {
        let mut records = Vec::new();
        let mut members: Vec<(PathBuf, Vec<u8>)> = Vec::new();
        for path in batch {
            let bytes = fs::read(path)?;
            // Only verified chunks enter a segment; a corrupt loose file
            // stays loose and keeps getting counted by replay.
            let Ok(chunk) = VisitChunk::decode(&bytes) else {
                continue;
            };
            let (day, shard, seq) = chunk.key();
            records.push(SegmentRecord {
                day,
                shard,
                seq,
                frame_len: bytes.len() as u64,
            });
            members.push((path.clone(), bytes));
        }
        if members.is_empty() {
            continue;
        }
        let manifest = SegmentManifest { records };
        let mut seg = manifest.encode();
        for (_, bytes) in &members {
            seg.extend_from_slice(bytes);
        }
        write_durably(dir, &segment_file_name(next_seg), &seg)?;
        next_seg += 1;
        report.segments_written += 1;
        for (path, _) in &members {
            // Failure here only leaves a harmless duplicate: the chunk
            // is already durable inside the renamed segment.
            let _ = fs::remove_file(path);
            report.chunks_compacted += 1;
        }
    }
    Ok(report)
}

/// Replay outcome of one spool directory.
pub struct SpoolReplay {
    /// Decoded chunks, deduped by key, sorted by `(day, shard, seq)`.
    pub chunks: Vec<VisitChunk>,
    /// Entries (loose files, segment manifests, segment members) that
    /// failed integrity or structural validation and were skipped (feeds
    /// the coordinator's `frames_rejected` counter).
    pub rejected: usize,
    /// Segment files walked.
    pub segments: usize,
}

/// Load every chunk in `dir` — segments first, then loose files —
/// verifying everything and deduping by key (a chunk present both loose
/// and in a segment replays once). A missing directory replays as empty.
pub fn spool_load(dir: &Path) -> std::io::Result<SpoolReplay> {
    let mut chunks: Vec<VisitChunk> = Vec::new();
    let mut seen: HashSet<(u32, u32, u32)> = HashSet::new();
    let mut rejected = 0usize;
    let mut segments = 0usize;
    let mut seg_paths: Vec<PathBuf> = Vec::new();
    let mut loose_paths: Vec<PathBuf> = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            return Ok(SpoolReplay {
                chunks,
                rejected,
                segments,
            })
        }
        Err(err) => return Err(err),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("seg-") && name.ends_with(".hbseg") {
            seg_paths.push(entry.path());
        } else if name.starts_with("chunk-") && name.ends_with(".hbwf") {
            if entry.metadata()?.len() as usize > MAX_PAYLOAD + FRAME_OVERHEAD {
                rejected += 1;
                continue;
            }
            loose_paths.push(entry.path());
        }
        // Anything else: leftover temp files from a crash mid-write, or
        // foreign files; ignore.
    }
    seg_paths.sort();
    for path in seg_paths {
        segments += 1;
        let bytes = fs::read(&path)?;
        rejected += replay_segment(&bytes, &mut seen, &mut chunks);
    }
    for path in loose_paths {
        let bytes = fs::read(&path)?;
        match VisitChunk::decode(&bytes) {
            Ok(chunk) if seen.insert(chunk.key()) => chunks.push(chunk),
            Ok(_) => {} // already replayed from a segment
            Err(_) => rejected += 1,
        }
    }
    chunks.sort_by_key(VisitChunk::key);
    Ok(SpoolReplay {
        chunks,
        rejected,
        segments,
    })
}

/// Walk one segment's bytes; returns how many entries were rejected.
fn replay_segment(
    bytes: &[u8],
    seen: &mut HashSet<(u32, u32, u32)>,
    chunks: &mut Vec<VisitChunk>,
) -> usize {
    // The manifest frame's own header bounds it; a corrupt manifest
    // rejects the whole segment (its lengths cannot be trusted).
    let Some(manifest_len) = frame_len_at(bytes, 0) else {
        return 1;
    };
    let Ok(manifest) = SegmentManifest::decode(&bytes[..manifest_len]) else {
        return 1;
    };
    let mut rejected = 0usize;
    let mut offset = manifest_len;
    for rec in &manifest.records {
        let end = offset + rec.frame_len as usize;
        if end > bytes.len() {
            // Truncated segment: this and every later member is gone.
            rejected += 1;
            break;
        }
        match VisitChunk::decode(&bytes[offset..end]) {
            Ok(chunk) if chunk.key() == (rec.day, rec.shard, rec.seq) => {
                if seen.insert(chunk.key()) {
                    chunks.push(chunk);
                }
            }
            // Key mismatch (a manifest lying about its member) or a
            // corrupt member frame: reject just this member — the
            // manifest's length still walks us past it.
            _ => rejected += 1,
        }
        offset = end;
    }
    rejected
}

/// Length of the sealed frame starting at `offset`, if its header is
/// intact and the length sane.
fn frame_len_at(bytes: &[u8], offset: usize) -> Option<usize> {
    let head = bytes.get(offset..offset + FRAME_HEADER)?;
    let payload = frame_payload_len(head).ok()?;
    if payload > MAX_PAYLOAD {
        return None;
    }
    let total = FRAME_HEADER + payload + 8;
    (offset + total <= bytes.len()).then_some(total)
}

/// The spool path a key lands at (tests and tooling).
pub fn spool_path(dir: &Path, key: (u32, u32, u32)) -> PathBuf {
    dir.join(spool_file_name(key.0, key.1, key.2))
}

/// The path of segment `n` (tests and tooling).
pub fn segment_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(segment_file_name(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_crawler::{crawl_shard, CampaignConfig};
    use hb_ecosystem::{Ecosystem, EcosystemConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hb-distd-spool-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_chunks() -> Vec<VisitChunk> {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let cfg = CampaignConfig {
            chunk_visits: 64,
            ..CampaignConfig::default()
        };
        crawl_shard(eco.factory(), &cfg, 0)
    }

    #[test]
    fn spool_round_trips_and_rejects_corruption() {
        let dir = tmp_dir("rt");
        let chunks = tiny_chunks();
        assert!(chunks.len() >= 2);
        for c in &chunks {
            spool_write(&dir, c.key(), &c.encode()).expect("spool write");
        }
        // Corrupt one file in place: flip a byte in the middle.
        let victim = spool_path(&dir, chunks[1].key());
        let mut bytes = fs::read(&victim).expect("read victim");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        fs::write(&victim, &bytes).expect("re-write victim");
        // And drop a stray temp file, which must be ignored.
        fs::write(dir.join(".tmp-chunk-d00000-s00000-q000009.hbwf"), b"junk").unwrap();

        let replay = spool_load(&dir).expect("replay");
        assert_eq!(replay.rejected, 1, "the corrupt file is rejected");
        assert_eq!(replay.chunks.len(), chunks.len() - 1);
        let keys: Vec<_> = replay.chunks.iter().map(VisitChunk::key).collect();
        let mut want: Vec<_> = chunks
            .iter()
            .map(VisitChunk::key)
            .filter(|&k| k != chunks[1].key())
            .collect();
        want.sort_unstable();
        assert_eq!(
            keys, want,
            "replay is sorted and complete minus the corrupt file"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_spool_dir_replays_empty() {
        let dir = tmp_dir("missing");
        let replay = spool_load(&dir).expect("missing dir is fine");
        assert!(replay.chunks.is_empty());
        assert_eq!(replay.rejected, 0);
        assert_eq!(replay.segments, 0);
    }

    #[test]
    fn compaction_replays_identically_from_segments_alone() {
        let dir = tmp_dir("compact");
        let chunks = tiny_chunks();
        assert!(
            chunks.len() >= 3,
            "need several chunks to span multiple segments"
        );
        for c in &chunks {
            spool_write(&dir, c.key(), &c.encode()).expect("spool write");
        }
        let before = spool_load(&dir).expect("pre-compaction replay");
        let report = compact_spool(&dir, 2).expect("compact");
        assert_eq!(report.chunks_compacted as usize, chunks.len());
        assert_eq!(
            report.segments_written as usize,
            chunks.len().div_ceil(2),
            "two members per segment"
        );
        // Every loose file is gone; replay comes from segments alone.
        for c in &chunks {
            assert!(!spool_path(&dir, c.key()).exists());
        }
        let after = spool_load(&dir).expect("post-compaction replay");
        assert_eq!(after.segments as u64, report.segments_written);
        assert_eq!(after.rejected, 0);
        assert_eq!(
            before.chunks.len(),
            after.chunks.len(),
            "compaction must not lose chunks"
        );
        for (a, b) in before.chunks.iter().zip(&after.chunks) {
            assert_eq!(a.encode(), b.encode(), "byte-identical replay");
        }
        // A second pass over an already-compacted dir is a no-op.
        let again = compact_spool(&dir, 2).expect("idempotent compact");
        assert_eq!(again.segments_written, 0);
        assert_eq!(again.chunks_compacted, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    /// The acceptance-scale case: a spool of at least a hundred chunks
    /// compacts into `O(n / max_per_segment)` segment files, and a
    /// restart replaying from the segments alone reproduces every chunk
    /// byte-for-byte in key order.
    #[test]
    fn hundred_chunk_spool_compacts_and_restarts_byte_identical() {
        let dir = tmp_dir("hundred");
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let cfg = CampaignConfig {
            chunk_visits: 2,
            ..CampaignConfig::default()
        };
        let chunks = crawl_shard(eco.factory(), &cfg, 0);
        assert!(
            chunks.len() >= 100,
            "need an acceptance-scale spool, got {} chunks",
            chunks.len()
        );
        for c in &chunks {
            spool_write(&dir, c.key(), &c.encode()).expect("spool write");
        }
        let report = compact_spool(&dir, 16).expect("compact");
        assert_eq!(report.chunks_compacted as usize, chunks.len());
        assert_eq!(
            report.segments_written as usize,
            chunks.len().div_ceil(16),
            "sixteen members per segment"
        );
        for c in &chunks {
            assert!(!spool_path(&dir, c.key()).exists(), "loose files all gone");
        }
        let after = spool_load(&dir).expect("restart replay");
        assert_eq!(after.rejected, 0);
        assert_eq!(after.segments as u64, report.segments_written);
        let mut want: Vec<&VisitChunk> = chunks.iter().collect();
        want.sort_by_key(|c| c.key());
        assert_eq!(after.chunks.len(), want.len());
        for (a, b) in after.chunks.iter().zip(&want) {
            assert_eq!(a.encode(), b.encode(), "byte-identical after restart");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_compaction_leaves_a_dedupable_spool() {
        let dir = tmp_dir("interrupt");
        let chunks = tiny_chunks();
        for c in &chunks {
            spool_write(&dir, c.key(), &c.encode()).expect("spool write");
        }
        compact_spool(&dir, usize::MAX).expect("compact");
        // Simulate the crash window between rename and member deletion:
        // re-write two chunks loose, so they exist in both forms.
        for c in chunks.iter().take(2) {
            spool_write(&dir, c.key(), &c.encode()).expect("re-spool");
        }
        let replay = spool_load(&dir).expect("replay");
        assert_eq!(replay.chunks.len(), chunks.len(), "deduped by key");
        assert_eq!(replay.rejected, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segment_member_rejects_only_itself() {
        let dir = tmp_dir("segcorrupt");
        let chunks = tiny_chunks();
        assert!(chunks.len() >= 3);
        for c in &chunks {
            spool_write(&dir, c.key(), &c.encode()).expect("spool write");
        }
        compact_spool(&dir, usize::MAX).expect("compact");
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).expect("segment bytes");
        // Flip a bit inside the *last* member's frame, far from the
        // manifest: only that member must be rejected.
        let len = bytes.len();
        bytes[len - 9] ^= 0x10;
        fs::write(&seg, &bytes).expect("re-write segment");
        let replay = spool_load(&dir).expect("replay");
        assert_eq!(replay.rejected, 1);
        assert_eq!(replay.chunks.len(), chunks.len() - 1);
        // A corrupt manifest, in contrast, rejects the whole segment.
        let mut bytes = fs::read(&seg).expect("segment bytes");
        bytes[FRAME_HEADER + 2] ^= 0x01;
        fs::write(&seg, &bytes).expect("re-write segment");
        let replay = spool_load(&dir).expect("replay");
        assert_eq!(replay.rejected, 1, "whole segment counts once");
        assert!(replay.chunks.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trips_with_corruption_detection() {
        let manifest = SegmentManifest {
            records: vec![
                SegmentRecord {
                    day: 0,
                    shard: 1,
                    seq: 2,
                    frame_len: 1234,
                },
                SegmentRecord {
                    day: 3,
                    shard: 0,
                    seq: 9,
                    frame_len: 77,
                },
            ],
        };
        let frame = manifest.encode();
        assert_eq!(SegmentManifest::decode(&frame).expect("round trip"), manifest);
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x20;
            assert!(
                SegmentManifest::decode(&bad).is_err(),
                "one corrupt byte at {i} must be detected"
            );
        }
        assert!(
            SegmentManifest::decode(&frame[..frame.len() - 3]).is_err(),
            "truncation must be detected"
        );
    }
}
