//! The lease protocol: message types and framed transport.
//!
//! Every message travels as one sealed wire frame (`hb_core`'s
//! `columns::wire` framing: magic, version, length, payload, XXH64
//! checksum), so transport corruption and protocol corruption are caught
//! by the same integrity machinery the chunk files use. The conversation
//! is strictly request/reply, worker-initiated:
//!
//! ```text
//! worker                          coordinator
//!   Hello{fingerprint}       -->
//!                            <--  Welcome{worker_id} | Reject{reason}
//!   RequestLease{worker_id}  -->
//!                            <--  Lease{lease_id, blocks} | Wait{millis} | Done
//!   Heartbeat{lease_id}      -->
//!                            <--  HeartbeatAck | Expired
//!   SubmitChunk{lease_id,..} -->
//!                            <--  SubmitAck{accepted, duplicate, done}
//! ```
//!
//! A lease names up to `lease_blocks` concrete blocks — each a `(day,
//! shard, seq)` key plus the explicit rank list — so a worker needs no
//! schedule state of its own and a fast worker is not bound by one
//! request round-trip per block. Campaign visits are pure functions of
//! `(seed, rank, day)`, which is what makes lease re-issue after a crash
//! idempotent (any two workers crawling the same block produce
//! byte-identical chunks).

use crate::transport::{read_frame, Transport};
use hb_core::{open_frame, seal_frame, WireError, WireReader, WireWriter};
use std::net::TcpStream;

/// Upper bound on one frame's payload; a corrupt or hostile length header
/// is refused before any allocation. Chunks at paper scale are a few MiB;
/// 64 MiB leaves an order of magnitude of headroom.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Everything that can go wrong on the fabric.
#[derive(Debug)]
pub enum DistdError {
    /// Socket-level failure (connect, read, write, accept).
    Io(std::io::Error),
    /// A frame failed integrity or structural validation.
    Wire(WireError),
    /// The peer hung up cleanly at a frame boundary (EOF between
    /// messages) — a protocol ending, not a wire fault.
    Closed,
    /// The peer answered with a message the protocol does not allow here.
    Protocol(&'static str),
    /// The coordinator refused the handshake (config fingerprint
    /// mismatch, usually).
    Rejected(String),
    /// The coordinator went away and the reconnect budget ran out.
    CoordinatorLost,
}

impl std::fmt::Display for DistdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistdError::Io(e) => write!(f, "i/o: {e}"),
            DistdError::Wire(e) => write!(f, "wire: {e}"),
            DistdError::Closed => write!(f, "connection closed"),
            DistdError::Protocol(what) => write!(f, "protocol violation: {what}"),
            DistdError::Rejected(reason) => write!(f, "handshake rejected: {reason}"),
            DistdError::CoordinatorLost => write!(f, "coordinator lost"),
        }
    }
}

impl std::error::Error for DistdError {}

impl From<std::io::Error> for DistdError {
    fn from(e: std::io::Error) -> DistdError {
        DistdError::Io(e)
    }
}

impl From<WireError> for DistdError {
    fn from(e: WireError) -> DistdError {
        DistdError::Wire(e)
    }
}

/// One leased block: the chunk key plus the explicit 1-based ranks to
/// crawl, in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaseBlock {
    /// Crawl day of the block.
    pub day: u32,
    /// Shard the block belongs to.
    pub shard: u32,
    /// Chunk sequence number within `(day, shard)`.
    pub seq: u32,
    /// Explicit 1-based ranks to crawl, in order.
    pub ranks: Vec<u32>,
}

impl LeaseBlock {
    fn encode_into(&self, w: &mut WireWriter) {
        w.u32(self.day);
        w.u32(self.shard);
        w.u32(self.seq);
        w.len(self.ranks.len());
        for &r in &self.ranks {
            w.u32(r);
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<LeaseBlock, WireError> {
        let day = r.u32()?;
        let shard = r.u32()?;
        let seq = r.u32()?;
        let n = r.bounded_len(4)?;
        let mut ranks = Vec::with_capacity(n);
        for _ in 0..n {
            ranks.push(r.u32()?);
        }
        Ok(LeaseBlock {
            day,
            shard,
            seq,
            ranks,
        })
    }
}

/// One protocol message (see the module docs for the conversation).
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Worker handshake; `fingerprint` commits to the full campaign
    /// configuration so a mis-deployed worker is turned away instead of
    /// silently producing chunks from a different universe.
    Hello {
        /// Campaign config fingerprint (see [`config_fingerprint`]).
        fingerprint: u64,
    },
    /// Handshake accepted; the id tags this worker's leases.
    Welcome {
        /// Coordinator-assigned worker id.
        worker_id: u32,
    },
    /// Handshake refused.
    Reject {
        /// Human-readable reason.
        reason: String,
    },
    /// Ask for the next block lease.
    RequestLease {
        /// Id from [`Msg::Welcome`].
        worker_id: u32,
    },
    /// A batched block lease: crawl every block in `blocks` and submit
    /// each sealed chunk before the lease deadline lapses (heartbeats
    /// renew the whole batch; each submitted chunk retires its block).
    Lease {
        /// Lease identity, echoed in heartbeats and every submit.
        lease_id: u64,
        /// The leased blocks, in schedule (fold) order; never empty.
        blocks: Vec<LeaseBlock>,
    },
    /// Nothing leasable right now (reorder window full, or the schedule
    /// tail is not yet known); ask again after `millis`.
    Wait {
        /// Suggested back-off before the next request.
        millis: u32,
    },
    /// Campaign complete; the worker should exit.
    Done,
    /// Renew a held lease (all of its remaining blocks).
    Heartbeat {
        /// Id from [`Msg::Welcome`].
        worker_id: u32,
        /// The lease being renewed.
        lease_id: u64,
    },
    /// Lease renewed.
    HeartbeatAck,
    /// The lease lapsed and was re-issued; abandon its blocks.
    Expired,
    /// Deliver a finished block: the sealed chunk frame, verbatim.
    SubmitChunk {
        /// The lease this chunk fulfills.
        lease_id: u64,
        /// Sealed chunk frame ([`hb_crawler::VisitChunk::encode`] bytes).
        frame: Vec<u8>,
    },
    /// Submit outcome. `accepted && duplicate` means another worker beat
    /// this one to the block (normal after a lease re-issue) — the chunk
    /// was dropped but the worker is square. `done` piggybacks campaign
    /// completion on the final ack so the submitting worker can exit
    /// without another request round-trip.
    SubmitAck {
        /// False only when the frame failed validation.
        accepted: bool,
        /// The block was already complete.
        duplicate: bool,
        /// This submit completed the campaign.
        done: bool,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_WELCOME: u8 = 2;
const TAG_REJECT: u8 = 3;
const TAG_REQUEST_LEASE: u8 = 4;
const TAG_LEASE: u8 = 5;
const TAG_WAIT: u8 = 6;
const TAG_DONE: u8 = 7;
pub(crate) const TAG_HEARTBEAT: u8 = 8;
const TAG_HEARTBEAT_ACK: u8 = 9;
const TAG_EXPIRED: u8 = 10;
pub(crate) const TAG_SUBMIT_CHUNK: u8 = 11;
pub(crate) const TAG_SUBMIT_ACK: u8 = 12;

/// Message tag of a sealed frame, without decoding it (the chaos layer
/// keys some fault kinds on the message kind; a frame too short to carry
/// a tag yields `None`).
pub(crate) fn frame_tag(frame: &[u8]) -> Option<u8> {
    frame.get(hb_core::FRAME_HEADER).copied()
}

/// Smallest on-wire footprint of one [`LeaseBlock`]: three key words
/// plus an empty rank list.
const LEASE_BLOCK_MIN: usize = 4 + 4 + 4 + 4;

impl Msg {
    /// Encode as a sealed frame ready for the socket.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Msg::Hello { fingerprint } => {
                w.u8(TAG_HELLO);
                w.u64(*fingerprint);
            }
            Msg::Welcome { worker_id } => {
                w.u8(TAG_WELCOME);
                w.u32(*worker_id);
            }
            Msg::Reject { reason } => {
                w.u8(TAG_REJECT);
                w.str(reason);
            }
            Msg::RequestLease { worker_id } => {
                w.u8(TAG_REQUEST_LEASE);
                w.u32(*worker_id);
            }
            Msg::Lease { lease_id, blocks } => {
                w.u8(TAG_LEASE);
                w.u64(*lease_id);
                w.len(blocks.len());
                for b in blocks {
                    b.encode_into(&mut w);
                }
            }
            Msg::Wait { millis } => {
                w.u8(TAG_WAIT);
                w.u32(*millis);
            }
            Msg::Done => w.u8(TAG_DONE),
            Msg::Heartbeat {
                worker_id,
                lease_id,
            } => {
                w.u8(TAG_HEARTBEAT);
                w.u32(*worker_id);
                w.u64(*lease_id);
            }
            Msg::HeartbeatAck => w.u8(TAG_HEARTBEAT_ACK),
            Msg::Expired => w.u8(TAG_EXPIRED),
            Msg::SubmitChunk { lease_id, frame } => {
                w.u8(TAG_SUBMIT_CHUNK);
                w.u64(*lease_id);
                w.bytes(frame);
            }
            Msg::SubmitAck {
                accepted,
                duplicate,
                done,
            } => {
                w.u8(TAG_SUBMIT_ACK);
                w.bool(*accepted);
                w.bool(*duplicate);
                w.bool(*done);
            }
        }
        seal_frame(&w.into_bytes())
    }

    /// Decode one sealed frame (integrity first, structure second).
    pub fn decode(frame: &[u8]) -> Result<Msg, WireError> {
        let payload = open_frame(frame)?;
        let mut r = WireReader::new(payload);
        let msg = match r.u8()? {
            TAG_HELLO => Msg::Hello {
                fingerprint: r.u64()?,
            },
            TAG_WELCOME => Msg::Welcome {
                worker_id: r.u32()?,
            },
            TAG_REJECT => Msg::Reject {
                reason: r.str()?.to_string(),
            },
            TAG_REQUEST_LEASE => Msg::RequestLease {
                worker_id: r.u32()?,
            },
            TAG_LEASE => {
                let lease_id = r.u64()?;
                let n = r.bounded_len(LEASE_BLOCK_MIN)?;
                if n == 0 {
                    return Err(WireError::Corrupt("empty lease"));
                }
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    blocks.push(LeaseBlock::decode_from(&mut r)?);
                }
                Msg::Lease { lease_id, blocks }
            }
            TAG_WAIT => Msg::Wait { millis: r.u32()? },
            TAG_DONE => Msg::Done,
            TAG_HEARTBEAT => Msg::Heartbeat {
                worker_id: r.u32()?,
                lease_id: r.u64()?,
            },
            TAG_HEARTBEAT_ACK => Msg::HeartbeatAck,
            TAG_EXPIRED => Msg::Expired,
            TAG_SUBMIT_CHUNK => Msg::SubmitChunk {
                lease_id: r.u64()?,
                frame: r.bytes()?.to_vec(),
            },
            TAG_SUBMIT_ACK => Msg::SubmitAck {
                accepted: r.bool()?,
                duplicate: r.bool()?,
                done: r.bool()?,
            },
            _ => return Err(WireError::Corrupt("message tag")),
        };
        r.finish()?;
        Ok(msg)
    }

}

/// Send one message over a transport.
pub fn send_msg(t: &mut dyn Transport, msg: &Msg) -> Result<(), DistdError> {
    t.send_frame(&msg.encode())
}

/// Receive and decode one message from a transport. Integrity (checksum)
/// and structure are both verified before the message is trusted.
pub fn recv_msg(t: &mut dyn Transport) -> Result<Msg, DistdError> {
    let frame = t.recv_frame()?;
    Ok(Msg::decode(&frame)?)
}

/// Write one message to a raw socket (compat shim over the transport
/// path for tools that drive the protocol directly on a `TcpStream`).
pub fn write_msg(stream: &mut TcpStream, msg: &Msg) -> Result<(), DistdError> {
    use std::io::Write;
    stream.write_all(&msg.encode())?;
    Ok(())
}

/// Read one full frame off a raw socket and decode it (compat shim; see
/// [`write_msg`]). The header is validated (magic, version, length
/// bound) before the payload is buffered, so a garbage peer cannot force
/// a huge allocation; the checksum is then verified by [`Msg::decode`]
/// before any parsing.
pub fn read_msg(stream: &mut TcpStream) -> Result<Msg, DistdError> {
    let frame = read_frame(stream)?;
    Ok(Msg::decode(&frame)?)
}

/// Fingerprint of everything both sides must agree on for chunks to be
/// interchangeable: the full ecosystem config (seed, universe shape,
/// fault scenario — all of it, via its `Debug` form), the shard count,
/// the block size and the session policy. Workers whose fingerprint
/// differs are rejected at handshake; a fabric quietly mixing configs
/// would otherwise produce a corrupt dataset with valid checksums.
pub fn config_fingerprint(
    eco: &hb_ecosystem::EcosystemConfig,
    shards: u32,
    chunk_visits: usize,
    session: &hb_crawler::SessionConfig,
) -> u64 {
    let text = format!("v1|{eco:?}|shards={shards}|chunk_visits={chunk_visits}|{session:?}");
    hb_core::xxh64(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip() {
        let msgs = [
            Msg::Hello { fingerprint: 42 },
            Msg::Welcome { worker_id: 7 },
            Msg::Reject {
                reason: "config fingerprint mismatch".into(),
            },
            Msg::RequestLease { worker_id: 7 },
            Msg::Lease {
                lease_id: 99,
                blocks: vec![
                    LeaseBlock {
                        day: 2,
                        shard: 1,
                        seq: 3,
                        ranks: vec![10, 11, 12],
                    },
                    LeaseBlock {
                        day: 2,
                        shard: 1,
                        seq: 4,
                        ranks: vec![13],
                    },
                ],
            },
            Msg::Wait { millis: 50 },
            Msg::Done,
            Msg::Heartbeat {
                worker_id: 7,
                lease_id: 99,
            },
            Msg::HeartbeatAck,
            Msg::Expired,
            Msg::SubmitChunk {
                lease_id: 99,
                frame: vec![1, 2, 3, 4, 5],
            },
            Msg::SubmitAck {
                accepted: true,
                duplicate: false,
                done: true,
            },
        ];
        for msg in msgs {
            let frame = msg.encode();
            assert_eq!(Msg::decode(&frame).expect("round trip"), msg);
            // Any single corrupt byte is rejected.
            let mut bad = frame.clone();
            bad[frame.len() / 2] ^= 0x40;
            assert!(Msg::decode(&bad).is_err(), "corruption detected: {msg:?}");
        }
    }

    #[test]
    fn empty_lease_is_structural_corruption() {
        let msg = Msg::Lease {
            lease_id: 1,
            blocks: vec![LeaseBlock {
                day: 0,
                shard: 0,
                seq: 0,
                ranks: vec![1],
            }],
        };
        let mut frame = msg.encode();
        // Splice the block count down to zero and re-seal, so the frame
        // passes integrity but fails structure.
        let payload_start = hb_core::FRAME_HEADER;
        let payload_end = frame.len() - 8;
        let mut payload = frame[payload_start..payload_end].to_vec();
        payload[9..13].copy_from_slice(&0u32.to_le_bytes());
        frame = hb_core::seal_frame(&payload);
        assert!(matches!(
            Msg::decode(&frame),
            Err(WireError::Corrupt("empty lease"))
        ));
    }

    #[test]
    fn fingerprint_tracks_every_knob() {
        use hb_crawler::SessionConfig;
        use hb_ecosystem::EcosystemConfig;
        let base = EcosystemConfig::tiny_scale();
        let session = SessionConfig::default();
        let f = config_fingerprint(&base, 2, 64, &session);
        assert_eq!(f, config_fingerprint(&base.clone(), 2, 64, &session));
        assert_ne!(
            f,
            config_fingerprint(&base.clone().with_seed(1), 2, 64, &session)
        );
        assert_ne!(f, config_fingerprint(&base, 3, 64, &session));
        assert_ne!(f, config_fingerprint(&base, 2, 65, &session));
    }
}
