//! The lease coordinator: schedule, lease table, ordered fold, spool.
//!
//! ## Protocol invariants
//!
//! * **The schedule is the fold order.** Blocks are numbered globally in
//!   `(day, shard, seq)` order — exactly the order
//!   `hb_crawler::run_campaign_streamed` seals chunks in — and the
//!   coordinator folds completed chunks to its sink strictly in that
//!   order, buffering at most `reorder_window` out-of-order arrivals.
//!   Downstream consumers (`DatasetIndexBuilder`, figure rendering)
//!   therefore see a byte-identical chunk stream whether the campaign ran
//!   in one process or across a fabric of crashing workers.
//! * **Leases bound the buffer.** A block is only leased while its index
//!   is within `reorder_window` of the next fold point, so the reorder
//!   buffer can never grow past the window no matter how workers race.
//!   One lease may carry up to `lease_blocks` blocks (all within the
//!   window), so a fast worker is not bound by one request round-trip
//!   per block.
//! * **Completion is idempotent.** Campaign visits are pure functions of
//!   `(seed, rank, day)`, so a block crawled twice (lease expired, then
//!   the original worker submitted anyway) yields byte-identical chunks;
//!   the second arrival is detected by its `(day, shard, seq)` key and
//!   dropped, counted in `chunks_duplicate_dropped`.
//! * **Ack implies durable.** With a spool configured, the sealed frame
//!   is fsynced to disk *before* the worker is acked; a coordinator
//!   restarted on the same spool replays every acked chunk and re-leases
//!   only the unfinished blocks. The spool write happens *outside* the
//!   state lock — disk latency never blocks the fabric.
//! * **Nothing on the wire is trusted.** Frames (worker submissions and
//!   spool files alike) are checksum-verified before parsing and
//!   structurally validated during it; failures are counted in
//!   `frames_rejected` and the block stays leasable.
//!
//! ## Event-driven serving
//!
//! There is no polling tick anywhere on the steady path. Connection
//! handlers block on their sockets (with a lease-deadline-derived idle
//! timeout as the only backstop); the fold thread sleeps on a condvar
//! that submissions signal, waking early only when the earliest lease
//! deadline falls due. Campaign completion wakes the accept loop with a
//! self-connection so the listener can close without being polled.
//!
//! ## Schedule construction
//!
//! Day-0 blocks are known upfront (the full toplist, sharded
//! contiguously). Blocks for days ≥ 1 revisit the HB sites *detected* on
//! day 0, so they are appended only once every day-0 chunk has folded —
//! the detected rank lists are accumulated during the ordered fold, which
//! reproduces the in-process campaign's lists exactly.

use crate::proto::{recv_msg, send_msg, DistdError, LeaseBlock, Msg};
use crate::spool::{compact_spool, spool_load, spool_write};
use crate::transport::{is_timeout, TcpTransport, Transport};
use hb_crawler::{SessionConfig, ShardSpec, VisitChunk};
use hb_ecosystem::EcosystemConfig;
use std::collections::{BTreeMap, HashMap};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Coordinator tuning.
#[derive(Clone, Debug)]
pub struct CoordConfig {
    /// The campaign universe (shared verbatim with every worker; the
    /// handshake fingerprint commits to it).
    pub eco: EcosystemConfig,
    /// Contiguous toplist shards (the in-process `CampaignConfig::shards`).
    pub shards: u32,
    /// Visits per block / sealed chunk.
    pub chunk_visits: usize,
    /// Session policy (fingerprinted; workers crawl with their own copy).
    pub session: SessionConfig,
    /// A lease not heartbeat within this window is re-issued.
    pub lease_timeout: Duration,
    /// How many blocks past the fold point may be leased at once (bounds
    /// the reorder buffer).
    pub reorder_window: usize,
    /// Maximum blocks one lease carries (≥ 1); batching amortizes the
    /// request round-trip for fast workers.
    pub lease_blocks: usize,
    /// Chunk spool for crash-safe restarts; `None` disables durability.
    pub spool_dir: Option<PathBuf>,
    /// Compact the spool into a segment once this many loose chunks have
    /// accumulated (0 disables compaction).
    pub compact_every: usize,
    /// Back-off suggested to workers when nothing is leasable.
    pub wait_millis: u32,
}

impl CoordConfig {
    /// Sensible defaults for a local fabric over `eco`.
    pub fn new(eco: EcosystemConfig) -> CoordConfig {
        CoordConfig {
            eco,
            shards: 1,
            chunk_visits: 256,
            session: SessionConfig::default(),
            lease_timeout: Duration::from_secs(10),
            reorder_window: 16,
            lease_blocks: 4,
            spool_dir: None,
            compact_every: 0,
            wait_millis: 25,
        }
    }
}

/// Observable outcome of one coordinator run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordStats {
    /// Total blocks in the final schedule.
    pub blocks_total: usize,
    /// Chunks folded to the sink (equals `blocks_total` on success).
    pub chunks_folded: usize,
    /// Chunks recovered from the spool instead of a worker.
    pub chunks_replayed: usize,
    /// Leases handed out (first issues and re-issues).
    pub leases_issued: u64,
    /// Leases that lapsed and were made leasable again.
    pub leases_reissued: u64,
    /// Redundant submissions dropped by key.
    pub chunks_duplicate_dropped: u64,
    /// Frames (worker or spool) that failed validation.
    pub frames_rejected: u64,
    /// Distinct handshakes accepted.
    pub workers_seen: u32,
    /// Spool segment files written by compaction.
    pub segments_written: u64,
    /// Loose spool chunks folded into segments.
    pub chunks_compacted: u64,
}

/// One schedulable block.
struct Block {
    day: u32,
    shard: u32,
    seq: u32,
    ranks: Vec<u32>,
}

struct Lease {
    /// Remaining block indices this lease covers; submitting a block
    /// retires it from the lease.
    blocks: Vec<usize>,
    deadline: Instant,
}

struct State {
    schedule: Vec<Block>,
    /// Block index by chunk key; grows with the schedule.
    key_index: HashMap<(u32, u32, u32), usize>,
    /// A chunk for this block has been accepted (buffered or folded).
    complete: Vec<bool>,
    /// How many entries of `complete` are true.
    complete_count: usize,
    /// Accepted chunks awaiting their turn to fold, by block index.
    buffered: BTreeMap<usize, VisitChunk>,
    /// Next block index to fold.
    folded: usize,
    /// Number of day-0 blocks (the upfront schedule).
    day0_blocks: usize,
    /// Days ≥ 1 have been appended.
    schedule_final: bool,
    /// Detected HB ranks per shard, accumulated during the ordered fold.
    detected: Vec<Vec<u32>>,
    leases: HashMap<u64, Lease>,
    /// Reverse index: which lease currently owns a block.
    leased_block: HashMap<usize, u64>,
    next_lease_id: u64,
    next_worker_id: u32,
    /// Connections that completed a handshake and are still attached.
    /// Grants cap a lease's batch at `ceil(remaining / live_workers)` so
    /// a big `lease_blocks` can't starve the rest of a small fleet on a
    /// short campaign.
    live_workers: u32,
    /// Loose chunks spooled since the last compaction pass.
    spooled_since_compact: usize,
    done: bool,
    stats: CoordStats,
}

/// Everything a connection handler shares with the fold thread.
struct Shared {
    state: Mutex<State>,
    /// Signaled whenever a fresh chunk is admitted (fold progress may be
    /// possible).
    submitted: Condvar,
    /// Campaign complete — lets blocked handlers and the accept loop
    /// wind down without polling the state.
    done: AtomicBool,
}

fn push_block(st: &mut State, block: Block) {
    st.key_index
        .insert((block.day, block.shard, block.seq), st.schedule.len());
    st.schedule.push(block);
    st.complete.push(false);
}

/// Chunk a rank list the way the in-process worker scheduler does.
fn blocks_of(ranks: &[u32], day: u32, shard: u32, chunk_visits: usize) -> Vec<Block> {
    let chunk = chunk_visits.max(1);
    ranks
        .chunks(chunk)
        .enumerate()
        .map(|(seq, slice)| Block {
            day,
            shard,
            seq: seq as u32,
            ranks: slice.to_vec(),
        })
        .collect()
}

fn initial_state(cfg: &CoordConfig) -> State {
    let shards = cfg.shards.max(1);
    let mut st = State {
        schedule: Vec::new(),
        key_index: HashMap::new(),
        complete: Vec::new(),
        complete_count: 0,
        buffered: BTreeMap::new(),
        folded: 0,
        day0_blocks: 0,
        schedule_final: false,
        detected: vec![Vec::new(); shards as usize],
        leases: HashMap::new(),
        leased_block: HashMap::new(),
        next_lease_id: 1,
        next_worker_id: 1,
        live_workers: 0,
        spooled_since_compact: 0,
        done: false,
        stats: CoordStats::default(),
    };
    for shard in 0..shards {
        let ranks: Vec<u32> = ShardSpec::new(shards, shard)
            .rank_range(cfg.eco.n_sites)
            .collect();
        for b in blocks_of(&ranks, 0, shard, cfg.chunk_visits) {
            push_block(&mut st, b);
        }
    }
    st.day0_blocks = st.schedule.len();
    st.stats.blocks_total = st.schedule.len();
    if st.day0_blocks == 0 {
        // Degenerate universe: nothing to crawl on day 0, so nothing can
        // be detected either — the schedule is final and empty.
        st.schedule_final = true;
        st.done = true;
    }
    st
}

/// Append the revisit blocks for days 1..=crawl_days. Call exactly once,
/// after every day-0 chunk has folded (the detected lists are complete).
fn finalize_schedule(st: &mut State, cfg: &CoordConfig) {
    debug_assert!(!st.schedule_final);
    let shards = cfg.shards.max(1);
    for day in 1..=cfg.eco.crawl_days {
        for shard in 0..shards {
            let ranks = st.detected[shard as usize].clone();
            for b in blocks_of(&ranks, day, shard, cfg.chunk_visits) {
                push_block(st, b);
            }
        }
    }
    st.schedule_final = true;
    st.stats.blocks_total = st.schedule.len();
}

/// Fold every ready chunk, in schedule order, to the sink. Extends the
/// schedule once day 0 completes and flips `done` when everything folded.
fn fold_ready(st: &mut State, cfg: &CoordConfig, sink: &mut dyn FnMut(VisitChunk)) {
    loop {
        let Some(chunk) = st.buffered.remove(&st.folded) else {
            break;
        };
        if chunk.day == 0 {
            // Same accumulation the in-process campaign performs while
            // streaming day-0 chunks: detected ranks in fold order.
            st.detected[chunk.shard as usize]
                .extend(chunk.visits.iter().filter(|v| v.hb_detected).map(|v| v.rank));
        }
        sink(chunk);
        st.folded += 1;
        st.stats.chunks_folded += 1;
        if st.folded == st.day0_blocks && !st.schedule_final {
            finalize_schedule(st, cfg);
        }
    }
    if st.schedule_final && st.folded == st.schedule.len() {
        st.done = true;
    }
}

/// Release every lapsed lease; their blocks become leasable again. A
/// lease with any incomplete block counts once in `leases_reissued`.
fn expire_lapsed(st: &mut State, now: Instant) {
    let lapsed: Vec<u64> = st
        .leases
        .iter()
        .filter(|(_, l)| l.deadline <= now)
        .map(|(&id, _)| id)
        .collect();
    for id in lapsed {
        let lease = st.leases.remove(&id).expect("collected above");
        let mut unfinished = false;
        for block in lease.blocks {
            st.leased_block.remove(&block);
            unfinished |= !st.complete[block];
        }
        if unfinished {
            st.stats.leases_reissued += 1;
        }
    }
}

/// All blocks complete (the last ack can tell its worker the campaign is
/// over even before the final fold runs).
fn all_complete(st: &State) -> bool {
    st.schedule_final && st.complete_count == st.schedule.len()
}

/// Answer a lease request: up to `lease_blocks` of the lowest
/// incomplete, unleased blocks within the reorder window, or
/// `Wait`/`Done`.
///
/// The batch is additionally capped at `ceil(remaining / live_workers)`
/// — a fair share of the incomplete blocks — so on a short campaign a
/// 4-block lease can't hand one worker half the schedule while its
/// peers idle on `Wait` (the BENCH_9 `distd_batched_3w` regression: 8
/// blocks, 3 workers, 4-block grants left two workers starved).
fn grant(st: &mut State, cfg: &CoordConfig) -> Msg {
    expire_lapsed(st, Instant::now());
    if st.done || all_complete(st) {
        return Msg::Done;
    }
    let window_end = st
        .folded
        .saturating_add(cfg.reorder_window.max(1))
        .min(st.schedule.len());
    let remaining = st.schedule.len() - st.complete_count;
    let fair_share = remaining
        .div_ceil(st.live_workers.max(1) as usize)
        .max(1);
    let batch = cfg.lease_blocks.max(1).min(fair_share);
    let mut picked = Vec::new();
    for i in st.folded..window_end {
        if st.complete[i] || st.leased_block.contains_key(&i) {
            continue;
        }
        picked.push(i);
        if picked.len() >= batch {
            break;
        }
    }
    if picked.is_empty() {
        return Msg::Wait {
            millis: cfg.wait_millis,
        };
    }
    let lease_id = st.next_lease_id;
    st.next_lease_id += 1;
    for &i in &picked {
        st.leased_block.insert(i, lease_id);
    }
    let blocks = picked
        .iter()
        .map(|&i| {
            let b = &st.schedule[i];
            LeaseBlock {
                day: b.day,
                shard: b.shard,
                seq: b.seq,
                ranks: b.ranks.clone(),
            }
        })
        .collect();
    st.leases.insert(
        lease_id,
        Lease {
            blocks: picked,
            deadline: Instant::now() + cfg.lease_timeout,
        },
    );
    st.stats.leases_issued += 1;
    Msg::Lease { lease_id, blocks }
}

/// Admit one decoded chunk (already durable if a spool is configured —
/// the caller writes the spool *before* taking the state lock). Returns
/// the ack to send.
fn admit(st: &mut State, chunk: VisitChunk) -> Msg {
    let key = chunk.key();
    let Some(&idx) = st.key_index.get(&key) else {
        // A chunk for a block this schedule never issued: a stale worker
        // from some other campaign. Refuse it.
        st.stats.frames_rejected += 1;
        return Msg::SubmitAck {
            accepted: false,
            duplicate: false,
            done: all_complete(st),
        };
    };
    if st.complete[idx] {
        st.stats.chunks_duplicate_dropped += 1;
        return Msg::SubmitAck {
            accepted: true,
            duplicate: true,
            done: all_complete(st),
        };
    }
    st.complete[idx] = true;
    st.complete_count += 1;
    st.buffered.insert(idx, chunk);
    if let Some(lease_id) = st.leased_block.remove(&idx) {
        // Retire just this block; the lease lives on for its others.
        if let Some(lease) = st.leases.get_mut(&lease_id) {
            lease.blocks.retain(|&b| b != idx);
            if lease.blocks.is_empty() {
                st.leases.remove(&lease_id);
            }
        }
    }
    Msg::SubmitAck {
        accepted: true,
        duplicate: false,
        done: all_complete(st),
    }
}

/// One submission, end to end: decode and pre-check, spool *outside* the
/// lock, admit, wake the fold thread.
fn handle_submit(frame: &[u8], shared: &Shared, cfg: &CoordConfig) -> Msg {
    let chunk = match VisitChunk::decode(frame) {
        Ok(c) => c,
        Err(_) => {
            let mut st = shared.state.lock().expect("coordinator state");
            st.stats.frames_rejected += 1;
            return Msg::SubmitAck {
                accepted: false,
                duplicate: false,
                done: all_complete(&st),
            };
        }
    };
    let key = chunk.key();
    {
        // Unknown and duplicate keys are answered without touching disk;
        // `admit` books the right counter for both.
        let mut st = shared.state.lock().expect("coordinator state");
        let fresh = st.key_index.get(&key).is_some_and(|&i| !st.complete[i]);
        if !fresh {
            return admit(&mut st, chunk);
        }
    }
    if let Some(dir) = &cfg.spool_dir {
        if spool_write(dir, key, frame).is_err() {
            // Durability could not be guaranteed; do not ack, leave the
            // block leasable so a later submit can retry.
            return Msg::SubmitAck {
                accepted: false,
                duplicate: false,
                done: false,
            };
        }
    }
    let mut st = shared.state.lock().expect("coordinator state");
    if cfg.spool_dir.is_some() {
        st.spooled_since_compact += 1;
    }
    // Two handlers can race the same key past the pre-check; both frames
    // are byte-identical and durable, and `admit` drops the loser by key.
    let ack = admit(&mut st, chunk);
    drop(st);
    shared.submitted.notify_all();
    ack
}

/// Keeps the live-worker count honest across every `serve_conn` exit
/// path: armed when a handshake is accepted, decrements on drop (clean
/// close, wire error, idle strikes, or panic alike).
struct LiveGuard<'a> {
    shared: &'a Shared,
    armed: bool,
}

impl LiveGuard<'_> {
    fn arm(&mut self, st: &mut State) {
        if !self.armed {
            st.live_workers += 1;
            self.armed = true;
        }
    }
}

impl Drop for LiveGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            if let Ok(mut st) = self.shared.state.lock() {
                st.live_workers = st.live_workers.saturating_sub(1);
            }
        }
    }
}

/// One worker connection, served until close / error / campaign end.
/// The only timeout is the lease-deadline-derived idle backstop — the
/// handler otherwise sleeps in the kernel until bytes arrive.
fn serve_conn(t: &mut dyn Transport, shared: &Shared, cfg: &CoordConfig, fingerprint: u64) {
    let idle = cfg.lease_timeout.max(Duration::from_millis(250));
    if t.set_recv_deadline(Some(idle)).is_err() {
        return;
    }
    let mut live = LiveGuard {
        shared,
        armed: false,
    };
    let mut idle_strikes = 0u32;
    loop {
        let msg = match recv_msg(t) {
            Ok(m) => {
                idle_strikes = 0;
                m
            }
            Err(ref e) if is_timeout(e) => {
                // Idle longer than any live lease could be: either the
                // campaign ended, or the peer is wedged past the point
                // where its leases survive — two strikes and out.
                if shared.done.load(Ordering::Acquire) {
                    return;
                }
                idle_strikes += 1;
                if idle_strikes >= 2 {
                    return;
                }
                continue;
            }
            Err(DistdError::Wire(_)) => {
                // A corrupt or truncated frame on the doorstep: count it
                // and drop the conn (the stream can no longer be framed).
                let mut st = shared.state.lock().expect("coordinator state");
                st.stats.frames_rejected += 1;
                return;
            }
            // Clean close or a broken socket: the worker is gone; its
            // leases expire on their own.
            Err(_) => return,
        };
        let reply = match msg {
            Msg::Hello { fingerprint: fp } => {
                if fp == fingerprint {
                    let mut st = shared.state.lock().expect("coordinator state");
                    let id = st.next_worker_id;
                    st.next_worker_id += 1;
                    st.stats.workers_seen += 1;
                    live.arm(&mut st);
                    Msg::Welcome { worker_id: id }
                } else {
                    Msg::Reject {
                        reason: "config fingerprint mismatch".into(),
                    }
                }
            }
            Msg::RequestLease { .. } => {
                let mut st = shared.state.lock().expect("coordinator state");
                grant(&mut st, cfg)
            }
            Msg::Heartbeat { lease_id, .. } => {
                let mut st = shared.state.lock().expect("coordinator state");
                expire_lapsed(&mut st, Instant::now());
                match st.leases.get_mut(&lease_id) {
                    Some(lease) => {
                        lease.deadline = Instant::now() + cfg.lease_timeout;
                        Msg::HeartbeatAck
                    }
                    None => Msg::Expired,
                }
            }
            Msg::SubmitChunk { frame, .. } => handle_submit(&frame, shared, cfg),
            // Anything else is a peer speaking the wrong side of the
            // protocol; drop it.
            _ => return,
        };
        if send_msg(t, &reply).is_err() {
            return;
        }
    }
}

/// A bound, not-yet-running coordinator.
pub struct Coordinator {
    listener: TcpListener,
    cfg: CoordConfig,
}

impl Coordinator {
    /// Bind the coordinator socket (use port 0 for an ephemeral port and
    /// read it back with [`Coordinator::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: CoordConfig) -> std::io::Result<Coordinator> {
        Ok(Coordinator {
            listener: TcpListener::bind(addr)?,
            cfg,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the campaign to completion: replay the spool, serve workers,
    /// fold every chunk to `sink` in `(day, shard, seq)` order. Returns
    /// the run's counters. (`sink` runs on the fold thread, hence the
    /// `Send` bound.)
    pub fn run(self, sink: &mut (dyn FnMut(VisitChunk) + Send)) -> Result<CoordStats, DistdError> {
        let cfg = &self.cfg;
        let fingerprint = crate::proto::config_fingerprint(
            &cfg.eco,
            cfg.shards.max(1),
            cfg.chunk_visits,
            &cfg.session,
        );
        let mut st = initial_state(cfg);

        // --- Spool replay -------------------------------------------------
        if let Some(dir) = &cfg.spool_dir {
            let replay = spool_load(dir)?;
            st.stats.frames_rejected += replay.rejected as u64;
            // Chunks arrive key-sorted, so day 0 admits and folds first;
            // folding day 0 finalizes the schedule, which lets the later
            // days' keys resolve. Loop until a pass makes no progress so
            // replay order never depends on that subtlety.
            let mut pending = replay.chunks;
            loop {
                let before = pending.len();
                let mut rest = Vec::new();
                for chunk in pending {
                    if st.key_index.contains_key(&chunk.key()) {
                        if let Msg::SubmitAck {
                            accepted: true,
                            duplicate: false,
                            ..
                        } = admit(&mut st, chunk)
                        {
                            st.stats.chunks_replayed += 1;
                        }
                    } else {
                        rest.push(chunk);
                    }
                }
                fold_ready(&mut st, cfg, &mut *sink);
                if rest.is_empty() || rest.len() == before {
                    // Leftovers belong to no block of this schedule:
                    // refuse them like any unknown submission.
                    st.stats.frames_rejected += rest.len() as u64;
                    break;
                }
                pending = rest;
            }
        }
        if st.done {
            return Ok(st.stats);
        }

        // --- Serve --------------------------------------------------------
        let wake_addr = self.listener.local_addr()?;
        let shared = Shared {
            state: Mutex::new(st),
            submitted: Condvar::new(),
            done: AtomicBool::new(false),
        };
        std::thread::scope(|scope| {
            let shared = &shared;
            // The fold thread owns the sink: it sleeps on the submission
            // condvar, waking early only for the earliest lease deadline
            // (to expire lapsed leases promptly) or a due compaction.
            scope.spawn(move || {
                let mut st = shared.state.lock().expect("coordinator state");
                loop {
                    fold_ready(&mut st, cfg, &mut *sink);
                    if st.done {
                        break;
                    }
                    if let Some(dir) = &cfg.spool_dir {
                        if cfg.compact_every > 0 && st.spooled_since_compact >= cfg.compact_every {
                            // Claim the pass, then compact off-lock: the
                            // fabric keeps admitting while disk churns.
                            st.spooled_since_compact = 0;
                            drop(st);
                            let report =
                                compact_spool(dir, cfg.compact_every).unwrap_or_default();
                            st = shared.state.lock().expect("coordinator state");
                            st.stats.segments_written += report.segments_written;
                            st.stats.chunks_compacted += report.chunks_compacted;
                            continue;
                        }
                    }
                    expire_lapsed(&mut st, Instant::now());
                    let wait = st
                        .leases
                        .values()
                        .map(|l| l.deadline)
                        .min()
                        .map(|d| d.saturating_duration_since(Instant::now()))
                        .unwrap_or(Duration::from_secs(60))
                        .max(Duration::from_millis(1));
                    let (guard, _) = shared
                        .submitted
                        .wait_timeout(st, wait)
                        .expect("coordinator state");
                    st = guard;
                }
                drop(st);
                shared.done.store(true, Ordering::Release);
                // Wake the (blocking) accept loop so it can observe done.
                let _ = TcpStream::connect(wake_addr);
            });
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if shared.done.load(Ordering::Acquire) {
                            break;
                        }
                        if let Ok(mut t) = TcpTransport::new(stream) {
                            scope.spawn(move || serve_conn(&mut t, shared, cfg, fingerprint));
                        }
                    }
                    Err(_) => {
                        if shared.done.load(Ordering::Acquire) {
                            break;
                        }
                    }
                }
            }
            // Scope exit joins the handlers; they see `done` on their
            // next idle timeout (workers normally hang up first).
        });
        let st = shared.state.into_inner().expect("coordinator state");
        Ok(st.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_crawler::{crawl_shard, CampaignConfig};
    use hb_ecosystem::Ecosystem;

    fn tiny_cfg() -> CoordConfig {
        CoordConfig {
            chunk_visits: 64,
            ..CoordConfig::new(EcosystemConfig::tiny_scale())
        }
    }

    /// Drive the schedule/fold state machine directly, no sockets: feed
    /// it the chunks a real crawl produces and check the fold order.
    #[test]
    fn state_machine_folds_in_campaign_order() {
        let cfg = tiny_cfg();
        let eco = Ecosystem::generate(cfg.eco.clone());
        let campaign = CampaignConfig {
            chunk_visits: cfg.chunk_visits,
            ..CampaignConfig::default()
        };
        let chunks = crawl_shard(eco.factory(), &campaign, 0);
        let mut st = initial_state(&cfg);
        // Submit out of order within the window: reverse each day's run.
        let mut folded_keys = Vec::new();
        let mut sink = |c: VisitChunk| folded_keys.push(c.key());
        let mut queue: Vec<VisitChunk> = chunks.clone();
        while !queue.is_empty() {
            // Admit whatever the current schedule recognizes, in reverse.
            let mut rest = Vec::new();
            for chunk in queue.into_iter().rev() {
                if st.key_index.contains_key(&chunk.key()) {
                    let ack = admit(&mut st, chunk);
                    assert!(matches!(
                        ack,
                        Msg::SubmitAck {
                            accepted: true,
                            duplicate: false,
                            ..
                        }
                    ));
                } else {
                    rest.push(chunk);
                }
            }
            fold_ready(&mut st, &cfg, &mut sink);
            queue = rest;
        }
        assert!(st.done);
        let want: Vec<_> = chunks.iter().map(VisitChunk::key).collect();
        assert_eq!(folded_keys, want, "fold order is the campaign order");
        assert_eq!(st.stats.chunks_folded, chunks.len());
    }

    #[test]
    fn duplicate_chunks_are_dropped_idempotently() {
        let cfg = tiny_cfg();
        let eco = Ecosystem::generate(cfg.eco.clone());
        let campaign = CampaignConfig {
            chunk_visits: cfg.chunk_visits,
            ..CampaignConfig::default()
        };
        let chunks = crawl_shard(eco.factory(), &campaign, 0);
        let mut st = initial_state(&cfg);
        let mut n = 0usize;
        let mut sink = |_c: VisitChunk| n += 1;
        let first = chunks[0].clone();
        assert!(matches!(
            admit(&mut st, first.clone()),
            Msg::SubmitAck {
                accepted: true,
                duplicate: false,
                ..
            }
        ));
        // The re-crawl of an expired lease arrives late: same key.
        assert!(matches!(
            admit(&mut st, first),
            Msg::SubmitAck {
                accepted: true,
                duplicate: true,
                ..
            }
        ));
        fold_ready(&mut st, &cfg, &mut sink);
        assert_eq!(n, 1);
        assert_eq!(st.stats.chunks_duplicate_dropped, 1);
    }

    #[test]
    fn lapsed_leases_are_reissued_and_window_bounds_grants() {
        let cfg = CoordConfig {
            lease_timeout: Duration::from_millis(1),
            reorder_window: 2,
            lease_blocks: 1,
            ..tiny_cfg()
        };
        let mut st = initial_state(&cfg);
        // Window of 2, one block per lease: exactly two grants, then Wait.
        let a = grant(&mut st, &cfg);
        let b = grant(&mut st, &cfg);
        assert!(matches!(a, Msg::Lease { .. }));
        assert!(matches!(b, Msg::Lease { .. }));
        assert!(matches!(grant(&mut st, &cfg), Msg::Wait { .. }));
        // Let both lapse; the same two blocks are granted again.
        std::thread::sleep(Duration::from_millis(5));
        let c = grant(&mut st, &cfg);
        assert!(matches!(c, Msg::Lease { .. }));
        assert_eq!(st.stats.leases_reissued, 2);
        assert_eq!(st.stats.leases_issued, 3);
        if let (Msg::Lease { blocks: b0, .. }, Msg::Lease { blocks: b2, .. }) = (a, c) {
            assert_eq!(
                b0[0].seq, b2[0].seq,
                "the re-issued lease names the same block"
            );
        }
    }

    #[test]
    fn batched_leases_retire_block_by_block() {
        let cfg = CoordConfig {
            reorder_window: 8,
            lease_blocks: 3,
            lease_timeout: Duration::from_millis(1),
            ..tiny_cfg()
        };
        let eco = Ecosystem::generate(cfg.eco.clone());
        let campaign = CampaignConfig {
            chunk_visits: cfg.chunk_visits,
            ..CampaignConfig::default()
        };
        let chunks = crawl_shard(eco.factory(), &campaign, 0);
        assert!(chunks.len() >= 3, "need ≥ 3 day-0 blocks for a batch");
        let mut st = initial_state(&cfg);
        let Msg::Lease { lease_id, blocks } = grant(&mut st, &cfg) else {
            panic!("first grant must lease");
        };
        assert_eq!(blocks.len(), 3, "the lease batches up to lease_blocks");
        assert_eq!(st.stats.leases_issued, 1, "one round-trip, three blocks");
        // Submitting the first block retires it but keeps the lease.
        assert!(matches!(
            admit(&mut st, chunks[0].clone()),
            Msg::SubmitAck { accepted: true, duplicate: false, .. }
        ));
        assert!(st.leases.contains_key(&lease_id), "lease survives");
        assert_eq!(st.leases[&lease_id].blocks.len(), 2);
        // Let it lapse with two blocks unfinished: one re-issue, and the
        // completed block is never granted again.
        std::thread::sleep(Duration::from_millis(5));
        expire_lapsed(&mut st, Instant::now());
        assert_eq!(st.stats.leases_reissued, 1, "a lapsed batch counts once");
        let Msg::Lease { blocks: again, .. } = grant(&mut st, &cfg) else {
            panic!("re-grant must lease");
        };
        assert!(
            again.iter().all(|b| b.seq != chunks[0].key().2),
            "the completed block is not re-leased"
        );
    }

    /// The BENCH_9 starvation shape: 8 day-0 blocks, 3 live workers,
    /// 4-block leases. Uncapped grants hand out 4+4 and starve the third
    /// worker; the fair-share cap (`ceil(remaining / live_workers)`)
    /// spreads the schedule 3+3+2 so every live worker crawls.
    #[test]
    fn batched_grants_leave_fair_shares_for_live_peers() {
        let cfg = CoordConfig {
            chunk_visits: 64,
            lease_blocks: 4,
            ..CoordConfig::new(EcosystemConfig::tiny_scale().with_sites(512))
        };
        let mut st = initial_state(&cfg);
        assert_eq!(st.schedule.len(), 8, "8 day-0 blocks");
        st.live_workers = 3;
        let mut granted = Vec::new();
        for _ in 0..3 {
            match grant(&mut st, &cfg) {
                Msg::Lease { blocks, .. } => granted.push(blocks.len()),
                other => panic!("every live worker gets a lease, got {other:?}"),
            }
        }
        assert_eq!(granted, vec![3, 3, 2], "fair shares, nobody starved");
        // A lone worker still gets the full batch — the cap only bites
        // when peers are attached.
        let mut solo = initial_state(&cfg);
        solo.live_workers = 1;
        let Msg::Lease { blocks, .. } = grant(&mut solo, &cfg) else {
            panic!("solo grant must lease");
        };
        assert_eq!(blocks.len(), 4, "solo worker keeps full batching");
    }

    #[test]
    fn unknown_blocks_are_refused() {
        let cfg = tiny_cfg();
        let eco = Ecosystem::generate(cfg.eco.clone());
        let campaign = CampaignConfig {
            chunk_visits: cfg.chunk_visits,
            ..CampaignConfig::default()
        };
        let mut chunk = crawl_shard(eco.factory(), &campaign, 0)[0].clone();
        chunk.shard = 9; // no such shard in a 1-shard schedule
        let mut st = initial_state(&cfg);
        assert!(matches!(
            admit(&mut st, chunk),
            Msg::SubmitAck {
                accepted: false,
                duplicate: false,
                ..
            }
        ));
        assert_eq!(st.stats.frames_rejected, 1);
    }
}
