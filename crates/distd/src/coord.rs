//! The lease coordinator: schedule, lease table, ordered fold, spool.
//!
//! ## Protocol invariants
//!
//! * **The schedule is the fold order.** Blocks are numbered globally in
//!   `(day, shard, seq)` order — exactly the order
//!   `hb_crawler::run_campaign_streamed` seals chunks in — and the
//!   coordinator folds completed chunks to its sink strictly in that
//!   order, buffering at most `reorder_window` out-of-order arrivals.
//!   Downstream consumers (`DatasetIndexBuilder`, figure rendering)
//!   therefore see a byte-identical chunk stream whether the campaign ran
//!   in one process or across a fabric of crashing workers.
//! * **Leases bound the buffer.** A block is only leased while its index
//!   is within `reorder_window` of the next fold point, so the reorder
//!   buffer can never grow past the window no matter how workers race.
//! * **Completion is idempotent.** Campaign visits are pure functions of
//!   `(seed, rank, day)`, so a block crawled twice (lease expired, then
//!   the original worker submitted anyway) yields byte-identical chunks;
//!   the second arrival is detected by its `(day, shard, seq)` key and
//!   dropped, counted in `chunks_duplicate_dropped`.
//! * **Ack implies durable.** With a spool configured, the sealed frame
//!   is fsynced to disk *before* the worker is acked; a coordinator
//!   restarted on the same spool replays every acked chunk and re-leases
//!   only the unfinished blocks.
//! * **Nothing on the wire is trusted.** Frames (worker submissions and
//!   spool files alike) are checksum-verified before parsing and
//!   structurally validated during it; failures are counted in
//!   `frames_rejected` and the block stays leasable.
//!
//! ## Schedule construction
//!
//! Day-0 blocks are known upfront (the full toplist, sharded
//! contiguously). Blocks for days ≥ 1 revisit the HB sites *detected* on
//! day 0, so they are appended only once every day-0 chunk has folded —
//! the detected rank lists are accumulated during the ordered fold, which
//! reproduces the in-process campaign's lists exactly.

use crate::proto::{read_msg, write_msg, DistdError, Msg};
use crate::spool::{spool_load, spool_write};
use hb_crawler::{SessionConfig, ShardSpec, VisitChunk};
use hb_ecosystem::EcosystemConfig;
use std::collections::{BTreeMap, HashMap};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Coordinator tuning.
#[derive(Clone, Debug)]
pub struct CoordConfig {
    /// The campaign universe (shared verbatim with every worker; the
    /// handshake fingerprint commits to it).
    pub eco: EcosystemConfig,
    /// Contiguous toplist shards (the in-process `CampaignConfig::shards`).
    pub shards: u32,
    /// Visits per block / sealed chunk.
    pub chunk_visits: usize,
    /// Session policy (fingerprinted; workers crawl with their own copy).
    pub session: SessionConfig,
    /// A lease not heartbeat within this window is re-issued.
    pub lease_timeout: Duration,
    /// How many blocks past the fold point may be leased at once (bounds
    /// the reorder buffer).
    pub reorder_window: usize,
    /// Chunk spool for crash-safe restarts; `None` disables durability.
    pub spool_dir: Option<PathBuf>,
    /// Back-off suggested to workers when nothing is leasable.
    pub wait_millis: u32,
}

impl CoordConfig {
    /// Sensible defaults for a local fabric over `eco`.
    pub fn new(eco: EcosystemConfig) -> CoordConfig {
        CoordConfig {
            eco,
            shards: 1,
            chunk_visits: 256,
            session: SessionConfig::default(),
            lease_timeout: Duration::from_secs(10),
            reorder_window: 16,
            spool_dir: None,
            wait_millis: 25,
        }
    }
}

/// Observable outcome of one coordinator run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordStats {
    /// Total blocks in the final schedule.
    pub blocks_total: usize,
    /// Chunks folded to the sink (equals `blocks_total` on success).
    pub chunks_folded: usize,
    /// Chunks recovered from the spool instead of a worker.
    pub chunks_replayed: usize,
    /// Leases handed out (first issues and re-issues).
    pub leases_issued: u64,
    /// Leases that lapsed and were made leasable again.
    pub leases_reissued: u64,
    /// Redundant submissions dropped by key.
    pub chunks_duplicate_dropped: u64,
    /// Frames (worker or spool) that failed validation.
    pub frames_rejected: u64,
    /// Distinct handshakes accepted.
    pub workers_seen: u32,
}

/// One schedulable block.
struct Block {
    day: u32,
    shard: u32,
    seq: u32,
    ranks: Vec<u32>,
}

struct Lease {
    block: usize,
    deadline: Instant,
}

struct State {
    schedule: Vec<Block>,
    /// Block index by chunk key; grows with the schedule.
    key_index: HashMap<(u32, u32, u32), usize>,
    /// A chunk for this block has been accepted (buffered or folded).
    complete: Vec<bool>,
    /// Accepted chunks awaiting their turn to fold, by block index.
    buffered: BTreeMap<usize, VisitChunk>,
    /// Next block index to fold.
    folded: usize,
    /// Number of day-0 blocks (the upfront schedule).
    day0_blocks: usize,
    /// Days ≥ 1 have been appended.
    schedule_final: bool,
    /// Detected HB ranks per shard, accumulated during the ordered fold.
    detected: Vec<Vec<u32>>,
    leases: HashMap<u64, Lease>,
    /// Reverse index: which lease currently owns a block.
    leased_block: HashMap<usize, u64>,
    next_lease_id: u64,
    next_worker_id: u32,
    done: bool,
    stats: CoordStats,
}

fn push_block(st: &mut State, block: Block) {
    st.key_index
        .insert((block.day, block.shard, block.seq), st.schedule.len());
    st.schedule.push(block);
    st.complete.push(false);
}

/// Chunk a rank list the way the in-process worker scheduler does.
fn blocks_of(ranks: &[u32], day: u32, shard: u32, chunk_visits: usize) -> Vec<Block> {
    let chunk = chunk_visits.max(1);
    ranks
        .chunks(chunk)
        .enumerate()
        .map(|(seq, slice)| Block {
            day,
            shard,
            seq: seq as u32,
            ranks: slice.to_vec(),
        })
        .collect()
}

fn initial_state(cfg: &CoordConfig) -> State {
    let shards = cfg.shards.max(1);
    let mut st = State {
        schedule: Vec::new(),
        key_index: HashMap::new(),
        complete: Vec::new(),
        buffered: BTreeMap::new(),
        folded: 0,
        day0_blocks: 0,
        schedule_final: false,
        detected: vec![Vec::new(); shards as usize],
        leases: HashMap::new(),
        leased_block: HashMap::new(),
        next_lease_id: 1,
        next_worker_id: 1,
        done: false,
        stats: CoordStats::default(),
    };
    for shard in 0..shards {
        let ranks: Vec<u32> = ShardSpec::new(shards, shard)
            .rank_range(cfg.eco.n_sites)
            .collect();
        for b in blocks_of(&ranks, 0, shard, cfg.chunk_visits) {
            push_block(&mut st, b);
        }
    }
    st.day0_blocks = st.schedule.len();
    st.stats.blocks_total = st.schedule.len();
    if st.day0_blocks == 0 {
        // Degenerate universe: nothing to crawl on day 0, so nothing can
        // be detected either — the schedule is final and empty.
        st.schedule_final = true;
        st.done = true;
    }
    st
}

/// Append the revisit blocks for days 1..=crawl_days. Call exactly once,
/// after every day-0 chunk has folded (the detected lists are complete).
fn finalize_schedule(st: &mut State, cfg: &CoordConfig) {
    debug_assert!(!st.schedule_final);
    let shards = cfg.shards.max(1);
    for day in 1..=cfg.eco.crawl_days {
        for shard in 0..shards {
            let ranks = st.detected[shard as usize].clone();
            for b in blocks_of(&ranks, day, shard, cfg.chunk_visits) {
                push_block(st, b);
            }
        }
    }
    st.schedule_final = true;
    st.stats.blocks_total = st.schedule.len();
}

/// Fold every ready chunk, in schedule order, to the sink. Extends the
/// schedule once day 0 completes and flips `done` when everything folded.
fn fold_ready(st: &mut State, cfg: &CoordConfig, sink: &mut dyn FnMut(VisitChunk)) {
    loop {
        let Some(chunk) = st.buffered.remove(&st.folded) else {
            break;
        };
        if chunk.day == 0 {
            // Same accumulation the in-process campaign performs while
            // streaming day-0 chunks: detected ranks in fold order.
            st.detected[chunk.shard as usize]
                .extend(chunk.visits.iter().filter(|v| v.hb_detected).map(|v| v.rank));
        }
        sink(chunk);
        st.folded += 1;
        st.stats.chunks_folded += 1;
        if st.folded == st.day0_blocks && !st.schedule_final {
            finalize_schedule(st, cfg);
        }
    }
    if st.schedule_final && st.folded == st.schedule.len() {
        st.done = true;
    }
}

/// Release every lapsed lease; their blocks become leasable again.
fn expire_lapsed(st: &mut State, now: Instant) {
    let lapsed: Vec<u64> = st
        .leases
        .iter()
        .filter(|(_, l)| l.deadline <= now)
        .map(|(&id, _)| id)
        .collect();
    for id in lapsed {
        let lease = st.leases.remove(&id).expect("collected above");
        st.leased_block.remove(&lease.block);
        if !st.complete[lease.block] {
            st.stats.leases_reissued += 1;
        }
    }
}

/// Answer a lease request: the lowest incomplete, unleased block within
/// the reorder window, or `Wait`/`Done`.
fn grant(st: &mut State, cfg: &CoordConfig) -> Msg {
    expire_lapsed(st, Instant::now());
    if st.done {
        return Msg::Done;
    }
    let window_end = st
        .folded
        .saturating_add(cfg.reorder_window.max(1))
        .min(st.schedule.len());
    for i in st.folded..window_end {
        if st.complete[i] || st.leased_block.contains_key(&i) {
            continue;
        }
        let lease_id = st.next_lease_id;
        st.next_lease_id += 1;
        st.leases.insert(
            lease_id,
            Lease {
                block: i,
                deadline: Instant::now() + cfg.lease_timeout,
            },
        );
        st.leased_block.insert(i, lease_id);
        st.stats.leases_issued += 1;
        let b = &st.schedule[i];
        return Msg::Lease {
            lease_id,
            day: b.day,
            shard: b.shard,
            seq: b.seq,
            ranks: b.ranks.clone(),
        };
    }
    Msg::Wait {
        millis: cfg.wait_millis,
    }
}

/// Admit one decoded chunk. Returns the ack to send. When `durable` is
/// false and a spool is configured, the frame is written (fsync + rename)
/// before the block is marked complete — ack implies durable.
fn admit(
    st: &mut State,
    cfg: &CoordConfig,
    chunk: VisitChunk,
    frame: Option<&[u8]>,
) -> Msg {
    let key = chunk.key();
    let Some(&idx) = st.key_index.get(&key) else {
        // A chunk for a block this schedule never issued: a stale worker
        // from some other campaign. Refuse it.
        st.stats.frames_rejected += 1;
        return Msg::SubmitAck {
            accepted: false,
            duplicate: false,
        };
    };
    if st.complete[idx] {
        st.stats.chunks_duplicate_dropped += 1;
        return Msg::SubmitAck {
            accepted: true,
            duplicate: true,
        };
    }
    if let (Some(dir), Some(bytes)) = (&cfg.spool_dir, frame) {
        if spool_write(dir, key, bytes).is_err() {
            // Durability could not be guaranteed; do not ack, leave the
            // block leasable so a later submit can retry.
            return Msg::SubmitAck {
                accepted: false,
                duplicate: false,
            };
        }
    }
    st.complete[idx] = true;
    st.buffered.insert(idx, chunk);
    if let Some(lease_id) = st.leased_block.remove(&idx) {
        st.leases.remove(&lease_id);
    }
    Msg::SubmitAck {
        accepted: true,
        duplicate: false,
    }
}

/// One worker connection, served until EOF / error / campaign end.
fn serve_conn(stream: &mut TcpStream, state: &Mutex<State>, cfg: &CoordConfig, fingerprint: u64) {
    // Short read timeouts keep the handler responsive to campaign
    // completion even when its worker was SIGKILLed mid-conversation.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut done_since: Option<Instant> = None;
    loop {
        let msg = match read_msg(stream) {
            Ok(m) => m,
            Err(DistdError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle: give a finished campaign's worker a grace window
                // to fetch its `Done`, then hang up.
                let done = state.lock().expect("coordinator state").done;
                match (done, done_since) {
                    (false, _) => continue,
                    (true, None) => {
                        done_since = Some(Instant::now());
                        continue;
                    }
                    (true, Some(t)) if t.elapsed() < Duration::from_secs(2) => continue,
                    (true, Some(_)) => return,
                }
            }
            Err(_) => return, // EOF, reset, or a corrupt frame: drop the conn
        };
        let reply = match msg {
            Msg::Hello { fingerprint: fp } => {
                if fp == fingerprint {
                    let mut st = state.lock().expect("coordinator state");
                    let id = st.next_worker_id;
                    st.next_worker_id += 1;
                    st.stats.workers_seen += 1;
                    Msg::Welcome { worker_id: id }
                } else {
                    Msg::Reject {
                        reason: "config fingerprint mismatch".into(),
                    }
                }
            }
            Msg::RequestLease { .. } => {
                let mut st = state.lock().expect("coordinator state");
                grant(&mut st, cfg)
            }
            Msg::Heartbeat { lease_id, .. } => {
                let mut st = state.lock().expect("coordinator state");
                expire_lapsed(&mut st, Instant::now());
                match st.leases.get_mut(&lease_id) {
                    Some(lease) => {
                        lease.deadline = Instant::now() + cfg.lease_timeout;
                        Msg::HeartbeatAck
                    }
                    None => Msg::Expired,
                }
            }
            Msg::SubmitChunk { frame, .. } => match VisitChunk::decode(&frame) {
                Ok(chunk) => {
                    let mut st = state.lock().expect("coordinator state");
                    admit(&mut st, cfg, chunk, Some(&frame))
                }
                Err(_) => {
                    let mut st = state.lock().expect("coordinator state");
                    st.stats.frames_rejected += 1;
                    Msg::SubmitAck {
                        accepted: false,
                        duplicate: false,
                    }
                }
            },
            // Anything else is a peer speaking the wrong side of the
            // protocol; drop it.
            _ => return,
        };
        if write_msg(stream, &reply).is_err() {
            return;
        }
    }
}

/// A bound, not-yet-running coordinator.
pub struct Coordinator {
    listener: TcpListener,
    cfg: CoordConfig,
}

impl Coordinator {
    /// Bind the coordinator socket (use port 0 for an ephemeral port and
    /// read it back with [`Coordinator::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: CoordConfig) -> std::io::Result<Coordinator> {
        Ok(Coordinator {
            listener: TcpListener::bind(addr)?,
            cfg,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the campaign to completion: replay the spool, serve workers,
    /// fold every chunk to `sink` in `(day, shard, seq)` order. Returns
    /// the run's counters.
    pub fn run(self, sink: &mut dyn FnMut(VisitChunk)) -> Result<CoordStats, DistdError> {
        let cfg = &self.cfg;
        let fingerprint = crate::proto::config_fingerprint(
            &cfg.eco,
            cfg.shards.max(1),
            cfg.chunk_visits,
            &cfg.session,
        );
        let mut st = initial_state(cfg);

        // --- Spool replay -------------------------------------------------
        if let Some(dir) = &cfg.spool_dir {
            let replay = spool_load(dir)?;
            st.stats.frames_rejected += replay.rejected as u64;
            // Chunks arrive key-sorted, so day 0 admits and folds first;
            // folding day 0 finalizes the schedule, which lets the later
            // days' keys resolve. Loop until a pass makes no progress so
            // replay order never depends on that subtlety.
            let mut pending = replay.chunks;
            loop {
                let before = pending.len();
                let mut rest = Vec::new();
                for chunk in pending {
                    if st.key_index.contains_key(&chunk.key()) {
                        // `frame: None` skips the spool write — the chunk
                        // is already durable, that's where it came from.
                        if let Msg::SubmitAck {
                            accepted: true,
                            duplicate: false,
                        } = admit(&mut st, cfg, chunk, None)
                        {
                            st.stats.chunks_replayed += 1;
                        }
                    } else {
                        rest.push(chunk);
                    }
                }
                fold_ready(&mut st, cfg, sink);
                if rest.is_empty() || rest.len() == before {
                    // Leftovers belong to no block of this schedule:
                    // refuse them like any unknown submission.
                    st.stats.frames_rejected += rest.len() as u64;
                    break;
                }
                pending = rest;
            }
        }
        if st.done {
            return Ok(st.stats);
        }

        // --- Serve --------------------------------------------------------
        self.listener.set_nonblocking(true)?;
        let state = Mutex::new(st);
        std::thread::scope(|scope| {
            loop {
                match self.listener.accept() {
                    Ok((mut stream, _)) => {
                        let state = &state;
                        scope.spawn(move || serve_conn(&mut stream, state, cfg, fingerprint));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(_) => {}
                }
                let mut st = state.lock().expect("coordinator state");
                fold_ready(&mut st, cfg, sink);
                if st.done {
                    break;
                }
                drop(st);
                std::thread::sleep(Duration::from_millis(5));
            }
            // Scope exit joins the handlers; they see `done` and hang up
            // after the grace window.
        });
        let st = state.into_inner().expect("coordinator state");
        Ok(st.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_crawler::{crawl_shard, CampaignConfig};
    use hb_ecosystem::Ecosystem;

    fn tiny_cfg() -> CoordConfig {
        CoordConfig {
            chunk_visits: 64,
            ..CoordConfig::new(EcosystemConfig::tiny_scale())
        }
    }

    /// Drive the schedule/fold state machine directly, no sockets: feed
    /// it the chunks a real crawl produces and check the fold order.
    #[test]
    fn state_machine_folds_in_campaign_order() {
        let cfg = tiny_cfg();
        let eco = Ecosystem::generate(cfg.eco.clone());
        let campaign = CampaignConfig {
            chunk_visits: cfg.chunk_visits,
            ..CampaignConfig::default()
        };
        let chunks = crawl_shard(eco.factory(), &campaign, 0);
        let mut st = initial_state(&cfg);
        // Submit out of order within the window: reverse each day's run.
        let mut folded_keys = Vec::new();
        let mut sink = |c: VisitChunk| folded_keys.push(c.key());
        let mut queue: Vec<VisitChunk> = chunks.clone();
        while !queue.is_empty() {
            // Admit whatever the current schedule recognizes, in reverse.
            let mut rest = Vec::new();
            for chunk in queue.into_iter().rev() {
                if st.key_index.contains_key(&chunk.key()) {
                    let ack = admit(&mut st, &cfg, chunk, None);
                    assert!(matches!(
                        ack,
                        Msg::SubmitAck {
                            accepted: true,
                            duplicate: false
                        }
                    ));
                } else {
                    rest.push(chunk);
                }
            }
            fold_ready(&mut st, &cfg, &mut sink);
            queue = rest;
        }
        assert!(st.done);
        let want: Vec<_> = chunks.iter().map(VisitChunk::key).collect();
        assert_eq!(folded_keys, want, "fold order is the campaign order");
        assert_eq!(st.stats.chunks_folded, chunks.len());
    }

    #[test]
    fn duplicate_chunks_are_dropped_idempotently() {
        let cfg = tiny_cfg();
        let eco = Ecosystem::generate(cfg.eco.clone());
        let campaign = CampaignConfig {
            chunk_visits: cfg.chunk_visits,
            ..CampaignConfig::default()
        };
        let chunks = crawl_shard(eco.factory(), &campaign, 0);
        let mut st = initial_state(&cfg);
        let mut n = 0usize;
        let mut sink = |_c: VisitChunk| n += 1;
        let first = chunks[0].clone();
        assert!(matches!(
            admit(&mut st, &cfg, first.clone(), None),
            Msg::SubmitAck {
                accepted: true,
                duplicate: false
            }
        ));
        // The re-crawl of an expired lease arrives late: same key.
        assert!(matches!(
            admit(&mut st, &cfg, first, None),
            Msg::SubmitAck {
                accepted: true,
                duplicate: true
            }
        ));
        fold_ready(&mut st, &cfg, &mut sink);
        assert_eq!(n, 1);
        assert_eq!(st.stats.chunks_duplicate_dropped, 1);
    }

    #[test]
    fn lapsed_leases_are_reissued_and_window_bounds_grants() {
        let cfg = CoordConfig {
            lease_timeout: Duration::from_millis(1),
            reorder_window: 2,
            ..tiny_cfg()
        };
        let mut st = initial_state(&cfg);
        // Window of 2: exactly two grants, then Wait.
        let a = grant(&mut st, &cfg);
        let b = grant(&mut st, &cfg);
        assert!(matches!(a, Msg::Lease { .. }));
        assert!(matches!(b, Msg::Lease { .. }));
        assert!(matches!(grant(&mut st, &cfg), Msg::Wait { .. }));
        // Let both lapse; the same two blocks are granted again.
        std::thread::sleep(Duration::from_millis(5));
        let c = grant(&mut st, &cfg);
        assert!(matches!(c, Msg::Lease { .. }));
        assert_eq!(st.stats.leases_reissued, 2);
        assert_eq!(st.stats.leases_issued, 3);
        if let (Msg::Lease { seq: s0, .. }, Msg::Lease { seq: s2, .. }) = (a, c) {
            assert_eq!(s0, s2, "the re-issued lease names the same block");
        }
    }

    #[test]
    fn unknown_blocks_are_refused() {
        let cfg = tiny_cfg();
        let eco = Ecosystem::generate(cfg.eco.clone());
        let campaign = CampaignConfig {
            chunk_visits: cfg.chunk_visits,
            ..CampaignConfig::default()
        };
        let mut chunk = crawl_shard(eco.factory(), &campaign, 0)[0].clone();
        chunk.shard = 9; // no such shard in a 1-shard schedule
        let mut st = initial_state(&cfg);
        assert!(matches!(
            admit(&mut st, &cfg, chunk, None),
            Msg::SubmitAck {
                accepted: false,
                duplicate: false
            }
        ));
        assert_eq!(st.stats.frames_rejected, 1);
    }
}
