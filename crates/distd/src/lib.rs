//! # hb-distd — fault-tolerant distributed campaign fabric
//!
//! Scales a crawl campaign across processes (or machines) without giving
//! up one byte of determinism. A lease-based coordinator ([`coord`])
//! hands out `(day, shard, seq)` rank blocks over a checksummed TCP
//! protocol ([`proto`]); crash-safe workers ([`worker`]) crawl each block
//! with the exact in-process machinery and ship back sealed columnar
//! chunk frames; an optional spool ([`spool`]) makes every acked chunk
//! durable so a coordinator restart resumes the campaign instead of
//! restarting it.
//!
//! The load-bearing property is inherited from the campaign layer:
//! **visits are pure functions of `(seed, rank, day)`**. That is what
//! turns every hard distributed-systems problem here into bookkeeping —
//! an expired lease can be re-issued to any worker (same bytes come
//! back), a duplicate submission can be dropped by key, and a resumed
//! campaign's figures are byte-identical to a single-process run.
//!
//! Byte streams flow through the [`transport`] abstraction: production
//! uses plain TCP, and the deterministic fault-injection harness
//! ([`chaos`]) wraps the same sockets in a seeded schedule of resets,
//! truncations, bit flips, stalls, duplicated submissions and heartbeat
//! blackouts — so the recovery paths above are exercised, on every CI
//! run, by reproducible storms. See `docs/distd.md` for the protocol
//! state machine and recovery invariants.
//!
//! ```no_run
//! use hb_distd::{CoordConfig, Coordinator, WorkerConfig, run_worker};
//! use hb_ecosystem::EcosystemConfig;
//!
//! let cfg = CoordConfig::new(EcosystemConfig::tiny_scale());
//! let coordinator = Coordinator::bind("127.0.0.1:0", cfg.clone()).unwrap();
//! let addr = coordinator.local_addr().unwrap().to_string();
//! std::thread::spawn(move || {
//!     let wcfg = WorkerConfig {
//!         chunk_visits: cfg.chunk_visits,
//!         ..WorkerConfig::new(addr, cfg.eco.clone())
//!     };
//!     run_worker(&wcfg).unwrap();
//! });
//! let mut chunks = Vec::new();
//! coordinator.run(&mut |c| chunks.push(c)).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod cli;
pub mod coord;
pub mod proto;
pub mod spool;
pub mod transport;
pub mod worker;

pub use chaos::{
    ChaosConfig, ChaosConnector, ChaosLedger, ChaosSchedule, RxFault, TxFault,
};
pub use coord::{CoordConfig, CoordStats, Coordinator};
pub use proto::{
    config_fingerprint, read_msg, recv_msg, send_msg, write_msg, DistdError, LeaseBlock, Msg,
    MAX_PAYLOAD,
};
pub use spool::{
    compact_spool, segment_file_name, spool_load, spool_path, spool_write, CompactReport,
    SegmentManifest, SegmentRecord, SpoolReplay,
};
pub use transport::{is_timeout, Connector, TcpConnector, TcpTransport, Transport};
pub use worker::{
    reconnect_backoff, run_worker, run_worker_session, WorkerConfig, WorkerStats,
};
