//! Tiny argv helpers shared by `distd-coord` and `distd-worker`.
//!
//! Not an argument-parsing framework — just enough shared plumbing that
//! every malformed invocation (unknown flag, missing value, unparseable
//! number) produces a one-line explanation plus the usage text and exit
//! code **2**, instead of a panic or a silent default. The binaries keep
//! exit 0 for success, 1 for runtime failures, and 3 for a lost
//! coordinator, so launchers can tell "you called me wrong" apart from
//! "the fabric failed".

use std::fmt::Display;
use std::str::FromStr;

/// Exit code for a malformed command line.
pub const EXIT_USAGE: i32 = 2;

/// Pull the value following `flag`, or say exactly what was missing.
pub fn flag_value(
    args: &mut dyn Iterator<Item = String>,
    flag: &str,
) -> Result<String, String> {
    args.next()
        .ok_or_else(|| format!("{flag} requires a value"))
}

/// Pull and parse the value following `flag`, naming the flag and the
/// offending text on failure.
pub fn flag_parse<T>(args: &mut dyn Iterator<Item = String>, flag: &str) -> Result<T, String>
where
    T: FromStr,
    T::Err: Display,
{
    let raw = flag_value(args, flag)?;
    raw.parse()
        .map_err(|e| format!("{flag}: invalid value {raw:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_value_reports_the_flag_that_starved() {
        let mut args = std::iter::empty();
        let err = flag_value(&mut args, "--shards").unwrap_err();
        assert!(err.contains("--shards"), "{err}");
    }

    #[test]
    fn flag_parse_names_flag_and_offender() {
        let mut args = vec!["banana".to_string()].into_iter();
        let err = flag_parse::<u32>(&mut args, "--shards").unwrap_err();
        assert!(err.contains("--shards") && err.contains("banana"), "{err}");
        let mut args = vec!["7".to_string()].into_iter();
        assert_eq!(flag_parse::<u32>(&mut args, "--shards").unwrap(), 7);
    }
}
