//! Deterministic chaos: a seeded fault-injection transport.
//!
//! [`ChaosTransport`] wraps the real TCP transport and injects faults
//! from a *pure* schedule: every decision is a function of `(seed,
//! domain, connection, frame_index)` hashed through XXH64 — no clocks,
//! no RNG state, no thread interleaving. The same seed therefore always
//! injects the same fault sequence onto the same connection/frame
//! coordinates, which is what makes a chaos soak debuggable: a failing
//! seed is a reproducible adversary, not a flake.
//!
//! ## Fault kinds
//!
//! Outbound (worker → coordinator), decided per sent frame:
//!
//! * **Corrupt** — one deterministic bit flipped in the frame copy; the
//!   coordinator's checksum rejects it (`frames_rejected`).
//! * **Truncate** — a prefix is sent and the socket is shut down; the
//!   coordinator reads EOF mid-frame (`frames_rejected`).
//! * **Reset** — the frame is dropped and the socket is shut down: a
//!   connection reset mid-conversation.
//! * **Duplicate** — a `SubmitChunk` is sent twice back-to-back; the
//!   coordinator drops the second by key (`chunks_duplicate_dropped`).
//! * **Replay** — a `SubmitChunk` is stashed and re-sent before the
//!   *next* outbound frame: a delayed duplicate arriving out of order.
//! * **Blackout** — a `Heartbeat` is silently swallowed and the reply
//!   read times out: a half-open connection around the heartbeat path.
//!
//! Inbound (coordinator → worker), decided per received frame:
//!
//! * **Corrupt** — one bit flipped in the received frame; the worker's
//!   checksum rejects it and the connection is abandoned.
//! * **Stall** — the read blocks for the configured stall and then times
//!   out: a wedged peer, exercising the worker's stall detection.
//!
//! Dial-time, decided per connection attempt:
//!
//! * **Refuse** — the connection is never made (a handshake partition).
//!
//! ## Liveness
//!
//! Every fourth connection (`conn % 4 == 3`) is *quiet* — no faults on
//! any frame. A worker that keeps reconnecting is therefore guaranteed
//! periodic clean conversations, so a soak at any hostility level always
//! terminates: the adversary can delay the campaign but never wedge it.
//!
//! ## The ledger
//!
//! Every injected fault is counted in a shared [`ChaosLedger`] *at the
//! moment it is actually injected* (a stashed replay that dies with its
//! connection is never counted), so a soak can reconcile coordinator and
//! worker counters against the ledger and prove nothing was silently
//! swallowed.

use crate::proto::{frame_tag, DistdError, TAG_HEARTBEAT, TAG_SUBMIT_ACK, TAG_SUBMIT_CHUNK};
use crate::transport::{Connector, TcpTransport, Transport};
use hb_core::xxh64;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Chaos tuning: the seed, the hostility level, and the stall length.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Schedule seed; same seed ⇒ same fault sequence.
    pub seed: u64,
    /// Hostility 0..=8: each level adds ~3% fault probability per frame
    /// (0 disables injection entirely).
    pub level: u32,
    /// How long an injected stall blocks before timing out.
    pub stall: Duration,
}

impl ChaosConfig {
    /// A schedule at `level` over `seed`, with a short default stall.
    pub fn new(seed: u64, level: u32) -> ChaosConfig {
        ChaosConfig {
            seed,
            level,
            stall: Duration::from_millis(50),
        }
    }
}

/// An outbound fault decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxFault {
    /// Flip one bit of the sent frame.
    Corrupt,
    /// Send a prefix, then cut the stream.
    Truncate,
    /// Drop the frame and cut the stream.
    Reset,
    /// Send the frame twice (submissions only).
    Duplicate,
    /// Re-send the frame before the next outbound frame (submissions
    /// only).
    Replay,
    /// Swallow the frame and time out the reply (heartbeats only).
    Blackout,
}

/// An inbound fault decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxFault {
    /// Flip one bit of the received frame.
    Corrupt,
    /// Block for the stall length, then time out.
    Stall,
}

// Decision domains: disjoint hash streams per direction.
const DOMAIN_TX: u64 = 1;
const DOMAIN_RX: u64 = 2;
const DOMAIN_CONNECT: u64 = 3;
const DOMAIN_BIT: u64 = 4;

/// Per-mille fault probability per hostility level.
const PER_LEVEL_PERMILLE: u64 = 30;

/// The pure schedule: every fault decision as a function of its
/// coordinates. Public so tests can enumerate the schedule directly and
/// prove replay determinism.
#[derive(Clone, Copy, Debug)]
pub struct ChaosSchedule {
    cfg: ChaosConfig,
}

impl ChaosSchedule {
    /// Schedule over `cfg`.
    pub fn new(cfg: ChaosConfig) -> ChaosSchedule {
        ChaosSchedule { cfg }
    }

    /// The config this schedule was built from.
    pub fn config(&self) -> ChaosConfig {
        self.cfg
    }

    /// True when `conn` is a fault-free liveness connection.
    pub fn is_quiet(&self, conn: u32) -> bool {
        conn % 4 == 3
    }

    fn roll(&self, domain: u64, conn: u32, idx: u64) -> u64 {
        let mut bytes = [0u8; 32];
        bytes[0..8].copy_from_slice(&self.cfg.seed.to_le_bytes());
        bytes[8..16].copy_from_slice(&domain.to_le_bytes());
        bytes[16..24].copy_from_slice(&u64::from(conn).to_le_bytes());
        bytes[24..32].copy_from_slice(&idx.to_le_bytes());
        xxh64(&bytes)
    }

    fn fires(&self, domain: u64, conn: u32, idx: u64) -> Option<u64> {
        if self.cfg.level == 0 || self.is_quiet(conn) {
            return None;
        }
        let h = self.roll(domain, conn, idx);
        let threshold = u64::from(self.cfg.level) * PER_LEVEL_PERMILLE;
        if h % 1000 < threshold {
            Some(h >> 10) // independent selector bits
        } else {
            None
        }
    }

    /// Outbound fault for frame `idx` of `conn` (a submission iff
    /// `is_submit`, a heartbeat iff `is_heartbeat`).
    pub fn tx_fault(
        &self,
        conn: u32,
        idx: u64,
        is_submit: bool,
        is_heartbeat: bool,
    ) -> Option<TxFault> {
        let sel = self.fires(DOMAIN_TX, conn, idx)?;
        // Submissions draw from the full fault set; other messages only
        // from the kinds that keep request/reply pairing analyzable.
        let fault = if is_submit {
            match sel % 5 {
                0 => TxFault::Corrupt,
                1 => TxFault::Truncate,
                2 => TxFault::Reset,
                3 => TxFault::Duplicate,
                _ => TxFault::Replay,
            }
        } else if is_heartbeat {
            match sel % 3 {
                0 => TxFault::Corrupt,
                1 => TxFault::Reset,
                _ => TxFault::Blackout,
            }
        } else {
            match sel % 3 {
                0 => TxFault::Corrupt,
                1 => TxFault::Truncate,
                _ => TxFault::Reset,
            }
        };
        Some(fault)
    }

    /// Inbound fault for frame `idx` of `conn`.
    pub fn rx_fault(&self, conn: u32, idx: u64) -> Option<RxFault> {
        let sel = self.fires(DOMAIN_RX, conn, idx)?;
        Some(match sel % 2 {
            0 => RxFault::Corrupt,
            _ => RxFault::Stall,
        })
    }

    /// True when dial attempt `conn` is refused (handshake partition).
    pub fn refuse_connect(&self, conn: u32) -> bool {
        self.fires(DOMAIN_CONNECT, conn, 0).is_some()
    }

    /// Deterministic bit position to flip in an `n_bytes` frame.
    pub fn corrupt_bit(&self, conn: u32, idx: u64, n_bytes: usize) -> usize {
        (self.roll(DOMAIN_BIT, conn, idx) as usize) % (n_bytes * 8).max(1)
    }

    /// Deterministic truncation point for an `n_bytes` frame: at least
    /// one byte is sent, at least one withheld.
    pub fn truncate_at(&self, conn: u32, idx: u64, n_bytes: usize) -> usize {
        if n_bytes <= 1 {
            return n_bytes;
        }
        1 + (self.roll(DOMAIN_BIT, conn, idx) as usize) % (n_bytes - 1)
    }
}

/// Shared count of every injected fault, by kind. All counters are
/// incremented at actual injection time.
#[derive(Debug, Default)]
pub struct ChaosLedger {
    /// Outbound frames with a flipped bit.
    pub corrupt_tx: AtomicU64,
    /// Outbound frames cut mid-send.
    pub truncate_tx: AtomicU64,
    /// Connections reset instead of sending.
    pub reset_tx: AtomicU64,
    /// Submissions sent twice.
    pub duplicate_tx: AtomicU64,
    /// Submissions replayed out of order.
    pub replay_tx: AtomicU64,
    /// Heartbeats swallowed into a blackout.
    pub blackout_tx: AtomicU64,
    /// Inbound frames with a flipped bit.
    pub corrupt_rx: AtomicU64,
    /// Inbound reads stalled into a timeout.
    pub stall_rx: AtomicU64,
    /// Dial attempts refused.
    pub refused_connects: AtomicU64,
}

impl ChaosLedger {
    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        self.corrupt_tx.load(Ordering::Relaxed)
            + self.truncate_tx.load(Ordering::Relaxed)
            + self.reset_tx.load(Ordering::Relaxed)
            + self.duplicate_tx.load(Ordering::Relaxed)
            + self.replay_tx.load(Ordering::Relaxed)
            + self.blackout_tx.load(Ordering::Relaxed)
            + self.corrupt_rx.load(Ordering::Relaxed)
            + self.stall_rx.load(Ordering::Relaxed)
            + self.refused_connects.load(Ordering::Relaxed)
    }

    /// Faults the coordinator must surface in `frames_rejected` (a
    /// corrupt or truncated frame on its doorstep).
    pub fn coordinator_rejectable(&self) -> u64 {
        self.corrupt_tx.load(Ordering::Relaxed) + self.truncate_tx.load(Ordering::Relaxed)
    }

    /// Faults that must surface as duplicate-dropped chunks.
    pub fn duplicate_like(&self) -> u64 {
        self.duplicate_tx.load(Ordering::Relaxed) + self.replay_tx.load(Ordering::Relaxed)
    }

    /// Faults that must surface as worker-side connection breaks.
    pub fn break_like(&self) -> u64 {
        self.reset_tx.load(Ordering::Relaxed)
            + self.blackout_tx.load(Ordering::Relaxed)
            + self.corrupt_rx.load(Ordering::Relaxed)
            + self.stall_rx.load(Ordering::Relaxed)
    }

    /// Dial attempts refused (must surface as worker connect failures).
    pub fn refused(&self) -> u64 {
        self.refused_connects.load(Ordering::Relaxed)
    }
}

/// A [`Connector`] that dials through the chaos schedule: connection ids
/// are assigned in dial order (shared across worker respawns so the
/// schedule keeps advancing), dial attempts may be refused, and every
/// established connection is wrapped in a [`ChaosTransport`].
pub struct ChaosConnector {
    addr: String,
    schedule: ChaosSchedule,
    next_conn: AtomicU32,
    ledger: Arc<ChaosLedger>,
}

impl ChaosConnector {
    /// Chaos dialer for `addr` under `cfg`.
    pub fn new(addr: String, cfg: ChaosConfig) -> ChaosConnector {
        ChaosConnector {
            addr,
            schedule: ChaosSchedule::new(cfg),
            next_conn: AtomicU32::new(0),
            ledger: Arc::new(ChaosLedger::default()),
        }
    }

    /// The shared fault ledger.
    pub fn ledger(&self) -> Arc<ChaosLedger> {
        Arc::clone(&self.ledger)
    }
}

impl Connector for ChaosConnector {
    fn connect(&self) -> Result<Box<dyn Transport>, DistdError> {
        let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
        if self.schedule.refuse_connect(conn) {
            self.ledger.refused_connects.fetch_add(1, Ordering::Relaxed);
            return Err(DistdError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "chaos: connection refused",
            )));
        }
        let stream = TcpStream::connect(&self.addr)?;
        Ok(Box::new(ChaosTransport {
            inner: TcpTransport::new(stream)?,
            schedule: self.schedule,
            ledger: Arc::clone(&self.ledger),
            conn,
            tx_i: 0,
            rx_i: 0,
            swallow_acks: 0,
            pending_replay: None,
            blackout: false,
            dead: false,
        }))
    }
}

/// A transport that injects the schedule's faults around a real TCP
/// transport. See the module docs for the fault catalogue.
pub struct ChaosTransport {
    inner: TcpTransport,
    schedule: ChaosSchedule,
    ledger: Arc<ChaosLedger>,
    conn: u32,
    tx_i: u64,
    rx_i: u64,
    /// Extra submit-acks in flight from injected duplicates/replays;
    /// drained on receive to keep request/reply pairing intact.
    swallow_acks: u32,
    /// A stashed submission to re-send before the next outbound frame.
    pending_replay: Option<Vec<u8>>,
    /// A heartbeat was swallowed; the next receive times out.
    blackout: bool,
    /// An injected reset/truncation killed this connection.
    dead: bool,
}

impl ChaosTransport {
    fn cut(&mut self) {
        let _ = self.inner.stream().shutdown(std::net::Shutdown::Both);
        self.dead = true;
    }

    fn dead_err() -> DistdError {
        DistdError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "chaos: connection reset",
        ))
    }
}

impl Transport for ChaosTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), DistdError> {
        if self.dead {
            return Err(Self::dead_err());
        }
        // A stashed replay fires first: the duplicate arrives *before*
        // this frame, i.e. delayed and out of order relative to its
        // original send.
        if let Some(replayed) = self.pending_replay.take() {
            self.inner.send_frame(&replayed)?;
            self.swallow_acks += 1;
            self.ledger.replay_tx.fetch_add(1, Ordering::Relaxed);
        }
        let idx = self.tx_i;
        self.tx_i += 1;
        let tag = frame_tag(frame);
        let fault = self.schedule.tx_fault(
            self.conn,
            idx,
            tag == Some(TAG_SUBMIT_CHUNK),
            tag == Some(TAG_HEARTBEAT),
        );
        match fault {
            None => self.inner.send_frame(frame),
            Some(TxFault::Corrupt) => {
                let mut bad = frame.to_vec();
                let bit = self.schedule.corrupt_bit(self.conn, idx, bad.len());
                bad[bit / 8] ^= 1 << (bit % 8);
                self.ledger.corrupt_tx.fetch_add(1, Ordering::Relaxed);
                // The send "succeeds"; the receiver rejects the frame
                // and hangs up, which this side discovers on receive.
                self.inner.send_frame(&bad)
            }
            Some(TxFault::Truncate) => {
                let cut = self.schedule.truncate_at(self.conn, idx, frame.len());
                self.ledger.truncate_tx.fetch_add(1, Ordering::Relaxed);
                let sent = self.inner.send_frame(&frame[..cut]);
                self.cut();
                sent
            }
            Some(TxFault::Reset) => {
                self.ledger.reset_tx.fetch_add(1, Ordering::Relaxed);
                self.cut();
                Err(Self::dead_err())
            }
            Some(TxFault::Duplicate) => {
                self.inner.send_frame(frame)?;
                self.ledger.duplicate_tx.fetch_add(1, Ordering::Relaxed);
                self.swallow_acks += 1;
                self.inner.send_frame(frame)
            }
            Some(TxFault::Replay) => {
                self.inner.send_frame(frame)?;
                // Counted when (and only when) it is actually re-sent.
                self.pending_replay = Some(frame.to_vec());
                Ok(())
            }
            Some(TxFault::Blackout) => {
                self.ledger.blackout_tx.fetch_add(1, Ordering::Relaxed);
                self.blackout = true;
                Ok(())
            }
        }
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, DistdError> {
        if self.dead {
            return Err(Self::dead_err());
        }
        if self.blackout {
            // The swallowed heartbeat has no reply coming; surface the
            // half-open connection as a read timeout.
            self.blackout = false;
            std::thread::sleep(self.schedule.config().stall);
            return Err(DistdError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "chaos: heartbeat blackout",
            )));
        }
        let idx = self.rx_i;
        self.rx_i += 1;
        if let Some(fault) = self.schedule.rx_fault(self.conn, idx) {
            match fault {
                RxFault::Stall => {
                    self.ledger.stall_rx.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.schedule.config().stall);
                    return Err(DistdError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "chaos: stalled read",
                    )));
                }
                RxFault::Corrupt => {
                    let mut frame = self.recv_real()?;
                    let bit = self.schedule.corrupt_bit(self.conn, idx, frame.len());
                    frame[bit / 8] ^= 1 << (bit % 8);
                    self.ledger.corrupt_rx.fetch_add(1, Ordering::Relaxed);
                    return Ok(frame);
                }
            }
        }
        self.recv_real()
    }

    fn set_recv_deadline(&mut self, deadline: Option<Duration>) -> Result<(), DistdError> {
        self.inner.set_recv_deadline(deadline)
    }
}

impl ChaosTransport {
    /// One real receive, draining the acks owed to injected duplicate
    /// submissions first (FIFO: the stale acks arrive before the reply
    /// to anything sent after them).
    fn recv_real(&mut self) -> Result<Vec<u8>, DistdError> {
        loop {
            let frame = self.inner.recv_frame()?;
            if self.swallow_acks > 0 && frame_tag(&frame) == Some(TAG_SUBMIT_ACK) {
                self.swallow_acks -= 1;
                continue;
            }
            return Ok(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The decision surface of one schedule over a coordinate grid, as a
    /// comparable value.
    fn surface(s: &ChaosSchedule) -> Vec<(Option<TxFault>, Option<TxFault>, Option<RxFault>, bool)> {
        let mut out = Vec::new();
        for conn in 0..16u32 {
            for idx in 0..64u64 {
                out.push((
                    s.tx_fault(conn, idx, true, false),
                    s.tx_fault(conn, idx, false, true),
                    s.rx_fault(conn, idx),
                    s.refuse_connect(conn),
                ));
            }
        }
        out
    }

    #[test]
    fn same_seed_same_schedule() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = ChaosSchedule::new(ChaosConfig::new(seed, 6));
            let b = ChaosSchedule::new(ChaosConfig::new(seed, 6));
            assert_eq!(surface(&a), surface(&b));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosSchedule::new(ChaosConfig::new(1, 6));
        let b = ChaosSchedule::new(ChaosConfig::new(2, 6));
        assert_ne!(surface(&a), surface(&b), "seeds must matter");
    }

    #[test]
    fn quiet_connections_are_fault_free_at_any_level() {
        let s = ChaosSchedule::new(ChaosConfig::new(9, 8));
        for conn in (3..1024u32).step_by(4) {
            assert!(s.is_quiet(conn));
            assert!(s.refuse_connect(conn) == false);
            for idx in 0..256u64 {
                assert_eq!(s.tx_fault(conn, idx, true, false), None);
                assert_eq!(s.rx_fault(conn, idx), None);
            }
        }
    }

    #[test]
    fn level_zero_injects_nothing_and_levels_escalate() {
        let quietest = ChaosSchedule::new(ChaosConfig::new(7, 0));
        let count = |s: &ChaosSchedule| {
            surface(s)
                .iter()
                .filter(|(a, b, c, d)| a.is_some() || b.is_some() || c.is_some() || *d)
                .count()
        };
        assert_eq!(count(&quietest), 0);
        let low = count(&ChaosSchedule::new(ChaosConfig::new(7, 1)));
        let high = count(&ChaosSchedule::new(ChaosConfig::new(7, 8)));
        assert!(low > 0, "level 1 must inject something over 1024 frames");
        assert!(high > low, "hostility must escalate with level");
    }
}
