//! The chaos soak: a tiny campaign driven to completion under eight
//! escalating seeded fault storms — connection resets mid-frame, frame
//! truncation and bit corruption, stalled reads, duplicated and replayed
//! submissions, heartbeat blackouts, refused dials — with three
//! non-negotiable outcomes per storm:
//!
//! 1. **Liveness**: the campaign completes inside a hard wall-clock
//!    bound (the schedule leaves every fourth connection fault-free, so
//!    progress is always reachable).
//! 2. **Safety**: the figure CSVs are byte-identical to the in-process
//!    single-thread run. Chaos may cost time, never bytes.
//! 3. **Accounting**: every fault the ledger injected is accounted for
//!    by an observable fabric counter. The inequalities carry the
//!    worker-side connection-break counters because a fault injected
//!    into a frame the coordinator never read (campaign completed
//!    first, handler gone) still surfaces as exactly one broken
//!    connection on the worker that sent it — the protocol is strictly
//!    request-reply, so at most one in-flight fault per connection.

use hb_analysis::{indexed_reports, DatasetIndexBuilder};
use hb_crawler::{run_campaign_streamed, CampaignConfig};
use hb_distd::{
    run_worker_session, ChaosConfig, ChaosConnector, CoordConfig, CoordStats, Coordinator,
    WorkerConfig, WorkerStats,
};
use hb_ecosystem::{Ecosystem, EcosystemConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const SHARDS: u32 = 2;
const CHUNK_VISITS: usize = 32;
const WORKERS: u64 = 2;
const SEEDS: u32 = 8;
const PER_SEED_BOUND: Duration = Duration::from_secs(60);

/// Ground truth: the single-process streamed campaign rendered through
/// the same incremental index.
fn reference_figures() -> &'static BTreeMap<String, String> {
    static REF: OnceLock<BTreeMap<String, String>> = OnceLock::new();
    REF.get_or_init(|| {
        let eco_cfg = EcosystemConfig::tiny_scale();
        let eco = Ecosystem::generate(eco_cfg.clone());
        let cfg = CampaignConfig {
            shards: SHARDS,
            chunk_visits: CHUNK_VISITS,
            ..CampaignConfig::default()
        };
        let mut builder = DatasetIndexBuilder::new(eco_cfg.n_sites, eco_cfg.crawl_days);
        run_campaign_streamed(eco.factory(), &cfg, &mut |chunk| builder.push_chunk(&chunk));
        let index = builder.finish();
        indexed_reports(&index)
            .into_iter()
            .map(|r| (format!("{}.csv", r.id), r.render()))
            .collect()
    })
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hb-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn add_stats(into: &mut WorkerStats, s: &WorkerStats) {
    into.blocks_completed += s.blocks_completed;
    into.visits += s.visits;
    into.leases_expired += s.leases_expired;
    into.duplicates += s.duplicates;
    into.reconnects += s.reconnects;
    into.conn_breaks += s.conn_breaks;
    into.connect_failures += s.connect_failures;
    into.wire_rejected += s.wire_rejected;
    into.leases_abandoned += s.leases_abandoned;
}

struct SoakOutcome {
    coord: CoordStats,
    workers: WorkerStats,
    injected_total: u64,
    rejectable: u64,
    duplicate_like: u64,
    break_like: u64,
    refused: u64,
    elapsed: Duration,
    figures: BTreeMap<String, String>,
}

/// Run one full campaign under the given storm and collect everything
/// observable.
fn soak_one(seed: u64, level: u32, spool: &std::path::Path) -> SoakOutcome {
    let eco_cfg = EcosystemConfig::tiny_scale();
    let coord_cfg = CoordConfig {
        shards: SHARDS,
        chunk_visits: CHUNK_VISITS,
        lease_timeout: Duration::from_millis(800),
        lease_blocks: 2,
        spool_dir: Some(spool.to_path_buf()),
        compact_every: 4,
        wait_millis: 5,
        ..CoordConfig::new(eco_cfg.clone())
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", coord_cfg).expect("bind coordinator");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let connector = ChaosConnector::new(addr, ChaosConfig::new(seed, level));
    let ledger = connector.ledger();

    let worker_cfg = |instance: u64| WorkerConfig {
        shards: SHARDS,
        chunk_visits: CHUNK_VISITS,
        heartbeat_every: Duration::from_millis(2),
        visit_delay: Duration::from_micros(100),
        connect_attempts: 6,
        backoff_base: Duration::from_millis(10),
        io_timeout: Duration::from_secs(2),
        hb_deadline: Duration::from_millis(150),
        reconnect_budget: Duration::from_secs(2),
        instance,
        ..WorkerConfig::new(String::new(), eco_cfg.clone())
    };

    let done = AtomicBool::new(false);
    let started = Instant::now();
    let mut builder = DatasetIndexBuilder::new(eco_cfg.n_sites, eco_cfg.crawl_days);
    let (coord_stats, worker_totals) = std::thread::scope(|scope| {
        let connector = &connector;
        let done = &done;
        // Shepherds: respawn crashed workers (fresh instance, fresh
        // jitter identity) until the coordinator reports completion.
        let shepherds: Vec<_> = (0..WORKERS)
            .map(|slot| {
                scope.spawn(move || {
                    let mut totals = WorkerStats::default();
                    let mut respawn = 0u64;
                    loop {
                        let cfg = worker_cfg(slot * 1_000 + respawn);
                        let mut stats = WorkerStats::default();
                        let r = run_worker_session(&cfg, connector, &mut stats);
                        add_stats(&mut totals, &stats);
                        match r {
                            Ok(()) => break,
                            Err(_) if done.load(Ordering::Acquire) => break,
                            Err(_) => respawn += 1,
                        }
                    }
                    totals
                })
            })
            .collect();
        let stats = coordinator
            .run(&mut |chunk| builder.push_chunk(&chunk))
            .expect("coordinator run");
        done.store(true, Ordering::Release);
        let mut totals = WorkerStats::default();
        for h in shepherds {
            add_stats(&mut totals, &h.join().expect("shepherd panicked"));
        }
        (stats, totals)
    });
    let elapsed = started.elapsed();

    let index = builder.finish();
    let figures = indexed_reports(&index)
        .into_iter()
        .map(|r| (format!("{}.csv", r.id), r.render()))
        .collect();
    SoakOutcome {
        coord: coord_stats,
        workers: worker_totals,
        injected_total: ledger.total(),
        rejectable: ledger.coordinator_rejectable(),
        duplicate_like: ledger.duplicate_like(),
        break_like: ledger.break_like(),
        refused: ledger.refused(),
        elapsed,
        figures,
    }
}

#[test]
fn escalating_chaos_storms_never_cost_bytes_and_every_fault_is_accounted() {
    let want = reference_figures();
    let mut grand_injected = 0u64;
    let mut grand_segments = 0u64;
    for i in 0..SEEDS {
        let level = i + 1;
        let seed = 0xC5A0_5EED_u64.wrapping_add(u64::from(i).wrapping_mul(0x9E37_79B9));
        let spool = tmp_dir(&format!("soak-{i}"));
        let o = soak_one(seed, level, &spool);
        let label = format!("seed {seed:#x} level {level}");

        // Liveness: bounded wall-clock despite the storm.
        assert!(
            o.elapsed < PER_SEED_BOUND,
            "{label}: took {:?}, bound {PER_SEED_BOUND:?}",
            o.elapsed
        );

        // Safety: byte-identical figures.
        assert_eq!(
            o.figures.keys().collect::<Vec<_>>(),
            want.keys().collect::<Vec<_>>(),
            "{label}: figure set differs"
        );
        for (name, bytes) in want {
            assert_eq!(
                o.figures.get(name).expect("checked above"),
                bytes,
                "{label}: {name} not byte-identical"
            );
        }
        assert_eq!(
            o.coord.chunks_folded, o.coord.blocks_total,
            "{label}: every block folded exactly once"
        );

        // Accounting: each injected fault shows up in an observable
        // counter (see module docs for why conn_breaks appears on the
        // left-hand sides).
        let w = &o.workers;
        assert!(
            o.coord.frames_rejected + w.conn_breaks >= o.rejectable,
            "{label}: rejectable faults unaccounted: frames_rejected={} conn_breaks={} injected={}",
            o.coord.frames_rejected,
            w.conn_breaks,
            o.rejectable
        );
        assert!(
            o.coord.chunks_duplicate_dropped + w.conn_breaks >= o.duplicate_like,
            "{label}: duplicate faults unaccounted: dropped={} conn_breaks={} injected={}",
            o.coord.chunks_duplicate_dropped,
            w.conn_breaks,
            o.duplicate_like
        );
        assert!(
            w.conn_breaks + w.connect_failures >= o.break_like + o.refused,
            "{label}: break faults unaccounted: conn_breaks={} connect_failures={} injected={}",
            w.conn_breaks,
            w.connect_failures,
            o.break_like + o.refused
        );
        // Non-vacuity: the storm actually stormed.
        if level >= 2 {
            assert!(
                o.injected_total > 0,
                "{label}: schedule injected nothing — the soak is vacuous"
            );
        }
        grand_injected += o.injected_total;
        grand_segments += o.coord.segments_written;
        let _ = std::fs::remove_dir_all(&spool);
    }
    assert!(
        grand_injected >= 20,
        "eight storms should inject a real volume of faults, got {grand_injected}"
    );
    assert!(
        grand_segments >= 1,
        "compaction must run under chaos at least once across the soak"
    );
}
