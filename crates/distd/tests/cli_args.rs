//! Command-line contract for the distd binaries: every malformed
//! invocation exits with code 2 and prints a usage line to stderr —
//! never a panic, never a silent default. Runs the real binaries via
//! `CARGO_BIN_EXE_*`.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .expect("spawn distd binary");
    (out.status.code(), String::from_utf8_lossy(&out.stderr).into_owned())
}

fn assert_usage_exit(bin: &str, args: &[&str]) {
    let (code, stderr) = run(bin, args);
    assert_eq!(
        code,
        Some(2),
        "{bin} {args:?}: expected exit 2, got {code:?}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{bin} {args:?}: stderr must carry the usage line:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{bin} {args:?}: must not panic:\n{stderr}"
    );
}

const COORD: &str = env!("CARGO_BIN_EXE_distd-coord");
const WORKER: &str = env!("CARGO_BIN_EXE_distd-worker");

#[test]
fn coordinator_rejects_malformed_invocations_with_usage() {
    // Unknown flag.
    assert_usage_exit(COORD, &["--bogus"]);
    // Flag at end of argv with its value missing.
    for flag in [
        "--listen",
        "--scale",
        "--seed",
        "--shards",
        "--chunk-visits",
        "--lease-timeout-ms",
        "--lease-blocks",
        "--reorder-window",
        "--spool",
        "--compact-every",
        "--out",
    ] {
        assert_usage_exit(COORD, &[flag]);
    }
    // Unparseable numbers and enums.
    assert_usage_exit(COORD, &["--shards", "two"]);
    assert_usage_exit(COORD, &["--seed", "-1"]);
    assert_usage_exit(COORD, &["--lease-timeout-ms", "1.5"]);
    assert_usage_exit(COORD, &["--scale", "gigantic"]);
}

#[test]
fn worker_rejects_malformed_invocations_with_usage() {
    assert_usage_exit(WORKER, &["--bogus"]);
    for flag in [
        "--connect",
        "--scale",
        "--seed",
        "--shards",
        "--chunk-visits",
        "--heartbeat-ms",
        "--visit-delay-us",
        "--io-timeout-ms",
        "--hb-deadline-ms",
        "--connect-attempts",
        "--backoff-ms",
        "--reconnect-budget-ms",
        "--instance",
    ] {
        assert_usage_exit(WORKER, &[flag]);
    }
    assert_usage_exit(WORKER, &["--connect", "x:1", "--chunk-visits", "lots"]);
    assert_usage_exit(WORKER, &["--connect", "x:1", "--scale", "gigantic"]);
    // The one required flag.
    assert_usage_exit(WORKER, &["--scale", "tiny"]);
}

#[test]
fn error_messages_name_the_offending_flag() {
    let (_, stderr) = run(COORD, &["--shards", "two"]);
    assert!(
        stderr.contains("--shards") && stderr.contains("two"),
        "diagnostic should name flag and value:\n{stderr}"
    );
    let (_, stderr) = run(WORKER, &["--heartbeat-ms"]);
    assert!(
        stderr.contains("--heartbeat-ms") && stderr.contains("requires a value"),
        "diagnostic should name the starved flag:\n{stderr}"
    );
}
